//! Quickstart: model a handful of play requests, pack them online with
//! First Fit, and inspect the MinTotal cost against the paper's bounds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dbp::prelude::*;
use dbp_core::bounds;

fn main() {
    // Servers have capacity 10 GPU units; six play requests arrive over
    // time (arrival tick, departure tick, GPU demand). Departure times are
    // *not* visible to the packer — only the instance (the adversary/offline
    // view) knows them.
    let mut builder = InstanceBuilder::new(10);
    builder.add(0, 100, 6); // a long session
    builder.add(0, 30, 6); // does not fit beside it -> second server
    builder.add(10, 80, 4); // fits the first server exactly
    builder.add(35, 90, 6); // arrives after #1 left
    builder.add(50, 70, 3);
    builder.add(95, 140, 8);
    let instance = builder.build().expect("valid instance");

    println!(
        "instance: {} items, span {} ticks, µ = {}",
        instance.len(),
        instance.span().raw(),
        instance.mu().unwrap()
    );

    // Pack online with First Fit; the trace records everything.
    let trace = simulate_validated(&instance, &mut FirstFit::new());
    println!(
        "First Fit: {} servers ever rented, peak {}, total cost {} server-ticks",
        trace.bins_used(),
        trace.max_open_bins(),
        trace.total_cost_ticks()
    );
    for bin in &trace.bins {
        println!(
            "  {} open [{:>3}, {:>3})  items {:?}",
            bin.id,
            bin.opened_at.raw(),
            bin.closed_at.raw(),
            bin.items
        );
    }

    // The paper's bounds (b.1)-(b.3) sandwich every algorithm's cost.
    let b1 = bounds::demand_lower_bound(&instance);
    let b2 = bounds::span_lower_bound(&instance);
    let b3 = bounds::naive_upper_bound(&instance);
    let cost = Ratio::from_int(trace.total_cost_ticks());
    println!("bounds: u(R)/W = {b1} <= cost = {cost} <= sum len = {b3}; span = {b2}");
    assert!(cost >= b1 && cost >= b2 && cost <= b3);

    // Compare against the clairvoyant repacking optimum OPT_total.
    let opt = opt_total(&instance, SolveMode::default());
    println!(
        "OPT_total = {} server-ticks; measured ratio = {:.3} (FF guarantee: 2µ+13 = {:.1})",
        opt.exact_ticks(),
        opt.ratio_of(trace.total_cost_ticks()).to_f64(),
        bounds::ff_general_bound(instance.mu().unwrap()).to_f64()
    );
}
