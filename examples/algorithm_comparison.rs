//! Sweep µ and compare the whole algorithm roster — the practical summary
//! of the paper: on benign traffic everyone is fine, on the adversarial
//! witness every Any Fit ratio tracks µ, and MFF's guarantee is the best.
//!
//! ```sh
//! cargo run --release --example algorithm_comparison
//! ```

use dbp::prelude::*;
use dbp_core::algorithms::standard_factories;
use dbp_core::bounds;

fn main() {
    println!(
        "{:>4}  {:>8}  {:>12}  {:>12}  {:>9}  {:>10}  {:>8}",
        "mu", "algo", "random", "adversarial", "FF bound", "MFF8 bound", "mu+8"
    );
    for mu in [1u64, 4, 16, 64] {
        let witness = Theorem1::new(16, mu).instance();
        let witness_opt = opt_total(&witness, SolveMode::default());
        let workload = generate_mu_controlled(&MuControlledConfig {
            n_items: 250,
            seed: mu,
            ..MuControlledConfig::new(mu)
        });
        let lb = dbp_core::bounds::combined_lower_bound(&workload);
        let mu_r = Ratio::from_int(mu as u128);
        for f in standard_factories(5) {
            let mut sel = f.build();
            let random = simulate(&workload, &mut *sel);
            let mut sel = f.build();
            let adv = simulate(&witness, &mut *sel);
            println!(
                "{:>4}  {:>8}  {:>12.3}  {:>12.3}  {:>9.1}  {:>10.1}  {:>8.1}",
                mu,
                f.name(),
                (Ratio::from_int(random.total_cost_ticks()) / lb).to_f64(),
                witness_opt.ratio_of(adv.total_cost_ticks()).to_f64(),
                bounds::ff_general_bound(mu_r).to_f64(),
                bounds::mff_unknown_mu_bound(mu_r).to_f64(),
                bounds::mff_known_mu_bound(mu_r).to_f64(),
            );
        }
        println!();
    }
    println!("random column: cost/LB on µ-pinned random traffic (close to 1)");
    println!("adversarial column: cost/OPT on the Theorem 1 witness (tracks µ)");
}
