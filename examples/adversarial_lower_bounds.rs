//! The paper's two lower-bound constructions, executed live.
//!
//! * Theorem 1 (Figure 2): every Any Fit algorithm pays ratio
//!   `kµ/(k+µ−1) → µ` — watch the measured ratio march toward µ as k grows.
//! * Theorem 2 (Figure 3): Best Fit's ratio grows like `k/2`, unboundedly,
//!   while First Fit on the *same instances* stays near the optimum.
//!
//! ```sh
//! cargo run --release --example adversarial_lower_bounds
//! ```

use dbp::prelude::*;

fn main() {
    println!("Theorem 1: Any Fit >= kµ/(k+µ−1), µ = 10");
    println!(
        "{:>4}  {:>10}  {:>10}  {:>8}  {:>8}",
        "k", "AF cost", "OPT", "ratio", "formula"
    );
    for k in [2u64, 4, 8, 16, 32, 64] {
        let t1 = Theorem1::new(k, 10);
        let inst = t1.instance();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let opt = opt_total(&inst, SolveMode::default());
        let ratio = opt.ratio_of(trace.total_cost_ticks());
        assert_eq!(
            ratio,
            t1.expected_ratio(),
            "measured must equal closed form"
        );
        println!(
            "{:>4}  {:>10}  {:>10}  {:>8.4}  {:>8}",
            k,
            trace.total_cost_ticks(),
            opt.exact_ticks(),
            ratio.to_f64(),
            t1.expected_ratio()
        );
    }
    println!("  -> approaches µ = 10 from below, exactly as Theorem 1 predicts\n");

    println!("Theorem 2: Best Fit unbounded (µ = 2), First Fit fine on the same instance");
    println!(
        "{:>4}  {:>7}  {:>9}  {:>7}  {:>9}",
        "k", "items", "BF ratio", "k/2", "FF ratio"
    );
    for k in [2u64, 4, 6, 8] {
        let t2 = Theorem2::new(k, 2, 2 * k);
        let inst = t2.instance();
        let bf = simulate(&inst, &mut BestFit::new());
        let ff = simulate(&inst, &mut FirstFit::new());
        let opt = opt_total(&inst, SolveMode::default());
        let bf_ratio = opt.ratio_of(bf.total_cost_ticks());
        let ff_ratio = opt.ratio_of(ff.total_cost_ticks());
        assert!(bf_ratio >= t2.ratio_floor());
        println!(
            "{:>4}  {:>7}  {:>9.3}  {:>7.1}  {:>9.3}",
            k,
            inst.len(),
            bf_ratio.to_f64(),
            t2.ratio_floor().to_f64(),
            ff_ratio.to_f64()
        );
    }
    println!("  -> BF's ratio grows without bound; no fixed µ can save it (Theorem 2)");
}
