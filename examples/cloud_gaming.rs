//! The motivating scenario end to end: a cloud-gaming service renting GPU
//! VMs on demand, dispatching a simulated day of play requests with
//! different policies, and paying an EC2-style hourly bill.
//!
//! ```sh
//! cargo run --release --example cloud_gaming
//! ```

use dbp::prelude::*;
use dbp_core::algorithms::standard_factories;
use dbp_workloads::ArrivalKind;

fn main() {
    // A day of diurnal traffic over the default 12-game catalog.
    let cfg = CloudGamingConfig {
        horizon: 24 * 3600,
        arrivals: ArrivalKind::Diurnal {
            base_rate: 0.05,
            amplitude: 0.8,
            period: 86_400.0,
        },
        seed: 2024,
        ..CloudGamingConfig::default()
    };
    let requests = generate(&cfg);
    let stats = requests.stats();
    println!(
        "workload: {} play requests over 24h, sizes {}..{} GPU units, µ = {:.2}",
        stats.n_items,
        stats.min_size.raw(),
        stats.max_size.raw(),
        stats.mu.to_f64()
    );

    // Dispatch with every algorithm under hourly billing (the real-world
    // model the paper's introduction cites) and under the paper's per-tick
    // model for comparison.
    let hourly = GamingSystem::hourly_model();
    let per_tick = GamingSystem::paper_model();

    println!(
        "\n{:>8}  {:>9}  {:>12}  {:>12}  {:>7}  {:>6}",
        "policy", "servers", "bill/tick $", "bill/hour $", "peak", "util"
    );
    let mut best: Option<(String, f64)> = None;
    for factory in standard_factories(1) {
        let mut sel = factory.build();
        let (tick_report, _) = per_tick.run_or_panic(&requests, &mut *sel);
        let mut sel = factory.build();
        let (hour_report, _) = hourly.run_or_panic(&requests, &mut *sel);
        println!(
            "{:>8}  {:>9}  {:>12.2}  {:>12.2}  {:>7}  {:>6.3}",
            factory.name(),
            hour_report.servers_rented,
            tick_report.cost_dollars(),
            hour_report.cost_dollars(),
            hour_report.peak_servers,
            hour_report.utilization.to_f64()
        );
        let bill = hour_report.cost_dollars();
        if best.as_ref().is_none_or(|(_, b)| bill < *b) {
            best = Some((factory.name().to_string(), bill));
        }
    }
    let (name, bill) = best.unwrap();
    println!("\ncheapest under hourly billing: {name} at ${bill:.2}/day");
}
