//! The §4.3 proof machinery, run on a live First Fit trace.
//!
//! The paper's Figures 4–8 and Table 2 define usage-period decompositions,
//! sub-periods, reference points/bins/periods, and a pairing argument. This
//! example builds all of those objects from a real packing and verifies
//! every feature (f.1–f.5), Lemma (1–5), and closing inequality — turning
//! the proof of Theorem 5 into a checkable computation.
//!
//! ```sh
//! cargo run --example proof_machinery
//! ```

use dbp::prelude::*;
use dbp_core::analysis::analyze_first_fit;

fn main() {
    let cfg = MuControlledConfig {
        n_items: 300,
        seed: 7,
        ..MuControlledConfig::new(6)
    };
    let instance = generate_mu_controlled(&cfg);
    let trace = simulate_validated(&instance, &mut FirstFit::new());
    println!(
        "First Fit packed {} items into {} bins (cost {} bin-ticks)",
        instance.len(),
        trace.bins_used(),
        trace.total_cost_ticks()
    );

    let a = analyze_first_fit(&instance, &trace);
    println!("\n-- Figure 4: I_i^L / I_i^R decomposition --");
    let with_left = a.bins.iter().filter(|b| !b.left.is_empty()).count();
    println!(
        "{} of {} bins have a nonempty I^L; span identity Σ len(I^R) = span(R) = {}",
        with_left,
        a.bins.len(),
        a.certificates.span
    );

    println!("\n-- Figure 5: sub-period split/merge (features f.1–f.3) --");
    println!(
        "{} sub-periods; (µ+2)∆ = {}, (µ+4)∆ = {}",
        a.subperiods.len(),
        a.max_len.raw() + 2 * a.delta.raw(),
        a.max_len.raw() + 4 * a.delta.raw()
    );

    println!("\n-- Figure 6/7 + Table 2: reference periods, cases, pairing --");
    println!("case totals (I..V)       : {:?}", a.refs.case_counts.total);
    println!(
        "intersecting (I..V)      : {:?}  (Lemma 1: only Case V may be nonzero)",
        a.refs.case_counts.intersecting
    );
    println!(
        "pairing                  : J = {}, S = {}, U = {}",
        a.refs.pairing.joint_pairs, a.refs.pairing.single_periods, a.refs.pairing.non_intersecting
    );

    println!("\n-- Closing inequalities of §4.3 --");
    let c = &a.certificates;
    println!(
        "eq (6)   FF_total = Σ len(I^L) + span          : {}",
        c.eq6_holds
    );
    println!(
        "ineq(13) FF_total <= (J+S+U)(µ+6)∆ + span      : {}",
        c.ineq13_holds
    );
    println!(
        "ineq(15) 2·u(R) >= (J+S+U)·W·∆                 : {}",
        c.ineq15_holds
    );
    println!(
        "Thm 5    FF_total = {} <= (2µ+13)·LB = {:.0}    : {}",
        c.ff_total,
        c.theorem5_rhs.to_f64(),
        c.theorem5_holds
    );

    assert!(a.is_clean(), "violations: {:#?}", a.violations);
    println!("\nanalysis clean — every claim of §4.3 verified on this trace");
}
