//! Visualize packings: text Gantt charts of the same instance under four
//! algorithms, the open-bin sparkline, and fleet statistics — the fastest
//! way to *see* why Best Fit dies on its witness while First Fit shrugs.
//!
//! ```sh
//! cargo run --example trace_visualization
//! ```

use dbp::prelude::*;
use dbp_core::clairvoyant::{simulate_clairvoyant, ExtendFit};
use dbp_core::gantt::{render_gantt, sparkline};
use dbp_core::metrics::fleet_stats;

fn show(name: &str, instance: &Instance, trace: &dbp_core::trace::PackingTrace) {
    println!("--- {name} ---");
    print!("{}", render_gantt(instance, trace, 64));
    println!("open-bin profile: {}", sparkline(trace));
    if let Some(f) = fleet_stats(trace) {
        println!(
            "fleet: mean {:.2}, p50 {}, p95 {}, max {} | bin life {}..{} (mean {:.0})\n",
            f.mean_open,
            f.p50_open,
            f.p95_open,
            f.max_open,
            f.min_bin_life,
            f.max_bin_life,
            f.mean_bin_life
        );
    }
}

fn main() {
    // A small Theorem 2 witness: watch Best Fit hold every bin open while
    // First Fit funnels the churn into bin 0.
    let witness = Theorem2::new(3, 2, 2).instance();
    println!(
        "Theorem 2 witness: k=3, µ=2, n=2 — {} items, capacity {}\n",
        witness.len(),
        witness.capacity()
    );
    let bf = simulate_validated(&witness, &mut BestFit::new());
    show("Best Fit (trapped: every bin stays open)", &witness, &bf);
    let ff = simulate_validated(&witness, &mut FirstFit::new());
    show("First Fit (bins 1.. drain and close)", &witness, &ff);

    // A burst of short sessions around long anchors. Both algorithms are
    // Any Fit, so they often tie — the interesting cases are where Extend
    // Fit's placement avoids re-extending bins that were about to close.
    let mut b = InstanceBuilder::new(10);
    let mut t = 0;
    for _ in 0..20 {
        b.add(t, t + 500, 5);
        b.add(t + 1, t + 40, 5);
        t += 45;
    }
    let inst = b.build().unwrap();
    println!("\nmixed lifetimes: long anchors + short churn\n");
    let ff = simulate_validated(&inst, &mut FirstFit::new());
    show("First Fit (blind)", &inst, &ff);
    let xf = simulate_clairvoyant(&inst, ExtendFit::new());
    show("Extend Fit (knows departures)", &inst, &xf);
    println!(
        "blind FF cost {} vs clairvoyant XF cost {} bin-ticks",
        ff.total_cost_ticks(),
        xf.total_cost_ticks()
    );
    assert!(xf.total_cost_ticks() <= ff.total_cost_ticks());
}
