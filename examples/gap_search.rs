//! Attack the paper's open question live: First Fit's true competitive
//! ratio lies in `[µ, 2µ+13]`. A seeded hill-climb hunts for instances
//! worse than the Theorem-1 witness — and (so far) always loses to it.
//!
//! ```sh
//! cargo run --release --example gap_search
//! ```

use dbp::prelude::*;
use dbp_adversary::{best_of_restarts, SearchConfig};
use dbp_core::bounds::{ff_general_bound, theorem1_ratio};

fn main() {
    println!("The open gap: µ <= FF ratio <= 2µ+13. Can random search beat the witness?\n");
    println!(
        "{:>5}  {:>12}  {:>9}  {:>13}  {:>8}",
        "µ cap", "search best", "at µ", "witness k=12", "2µ+13"
    );
    for mu in [2u64, 4, 8] {
        let cfg = SearchConfig {
            steps: 300,
            ..SearchConfig::new(mu, 2026)
        };
        let result = best_of_restarts(&cfg, 4);
        let witness = theorem1_ratio(cfg.capacity, mu);
        let ceiling = ff_general_bound(Ratio::from_int(mu as u128));
        println!(
            "{:>5}  {:>12.3}  {:>9.3}  {:>13.3}  {:>8.1}{}",
            mu,
            result.ratio.to_f64(),
            result.instance.mu().unwrap().to_f64(),
            witness.to_f64(),
            ceiling.to_f64(),
            if result.ratio > witness {
                "   <-- counterexample candidate!"
            } else {
                ""
            }
        );
        assert!(result.ratio <= ceiling, "Theorem 5 cannot be violated");
    }
    println!(
        "\nthe Theorem-1 witness family remains the worst known — consistent with the\n\
         conjecture that FF's true ratio sits near the µ end of the gap"
    );
}
