//! Extreme-magnitude inputs: very large tick values, huge sizes, and long
//! horizons must flow through the exact-arithmetic paths without overflow
//! or precision loss (costs are u128; a u64-tick × u64-size demand is fine,
//! and any genuine overflow must panic rather than wrap).

use dbp::prelude::*;
use dbp_core::bounds;

/// Ticks near the top of the u64 range: costs and spans stay exact.
#[test]
fn huge_tick_values_stay_exact() {
    let base = u64::MAX - 10_000_000;
    let mut b = InstanceBuilder::new(1_000_000_000);
    b.add(base, base + 5_000_000, 999_999_999);
    b.add(base + 1_000_000, base + 6_000_000, 999_999_999);
    let inst = b.build().unwrap();
    let trace = simulate_validated(&inst, &mut FirstFit::new());
    assert_eq!(trace.bins_used(), 2);
    assert_eq!(trace.total_cost_ticks(), 10_000_000);
    assert_eq!(inst.span().raw(), 6_000_000);
    // Demand: ~1e9 size × 5e6 ticks × 2 items ≈ 1e16 — far inside u128.
    assert_eq!(inst.total_demand(), 2u128 * 999_999_999 * 5_000_000);
    let lb = bounds::combined_lower_bound(&inst);
    assert!(Ratio::from_int(trace.total_cost_ticks()) >= lb);
}

/// Maximum-size items against a maximum capacity.
#[test]
fn max_capacity_items() {
    let w = u64::MAX;
    let mut b = InstanceBuilder::new(w);
    b.add(0, 10, w); // fills the bin entirely
    b.add(1, 11, 1); // must open a second bin
    let inst = b.build().unwrap();
    let trace = simulate_validated(&inst, &mut FirstFit::new());
    assert_eq!(trace.bins_used(), 2);
    assert_eq!(trace.total_cost_ticks(), 20);
}

/// Demand accounting at the largest representable scale: one item of size
/// u64::MAX living u64-scale ticks exceeds u128? No: 2^64 · 2^64 = 2^128,
/// just over — so the model bounds demand per item below that; verify a
/// near-limit value computes without wrapping.
#[test]
fn demand_near_the_u128_edge() {
    let w = u64::MAX;
    let len = 1u64 << 62;
    let mut b = InstanceBuilder::new(w);
    b.add(0, len, w);
    let inst = b.build().unwrap();
    let expected = (w as u128) * (len as u128);
    assert_eq!(inst.total_demand(), expected);
    assert!(expected < u128::MAX / 2);
    // b.1 in ticks: u(R)/W = len exactly.
    assert_eq!(
        bounds::demand_lower_bound(&inst),
        Ratio::from_int(len as u128)
    );
}

/// One-tick items — the minimum possible interval — through the whole
/// pipeline including µ and the analysis machinery.
#[test]
fn one_tick_items() {
    let mut b = InstanceBuilder::new(10);
    for i in 0..40 {
        b.add(i, i + 1, 3 + (i % 5));
    }
    let inst = b.build().unwrap();
    assert_eq!(inst.mu().unwrap(), Ratio::ONE);
    let trace = simulate_validated(&inst, &mut FirstFit::new());
    let analysis = dbp_core::analysis::analyze_first_fit(&inst, &trace);
    assert!(analysis.is_clean(), "{:#?}", analysis.violations);
    // µ = 1 ⇒ Theorem 5 rhs = 15·LB.
    assert!(analysis.certificates.theorem5_holds);
}

/// Capacity-1 bins degenerate to one item per bin; cost = Σ len exactly
/// (bound b.3 is tight).
#[test]
fn capacity_one_degenerates_to_item_per_bin() {
    let mut b = InstanceBuilder::new(1);
    b.add(0, 7, 1);
    b.add(2, 9, 1);
    b.add(2, 4, 1);
    let inst = b.build().unwrap();
    let trace = simulate_validated(&inst, &mut BestFit::new());
    assert_eq!(trace.bins_used(), 3);
    assert_eq!(
        Ratio::from_int(trace.total_cost_ticks()),
        bounds::naive_upper_bound(&inst)
    );
}

/// Thousands of simultaneous arrivals and departures at a single tick.
#[test]
fn mass_simultaneous_events() {
    let mut b = InstanceBuilder::new(100);
    for _ in 0..2_000 {
        b.add(5, 6, 1);
    }
    let inst = b.build().unwrap();
    let trace = simulate_validated(&inst, &mut FirstFit::new());
    assert_eq!(trace.bins_used(), 20);
    assert_eq!(trace.max_open_bins(), 20);
    assert_eq!(trace.total_cost_ticks(), 20);
    assert_eq!(trace.open_bins_steps.len(), 2);
}
