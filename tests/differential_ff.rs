//! Differential testing: the event engine + FirstFit selector against an
//! independent, deliberately naive reimplementation of First Fit dynamic
//! packing (recomputing the entire world per event, no shared code paths).
//! Any divergence in assignments or cost is an engine bug.

use dbp::prelude::*;
use proptest::prelude::*;

/// A from-scratch FF dynamic packing: O(n² · events), no event queue, no
/// shared state with the engine. Returns (assignment, total_cost).
fn naive_first_fit(instance: &Instance) -> (Vec<u32>, u128) {
    let w = instance.capacity().raw();
    let n = instance.len();
    // Chronological processing: collect (tick, is_departure, item_index),
    // departures first at equal ticks, stable within kind.
    let mut events: Vec<(u64, u8, usize)> = Vec::new();
    for (i, it) in instance.items().iter().enumerate() {
        events.push((it.arrival.raw(), 1, i));
        events.push((it.departure.raw(), 0, i));
    }
    events.sort_by_key(|&(t, k, _)| (t, k));

    #[derive(Clone)]
    struct NaiveBin {
        members: Vec<usize>,
        opened: u64,
        closed: Option<u64>,
    }
    let mut bins: Vec<NaiveBin> = Vec::new();
    let mut assignment = vec![u32::MAX; n];

    for (t, kind, idx) in events {
        if kind == 0 {
            // Departure: drop from its bin; close if empty.
            let b = assignment[idx] as usize;
            let bin = &mut bins[b];
            bin.members.retain(|&m| m != idx);
            if bin.members.is_empty() && bin.closed.is_none() {
                bin.closed = Some(t);
            }
        } else {
            // Arrival: earliest open bin with room.
            let size = instance.items()[idx].size.raw();
            let mut chosen = None;
            for (b, bin) in bins.iter().enumerate() {
                if bin.closed.is_some() {
                    continue;
                }
                let load: u64 = bin
                    .members
                    .iter()
                    .map(|&m| instance.items()[m].size.raw())
                    .sum();
                if load + size <= w {
                    chosen = Some(b);
                    break;
                }
            }
            let b = chosen.unwrap_or_else(|| {
                bins.push(NaiveBin {
                    members: Vec::new(),
                    opened: t,
                    closed: None,
                });
                bins.len() - 1
            });
            bins[b].members.push(idx);
            assignment[idx] = b as u32;
        }
    }

    let cost: u128 = bins
        .iter()
        .map(|b| (b.closed.expect("bin never closed") - b.opened) as u128)
        .sum();
    (assignment, cost)
}

fn instances() -> impl Strategy<Value = Instance> {
    let item = (0u64..300, 1u64..90, 1u64..=40);
    proptest::collection::vec(item, 1..70).prop_map(|raw| {
        let mut b = InstanceBuilder::new(40);
        for (a, len, s) in raw {
            b.add(a, a + len, s);
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_ff_matches_naive_reimplementation(inst in instances()) {
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let (naive_assign, naive_cost) = naive_first_fit(&inst);
        let engine_assign: Vec<u32> = trace.assignment.iter().map(|b| b.0).collect();
        prop_assert_eq!(engine_assign, naive_assign);
        prop_assert_eq!(trace.total_cost_ticks(), naive_cost);
    }
}

#[test]
fn differential_on_the_theorem1_witness() {
    let inst = Theorem1::new(6, 9).instance();
    let trace = simulate_validated(&inst, &mut FirstFit::new());
    let (_, naive_cost) = naive_first_fit(&inst);
    assert_eq!(trace.total_cost_ticks(), naive_cost);
}
