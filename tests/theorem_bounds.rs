//! Cross-crate verification of every theorem bound in the paper, over
//! randomized instances (this is the repo's master "the paper holds"
//! test suite).

use dbp::prelude::*;
use dbp_core::bounds;

/// Theorem 1: measured Any Fit ratio equals kµ/(k+µ−1) exactly, for every
/// deterministic Any Fit algorithm.
#[test]
fn theorem1_exact_over_grid() {
    for k in [2u64, 3, 5, 9] {
        for mu in [1u64, 2, 7, 12] {
            let t1 = Theorem1::new(k, mu);
            let inst = t1.instance();
            let opt = opt_total(&inst, SolveMode::default());
            assert_eq!(opt.exact_ticks(), t1.expected_opt_cost_ticks());
            for mut sel in [
                Box::new(FirstFit::new()) as Box<dyn BinSelector>,
                Box::new(BestFit::new()),
                Box::new(WorstFit::new()),
                Box::new(LastFit::new()),
                Box::new(MostItemsFit::new()),
            ] {
                let trace = simulate_validated(&inst, &mut *sel);
                assert_eq!(
                    opt.ratio_of(trace.total_cost_ticks()),
                    t1.expected_ratio(),
                    "k={k} µ={mu} algo={}",
                    trace.algorithm
                );
            }
        }
    }
}

/// Theorem 2: BF ratio ≥ k/2 at n = 2k and grows with k; FF on the same
/// instance stays below its own guarantee.
#[test]
fn theorem2_bf_unbounded_ff_bounded() {
    let mut prev = Ratio::ZERO;
    for k in [2u64, 4, 6] {
        let t2 = Theorem2::new(k, 2, 2 * k);
        let inst = t2.instance();
        let opt = opt_total(&inst, SolveMode::default());
        let bf = simulate(&inst, &mut BestFit::new());
        let bf_ratio = opt.ratio_of(bf.total_cost_ticks());
        assert!(bf_ratio >= t2.ratio_floor(), "k={k}");
        assert!(bf_ratio > prev, "BF ratio must grow with k");
        prev = bf_ratio;

        let ff = simulate(&inst, &mut FirstFit::new());
        let ff_ratio = opt.ratio_of(ff.total_cost_ticks());
        assert!(ff_ratio <= bounds::ff_general_bound(inst.mu().unwrap()));
    }
}

/// Theorems 3-5 + §4.4 bounds on randomized µ-pinned workloads: the
/// measured ratio (against the OPT lower bracket) never exceeds the
/// applicable closed form.
#[test]
fn ff_and_mff_bounds_hold_on_random_workloads() {
    use dbp_workloads::SizeModel;
    for mu in [1u64, 3, 9, 20] {
        let mu_r = Ratio::from_int(mu as u128);
        for seed in 0..6u64 {
            for (sizes, check_thm) in [
                (SizeModel::LargeOnly { k: 4 }, "thm3"),
                (SizeModel::SmallOnly { k: 4 }, "thm4"),
                (SizeModel::Uniform { lo: 5, hi: 60 }, "thm5"),
            ] {
                let cfg = MuControlledConfig {
                    n_items: 120,
                    sizes,
                    seed: seed * 997 + mu,
                    ..MuControlledConfig::new(mu)
                };
                let inst = generate_mu_controlled(&cfg);
                let opt = opt_total(
                    &inst,
                    SolveMode::Exact {
                        node_budget: 50_000,
                    },
                );
                let check = |cost: u128, bound: Ratio, tag: &str| {
                    let ratio_ub = Ratio::new(cost, opt.lb_ticks);
                    assert!(
                        ratio_ub <= bound,
                        "{tag} violated at µ={mu}, seed={seed}: {ratio_ub} > {bound}"
                    );
                };
                let ff = simulate(&inst, &mut FirstFit::new());
                match check_thm {
                    "thm3" => check(
                        ff.total_cost_ticks(),
                        bounds::ff_large_items_bound(4),
                        "Theorem 3",
                    ),
                    "thm4" => check(
                        ff.total_cost_ticks(),
                        bounds::ff_small_items_bound(4, mu_r),
                        "Theorem 4",
                    ),
                    _ => check(
                        ff.total_cost_ticks(),
                        bounds::ff_general_bound(mu_r),
                        "Theorem 5",
                    ),
                }
                let mff8 = simulate(&inst, &mut ModifiedFirstFit::new(8));
                check(
                    mff8.total_cost_ticks(),
                    bounds::mff_unknown_mu_bound(mu_r),
                    "MFF unknown-µ",
                );
                let mffk = simulate(&inst, &mut ModifiedFirstFit::for_known_mu(mu));
                check(
                    mffk.total_cost_ticks(),
                    bounds::mff_known_mu_bound(mu_r),
                    "MFF known-µ",
                );
            }
        }
    }
}

/// The bound curves themselves order as the paper claims for all µ ≥ 1:
/// µ ≤ (any Any Fit LB) and µ+8 ≤ 8µ/7+55/7 < 2µ+13.
#[test]
fn bound_curves_are_consistent() {
    for mu in 1..=200u64 {
        let m = Ratio::from_int(mu as u128);
        assert!(bounds::mff_known_mu_bound(m) <= bounds::mff_unknown_mu_bound(m));
        assert!(bounds::mff_unknown_mu_bound(m) < bounds::ff_general_bound(m));
        // Theorem 1's witness ratio is below µ (equal only at µ = 1) but
        // approaches it.
        if mu == 1 {
            assert_eq!(bounds::theorem1_ratio(1_000_000, mu), m);
        } else {
            assert!(bounds::theorem1_ratio(1_000_000, mu) < m);
        }
        assert!(
            Ratio::from_int(mu as u128) - bounds::theorem1_ratio(1_000_000, mu)
                < Ratio::new(mu as u128 * mu as u128, 1_000_000)
        );
    }
}
