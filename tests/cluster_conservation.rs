//! Differential conservation suite for the sharded cluster layer.
//!
//! The contract pinned here: a 1-shard cluster *is* the plain
//! `GamingSystem` run — byte-identical report, JSONL event stream, and
//! manifest digest — and for any shard count the union of shard traces
//! serves every item exactly once while the aggregate `ClusterReport` is
//! the exact (`u128`/`Ratio`, float-free) sum of its shards.

use dbp::prelude::*;
use dbp_cloudsim::{FaultPlan, GamingSystem, Granularity, ServerType};
use dbp_cluster::{ClusterConfig, ClusterEngine, Router};
use dbp_core::algorithms::{standard_factories, BestFit, FirstFit, ModifiedFirstFit};
use dbp_core::engine::simulate_validated_probed;
use dbp_core::packer::{BinSelector, SelectorFactory};
use dbp_obs::export::events_to_jsonl;
use dbp_obs::EventLog;
use dbp_workloads::{generate, CloudGamingConfig};
use proptest::prelude::*;

fn workload(seed: u64) -> Instance {
    generate(&CloudGamingConfig {
        horizon: 1800,
        seed,
        ..CloudGamingConfig::default()
    })
}

/// A shard system matching the capacity-100 proptest instances.
fn small_system() -> GamingSystem {
    GamingSystem {
        server: ServerType {
            gpu_capacity: 100,
            ..ServerType::default_gpu_vm()
        },
        granularity: Granularity::PerTick,
    }
}

/// Capacity-100 churn instances (same shape the engine proptests use).
fn instances(max_items: usize) -> impl Strategy<Value = Instance> {
    let item = (0u64..300, 1u64..150, 1u64..=100);
    proptest::collection::vec(item, 1..max_items).prop_map(|raw| {
        let mut b = InstanceBuilder::new(100);
        for (a, len, s) in raw {
            b.add(a, a + len, s);
        }
        b.build().expect("generated instance is valid")
    })
}

/// Every original item must be served by exactly one shard; returns the
/// per-item service counts derived from the shard traces' bin contents.
fn service_counts(run: &dbp_cluster::ClusterRun, n_items: usize) -> Vec<u32> {
    let mut seen = vec![0u32; n_items];
    for shard in &run.shards {
        for bin in &shard.trace.bins {
            for &local in &bin.items {
                seen[shard.back[local.index()].index()] += 1;
            }
        }
    }
    seen
}

#[test]
fn one_shard_cluster_is_byte_identical_to_the_plain_run() {
    let inst = workload(42);
    let system = GamingSystem::paper_model();
    for router in Router::ALL {
        for (name, make) in [
            (
                "FF",
                (|| Box::new(FirstFit::new()) as Box<dyn BinSelector>) as fn() -> _,
            ),
            ("BF", || Box::new(BestFit::new()) as Box<dyn BinSelector>),
            ("MFF", || {
                Box::new(ModifiedFirstFit::new(8)) as Box<dyn BinSelector>
            }),
        ] {
            // Plain run: report + trace via the system, JSONL via the
            // probed engine path (identical trace by determinism).
            let (plain_report, plain_trace) = system.run(&inst, &mut *make()).unwrap();
            let mut plain_log = EventLog::new();
            let plain_trace2 = simulate_validated_probed(&inst, &mut *make(), &mut plain_log);
            assert_eq!(plain_trace, plain_trace2);

            let engine = ClusterEngine::new(system, ClusterConfig::new(1, router).unwrap());
            let factory = SelectorFactory::new(name, make);
            let (run, mut probes) = engine
                .run_probed(&inst, &factory, |_| EventLog::new())
                .unwrap();
            let shard_log = probes.remove(0);

            // Same trace, byte for byte.
            assert_eq!(run.shards[0].trace, plain_trace, "{name}/{}", router.name());
            // Same JSONL event stream.
            assert_eq!(
                events_to_jsonl(shard_log.events()),
                events_to_jsonl(plain_log.events()),
                "{name}/{}",
                router.name()
            );
            // Same report, once the wall-clock-bearing manifest is set
            // aside; digests compare separately and must be equal too.
            let mut shard_report = run.shards[0].report.clone();
            let mut plain_stripped = plain_report.clone();
            let shard_manifest = shard_report.manifest.take().unwrap();
            let plain_manifest = plain_stripped.manifest.take().unwrap();
            assert_eq!(shard_report, plain_stripped, "{name}/{}", router.name());
            assert_eq!(
                shard_manifest.instance_digest,
                plain_manifest.instance_digest
            );
            assert_eq!(
                run.report.manifest.instance_digest,
                plain_manifest.instance_digest
            );

            // The aggregate mirrors the single shard exactly.
            assert_eq!(run.report.busy_ticks, plain_report.busy_ticks);
            assert_eq!(run.report.billed_ticks, plain_report.billed_ticks);
            assert_eq!(run.report.cost_cents, plain_report.cost_cents);
            assert_eq!(run.report.utilization, plain_report.utilization);
            assert_eq!(run.report.peak_servers, plain_report.peak_servers);
            assert_eq!(run.report.servers_rented, plain_report.servers_rented);
            assert_eq!(run.report.sessions_served, plain_report.sessions_served);
        }
    }
}

#[test]
fn every_standard_policy_conserves_items_and_cost_on_the_gaming_workload() {
    let inst = workload(7);
    let system = GamingSystem::paper_model();
    for factory in standard_factories(0) {
        for router in Router::ALL {
            let engine = ClusterEngine::new(system, ClusterConfig::new(4, router).unwrap());
            let run = engine.run(&inst, &factory).unwrap();
            let seen = service_counts(&run, inst.len());
            assert!(
                seen.iter().all(|&c| c == 1),
                "{}/{} lost or duplicated items",
                factory.name(),
                router.name()
            );
            let busy: u128 = run.shards.iter().map(|s| s.report.busy_ticks).sum();
            assert_eq!(run.report.busy_ticks, busy);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shard-count sweep {2, 4, 8} × all routers on arbitrary instances:
    /// items are served exactly once, and busy/billed/cost aggregate as
    /// exact sums.
    #[test]
    fn conservation_holds_for_all_routers_and_shard_counts(inst in instances(50)) {
        for shards in [2usize, 4, 8] {
            for router in Router::ALL {
                let engine = ClusterEngine::new(small_system(), ClusterConfig::new(shards, router).unwrap());
                let factory = SelectorFactory::new("FF", || Box::new(FirstFit::new()));
                let run = engine.run(&inst, &factory).unwrap();

                let seen = service_counts(&run, inst.len());
                prop_assert!(
                    seen.iter().all(|&c| c == 1),
                    "{}x{} served counts {:?}", router.name(), shards, seen
                );

                let busy: u128 = run.shards.iter().map(|s| s.report.busy_ticks).sum();
                let billed: u128 = run.shards.iter().map(|s| s.report.billed_ticks).sum();
                let cents = run
                    .shards
                    .iter()
                    .fold(Ratio::ZERO, |acc, s| acc + s.report.cost_cents);
                prop_assert_eq!(run.report.busy_ticks, busy);
                prop_assert_eq!(run.report.billed_ticks, billed);
                prop_assert_eq!(&run.report.cost_cents, &cents);
                prop_assert_eq!(run.report.sessions_served, inst.len());
            }
        }
    }

    /// Per-shard fault plans keep the cluster SLA ledger conserved:
    /// served + dropped + lost == total, across shards and in aggregate.
    #[test]
    fn faulted_clusters_conserve_the_sla_ledger(
        inst in instances(50),
        fault_seed in 0u64..1000,
        shards in 2usize..=4,
    ) {
        for router in Router::ALL {
            let engine = ClusterEngine::new(small_system(), ClusterConfig::new(shards, router).unwrap());
            let factory = SelectorFactory::new("FF", || Box::new(FirstFit::new()));
            let plans: Vec<FaultPlan> = (0..shards as u64)
                .map(|s| FaultPlan::from_seed(fault_seed + s, 600))
                .collect();
            let run = engine.run_resilient(&inst, &factory, &plans).unwrap();
            prop_assert!(run.report.conserved(), "{}", router.name());
            prop_assert_eq!(run.report.sessions_total, inst.len() as u64);
            for shard in &run.shards {
                prop_assert!(shard.conserved());
            }
            let served: u64 = run.shards.iter().map(|r| r.sessions_served).sum();
            prop_assert_eq!(run.report.sessions_served, served);
            let cents = run
                .shards
                .iter()
                .fold(Ratio::ZERO, |acc, r| acc + r.cost_cents);
            prop_assert_eq!(&run.report.cost_cents, &cents);
        }
    }
}
