//! Property-based invariants of the fault-injection layer: the SLA ledger
//! conserves sessions, crashed servers never serve again, fault schedules
//! are deterministic functions of their seed, and a fault-free plan is
//! observationally identical to the plain engine.

use dbp::prelude::*;
use dbp_cloudsim::{
    FaultConfig, FaultPlan, GamingSystem, Granularity, ResilientSystem, ServerType,
};
use dbp_core::algorithms::{BestFit, FirstFit, ModifiedFirstFit, NextFit};
use dbp_core::bin::BinId;
use dbp_core::engine::simulate_probed;
use dbp_core::packer::SelectorFactory;
use dbp_core::probe::ProbeEvent;
use dbp_obs::export::events_to_jsonl;
use dbp_obs::EventLog;
use proptest::prelude::*;
use std::collections::HashSet;

/// Capacity used by generated instances and the matching server flavor.
const CAP: u64 = 100;

fn system() -> GamingSystem {
    GamingSystem {
        server: ServerType {
            gpu_capacity: CAP,
            ..ServerType::default_gpu_vm()
        },
        granularity: Granularity::PerTick,
    }
}

fn roster() -> Vec<SelectorFactory> {
    vec![
        SelectorFactory::new("FF", || Box::new(FirstFit::new())),
        SelectorFactory::new("BF", || Box::new(BestFit::new())),
        SelectorFactory::new("MFF(8)", || Box::new(ModifiedFirstFit::new(8))),
        SelectorFactory::new("NF", || Box::new(NextFit::new())),
    ]
}

/// Strategy: arbitrary valid instances (sizes ≤ W, positive lengths).
fn instances(max_items: usize) -> impl Strategy<Value = Instance> {
    let item = (0u64..500, 1u64..120, 1u64..=CAP);
    proptest::collection::vec(item, 1..max_items).prop_map(|raw| {
        let mut b = InstanceBuilder::new(CAP);
        for (a, len, s) in raw {
            b.add(a, a + len, s);
        }
        b.build().expect("generated instance is valid")
    })
}

fn horizon(inst: &Instance) -> u64 {
    dbp_core::events::event_ticks(inst)
        .last()
        .map(|t| t.raw())
        .unwrap_or(0)
}

/// A hostile plan: frequent crashes, very flaky boots, transient rejects,
/// and a tight admission queue — every fault path exercised at once.
fn hostile_plan(seed: u64, inst: &Instance) -> FaultPlan {
    FaultPlan::generate(
        seed,
        horizon(inst).max(2),
        8,
        &FaultConfig {
            crash_rate_per_hour: 3600.0, // ≈ one crash per tick-hour scale
            boot_fail_prob: 0.35,
            boot_delay_max: 20,
            reject_prob: 0.25,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `served + dropped + lost == total` for every dispatcher under a
    /// hostile fault plan — sessions are accounted, never leaked.
    #[test]
    fn sla_ledger_conserves_sessions(inst in instances(40), seed in 0u64..1000) {
        let plan = hostile_plan(seed, &inst);
        for f in roster() {
            let mut sel = f.build();
            let report = ResilientSystem::new(system(), plan.clone())
                .run(&inst, &mut *sel)
                .expect("capacity-matched");
            prop_assert!(
                report.conserved(),
                "{}: {} served + {} dropped + {} lost != {} total",
                f.name(),
                report.sessions_served,
                report.sessions_dropped,
                report.sessions_lost,
                report.sessions_total
            );
        }
    }

    /// Once a server crashes, nothing is ever placed on it again: no
    /// open, placement, re-dispatch target, or departure may reference a
    /// crashed bin id after its `BinCrashed` event.
    #[test]
    fn crashed_servers_never_serve_again(inst in instances(40), seed in 0u64..1000) {
        let plan = hostile_plan(seed, &inst);
        for f in roster() {
            let mut sel = f.build();
            let mut log = EventLog::new();
            ResilientSystem::new(system(), plan.clone())
                .run_probed(&inst, &mut *sel, &mut log)
                .expect("capacity-matched");
            let mut dead: HashSet<BinId> = HashSet::new();
            for ev in log.events() {
                let touched: Option<BinId> = match ev {
                    ProbeEvent::BinOpened { bin, .. }
                    | ProbeEvent::ItemPlaced { bin, .. }
                    | ProbeEvent::ItemDeparted { bin, .. }
                    | ProbeEvent::BinClosed { bin, .. } => Some(*bin),
                    ProbeEvent::ItemRedispatched { to, .. } => Some(*to),
                    _ => None,
                };
                if let Some(bin) = touched {
                    prop_assert!(
                        !dead.contains(&bin),
                        "{}: {} touches crashed bin {bin:?}",
                        f.name(),
                        ev.kind()
                    );
                }
                if let ProbeEvent::BinCrashed { bin, .. } = ev {
                    dead.insert(*bin);
                }
            }
        }
    }

    /// The same seed yields byte-identical JSONL event logs across two
    /// independent runs — fault injection is fully deterministic.
    #[test]
    fn same_seed_gives_byte_identical_event_logs(inst in instances(30), seed in 0u64..1000) {
        let plan = hostile_plan(seed, &inst);
        for f in roster() {
            let run = || {
                let mut sel = f.build();
                let mut log = EventLog::new();
                let report = ResilientSystem::new(system(), plan.clone())
                    .run_probed(&inst, &mut *sel, &mut log)
                    .expect("capacity-matched");
                (report, events_to_jsonl(log.events()))
            };
            let (ra, ja) = run();
            let (rb, jb) = run();
            prop_assert_eq!(ra, rb, "{} reports diverge", f.name());
            prop_assert_eq!(ja, jb, "{} event logs diverge", f.name());
        }
    }

    /// A zero-fault plan is observationally identical to the plain engine:
    /// same bill to the cent, same servers, and the same probe event
    /// stream byte for byte.
    #[test]
    fn zero_fault_plan_is_transparent(inst in instances(40)) {
        let sys = system();
        for f in roster() {
            let mut plain_log = EventLog::new();
            let trace = {
                let mut sel = f.build();
                simulate_probed(&inst, &mut *sel, &mut plain_log)
            };
            let (baseline, _) = sys
                .run(&inst, &mut *f.build())
                .expect("capacity-matched");
            prop_assert_eq!(trace.total_cost_ticks() as u128, baseline.busy_ticks);

            let mut fault_log = EventLog::new();
            let report = ResilientSystem::new(sys, FaultPlan::none())
                .run_probed(&inst, &mut *f.build(), &mut fault_log)
                .expect("capacity-matched");

            prop_assert_eq!(report.sessions_served, inst.len() as u64, "{}", f.name());
            prop_assert_eq!(report.sessions_dropped + report.sessions_lost, 0);
            prop_assert_eq!(report.busy_ticks, baseline.busy_ticks);
            prop_assert_eq!(report.billed_ticks, baseline.billed_ticks);
            prop_assert_eq!(report.cost_cents, baseline.cost_cents);
            prop_assert_eq!(report.servers_rented as usize, baseline.servers_rented);
            prop_assert_eq!(report.peak_servers as u32, baseline.peak_servers);
            prop_assert_eq!(
                events_to_jsonl(fault_log.events()),
                events_to_jsonl(plain_log.events()),
                "{} fault-free event stream deviates from the engine",
                f.name()
            );
        }
    }
}
