//! Property tests of the §4.3 proof machinery: every feature, lemma and
//! inequality of the paper's First Fit analysis must hold on *arbitrary*
//! valid instances — not just the hand-picked ones in unit tests.

use dbp::prelude::*;
use dbp_core::analysis::{analyze_first_fit, PairCase};
use proptest::prelude::*;

fn instances() -> impl Strategy<Value = Instance> {
    // Moderate interval-length spreads so I^L structure actually appears.
    let item = (0u64..400, 10u64..200, 1u64..=60);
    proptest::collection::vec(item, 2..80).prop_map(|raw| {
        let mut b = InstanceBuilder::new(100);
        for (a, len, s) in raw {
            b.add(a, a + len, s);
        }
        b.build().expect("valid")
    })
}

/// The §4.3 machinery stays clean on the adversarial witnesses too — much
/// more structured traces than random traffic (many simultaneous arrivals,
/// extreme interval-length spread).
#[test]
fn machinery_clean_on_adversarial_witnesses() {
    use dbp_core::analysis::analyze_first_fit;
    for inst in [
        Theorem1::new(8, 12).instance(),
        Theorem2::new(3, 3, 3).instance(),
    ] {
        let trace = simulate(&inst, &mut FirstFit::new());
        let a = analyze_first_fit(&inst, &trace);
        assert!(a.is_clean(), "violations: {:#?}", a.violations);
        assert!(a.certificates.theorem5_holds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The full analysis is violation-free on every FF trace.
    #[test]
    fn analysis_is_clean(inst in instances()) {
        let trace = simulate(&inst, &mut FirstFit::new());
        let a = analyze_first_fit(&inst, &trace);
        prop_assert!(a.is_clean(), "violations: {:#?}", a.violations);
    }

    /// Structural identities: sub-periods tile the I^L's; pairing accounts
    /// for every intersecting period; Lemma 1 (only Case V intersects).
    #[test]
    fn structural_identities(inst in instances()) {
        let trace = simulate(&inst, &mut FirstFit::new());
        let a = analyze_first_fit(&inst, &trace);
        // Tiling: sum of sub-period lengths equals sum of I^L lengths.
        let sub_total: u128 = a
            .subperiods
            .iter()
            .map(|s| s.interval.len().raw() as u128)
            .sum();
        prop_assert_eq!(sub_total, a.certificates.left_total);
        // Equation (6).
        prop_assert_eq!(
            a.certificates.ff_total,
            a.certificates.left_total + a.certificates.span
        );
        // Pairing arithmetic.
        prop_assert_eq!(
            a.refs.pairing.intersecting_periods,
            2 * a.refs.pairing.joint_pairs + a.refs.pairing.single_periods
        );
        // Lemma 1 as counters.
        for case in [PairCase::I, PairCase::II, PairCase::III, PairCase::IV] {
            prop_assert_eq!(a.refs.case_counts.intersecting_for(case), 0);
        }
    }

    /// The inequality chain that proves Theorem 5, end to end, on the
    /// measured quantities: FF_total ≤ count·(µ+6)∆ + span,
    /// 2u(R) ≥ count·W·∆, hence FF_total ≤ (2µ+13)·max{u/W, span}.
    #[test]
    fn theorem5_inequality_chain(inst in instances()) {
        let trace = simulate(&inst, &mut FirstFit::new());
        let a = analyze_first_fit(&inst, &trace);
        let c = &a.certificates;
        prop_assert!(c.ineq13_holds);
        prop_assert!(c.ineq15_holds);
        prop_assert!(c.theorem5_holds);
        if let Some(h) = c.ineq11_holds {
            prop_assert!(h, "small-items inequality (11) failed");
        }
    }

    /// The machinery is FF-specific: it still *runs* on other algorithms'
    /// traces without panicking (violations allowed, reported as data).
    #[test]
    fn analysis_never_panics_on_foreign_traces(inst in instances()) {
        for mut sel in [
            Box::new(BestFit::new()) as Box<dyn BinSelector>,
            Box::new(WorstFit::new()),
            Box::new(NextFit::new()),
        ] {
            let trace = simulate(&inst, &mut *sel);
            let _ = analyze_first_fit(&inst, &trace);
        }
    }
}
