//! Failure injection: hostile and randomized selectors thrown at the
//! engine. The engine's contract is (a) any sequence of *legal* decisions
//! produces a valid trace, and (b) every *illegal* decision panics loudly
//! instead of corrupting measurements.

use dbp::prelude::*;
use dbp_core::bin::{BinId, BinTag, OpenBinView};
use dbp_core::engine::simulate_validated;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn demo_instance(seed: u64, n: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new(50);
    let mut t = 0u64;
    for _ in 0..n {
        t += rng.random_range(0..5);
        b.add(t, t + rng.random_range(5..60), rng.random_range(1..=25));
    }
    b.build().unwrap()
}

/// Chooses uniformly among all *legal* moves (any fitting bin, or open) —
/// a randomized stress of the full decision surface.
struct ChaoticButLegal {
    rng: StdRng,
}

impl BinSelector for ChaoticButLegal {
    fn name(&self) -> &'static str {
        "CHAOS"
    }
    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, _cap: Size) -> Decision {
        let mut moves: Vec<Decision> = bins
            .iter()
            .filter(|b| b.fits(item.size))
            .map(|b| Decision::Use(b.id))
            .collect();
        // Opening is always legal; give it weight so bin churn happens.
        moves.push(Decision::Open {
            tag: BinTag(self.rng.random_range(0..4)),
        });
        moves[self.rng.random_range(0..moves.len())]
    }
}

#[test]
fn chaotic_legal_selector_always_yields_valid_traces() {
    for seed in 0..25 {
        let inst = demo_instance(seed, 120);
        let mut chaos = ChaoticButLegal {
            rng: StdRng::seed_from_u64(seed ^ 0xDEAD),
        };
        // simulate_validated panics internally if anything is inconsistent.
        let trace = simulate_validated(&inst, &mut chaos);
        // And the universal bounds still hold.
        let cost = Ratio::from_int(trace.total_cost_ticks());
        assert!(cost >= dbp_core::bounds::combined_lower_bound(&inst));
        assert!(cost <= dbp_core::bounds::naive_upper_bound(&inst));
    }
}

/// Selects a bin that is over capacity for the item whenever one exists.
struct Overfiller;
impl BinSelector for Overfiller {
    fn name(&self) -> &'static str {
        "OVERFILL"
    }
    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, _cap: Size) -> Decision {
        match bins.iter().find(|b| !b.fits(item.size)) {
            Some(b) => Decision::Use(b.id),
            None => Decision::OPEN,
        }
    }
}

#[test]
fn engine_panics_on_overfill() {
    let mut b = InstanceBuilder::new(10);
    b.add(0, 10, 8);
    b.add(1, 10, 8); // does not fit bin 0; Overfiller targets it anyway
    let inst = b.build().unwrap();
    let result = catch_unwind(AssertUnwindSafe(|| {
        dbp_core::simulate(&inst, &mut Overfiller)
    }));
    assert!(result.is_err(), "engine accepted an overfilling placement");
}

/// Returns a bin id that was never opened.
struct GhostBin;
impl BinSelector for GhostBin {
    fn name(&self) -> &'static str {
        "GHOST"
    }
    fn select(&mut self, _bins: &[OpenBinView], _item: &ArrivingItem, _cap: Size) -> Decision {
        Decision::Use(BinId(999))
    }
}

#[test]
fn engine_panics_on_unknown_bin() {
    let mut b = InstanceBuilder::new(10);
    b.add(0, 5, 1);
    let inst = b.build().unwrap();
    let result = catch_unwind(AssertUnwindSafe(|| {
        dbp_core::simulate(&inst, &mut GhostBin)
    }));
    assert!(result.is_err(), "engine accepted a ghost bin");
}

/// Opens a bin for the first item, then blindly demands that bin's id
/// forever — even after it closed.
struct StaleBin {
    first: bool,
}
impl BinSelector for StaleBin {
    fn name(&self) -> &'static str {
        "STALE"
    }
    fn select(&mut self, _bins: &[OpenBinView], _item: &ArrivingItem, _cap: Size) -> Decision {
        if self.first {
            self.first = false;
            Decision::OPEN
        } else {
            Decision::Use(BinId(0))
        }
    }
}

#[test]
fn engine_panics_on_stale_bin_id() {
    let mut b = InstanceBuilder::new(10);
    b.add(0, 3, 5); // bin 0, closes at t=3
    b.add(5, 9, 5); // stale selector will demand bin 0 here
    let inst = b.build().unwrap();
    let result = catch_unwind(AssertUnwindSafe(|| {
        dbp_core::simulate(&inst, &mut StaleBin { first: true })
    }));
    assert!(result.is_err(), "engine accepted a closed bin id");
}
