//! Property-based cross-crate invariants of the packing engine and the
//! whole algorithm roster, on arbitrary generated instances.

use dbp::prelude::*;
use dbp_core::algorithms::standard_factories;
use dbp_core::bounds;
use dbp_core::engine::any_fit_violations;
use proptest::prelude::*;

/// Strategy: arbitrary valid instances (sizes ≤ W, positive lengths).
fn instances(max_items: usize) -> impl Strategy<Value = Instance> {
    let item = (0u64..500, 1u64..120, 1u64..=100);
    proptest::collection::vec(item, 1..max_items).prop_map(|raw| {
        let mut b = InstanceBuilder::new(100);
        for (a, len, s) in raw {
            b.add(a, a + len, s);
        }
        b.build().expect("generated instance is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every roster algorithm yields a self-consistent trace whose cost is
    /// sandwiched by bounds (b.1)–(b.3).
    #[test]
    fn traces_validate_and_costs_are_sandwiched(inst in instances(60)) {
        let lb = bounds::combined_lower_bound(&inst);
        let ub = bounds::naive_upper_bound(&inst);
        for f in standard_factories(11) {
            let mut sel = f.build();
            let trace = simulate(&inst, &mut *sel);
            let errs = trace.validate(&inst);
            prop_assert!(errs.is_empty(), "{}: {errs:?}", f.name());
            let cost = Ratio::from_int(trace.total_cost_ticks());
            prop_assert!(cost >= lb, "{} below lower bound", f.name());
            prop_assert!(cost <= ub, "{} above naive upper bound", f.name());
            prop_assert_eq!(trace.total_cost_ticks(), trace.cost_from_step_function());
        }
    }

    /// The claimed Any Fit algorithms really are Any Fit; Next Fit really
    /// is not (on instances where it provably deviates we don't assert, we
    /// only check the claimers).
    #[test]
    fn any_fit_claims_hold(inst in instances(60)) {
        for f in standard_factories(13) {
            let mut sel = f.build();
            let claims_any_fit = sel.is_any_fit();
            let trace = simulate(&inst, &mut *sel);
            if claims_any_fit {
                let v = any_fit_violations(&inst, &trace);
                prop_assert!(v.is_empty(), "{} violated Any Fit: {v:?}", f.name());
            }
        }
    }

    /// Deterministic algorithms are replay-stable.
    #[test]
    fn simulation_is_deterministic(inst in instances(40)) {
        for f in standard_factories(17) {
            let mut a = f.build();
            let mut b = f.build();
            prop_assert_eq!(simulate(&inst, &mut *a), simulate(&inst, &mut *b));
        }
    }

    /// OPT_total lower-bounds every algorithm and dominates the combined
    /// bound.
    #[test]
    fn opt_total_sandwich(inst in instances(30)) {
        let opt = opt_total(&inst, SolveMode::Exact { node_budget: 20_000 });
        let lb = bounds::combined_lower_bound(&inst);
        prop_assert!(Ratio::from_int(opt.ub_ticks) >= lb);
        for f in standard_factories(19) {
            let mut sel = f.build();
            let trace = simulate(&inst, &mut *sel);
            prop_assert!(
                trace.total_cost_ticks() >= opt.lb_ticks,
                "{} beat OPT?!",
                f.name()
            );
        }
    }

    /// Instance serde round-trips byte-identically through JSON.
    #[test]
    fn instance_serde_round_trip(inst in instances(40)) {
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(inst, back);
    }

    /// The probe event stream agrees with the trace: bins opened equals
    /// `bins_used`, every item is placed exactly once and departs exactly
    /// once, and every `BinClosed` matches a prior `BinOpened`.
    #[test]
    fn probe_events_agree_with_trace(inst in instances(60)) {
        for f in standard_factories(23) {
            let mut sel = f.build();
            let mut probe = (dbp_obs::CountingProbe::new(), dbp_obs::EventLog::new());
            let trace = dbp_core::engine::simulate_probed(&inst, &mut *sel, &mut probe);
            let (counts, log) = probe;
            prop_assert_eq!(counts.bins_opened, trace.bins_used() as u64, "{}", f.name());
            prop_assert_eq!(counts.items_placed, inst.len() as u64, "{}", f.name());
            prop_assert_eq!(counts.items_departed, inst.len() as u64, "{}", f.name());
            prop_assert_eq!(counts.fit_attempts, inst.len() as u64, "{}", f.name());
            prop_assert_eq!(counts.bins_closed, counts.bins_opened, "{}", f.name());
            prop_assert_eq!(counts.violations, 0u64, "{}", f.name());
            // Every close pairs with exactly one earlier open of the same bin.
            let mut open = std::collections::BTreeSet::new();
            for ev in log.events() {
                match ev {
                    ProbeEvent::BinOpened { bin, .. } => {
                        prop_assert!(open.insert(bin.0), "bin {} opened twice", bin.0);
                    }
                    ProbeEvent::BinClosed { bin, .. } => {
                        prop_assert!(open.remove(&bin.0), "bin {} closed while not open", bin.0);
                    }
                    _ => {}
                }
            }
            prop_assert!(open.is_empty(), "bins left open at end: {open:?}");
        }
    }

    /// Event logs survive the JSONL round trip (serialize each event to a
    /// line, parse the file back) structurally intact.
    #[test]
    fn probe_event_jsonl_round_trip(inst in instances(50)) {
        let mut log = dbp_obs::EventLog::new();
        let mut ff = FirstFit::new();
        dbp_core::engine::simulate_probed(&inst, &mut ff, &mut log);
        let text = dbp_obs::export::events_to_jsonl(log.events());
        let back = dbp_obs::export::parse_jsonl(&text).unwrap();
        prop_assert_eq!(back.as_slice(), log.events());
        // Per-event serde agrees with the line-oriented exporter.
        for (line, ev) in text.lines().zip(log.events()) {
            let one: ProbeEvent = serde_json::from_str(line).unwrap();
            prop_assert_eq!(&one, ev);
        }
    }
}
