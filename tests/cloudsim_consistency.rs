//! Cross-crate consistency between the cloud-gaming system simulator and
//! the abstract MinTotal objective.

use dbp::prelude::*;
use dbp_cloudsim::billed_ticks;
use dbp_core::algorithms::standard_factories;
use dbp_workloads::ArrivalKind;

fn day_trace(seed: u64) -> Instance {
    generate(&CloudGamingConfig {
        horizon: 3 * 3600,
        arrivals: ArrivalKind::Poisson { rate: 0.04 },
        seed,
        ..CloudGamingConfig::default()
    })
}

/// Under per-tick billing the system's bill is exactly the paper's
/// objective (`A_total · C`), for every dispatcher.
#[test]
fn per_tick_bill_is_the_paper_objective() {
    let inst = day_trace(1);
    let sys = GamingSystem::paper_model();
    for f in standard_factories(2) {
        let mut sel = f.build();
        let (report, trace) = sys.run_or_panic(&inst, &mut *sel);
        assert_eq!(report.busy_ticks, trace.total_cost_ticks());
        assert_eq!(report.billed_ticks, trace.total_cost_ticks());
        // cents = busy_ticks * 65 / 3600, exactly.
        assert_eq!(report.cost_cents, Ratio::new(report.busy_ticks * 65, 3600));
    }
}

/// Billing granularity is monotone: coarser units never reduce the bill,
/// and the overhead is at most one unit per rented server.
#[test]
fn billing_granularity_monotone_with_bounded_overhead() {
    let inst = day_trace(2);
    for f in standard_factories(3) {
        let mut sel = f.build();
        let trace = dbp_core::simulate(&inst, &mut *sel);
        let tick = billed_ticks(&trace, Granularity::PerTick);
        let minute = billed_ticks(&trace, Granularity::PerMinute);
        let hour = billed_ticks(&trace, Granularity::PerHour);
        assert!(tick <= minute && minute <= hour, "{}", f.name());
        let servers = trace.bins_used() as u128;
        assert!(minute - tick < 60 * servers);
        assert!(hour - tick < 3600 * servers);
    }
}

/// The dispatcher ranking by bill matches the ranking by abstract cost
/// under per-tick billing (they are the same number).
#[test]
fn rankings_agree_under_per_tick_billing() {
    let inst = day_trace(3);
    let sys = GamingSystem::paper_model();
    let mut by_cost: Vec<(String, u128)> = Vec::new();
    let mut by_bill: Vec<(String, Ratio)> = Vec::new();
    for f in standard_factories(4) {
        let mut sel = f.build();
        let (report, trace) = sys.run_or_panic(&inst, &mut *sel);
        by_cost.push((f.name().into(), trace.total_cost_ticks()));
        by_bill.push((f.name().into(), report.cost_cents));
    }
    by_cost.sort_by_key(|(_, c)| *c);
    by_bill.sort_by_key(|(_, bill)| *bill);
    let cost_order: Vec<&str> = by_cost.iter().map(|(n, _)| n.as_str()).collect();
    let bill_order: Vec<&str> = by_bill.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(cost_order, bill_order);
}

/// Region constraints never reduce cost, and with one region they change
/// nothing at all.
#[test]
fn region_constraints_only_add_cost() {
    let base = generate(&CloudGamingConfig {
        horizon: 2 * 3600,
        regions: 1,
        seed: 9,
        ..CloudGamingConfig::default()
    });
    let cff = dbp_core::simulate(&base, &mut ConstrainedFirstFit::new());
    let ff = dbp_core::simulate(&base, &mut FirstFit::new());
    assert_eq!(cff.total_cost_ticks(), ff.total_cost_ticks());

    let split = generate(&CloudGamingConfig {
        horizon: 2 * 3600,
        regions: 6,
        seed: 9,
        ..CloudGamingConfig::default()
    });
    let cff6 = dbp_core::simulate(&split, &mut ConstrainedFirstFit::new());
    let ff6 = dbp_core::simulate(&split, &mut FirstFit::new());
    assert!(cff6.total_cost_ticks() >= ff6.total_cost_ticks());
}
