//! The D=1 degeneracy theorem, tested: the const-generic vector engine
//! run at one dimension is *byte-identical* to the scalar engine — same
//! trace JSON, same probe-event JSONL, same instance digest, same bill —
//! for every selector the vector roster offers, on arbitrary churn-heavy
//! instances. At D>1 the same sweep checks the invariants that replace
//! byte identity: per-dimension capacity respect (via the validating
//! engine), per-dimension demand conservation, and router conservation
//! across cluster dispatch.
//!
//! Byte identity is the strongest equivalence there is: it subsumes
//! cost equality, assignment equality, and event-order equality in one
//! string comparison, and it pins the serialization format (a `VSize<1>`
//! demand must serialize as a bare integer, not a one-element array).

use dbp::prelude::*;
use dbp_cloudsim::{billed_ticks, rental_cost_cents, Granularity, ServerType};
use dbp_cluster::vector::run_cluster_vec;
use dbp_cluster::Router;
use dbp_core::demand::{Demand, VSize};
use dbp_core::engine::{simulate_probed, simulate_validated as sim_validated};
use dbp_core::instance::GInstance;
use dbp_core::packer::BinSelector;
use dbp_core::trace::PackingTrace;
use dbp_core::StreamingEngine;
use dbp_obs::export::{events_to_jsonl, events_to_jsonl_dims};
use dbp_obs::manifest::{instance_digest, instance_digest_dims};
use dbp_obs::{EventLog, GEventLog};
use dbp_workloads::{lift_uniform, widen};
use proptest::prelude::*;

/// Every selector available on the vector roster, by the names
/// `selector_for` resolves for both `Size` and `VSize<D>`.
const SELECTORS: [&str; 6] = ["FF", "BF", "MFF(8)", "FF-idx", "BF-idx", "MFF-idx"];

const ROUTERS: [Router; 3] = [
    Router::HashByItem,
    Router::GameAffinity,
    Router::LeastLoaded,
];

fn selector<Sz: Demand>(name: &str) -> Box<dyn BinSelector<Sz>> {
    dbp_core::algorithms::selector_for::<Sz>(name)
        .unwrap_or_else(|| panic!("selector {name} missing from the vector roster"))
}

fn instances() -> impl Strategy<Value = Instance> {
    let item = (0u64..300, 1u64..90, 1u64..=40);
    proptest::collection::vec(item, 1..60).prop_map(|raw| {
        let mut b = InstanceBuilder::new(40);
        for (a, len, s) in raw {
            b.add(a, a + len, s);
        }
        b.build().unwrap()
    })
}

/// Exact per-dimension demand volume of an instance: Σ size_d · duration.
fn demand_ticks<Sz: Demand>(inst: &GInstance<Sz>) -> Vec<u128> {
    let mut ticks = vec![0u128; Sz::DIMS];
    for it in inst.items() {
        let span = (it.departure.raw() - it.arrival.raw()) as u128;
        for (d, slot) in ticks.iter_mut().enumerate() {
            *slot += it.size.component(d) as u128 * span;
        }
    }
    ticks
}

/// The full D=1 byte-identity check for one selector on one instance.
fn assert_d1_byte_identical(inst: &Instance, name: &str) {
    let vinst = lift_uniform::<1>(inst);

    let mut slog = EventLog::new();
    let strace = simulate_probed(inst, &mut *selector::<Size>(name), &mut slog);
    let mut vlog = GEventLog::<VSize<1>>::new();
    let vtrace = simulate_probed(&vinst, &mut *selector::<VSize<1>>(name), &mut vlog);

    // Trace, event stream, and digest: byte-for-byte.
    let sjson = serde_json::to_string(&strace).unwrap();
    let vjson = serde_json::to_string(&vtrace).unwrap();
    assert_eq!(sjson, vjson, "{name}: D=1 trace JSON diverged");
    assert_eq!(
        events_to_jsonl(slog.events()),
        events_to_jsonl_dims(vlog.events()),
        "{name}: D=1 probe JSONL diverged"
    );
    assert_eq!(
        instance_digest(inst),
        instance_digest_dims(&vinst),
        "D=1 instance digest diverged"
    );

    // The bill: the vector trace *is* a scalar trace (its bytes parse as
    // one), and every billing granularity prices it identically.
    let as_scalar: PackingTrace = serde_json::from_str(&vjson).unwrap();
    let server = ServerType::default_gpu_vm();
    for g in [Granularity::PerTick, Granularity::PerHour] {
        assert_eq!(
            billed_ticks(&strace, g),
            billed_ticks(&as_scalar, g),
            "{name}: billed ticks diverged under {g:?}"
        );
        assert_eq!(
            rental_cost_cents(&strace, server, g),
            rental_cost_cents(&as_scalar, server, g),
            "{name}: bill diverged under {g:?}"
        );
    }
}

/// D>1 invariants for one selector at one dimensionality: the validating
/// engine accepts the packing (per-dimension capacity respect), cost is
/// the scalar engine's cost (a uniform lift changes no decision — every
/// dimension sees the same fit question), and conservation holds under
/// every cluster router.
fn assert_lifted_invariants<const D: usize>(inst: &Instance, name: &str) {
    let vinst = lift_uniform::<D>(inst);
    let vtrace = sim_validated(&vinst, &mut *selector::<VSize<D>>(name));
    let strace = sim_validated(inst, &mut *selector::<Size>(name));
    assert_eq!(
        strace.total_cost_ticks(),
        vtrace.total_cost_ticks(),
        "{name}: a uniform lift to D={D} changed the packing cost"
    );
    assert_eq!(
        strace.assignment, vtrace.assignment,
        "{name}: a uniform lift to D={D} changed an assignment"
    );

    let expected = demand_ticks(&vinst);
    for router in ROUTERS {
        let run = run_cluster_vec(&vinst, router, 3, || selector::<VSize<D>>(name));
        assert_eq!(run.sessions_served, inst.len());
        assert_eq!(run.dims.len(), D);
        for d in &run.dims {
            assert_eq!(
                d.demand_ticks,
                expected[d.dim],
                "{name}/{}: dim {} demand not conserved across shards",
                router.name(),
                d.dim
            );
            assert_eq!(
                d.rented_ticks - d.waste_ticks,
                d.demand_ticks,
                "{name}/{}: dim {} ledger does not balance",
                router.name(),
                d.dim
            );
        }
        // The shard traces themselves must re-add to the demand volume:
        // nothing served twice, nothing dropped.
        let shard_sessions: usize = run.shards.iter().map(|s| s.back.len()).sum();
        assert_eq!(shard_sessions, inst.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline theorem: every vector selector at D=1 is the scalar
    /// selector, down to the last serialized byte.
    #[test]
    fn d1_is_byte_identical_for_every_selector(inst in instances()) {
        for name in SELECTORS {
            assert_d1_byte_identical(&inst, name);
        }
    }

    /// Uniform lifts to D=2 and D=4 preserve cost and assignments, and
    /// cluster dispatch conserves per-dimension demand under every router.
    #[test]
    fn lifted_instances_conserve_per_dimension(inst in instances()) {
        for name in SELECTORS {
            assert_lifted_invariants::<2>(&inst, name);
            assert_lifted_invariants::<4>(&inst, name);
        }
    }

    /// The streaming engine at D=3 (the heterogeneous [gpu, cpu, mem]
    /// widening — genuinely non-uniform demands) is byte-identical to the
    /// batch engine fed the same stream: same trace JSON, same JSONL.
    #[test]
    fn streaming_engine_at_d3_is_byte_identical_to_batch(inst in instances()) {
        let vinst = widen(&inst);
        let mut order: Vec<_> = vinst.items().to_vec();
        order.sort_by_key(|it| (it.arrival, it.id));
        for name in SELECTORS {
            let mut blog = GEventLog::<VSize<3>>::new();
            let batch = simulate_probed(&vinst, &mut *selector::<VSize<3>>(name), &mut blog);

            let mut slog = GEventLog::<VSize<3>>::new();
            let mut eng = StreamingEngine::new(vinst.capacity(), selector::<VSize<3>>(name), &mut slog);
            for it in &order {
                eng.push_arrival(*it, it.arrival).unwrap();
            }
            let streamed = eng.finish().unwrap();
            prop_assert_eq!(
                serde_json::to_string(&batch).unwrap(),
                serde_json::to_string(&streamed).unwrap(),
                "{}: D=3 streaming trace diverged from batch", name
            );
            prop_assert_eq!(
                events_to_jsonl_dims(blog.events()),
                events_to_jsonl_dims(slog.events()),
                "{}: D=3 streaming JSONL diverged from batch", name
            );
        }
    }

    /// At D=1 the vector routers make the scalar routers' decisions:
    /// identical shard assignment for the whole stream.
    #[test]
    fn d1_routing_matches_scalar_routers(inst in instances(), shards in 1usize..5) {
        let vinst = lift_uniform::<1>(&inst);
        for router in ROUTERS {
            let scalar = router.assign(&inst, shards);
            let vector = dbp_cluster::vector::assign_vec(router, &vinst, shards);
            prop_assert_eq!(&scalar, &vector, "router {} diverged at D=1", router.name());
        }
    }
}

/// The dominance selector is vector-only (it orders by max component);
/// it still must satisfy the D>1 invariants, just not scalar equality.
#[test]
fn dominance_selector_conserves_at_high_dims() {
    let inst = dbp_workloads::generate(&dbp_workloads::CloudGamingConfig {
        horizon: 1800,
        seed: 11,
        ..dbp_workloads::CloudGamingConfig::default()
    });
    let vinst = lift_uniform::<4>(&inst);
    let trace = sim_validated(&vinst, &mut *selector::<VSize<4>>("DOM"));
    assert!(trace.bins_used() > 0);
    let expected = demand_ticks(&vinst);
    let run = run_cluster_vec(&vinst, Router::LeastLoaded, 4, || {
        selector::<VSize<4>>("DOM")
    });
    for d in &run.dims {
        assert_eq!(d.demand_ticks, expected[d.dim]);
    }
}

/// A genuinely heterogeneous (non-uniform) D=2 instance where different
/// dimensions bind for different items: conservation and validation must
/// hold when the intersection constraint is doing real work.
#[test]
fn heterogeneous_dims_conserve_under_all_routers() {
    let mut b = dbp_core::instance::GInstanceBuilder::<VSize<2>>::new(VSize([10, 6]));
    // GPU-bound, memory-light …
    for k in 0..40u64 {
        b.add(k, k + 30, VSize([7, 1]));
    }
    // … memory-bound, GPU-light …
    for k in 0..40u64 {
        b.add(2 * k, 2 * k + 17, VSize([1, 5]));
    }
    // … and balanced.
    for k in 0..40u64 {
        b.add(3 * k, 3 * k + 9, VSize([4, 3]));
    }
    let vinst = b.build().unwrap();
    let expected = demand_ticks(&vinst);
    for name in SELECTORS {
        let trace = sim_validated(&vinst, &mut *selector::<VSize<2>>(name));
        assert!(trace.bins_used() > 0, "{name}: nothing packed");
        for router in ROUTERS {
            let run = run_cluster_vec(&vinst, router, 3, || selector::<VSize<2>>(name));
            for d in &run.dims {
                assert_eq!(
                    d.demand_ticks,
                    expected[d.dim],
                    "{name}/{}: dim {} demand not conserved",
                    router.name(),
                    d.dim
                );
            }
        }
    }
}
