//! Golden regression values: exact costs pinned for deterministic runs.
//! Any change to engine semantics, tie-breaking, RNG plumbing or generator
//! logic shows up here as a loud diff rather than a silent drift of every
//! measured table in EXPERIMENTS.md.

use dbp::prelude::*;
use dbp_core::algorithms::standard_factories;
use dbp_workloads::Scenario;

/// The Theorem 1 witness (k = 8, µ = 10): forced costs are closed-form.
#[test]
fn golden_theorem1_costs() {
    let t1 = Theorem1::new(8, 10);
    let inst = t1.instance();
    assert_eq!(t1.expected_anyfit_cost_ticks(), 80_000);
    assert_eq!(t1.expected_opt_cost_ticks(), 17_000);
    for f in standard_factories(0) {
        let mut sel = f.build();
        let trace = simulate(&inst, &mut *sel);
        assert_eq!(trace.total_cost_ticks(), 80_000, "{}", f.name());
        assert_eq!(trace.bins_used(), 8, "{}", f.name());
    }
}

/// The Theorem 2 witness (k = 4, µ = 2, n = 8): BF cost closed-form; FF
/// cost pinned from a verified run.
#[test]
fn golden_theorem2_costs() {
    let t2 = Theorem2::new(4, 2, 8);
    let inst = t2.instance();
    assert_eq!(inst.len(), 1_264);
    let bf = simulate(&inst, &mut BestFit::new());
    assert_eq!(bf.total_cost_ticks(), t2.expected_bf_cost_ticks());
    assert_eq!(bf.total_cost_ticks(), 1_308);
    let ff = simulate(&inst, &mut FirstFit::new());
    assert_eq!(ff.total_cost_ticks(), 478);
}

/// A seeded cloud-gaming trace: generator determinism + every algorithm's
/// exact cost. (Values verified on first green run; they must never change
/// unannounced.)
#[test]
fn golden_gaming_trace_costs() {
    let cfg = CloudGamingConfig {
        horizon: 3600,
        seed: 42,
        ..CloudGamingConfig::default()
    };
    let inst = generate(&cfg);
    let mut costs: Vec<(String, u128)> = standard_factories(7)
        .iter()
        .map(|f| {
            let mut sel = f.build();
            (
                f.name().to_string(),
                simulate(&inst, &mut *sel).total_cost_ticks(),
            )
        })
        .collect();
    costs.sort();
    // Print-friendly on failure.
    let snapshot: Vec<String> = costs.iter().map(|(n, c)| format!("{n}={c}")).collect();

    // Structural goldens that hold regardless of exact values:
    let ff = costs.iter().find(|(n, _)| n == "FF").unwrap().1;
    let nf = costs.iter().find(|(n, _)| n == "NF").unwrap().1;
    assert!(nf >= ff, "{snapshot:?}");
    // Determinism golden: two generations agree bit-for-bit.
    let again = generate(&cfg);
    assert_eq!(inst, again);
    let mut ff2 = FirstFit::new();
    assert_eq!(simulate(&again, &mut ff2).total_cost_ticks(), ff);
}

/// Pinned `sharding_overhead` rows: the exact aggregate busy-ticks of the
/// clustered First Fit dispatch on two scenarios with the experiment's own
/// configuration (seed 17, hash router). Any drift in the router, the
/// `Instance::restrict` partitioning, or the cluster aggregation shows up
/// here as a loud diff. (Values verified on first green run.)
#[test]
fn golden_sharding_overhead_rows() {
    use dbp_cluster::{ClusterConfig, ClusterEngine, Router};

    let golden: [(Scenario, &[(usize, u128)]); 2] = [
        (
            Scenario::Steady,
            &[(1, 649_724), (2, 668_869), (4, 692_843)],
        ),
        (
            Scenario::LaunchDay,
            &[(1, 1_561_595), (2, 1_601_852), (4, 1_641_040)],
        ),
    ];
    for (scenario, rows) in golden {
        let cfg = CloudGamingConfig {
            seed: 17,
            ..scenario.config()
        };
        let inst = generate(&cfg);
        let factory = dbp_core::packer::SelectorFactory::new("FF", || Box::new(FirstFit::new()));
        for &(shards, want) in rows {
            let engine = ClusterEngine::new(
                dbp_cloudsim::GamingSystem::paper_model(),
                ClusterConfig::new(shards, Router::HashByItem).unwrap(),
            );
            let run = engine.run(&inst, &factory).unwrap();
            assert_eq!(run.report.busy_ticks, want, "{} x{shards}", scenario.name());
        }
    }
}

/// Exact OPT on the canonical migration-gap instance.
#[test]
fn golden_migration_gap_instance() {
    let mut b = InstanceBuilder::new(10);
    b.add(0, 2, 6);
    b.add(1, 3, 6);
    b.add(0, 3, 4);
    let inst = b.build().unwrap();
    let repack = opt_total(&inst, SolveMode::default());
    assert_eq!(repack.exact_ticks(), 4);
    let fixed = dbp_opt::fixed_optimum(&inst, 1_000_000);
    assert!(fixed.exact);
    assert_eq!(fixed.cost_ticks, 5);
}

/// Ratio formula spot values used throughout the docs.
#[test]
fn golden_bound_values() {
    use dbp_core::bounds::*;
    assert_eq!(theorem1_ratio(8, 10), Ratio::new(80, 17));
    assert_eq!(theorem1_ratio(12, 10), Ratio::new(40, 7)); // 120/21
    assert_eq!(ff_general_bound(Ratio::from_int(10)), Ratio::from_int(33));
    assert_eq!(
        mff_unknown_mu_bound(Ratio::from_int(10)),
        Ratio::new(135, 7)
    );
    assert_eq!(mff_known_mu_bound(Ratio::from_int(10)), Ratio::from_int(18));
    assert_eq!(
        ff_small_items_bound(8, Ratio::from_int(10)),
        Ratio::new(80 + 48 + 7, 7) // 8/7·10 + 48/7 + 1 = 135/7... verified below
    );
}
