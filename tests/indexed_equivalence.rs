//! Property tests: the indexed FF/BF/MFF selectors are
//! decision-for-decision equivalent to the naive scanning implementations
//! — same `Decision` sequence, identical `PackingTrace`, and byte-identical
//! probe event streams (JSONL) — on arbitrary churn-heavy instances.

use dbp::prelude::*;
use dbp_core::algorithms::{
    BestFit, FirstFit, IndexedBestFit, IndexedFirstFit, IndexedMff, ModifiedFirstFit,
};
use dbp_core::bin::{BinId, BinTag, OpenBinView};
use dbp_core::engine::{any_fit_violations, simulate_probed, simulate_validated};
use dbp_core::item::ArrivingItem;
use dbp_core::packer::{BinSelector, Decision};
use dbp_obs::export::events_to_jsonl;
use dbp_obs::EventLog;
use proptest::prelude::*;

/// Forwards everything to the wrapped selector — including `needs_views`
/// and every state-change hook, so the engine drives the inner selector
/// exactly as it would undecorated — while recording the decision sequence.
struct Recording<S> {
    inner: S,
    decisions: Vec<Decision>,
}

impl<S: BinSelector> Recording<S> {
    fn new(inner: S) -> Recording<S> {
        Recording {
            inner,
            decisions: Vec::new(),
        }
    }
}

impl<S: BinSelector> BinSelector for Recording<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision {
        let d = self.inner.select(bins, item, capacity);
        self.decisions.push(d);
        d
    }

    fn needs_views(&self) -> bool {
        self.inner.needs_views()
    }

    fn on_bin_opened(&mut self, bin: BinId, tag: BinTag, level: Size) {
        self.inner.on_bin_opened(bin, tag, level);
    }

    fn on_item_placed(&mut self, bin: BinId, level: Size) {
        self.inner.on_item_placed(bin, level);
    }

    fn on_item_departed(&mut self, bin: BinId, level: Size) {
        self.inner.on_item_departed(bin, level);
    }

    fn on_bin_closed(&mut self, bin: BinId) {
        self.inner.on_bin_closed(bin);
    }

    fn is_any_fit(&self) -> bool {
        self.inner.is_any_fit()
    }
}

/// Strategy: arbitrary valid instances with heavy interval overlap (many
/// bins open at once), plus ties in size so tie-breaking paths get hit.
fn instances(max_items: usize) -> impl Strategy<Value = Instance> {
    let item = (0u64..300, 1u64..150, 1u64..=100);
    proptest::collection::vec(item, 1..max_items).prop_map(|raw| {
        let mut b = InstanceBuilder::new(100);
        for (a, len, s) in raw {
            b.add(a, a + len, s);
        }
        b.build().expect("generated instance is valid")
    })
}

/// Run `naive` and `indexed` over `inst`, asserting identical decision
/// sequences, traces, event streams (to the byte, via JSONL), and decision
/// counts.
fn assert_equivalent<A: BinSelector, B: BinSelector>(
    inst: &Instance,
    naive: A,
    indexed: B,
) -> proptest::TestCaseResult {
    let trace = assert_same_behavior(inst, naive, indexed)?;
    prop_assert!(any_fit_violations(inst, &trace).is_empty());
    Ok(())
}

/// [`assert_equivalent`] minus the Any Fit audit, returning the trace —
/// for selectors like MFF that legitimately refuse cross-class placements.
fn assert_same_behavior<A: BinSelector, B: BinSelector>(
    inst: &Instance,
    naive: A,
    indexed: B,
) -> Result<PackingTrace, proptest::TestCaseError> {
    let mut naive = Recording::new(naive);
    let mut naive_log = EventLog::new();
    let naive_trace = simulate_probed(inst, &mut naive, &mut naive_log);

    let mut indexed = Recording::new(indexed);
    let mut indexed_log = EventLog::new();
    let indexed_trace = simulate_probed(inst, &mut indexed, &mut indexed_log);

    prop_assert_eq!(&naive.decisions, &indexed.decisions);
    prop_assert_eq!(&naive_trace, &indexed_trace);
    prop_assert_eq!(
        events_to_jsonl(naive_log.events()),
        events_to_jsonl(indexed_log.events())
    );
    prop_assert_eq!(
        naive_log.decision_ns().len(),
        indexed_log.decision_ns().len()
    );
    Ok(indexed_trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn indexed_ff_equals_naive_ff(inst in instances(80)) {
        assert_equivalent(&inst, FirstFit::new(), IndexedFirstFit::new())?;
    }

    #[test]
    fn indexed_bf_equals_naive_bf(inst in instances(80)) {
        assert_equivalent(&inst, BestFit::new(), IndexedBestFit::new())?;
    }

    /// MFF is not Any Fit (it refuses cross-class placements), so it gets
    /// the behavior check without the Any Fit audit. `k = 8` is the
    /// paper's µ-oblivious setting; the generated capacity is 100, so the
    /// size range straddles the W/k = 12.5 threshold and both classes see
    /// real churn.
    #[test]
    fn indexed_mff_equals_naive_mff(inst in instances(80)) {
        assert_same_behavior(&inst, ModifiedFirstFit::new(8), IndexedMff::new(8))?;
    }

    /// A rational threshold exercises the exact-arithmetic classification
    /// path on both sides.
    #[test]
    fn indexed_mff_equals_naive_mff_rational_k(inst in instances(60)) {
        assert_same_behavior(
            &inst,
            ModifiedFirstFit::with_rational_k(3, 2),
            IndexedMff::with_rational_k(3, 2),
        )?;
    }

    /// The validated entry point (which cross-checks the trace against the
    /// instance) agrees too, without the recording wrapper in the way.
    #[test]
    fn validated_traces_agree(inst in instances(50)) {
        prop_assert_eq!(
            simulate_validated(&inst, &mut FirstFit::new()),
            simulate_validated(&inst, &mut IndexedFirstFit::new())
        );
        prop_assert_eq!(
            simulate_validated(&inst, &mut BestFit::new()),
            simulate_validated(&inst, &mut IndexedBestFit::new())
        );
        prop_assert_eq!(
            simulate_validated(&inst, &mut ModifiedFirstFit::new(8)),
            simulate_validated(&inst, &mut IndexedMff::new(8))
        );
    }

    /// Every indexed trace satisfies the cheap conservation check the
    /// cluster shard path now runs, and the check agrees with the full
    /// quadratic validation on these instances.
    #[test]
    fn conservation_check_accepts_indexed_traces(inst in instances(60)) {
        let traces = [
            simulate_validated(&inst, &mut IndexedFirstFit::new()),
            simulate_validated(&inst, &mut IndexedBestFit::new()),
            simulate_validated(&inst, &mut IndexedMff::new(8)),
        ];
        for trace in &traces {
            prop_assert!(trace.check_conservation(&inst).is_empty());
            prop_assert!(trace.validate(&inst).is_empty());
        }
    }
}
