//! Write-ahead journal for engine event streams.
//!
//! ## On-disk format
//!
//! ```text
//! +----------------+----------------------------------------------+
//! | magic (8 B)    | "DBPWAL01"                                   |
//! +----------------+----------------------------------------------+
//! | frame 0        | len: u32 LE | crc: u32 LE | payload: len B   |
//! | frame 1        | ...                                          |
//! +----------------+----------------------------------------------+
//! ```
//!
//! Each frame's payload is one [`ProbeEvent`] in the same externally-tagged
//! single-line JSON the JSONL exporter emits, so `dbp trace` and every JSONL
//! consumer understand a decoded journal directly. `crc` is the CRC-32
//! (IEEE 802.3, reflected, polynomial `0xEDB88320`) of the payload bytes.
//!
//! ## Format v2 — vector demands
//!
//! Journals of multi-dimensional streams open with `"DBPWAL02"` followed
//! by one **dims byte** (the demand dimensionality, `2 ..= 255`); frames
//! are unchanged except that demand fields serialize as JSON arrays.
//! One-dimensional journals keep the v1 header and bare-number demands —
//! [`VSize<1>`](dbp_core::demand::VSize) serializes exactly like the
//! scalar [`Size`](dbp_core::item::Size) — so every byte a scalar run
//! journals is identical to the same run at `D = 1`, and v1 journals
//! replay unchanged. Readers check the file's dimensionality against the
//! requested demand type and reject mismatches with a typed arity error
//! instead of truncating or panicking.
//!
//! ## Torn-tail tolerance
//!
//! The writer appends frames sequentially and never seeks, so a crash —
//! including SIGKILL and power loss — can corrupt **only the final frame**:
//! a partial header, a partial payload, or a complete-looking frame whose
//! CRC fails because some of its sectors never hit the disk. The reader
//! therefore distinguishes two situations:
//!
//! * damage at the very end of the file → a *torn tail*: the sound prefix
//!   is returned together with a [`TornTail`] describing what was dropped
//!   (truncate-and-warn; **never** a panic);
//! * a bad CRC (or undecodable payload) with more bytes after it → real
//!   mid-file corruption, which honest appends cannot produce → a hard
//!   error.
//!
//! ## Durability policy
//!
//! [`FsyncPolicy`] trades write latency for the number of trailing events
//! an OS crash may lose (a process crash alone loses nothing once the
//! buffer is flushed): `Always` fsyncs every record, `EveryN(n)` amortizes,
//! `Never` leaves flushing to the OS.

use crate::span::StageAggregator;
use dbp_core::demand::Demand;
use dbp_core::item::Size;
use dbp_core::probe::{GProbeEvent, Probe};

#[allow(unused_imports)] // doc links
use dbp_core::probe::ProbeEvent;
use dbp_core::span::{stage, SpanRecorder};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every scalar (one-dimensional) journal file
/// (format version 01).
pub const JOURNAL_MAGIC: &[u8; 8] = b"DBPWAL01";

/// Magic bytes opening a vector journal (format version 02); followed by
/// one dims byte before the first frame.
pub const JOURNAL_MAGIC_V2: &[u8; 8] = b"DBPWAL02";

/// Upper bound on a sane frame payload; a length field beyond this is
/// corruption, not a real record.
const MAX_FRAME_LEN: u32 = 1 << 24;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of `bytes` — the checksum scheme of zip/PNG/ethernet.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// When the journal writer forces records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsyncPolicy {
    /// Never fsync explicitly; the OS flushes on its own schedule. An OS
    /// crash may lose trailing records (a process crash does not).
    Never,
    /// Fsync after every record — maximum durability, maximum latency.
    Always,
    /// Fsync after every `n` records (`n ≥ 1`).
    EveryN(u32),
}

impl FsyncPolicy {
    /// Parse a CLI spelling: `never`, `always`, or a positive integer `n`
    /// meaning [`FsyncPolicy::EveryN`]`(n)`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "never" => Ok(FsyncPolicy::Never),
            "always" => Ok(FsyncPolicy::Always),
            _ => match s.parse::<u32>() {
                Ok(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "invalid fsync policy {s:?}: expected `always`, `never`, or a positive count"
                )),
            },
        }
    }
}

/// Appends length-prefixed, CRC-framed [`ProbeEvent`] records to a journal
/// file. See the module docs for the format.
#[derive(Debug)]
pub struct JournalWriter {
    file: BufWriter<fs::File>,
    path: PathBuf,
    policy: FsyncPolicy,
    unsynced: u32,
    records: u64,
    /// Optional span recorder: when set, every append is wrapped in a
    /// `journal_append` span with policy-due fsyncs nested as
    /// `journal_fsync`. `None` (the default) keeps the write path free of
    /// clock reads.
    spans: Option<StageAggregator>,
}

impl JournalWriter {
    /// Create (truncating) a journal at `path`, writing the v1 magic
    /// header (one-dimensional demands). Parent directories are created as
    /// needed.
    pub fn create(path: &Path, policy: FsyncPolicy) -> std::io::Result<JournalWriter> {
        JournalWriter::create_dims(path, policy, 1)
    }

    /// Create a journal for `dims`-dimensional demands: the v1 header when
    /// `dims == 1` (byte-identical to a scalar journal), the v2 header
    /// plus dims byte otherwise.
    ///
    /// # Panics
    /// Panics unless `1 ≤ dims ≤ 255`.
    pub fn create_dims(
        path: &Path,
        policy: FsyncPolicy,
        dims: usize,
    ) -> std::io::Result<JournalWriter> {
        assert!(
            (1..=255).contains(&dims),
            "journal dims must be in 1..=255, got {dims}"
        );
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut file = BufWriter::new(fs::File::create(path)?);
        if dims == 1 {
            file.write_all(JOURNAL_MAGIC)?;
        } else {
            file.write_all(JOURNAL_MAGIC_V2)?;
            file.write_all(&[dims as u8])?;
        }
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            records: 0,
            spans: None,
        })
    }

    /// Attach a span recorder: subsequent appends record `journal_append`
    /// spans with nested `journal_fsync` spans for policy-due syncs.
    pub fn set_spans(&mut self, spans: StageAggregator) {
        self.spans = Some(spans);
    }

    /// Detach and return the span recorder, if one was attached.
    pub fn take_spans(&mut self) -> Option<StageAggregator> {
        self.spans.take()
    }

    /// Append one event as a framed record, honoring the fsync policy.
    /// Generic over the demand type — the caller is responsible for
    /// matching the dimensionality declared in the header (the engine's
    /// journal plumbing pins both to the same `Sz`).
    pub fn append<Sz: Serialize>(&mut self, event: &GProbeEvent<Sz>) -> std::io::Result<()> {
        if let Some(sp) = &mut self.spans {
            sp.enter(stage::JOURNAL_APPEND);
        }
        let result = self.append_inner(event);
        if let Some(sp) = &mut self.spans {
            sp.exit();
        }
        result
    }

    fn append_inner<Sz: Serialize>(&mut self, event: &GProbeEvent<Sz>) -> std::io::Result<()> {
        let payload = serde_json::to_string(event).expect("ProbeEvent serializes infallibly");
        let payload = payload.as_bytes();
        debug_assert!(payload.len() < MAX_FRAME_LEN as usize);
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&crc32(payload).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.records += 1;
        self.unsynced += 1;
        let due = match self.policy {
            FsyncPolicy::Never => false,
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush buffered frames and fsync the file.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if let Some(sp) = &mut self.spans {
            sp.enter(stage::JOURNAL_FSYNC);
        }
        let result = (|| {
            self.file.flush()?;
            self.file.get_ref().sync_all()
        })();
        if let Some(sp) = &mut self.spans {
            sp.exit();
        }
        result?;
        self.unsynced = 0;
        Ok(())
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flush, fsync, and close; returns the total record count.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.sync()?;
        Ok(self.records)
    }
}

impl Drop for JournalWriter {
    /// Crash-path safety net: a writer dropped without [`finish`]
    /// (a panic unwinding through a shard worker, an interrupted run)
    /// still pushes buffered frames to disk, so the on-disk prefix is
    /// always `dbp recover`-clean. Errors are swallowed — there is no
    /// caller left to report them to, and [`finish`] remains the path
    /// that surfaces them.
    ///
    /// [`finish`]: JournalWriter::finish
    fn drop(&mut self) {
        if self.unsynced > 0 {
            let _ = self.sync();
        }
    }
}

/// A [`Probe`] that journals every event as it is emitted. I/O errors are
/// latched (the engine's probe seam cannot propagate them mid-run) and
/// surfaced by [`JournalProbe::finish`]; after the first error no further
/// writes are attempted.
#[derive(Debug)]
pub struct JournalProbe {
    writer: JournalWriter,
    error: Option<std::io::Error>,
}

impl JournalProbe {
    /// Journal to a fresh v1 (one-dimensional) file at `path`.
    pub fn create(path: &Path, policy: FsyncPolicy) -> std::io::Result<JournalProbe> {
        JournalProbe::create_dims(path, policy, 1)
    }

    /// Journal to a fresh `dims`-dimensional file at `path` (see
    /// [`JournalWriter::create_dims`]).
    pub fn create_dims(
        path: &Path,
        policy: FsyncPolicy,
        dims: usize,
    ) -> std::io::Result<JournalProbe> {
        Ok(JournalProbe {
            writer: JournalWriter::create_dims(path, policy, dims)?,
            error: None,
        })
    }

    /// Wrap an existing writer (e.g. one positioned after a recovered
    /// prefix).
    pub fn from_writer(writer: JournalWriter) -> JournalProbe {
        JournalProbe {
            writer,
            error: None,
        }
    }

    /// Close the journal: the record count on success, the first latched
    /// I/O error otherwise.
    pub fn finish(self) -> std::io::Result<u64> {
        match self.error {
            Some(e) => Err(e),
            None => self.writer.finish(),
        }
    }

    /// Attach a span recorder to the underlying writer (see
    /// [`JournalWriter::set_spans`]).
    pub fn set_spans(&mut self, spans: StageAggregator) {
        self.writer.set_spans(spans);
    }

    /// Detach and return the underlying writer's span recorder, if any.
    pub fn take_spans(&mut self) -> Option<StageAggregator> {
        self.writer.take_spans()
    }
}

impl<Sz: Demand> Probe<Sz> for JournalProbe {
    fn record(&mut self, event: GProbeEvent<Sz>) {
        if self.error.is_none() {
            if let Err(e) = self.writer.append(&event) {
                self.error = Some(e);
            }
        }
    }
}

/// Description of a torn tail frame dropped by the reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the start of the damaged frame — the length a repair
    /// should truncate the file to.
    pub sound_len: u64,
    /// What was wrong with the tail.
    pub reason: String,
}

/// Result of reading a journal: the decoded sound prefix, plus a
/// [`TornTail`] when the final frame was damaged. Generic over the demand
/// type; the scalar model uses the [`JournalContents`] alias.
#[derive(Debug)]
pub struct GJournalContents<Sz> {
    /// Events decoded from intact frames, in write order.
    pub events: Vec<GProbeEvent<Sz>>,
    /// Present when the file ends in a damaged frame (crash mid-append).
    pub torn: Option<TornTail>,
}

/// The scalar journal contents of the source paper's model.
pub type JournalContents = GJournalContents<Size>;

impl<Sz> GJournalContents<Sz> {
    /// Whether the journal ended cleanly (no torn tail).
    pub fn is_clean(&self) -> bool {
        self.torn.is_none()
    }
}

/// Decode the journal header: `(dims, header_len)`. A v1 magic is one
/// dimension; a v2 magic carries an explicit dims byte. A file too short
/// to hold its header is reported as a zero-length torn tail via `Ok(None)`;
/// a wrong magic (or a v2 dims byte of 0 or 1, which the writer never
/// emits) is a hard error.
fn parse_header(bytes: &[u8]) -> Result<Option<(usize, usize)>, String> {
    if bytes.len() < JOURNAL_MAGIC.len() {
        return Ok(None);
    }
    let magic = &bytes[..JOURNAL_MAGIC.len()];
    if magic == JOURNAL_MAGIC {
        return Ok(Some((1, JOURNAL_MAGIC.len())));
    }
    if magic == JOURNAL_MAGIC_V2 {
        if bytes.len() < JOURNAL_MAGIC.len() + 1 {
            return Ok(None); // dims byte never made it to disk
        }
        let dims = bytes[JOURNAL_MAGIC.len()] as usize;
        if dims < 2 {
            return Err(format!(
                "v2 journal declares {dims} dimension(s); the writer only \
                 emits v2 headers for 2 or more"
            ));
        }
        return Ok(Some((dims, JOURNAL_MAGIC.len() + 1)));
    }
    Err(format!("not a journal: bad magic {magic:?}"))
}

/// The demand dimensionality a journal byte image declares (1 for v1).
pub fn journal_dims(bytes: &[u8]) -> Result<usize, String> {
    match parse_header(bytes)? {
        Some((dims, _)) => Ok(dims),
        None => Err("file shorter than the journal header".to_string()),
    }
}

/// The demand dimensionality a journal file declares, read from its
/// header alone.
pub fn peek_journal_dims(path: &Path) -> Result<usize, String> {
    let mut bytes = [0u8; 9];
    let n = fs::File::open(path)
        .and_then(|mut f| {
            let mut read = 0;
            while read < bytes.len() {
                let got = f.read(&mut bytes[read..])?;
                if got == 0 {
                    break;
                }
                read += got;
            }
            Ok(read)
        })
        .map_err(|e| format!("{}: {e}", path.display()))?;
    journal_dims(&bytes[..n])
}

/// Frame-level walk shared by every decoder: checks framing and CRCs,
/// hands each sound payload to `decode`, and applies the torn-tail versus
/// mid-file-corruption distinction of the module docs. Never panics.
fn parse_journal_with<T>(
    bytes: &[u8],
    header_len: usize,
    mut decode: impl FnMut(&str, usize) -> Result<T, String>,
) -> Result<GenericContents<T>, String> {
    let mut events = Vec::new();
    let mut pos = header_len;
    loop {
        if pos == bytes.len() {
            return Ok(GenericContents { events, torn: None });
        }
        let frame_start = pos;
        macro_rules! torn {
            ($($arg:tt)*) => {
                return Ok(GenericContents {
                    events,
                    torn: Some(TornTail {
                        sound_len: frame_start as u64,
                        reason: format!($($arg)*),
                    }),
                })
            };
        }
        if bytes.len() - pos < 8 {
            torn!("incomplete frame header ({} of 8 bytes)", bytes.len() - pos);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        pos += 8;
        if len > MAX_FRAME_LEN {
            // A garbage length field. If real frames followed we could not
            // find them anyway (framing is sequential), so this is only
            // recoverable as a tail condition.
            torn!("frame length {len} exceeds the {MAX_FRAME_LEN} cap");
        }
        if bytes.len() - pos < len as usize {
            torn!(
                "incomplete frame payload ({} of {len} bytes)",
                bytes.len() - pos
            );
        }
        let payload = &bytes[pos..pos + len as usize];
        pos += len as usize;
        let at_tail = pos == bytes.len();
        if crc32(payload) != crc {
            if at_tail {
                torn!("CRC mismatch in final frame");
            }
            return Err(format!(
                "CRC mismatch in frame at byte {frame_start} with {} bytes following: \
                 mid-file corruption, refusing to replay",
                bytes.len() - pos
            ));
        }
        let text = std::str::from_utf8(payload).map_err(|_| {
            format!("frame at byte {frame_start}: payload is not UTF-8 despite valid CRC")
        })?;
        events.push(decode(text, frame_start)?);
    }
}

struct GenericContents<T> {
    events: Vec<T>,
    torn: Option<TornTail>,
}

/// Decode a journal byte image into `Sz`-demand events. The file's
/// declared dimensionality must equal `Sz::DIMS` — a mismatch is a typed
/// `demand_arity` error, never a truncation. Mid-file corruption is an
/// `Err`; a damaged final frame is tolerated and reported via
/// [`GJournalContents::torn`]. Never panics on any input.
pub fn parse_journal_dims<Sz: Demand>(bytes: &[u8]) -> Result<GJournalContents<Sz>, String> {
    let Some((dims, header_len)) = parse_header(bytes)? else {
        // Even the header is incomplete: a crash before the header sync.
        return Ok(GJournalContents {
            events: Vec::new(),
            torn: Some(TornTail {
                sound_len: 0,
                reason: "file shorter than the journal header".to_string(),
            }),
        });
    };
    if dims != Sz::DIMS {
        return Err(format!(
            "demand_arity: journal holds {dims}-dimensional demands, \
             reader expected {}",
            Sz::DIMS
        ));
    }
    let parsed = parse_journal_with(bytes, header_len, |text, frame_start| {
        serde_json::from_str::<GProbeEvent<Sz>>(text).map_err(|e| {
            format!("frame at byte {frame_start}: undecodable event despite valid CRC: {e:?}")
        })
    })?;
    Ok(GJournalContents {
        events: parsed.events,
        torn: parsed.torn,
    })
}

/// Decode a scalar (v1) journal byte image. See [`parse_journal_dims`].
pub fn parse_journal(bytes: &[u8]) -> Result<JournalContents, String> {
    parse_journal_dims::<Size>(bytes)
}

/// Read and decode a journal file with `Sz`-demand events. See
/// [`parse_journal_dims`] for the torn-tail / corruption / arity contract.
pub fn read_journal_dims<Sz: Demand>(path: &Path) -> Result<GJournalContents<Sz>, String> {
    let mut bytes = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    parse_journal_dims(&bytes)
}

/// Read and decode a scalar journal file. See [`parse_journal`] for the
/// torn-tail / corruption contract.
pub fn read_journal(path: &Path) -> Result<JournalContents, String> {
    read_journal_dims::<Size>(path)
}

/// Truncate a journal with a torn tail down to its sound prefix, so that
/// subsequent appends produce a clean file. No-op on a clean journal.
/// Returns the dropped tail description, if any. Works on any
/// dimensionality: repair is a frame-level operation, so payloads are only
/// checked to be well-formed JSON, not arity-matched.
pub fn repair_journal(path: &Path) -> Result<Option<TornTail>, String> {
    let mut bytes = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let torn =
        match parse_header(&bytes)? {
            None => Some(TornTail {
                sound_len: 0,
                reason: "file shorter than the journal header".to_string(),
            }),
            Some((_, header_len)) => {
                parse_journal_with(&bytes, header_len, |text, frame_start| {
                    serde_json::from_str::<serde::Value>(text).map_err(|e| {
                format!("frame at byte {frame_start}: undecodable event despite valid CRC: {e:?}")
            })
                })?
                .torn
            }
        };
    if let Some(torn) = &torn {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        file.set_len(torn.sound_len)
            .and_then(|()| file.sync_all())
            .map_err(|e| format!("{}: truncate failed: {e}", path.display()))?;
    }
    Ok(torn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;

    fn sample_events() -> Vec<ProbeEvent> {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 6);
        b.add(10, 35, 4);
        let inst = b.build().unwrap();
        let mut log = crate::recorder::EventLog::new();
        simulate_probed(&inst, &mut FirstFit::new(), &mut log);
        log.into_events()
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dbp_obs_journal_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn write_read_round_trip() {
        let path = tmpfile("round_trip.wal");
        let events = sample_events();
        let mut w = JournalWriter::create(&path, FsyncPolicy::EveryN(3)).unwrap();
        for ev in &events {
            w.append(ev).unwrap();
        }
        assert_eq!(w.finish().unwrap(), events.len() as u64);
        let back = read_journal(&path).unwrap();
        assert!(back.is_clean());
        assert_eq!(back.events, events);
    }

    #[test]
    fn journal_probe_captures_engine_stream() {
        let path = tmpfile("probe.wal");
        let events = sample_events();
        let mut b = InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 6);
        b.add(10, 35, 4);
        let inst = b.build().unwrap();
        let mut probe = JournalProbe::create(&path, FsyncPolicy::Never).unwrap();
        simulate_probed(&inst, &mut FirstFit::new(), &mut probe);
        assert_eq!(probe.finish().unwrap(), events.len() as u64);
        assert_eq!(read_journal(&path).unwrap().events, events);
    }

    #[test]
    fn journal_spans_attribute_appends_and_fsyncs() {
        let path = tmpfile("spans.wal");
        let events = sample_events();
        let mut w = JournalWriter::create(&path, FsyncPolicy::EveryN(3)).unwrap();
        w.set_spans(StageAggregator::new(0));
        for ev in &events {
            w.append(ev).unwrap();
        }
        let breakdown = w.take_spans().unwrap().finish();
        w.finish().unwrap();
        let appends = breakdown.get(stage::JOURNAL_APPEND).unwrap();
        assert_eq!(appends.count, events.len() as u64);
        let fsyncs = breakdown.get(stage::JOURNAL_FSYNC).unwrap();
        // EveryN(3): one fsync per full group of three appends.
        assert_eq!(fsyncs.count, events.len() as u64 / 3);
        // Fsync time nests inside append time.
        assert!(appends.total_ns >= fsyncs.total_ns);
        // The journal itself is untouched by instrumentation.
        assert_eq!(read_journal(&path).unwrap().events, events);
    }

    #[test]
    fn torn_tail_variants_truncate_and_never_panic() {
        let events = sample_events();
        let path = tmpfile("torn.wal");
        let mut w = JournalWriter::create(&path, FsyncPolicy::Never).unwrap();
        for ev in &events {
            w.append(ev).unwrap();
        }
        w.finish().unwrap();
        let clean = fs::read(&path).unwrap();

        // Chop the file at every possible byte boundary: the reader must
        // never error, never panic, and must return a prefix of the events.
        for cut in 0..clean.len() {
            let contents = parse_journal(&clean[..cut]).unwrap_or_else(|e| {
                panic!("cut at {cut}: torn tail misdiagnosed as corruption: {e}")
            });
            assert!(
                events.starts_with(&contents.events),
                "cut at {cut}: decoded events are not a prefix"
            );
            if cut < clean.len() {
                // Unless the cut landed exactly on a frame boundary the
                // reader reports the tear.
                if contents.torn.is_none() {
                    assert!(contents.events.len() < events.len());
                }
            }
        }

        // Flipping a byte in the *final* frame's payload is a torn tail...
        let mut flipped = clean.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        let contents = parse_journal(&flipped).unwrap();
        assert_eq!(contents.events.len(), events.len() - 1);
        let torn = contents.torn.unwrap();
        assert!(torn.reason.contains("CRC"), "{}", torn.reason);

        // ...and repair_journal truncates to the sound prefix.
        fs::write(&path, &flipped).unwrap();
        let dropped = repair_journal(&path).unwrap().unwrap();
        assert_eq!(dropped.sound_len, torn.sound_len);
        let repaired = read_journal(&path).unwrap();
        assert!(repaired.is_clean());
        assert_eq!(repaired.events.len(), events.len() - 1);
        assert!(repair_journal(&path).unwrap().is_none());
    }

    #[test]
    fn midfile_corruption_is_rejected() {
        let events = sample_events();
        let path = tmpfile("midfile.wal");
        let mut w = JournalWriter::create(&path, FsyncPolicy::Never).unwrap();
        for ev in &events {
            w.append(ev).unwrap();
        }
        w.finish().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte in the middle of the file (well past the
        // magic + first header, well before the final frame).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = parse_journal(&bytes).unwrap_err();
        assert!(err.contains("corruption"), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected_and_short_file_is_torn() {
        let err = parse_journal(b"NOTAWAL0rest").unwrap_err();
        assert!(err.contains("magic"), "{err}");
        let short = parse_journal(b"DBP").unwrap();
        assert!(short.events.is_empty());
        assert!(short.torn.is_some());
    }

    #[test]
    fn vector_journal_round_trips_with_v2_header() {
        use dbp_core::demand::VSize;
        let path = tmpfile("vector_v2.wal");
        let mut b = dbp_core::instance::GInstanceBuilder::new(VSize([10u64, 8, 6]));
        b.add(0, 40, VSize([6, 2, 3]));
        b.add(5, 25, VSize([6, 2, 3]));
        b.add(10, 35, VSize([4, 6, 3]));
        let inst = b.build().unwrap();
        let mut probe = JournalProbe::create_dims(&path, FsyncPolicy::Never, 3).unwrap();
        simulate_probed(&inst, &mut FirstFit::new(), &mut probe);
        let n = probe.finish().unwrap();
        assert!(n > 0);

        let bytes = fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], JOURNAL_MAGIC_V2);
        assert_eq!(bytes[8], 3, "dims byte");
        assert_eq!(journal_dims(&bytes).unwrap(), 3);
        assert_eq!(peek_journal_dims(&path).unwrap(), 3);

        let back = read_journal_dims::<VSize<3>>(&path).unwrap();
        assert!(back.is_clean());
        assert_eq!(back.events.len() as u64, n);
        // Replaying through a fresh in-memory log matches event for event.
        let mut log = crate::recorder::GEventLog::new();
        simulate_probed(&inst, &mut FirstFit::new(), &mut log);
        assert_eq!(back.events, log.into_events());
    }

    #[test]
    fn dims_one_journal_keeps_the_v1_bytes() {
        use dbp_core::demand::VSize;
        let scalar_path = tmpfile("d1_scalar.wal");
        let vector_path = tmpfile("d1_vector.wal");
        let mut b = InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 6);
        b.add(10, 35, 4);
        let inst = b.build().unwrap();
        let lifted = inst.map_demand(|s| VSize([s.raw()])).unwrap();

        let mut p = JournalProbe::create(&scalar_path, FsyncPolicy::Never).unwrap();
        simulate_probed(&inst, &mut FirstFit::new(), &mut p);
        p.finish().unwrap();
        let mut p = JournalProbe::create_dims(&vector_path, FsyncPolicy::Never, 1).unwrap();
        simulate_probed(&lifted, &mut FirstFit::new(), &mut p);
        p.finish().unwrap();

        let scalar_bytes = fs::read(&scalar_path).unwrap();
        let vector_bytes = fs::read(&vector_path).unwrap();
        assert_eq!(
            scalar_bytes, vector_bytes,
            "a D=1 vector journal must be byte-identical to the scalar journal"
        );
        // And the v1 file replays through the vector reader (back-compat).
        let back = read_journal_dims::<VSize<1>>(&vector_path).unwrap();
        assert_eq!(
            back.events.len(),
            read_journal(&scalar_path).unwrap().events.len()
        );
    }

    #[test]
    fn arity_mismatch_is_a_typed_error_and_repair_is_arity_blind() {
        use dbp_core::demand::VSize;
        let path = tmpfile("arity.wal");
        let mut b = dbp_core::instance::GInstanceBuilder::new(VSize([10u64, 8]));
        b.add(0, 40, VSize([6, 2]));
        b.add(5, 25, VSize([4, 6]));
        let inst = b.build().unwrap();
        let mut probe = JournalProbe::create_dims(&path, FsyncPolicy::Never, 2).unwrap();
        simulate_probed(&inst, &mut FirstFit::new(), &mut probe);
        probe.finish().unwrap();

        // Reading a 2-D journal as scalar (or as 3-D) is a typed error.
        let err = read_journal(&path).unwrap_err();
        assert!(err.contains("demand_arity"), "{err}");
        let err = read_journal_dims::<VSize<3>>(&path).unwrap_err();
        assert!(err.contains("demand_arity"), "{err}");

        // Repair never needs the arity: flip the final payload byte and
        // the v2 file truncates to its sound prefix.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let dropped = repair_journal(&path).unwrap().unwrap();
        assert!(dropped.reason.contains("CRC"), "{}", dropped.reason);
        let repaired = read_journal_dims::<VSize<2>>(&path).unwrap();
        assert!(repaired.is_clean());
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(FsyncPolicy::parse("64").unwrap(), FsyncPolicy::EveryN(64));
        assert!(FsyncPolicy::parse("0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }
}
