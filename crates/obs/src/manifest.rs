//! Run provenance: [`RunManifest`] pins down *what* was run (algorithm,
//! seed, instance digest) and *how it went* (wall time, peak RSS), so every
//! table in `results/` can be traced back to an exact, reproducible run.

use dbp_core::instance::Instance;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Provenance record for one simulation or experiment run. Attached to
/// `dbp-cloudsim::SystemReport` and written per-experiment by `run_all`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Algorithm / selector name (e.g. `"FirstFit"`).
    pub algorithm: String,
    /// RNG seed the instance was generated from, when one exists.
    pub seed: Option<u64>,
    /// FNV-1a digest of the instance (capacity + every item tuple).
    pub instance_digest: String,
    /// Number of items in the instance.
    pub n_items: u64,
    /// Bin capacity `W`.
    pub capacity: u64,
    /// Wall-clock time of the run, nanoseconds.
    pub wall_time_ns: u64,
    /// Peak resident set size in bytes, when the platform exposes it
    /// (`/proc/self/status` `VmHWM` on Linux).
    pub peak_rss_bytes: Option<u64>,
    /// Exact total cost Σᵢ span(bin i) in ticks, when the run computed a
    /// packing trace. `dbp recover` re-derives this value from the journal
    /// alone and diffs it against the recorded one.
    pub total_cost_ticks: Option<u128>,
    /// Shard restarts performed by the self-healing cluster supervisor,
    /// when the run injected shard faults.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard_restarts: Option<u64>,
    /// Whether the extended SLA ledger conserved
    /// `served + dropped + lost + rerouted == total` (self-healing runs).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ledger_conserved: Option<bool>,
}

impl RunManifest {
    /// Build a manifest for a finished run over `instance`.
    pub fn capture(
        algorithm: &str,
        seed: Option<u64>,
        instance: &Instance,
        wall_time: Duration,
    ) -> RunManifest {
        RunManifest {
            algorithm: algorithm.to_string(),
            seed,
            instance_digest: instance_digest(instance),
            n_items: instance.len() as u64,
            capacity: instance.capacity().raw(),
            wall_time_ns: wall_time.as_nanos() as u64,
            peak_rss_bytes: peak_rss_bytes(),
            total_cost_ticks: None,
            shard_restarts: None,
            ledger_conserved: None,
        }
    }

    /// Attach the exact packing cost (builder style).
    pub fn with_cost(mut self, cost_ticks: u128) -> RunManifest {
        self.total_cost_ticks = Some(cost_ticks);
        self
    }

    /// Attach the self-healing restart count (builder style).
    pub fn with_shard_restarts(mut self, restarts: u64) -> RunManifest {
        self.shard_restarts = Some(restarts);
        self
    }

    /// Attach the extended-ledger conservation verdict (builder style).
    pub fn with_ledger_conserved(mut self, conserved: bool) -> RunManifest {
        self.ledger_conserved = Some(conserved);
        self
    }
}

/// Stable FNV-1a (64-bit) digest of an instance: capacity followed by every
/// item's `(arrival, departure, size)` in id order, rendered as 16 hex
/// digits. Two runs with equal digests packed the same input.
pub fn instance_digest(instance: &Instance) -> String {
    instance_digest_dims(instance)
}

/// [`instance_digest`] at any demand dimensionality: every component of
/// the capacity and each item's size is hashed in dimension order. A
/// one-dimensional vector instance digests to the scalar digest exactly
/// (one component each — the same byte stream).
pub fn instance_digest_dims<Sz: dbp_core::demand::Demand>(
    instance: &dbp_core::instance::GInstance<Sz>,
) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for d in 0..Sz::DIMS {
        eat(instance.capacity().component(d));
    }
    for item in instance.items() {
        eat(item.arrival.0);
        eat(item.departure.0);
        for d in 0..Sz::DIMS {
            eat(item.size.component(d));
        }
    }
    format!("{h:016x}")
}

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or if the file is
/// unreadable.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kb * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Outcome of one experiment inside a `run_all` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentStatus {
    /// Ran to completion and its table was written.
    Ok,
    /// The experiment panicked; its table is missing or stale.
    Panicked,
    /// The experiment ran but its table could not be written.
    WriteFailed,
    /// The experiment never ran: a graceful shutdown (SIGINT/SIGTERM)
    /// landed before a worker claimed it. A `--resume` run picks it up.
    Skipped,
}

/// Timing/outcome record for one experiment in a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment stem (the CSV file name without extension).
    pub name: String,
    /// Outcome.
    pub status: ExperimentStatus,
    /// Wall-clock time spent, milliseconds.
    pub wall_time_ms: u64,
    /// Failure detail when there is one: the panic message for
    /// [`ExperimentStatus::Panicked`], the I/O error for
    /// [`ExperimentStatus::WriteFailed`]. `None` on success.
    pub detail: Option<String>,
}

/// Manifest for a whole `run_all` sweep, written to `results/manifest.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentManifest {
    /// Per-experiment records, in execution order.
    pub experiments: Vec<ExperimentRecord>,
    /// Total wall-clock time, milliseconds.
    pub total_wall_time_ms: u64,
    /// Peak resident set size in bytes, when available.
    pub peak_rss_bytes: Option<u64>,
}

impl ExperimentManifest {
    /// Number of experiments that did not end [`ExperimentStatus::Ok`].
    pub fn failures(&self) -> usize {
        self.experiments
            .iter()
            .filter(|r| r.status != ExperimentStatus::Ok)
            .count()
    }
}

/// Crash-recovery checkpoint for a `run_all` sweep, written atomically to
/// `results/run_all.checkpoint.json` after every experiment completes and
/// deleted when the whole sweep succeeds. `run_all --resume` reloads it,
/// verifies the sweep configuration matches, reuses the recorded results
/// of every [`ExperimentStatus::Ok`] experiment, and re-runs the rest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// Whether the sweep ran with `--quick` (results are not interchangeable
    /// across modes, so a resume must match).
    pub quick: bool,
    /// The `--only` subset the sweep was restricted to, when it was.
    pub only: Option<Vec<String>>,
    /// Records of experiments that finished (any status) before the
    /// checkpoint was written.
    pub completed: Vec<ExperimentRecord>,
}

impl SweepCheckpoint {
    /// The record for `name`, if that experiment already completed.
    pub fn record(&self, name: &str) -> Option<&ExperimentRecord> {
        self.completed.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;

    fn inst(extra: u64) -> Instance {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 2 + extra);
        b.build().unwrap()
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        assert_eq!(instance_digest(&inst(0)), instance_digest(&inst(0)));
        assert_ne!(instance_digest(&inst(0)), instance_digest(&inst(1)));
        assert_eq!(instance_digest(&inst(0)).len(), 16);
    }

    #[test]
    fn capture_fills_fields() {
        let i = inst(0);
        let m = RunManifest::capture("FirstFit", Some(42), &i, Duration::from_micros(1500));
        assert_eq!(m.algorithm, "FirstFit");
        assert_eq!(m.seed, Some(42));
        assert_eq!(m.n_items, 2);
        assert_eq!(m.capacity, 10);
        assert_eq!(m.wall_time_ns, 1_500_000);
        #[cfg(target_os = "linux")]
        assert!(m.peak_rss_bytes.unwrap() > 0);
    }

    #[test]
    fn manifest_serde_round_trip() {
        let m = ExperimentManifest {
            experiments: vec![
                ExperimentRecord {
                    name: "table2".into(),
                    status: ExperimentStatus::Ok,
                    wall_time_ms: 12,
                    detail: None,
                },
                ExperimentRecord {
                    name: "fig3".into(),
                    status: ExperimentStatus::Panicked,
                    wall_time_ms: 0,
                    detail: Some("assertion failed: ratio <= bound".into()),
                },
            ],
            total_wall_time_ms: 12,
            peak_rss_bytes: Some(1 << 20),
        };
        let text = serde_json::to_string_pretty(&m).unwrap();
        let back: ExperimentManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.failures(), 1);
    }

    #[test]
    fn run_manifest_cost_round_trips() {
        let m = RunManifest::capture("FF", None, &inst(0), Duration::from_millis(1))
            .with_cost(123456789012345678901234567890u128);
        let text = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_cost_ticks, Some(123456789012345678901234567890));
    }

    #[test]
    fn sweep_checkpoint_round_trips() {
        let cp = SweepCheckpoint {
            quick: true,
            only: Some(vec!["table2".into()]),
            completed: vec![ExperimentRecord {
                name: "table2".into(),
                status: ExperimentStatus::Skipped,
                wall_time_ms: 0,
                detail: None,
            }],
        };
        let text = serde_json::to_string_pretty(&cp).unwrap();
        let back: SweepCheckpoint = serde_json::from_str(&text).unwrap();
        assert_eq!(back, cp);
        assert!(back.record("table2").is_some());
        assert!(back.record("fig3").is_none());
    }
}
