//! Event-recording probes: the in-memory [`EventLog`], the cheap
//! [`CountingProbe`] used by invariant tests, and [`MetricsProbe`] which
//! aggregates events into a [`MetricsRegistry`](crate::metrics::MetricsRegistry).

use crate::metrics::MetricsRegistry;
use dbp_core::demand::Demand;
use dbp_core::item::Size;
use dbp_core::probe::{GProbeEvent, Probe, ProbeEvent};

/// A probe that stores every event in order, generic over the demand type
/// (scalar via the [`EventLog`] alias). The basis for JSONL export
/// ([`crate::export`]) and the `dbp trace` timeline.
#[derive(Debug, Clone, Default)]
pub struct GEventLog<Sz = Size> {
    events: Vec<GProbeEvent<Sz>>,
    decision_ns: Vec<u64>,
}

/// The scalar event log of the source paper's model.
pub type EventLog = GEventLog<Size>;

impl<Sz> GEventLog<Sz> {
    /// New empty log.
    pub fn new() -> GEventLog<Sz> {
        GEventLog {
            events: Vec::new(),
            decision_ns: Vec::new(),
        }
    }

    /// The recorded events, in simulation order.
    pub fn events(&self) -> &[GProbeEvent<Sz>] {
        &self.events
    }

    /// Per-arrival wall times in nanoseconds, in arrival order. Each entry
    /// covers the full arrival handling (selection plus the engine's
    /// placement bookkeeping), matching the cost callers observe.
    pub fn decision_ns(&self) -> &[u64] {
        &self.decision_ns
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the log, returning the events.
    pub fn into_events(self) -> Vec<GProbeEvent<Sz>> {
        self.events
    }
}

impl<Sz: Demand> Probe<Sz> for GEventLog<Sz> {
    fn record(&mut self, event: GProbeEvent<Sz>) {
        self.events.push(event);
    }

    fn on_decision_ns(&mut self, ns: u64) {
        self.decision_ns.push(ns);
    }
}

/// A probe that only counts, per event kind. Used by the engine invariant
/// tests to cross-check event streams against [`PackingTrace`] totals
/// without buffering the stream.
///
/// [`PackingTrace`]: dbp_core::trace::PackingTrace
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    /// `ItemArrived` events seen.
    pub items_arrived: u64,
    /// `FitAttempt` events seen.
    pub fit_attempts: u64,
    /// `BinOpened` events seen.
    pub bins_opened: u64,
    /// `ItemPlaced` events seen.
    pub items_placed: u64,
    /// `ItemDeparted` events seen.
    pub items_departed: u64,
    /// `BinClosed` events seen.
    pub bins_closed: u64,
    /// `Violation` events seen.
    pub violations: u64,
    /// Sum of `bins_scanned` over all fit attempts.
    pub bins_scanned_total: u64,
    /// Sum of `open_ticks` over all bin closes.
    pub bin_open_ticks_total: u64,
    /// Number of timed selector decisions.
    pub decisions_timed: u64,
    /// `BinCrashed` events seen.
    pub bins_crashed: u64,
    /// Sum of `orphans` over all crashes.
    pub orphans_total: u64,
    /// `ProvisionFailed` events seen.
    pub provision_failures: u64,
    /// `RetryScheduled` events seen.
    pub retries_scheduled: u64,
    /// `DispatchRejected` events seen.
    pub dispatch_rejections: u64,
    /// `ItemDropped` events seen.
    pub items_dropped: u64,
    /// `ItemRedispatched` events seen.
    pub items_redispatched: u64,
    /// `RecoveryEnded` events seen.
    pub recoveries: u64,
    /// `ShardKilled` events seen.
    pub shard_kills: u64,
    /// `ShardRestarted` events seen.
    pub shard_restarts: u64,
    /// `ShardAbandoned` events seen.
    pub shards_abandoned: u64,
    /// Sum of `replayed` over all shard restarts.
    pub shard_replayed_total: u64,
}

impl CountingProbe {
    /// New zeroed counter set.
    pub fn new() -> CountingProbe {
        CountingProbe::default()
    }

    /// Total events of any kind.
    pub fn total(&self) -> u64 {
        self.items_arrived
            + self.fit_attempts
            + self.bins_opened
            + self.items_placed
            + self.items_departed
            + self.bins_closed
            + self.violations
            + self.bins_crashed
            + self.provision_failures
            + self.retries_scheduled
            + self.dispatch_rejections
            + self.items_dropped
            + self.items_redispatched
            + self.recoveries
            + self.shard_kills
            + self.shard_restarts
            + self.shards_abandoned
    }
}

impl Probe for CountingProbe {
    fn record(&mut self, event: ProbeEvent) {
        match event {
            ProbeEvent::ItemArrived { .. } => self.items_arrived += 1,
            ProbeEvent::FitAttempt { bins_scanned, .. } => {
                self.fit_attempts += 1;
                self.bins_scanned_total += bins_scanned as u64;
            }
            ProbeEvent::BinOpened { .. } => self.bins_opened += 1,
            ProbeEvent::ItemPlaced { .. } => self.items_placed += 1,
            ProbeEvent::ItemDeparted { .. } => self.items_departed += 1,
            ProbeEvent::BinClosed { open_ticks, .. } => {
                self.bins_closed += 1;
                self.bin_open_ticks_total += open_ticks;
            }
            ProbeEvent::Violation { .. } => self.violations += 1,
            ProbeEvent::BinCrashed { orphans, .. } => {
                self.bins_crashed += 1;
                self.orphans_total += orphans as u64;
            }
            ProbeEvent::ProvisionFailed { .. } => self.provision_failures += 1,
            ProbeEvent::RetryScheduled { .. } => self.retries_scheduled += 1,
            ProbeEvent::DispatchRejected { .. } => self.dispatch_rejections += 1,
            ProbeEvent::ItemDropped { .. } => self.items_dropped += 1,
            ProbeEvent::ItemRedispatched { .. } => self.items_redispatched += 1,
            ProbeEvent::RecoveryEnded { .. } => self.recoveries += 1,
            ProbeEvent::ShardKilled { .. } => self.shard_kills += 1,
            ProbeEvent::ShardRestarted { replayed, .. } => {
                self.shard_restarts += 1;
                self.shard_replayed_total += replayed;
            }
            ProbeEvent::ShardAbandoned { .. } => self.shards_abandoned += 1,
        }
    }

    fn on_decision_ns(&mut self, _ns: u64) {
        self.decisions_timed += 1;
    }
}

/// A probe that folds the event stream into a [`MetricsRegistry`] as it
/// arrives: counters for every event kind, an open-bin gauge with peak
/// tracking, and exact histograms for scan depth, occupancy after
/// placement, bin lifetime, and decision wall time.
#[derive(Debug, Clone, Default)]
pub struct MetricsProbe {
    registry: MetricsRegistry,
    open_bins: i64,
}

impl MetricsProbe {
    /// New probe with an empty registry.
    pub fn new() -> MetricsProbe {
        MetricsProbe::default()
    }

    /// The registry accumulated so far.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consume the probe, returning the registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }
}

impl Probe for MetricsProbe {
    fn record(&mut self, event: ProbeEvent) {
        let reg = &mut self.registry;
        match event {
            ProbeEvent::ItemArrived { .. } => reg.counter_add("dbp_items_arrived_total", 1),
            ProbeEvent::FitAttempt { bins_scanned, .. } => {
                reg.counter_add("dbp_fit_attempts_total", 1);
                reg.observe("dbp_fit_scan_depth", bins_scanned as u64);
            }
            ProbeEvent::BinOpened { .. } => {
                reg.counter_add("dbp_bins_opened_total", 1);
                self.open_bins += 1;
                reg.gauge_set("dbp_open_bins", self.open_bins);
                reg.gauge_max("dbp_open_bins_peak", self.open_bins);
            }
            ProbeEvent::ItemPlaced { level, .. } => {
                reg.counter_add("dbp_items_placed_total", 1);
                reg.observe("dbp_open_bin_occupancy", level.raw());
            }
            ProbeEvent::ItemDeparted { .. } => reg.counter_add("dbp_items_departed_total", 1),
            ProbeEvent::BinClosed { open_ticks, .. } => {
                reg.counter_add("dbp_bins_closed_total", 1);
                self.open_bins -= 1;
                reg.gauge_set("dbp_open_bins", self.open_bins);
                reg.observe("dbp_bin_lifetime_ticks", open_ticks);
            }
            ProbeEvent::Violation { .. } => reg.counter_add("dbp_violations_total", 1),
            ProbeEvent::BinCrashed { orphans, .. } => {
                reg.counter_add("dbp_bins_crashed_total", 1);
                reg.counter_add("dbp_orphaned_sessions_total", orphans as u64);
                self.open_bins -= 1;
                reg.gauge_set("dbp_open_bins", self.open_bins);
            }
            ProbeEvent::ProvisionFailed { .. } => {
                reg.counter_add("dbp_provision_failures_total", 1)
            }
            ProbeEvent::RetryScheduled { .. } => reg.counter_add("dbp_retries_scheduled_total", 1),
            ProbeEvent::DispatchRejected { .. } => {
                reg.counter_add("dbp_dispatch_rejections_total", 1)
            }
            ProbeEvent::ItemDropped { .. } => reg.counter_add("dbp_items_dropped_total", 1),
            ProbeEvent::ItemRedispatched { .. } => {
                reg.counter_add("dbp_items_redispatched_total", 1)
            }
            ProbeEvent::RecoveryEnded {
                redispatched, lost, ..
            } => {
                reg.counter_add("dbp_recoveries_total", 1);
                reg.counter_add("dbp_recovery_redispatched_total", redispatched as u64);
                reg.counter_add("dbp_recovery_lost_total", lost as u64);
            }
            ProbeEvent::ShardKilled { .. } => reg.counter_add("dbp_shard_kills_total", 1),
            ProbeEvent::ShardRestarted { replayed, .. } => {
                reg.counter_add("dbp_shard_restarts_total", 1);
                reg.counter_add("dbp_shard_replayed_events_total", replayed);
            }
            ProbeEvent::ShardAbandoned { lost, rerouted, .. } => {
                reg.counter_add("dbp_shards_abandoned_total", 1);
                reg.counter_add("dbp_shard_sessions_lost_total", lost as u64);
                reg.counter_add("dbp_shard_sessions_rerouted_total", rerouted as u64);
            }
        }
    }

    fn on_decision_ns(&mut self, ns: u64) {
        self.registry.observe("dbp_decision_ns", ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;

    fn small_instance() -> Instance {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 6);
        b.add(10, 35, 4);
        b.build().unwrap()
    }

    #[test]
    fn counting_probe_matches_trace() {
        let inst = small_instance();
        let mut probe = CountingProbe::new();
        let trace = simulate_probed(&inst, &mut FirstFit::new(), &mut probe);
        assert_eq!(probe.bins_opened, trace.bins_used() as u64);
        assert_eq!(probe.items_placed, inst.len() as u64);
        assert_eq!(probe.items_departed, inst.len() as u64);
        assert_eq!(probe.bins_closed, probe.bins_opened);
        assert_eq!(probe.fit_attempts, probe.items_placed);
        assert_eq!(probe.decisions_timed, inst.len() as u64);
        assert_eq!(probe.violations, 0);
    }

    #[test]
    fn metrics_probe_aggregates() {
        let inst = small_instance();
        let mut probe = MetricsProbe::new();
        let trace = simulate_probed(&inst, &mut FirstFit::new(), &mut probe);
        let reg = probe.registry();
        assert_eq!(
            reg.counter("dbp_bins_opened_total"),
            trace.bins_used() as u64
        );
        assert_eq!(reg.counter("dbp_items_placed_total"), inst.len() as u64);
        assert_eq!(reg.gauge("dbp_open_bins"), Some(0));
        assert!(reg.gauge("dbp_open_bins_peak").unwrap() >= 1);
        assert_eq!(
            reg.histogram("dbp_fit_scan_depth").unwrap().count(),
            inst.len() as u64
        );
        assert_eq!(
            reg.histogram("dbp_decision_ns").unwrap().count(),
            inst.len() as u64
        );
    }

    #[test]
    fn event_log_records_in_order() {
        let inst = small_instance();
        let mut log = EventLog::new();
        simulate_probed(&inst, &mut BestFit::new(), &mut log);
        assert!(!log.is_empty());
        // Ticks are non-decreasing along the stream.
        let ticks: Vec<u64> = log.events().iter().map(|e| e.at().0).collect();
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(log.decision_ns().len(), inst.len());
        assert_eq!(log.events().first().unwrap().kind(), "ItemArrived");
    }
}
