//! Exact time-series sampling of the packing state.
//!
//! [`TimeSeriesSampler`] is a probe that reconstructs, from the event
//! stream alone, the step functions the paper's objective is built from:
//! `n(t)` (the number of open bins, `A(R,t)` in the paper's notation),
//! the total used capacity, and the waste `n(t)·W − used(t)`. One sample
//! is kept per tick at which the state changed — an exact step-function
//! encoding, not a fixed-interval approximation.

use dbp_core::probe::{Probe, ProbeEvent};
use dbp_core::time::Tick;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One point of the step function: the state *after* all events at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Tick the state took effect.
    pub at: Tick,
    /// Open bins `n(t)` — the paper's `A(R,t)`.
    pub open_bins: u32,
    /// Total size packed across open bins.
    pub used: u64,
    /// Idle capacity: `open_bins · W − used`.
    pub waste: u64,
}

impl Sample {
    /// Used fraction of rented capacity, in `[0, 1]` (0 when no bin open).
    pub fn utilization(&self) -> f64 {
        let rented = self.used + self.waste;
        if rented == 0 {
            0.0
        } else {
            self.used as f64 / rented as f64
        }
    }
}

/// Probe that accumulates [`Sample`]s. Needs the bin capacity `W` up front
/// (events carry levels, not capacities).
#[derive(Debug, Clone)]
pub struct TimeSeriesSampler {
    capacity: u64,
    levels: BTreeMap<u32, u64>,
    used: u64,
    samples: Vec<Sample>,
}

impl TimeSeriesSampler {
    /// New sampler for bins of capacity `capacity`.
    pub fn new(capacity: u64) -> TimeSeriesSampler {
        TimeSeriesSampler {
            capacity,
            levels: BTreeMap::new(),
            used: 0,
            samples: Vec::new(),
        }
    }

    /// The samples recorded so far, strictly increasing in tick.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The step-function value of `n(t)` at tick `t` (0 before the first
    /// sample).
    pub fn open_bins_at(&self, t: Tick) -> u32 {
        match self.samples.binary_search_by_key(&t.0, |s| s.at.0) {
            Ok(i) => self.samples[i].open_bins,
            Err(0) => 0,
            Err(i) => self.samples[i - 1].open_bins,
        }
    }

    /// CSV rows in the `experiments::harness` table shape:
    /// `(headers, rows)` of plain strings.
    pub fn to_table(&self) -> (Vec<String>, Vec<Vec<String>>) {
        let headers = ["tick", "open_bins", "used", "waste", "utilization"]
            .map(String::from)
            .to_vec();
        let rows = self
            .samples
            .iter()
            .map(|s| {
                vec![
                    s.at.0.to_string(),
                    s.open_bins.to_string(),
                    s.used.to_string(),
                    s.waste.to_string(),
                    format!("{:.6}", s.utilization()),
                ]
            })
            .collect();
        (headers, rows)
    }

    /// Render the series as a CSV string (same cell contents as
    /// [`to_table`](Self::to_table)).
    pub fn to_csv(&self) -> String {
        let (headers, rows) = self.to_table();
        let mut out = headers.join(",");
        out.push('\n');
        for row in rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    fn touch(&mut self, at: Tick) {
        let open_bins = self.levels.len() as u32;
        let used = self.used;
        let waste = (open_bins as u64) * self.capacity - used;
        let sample = Sample {
            at,
            open_bins,
            used,
            waste,
        };
        match self.samples.last_mut() {
            Some(last) if last.at == at => *last = sample,
            Some(last) if (last.open_bins, last.used) == (sample.open_bins, sample.used) => {}
            _ => self.samples.push(sample),
        }
    }
}

impl Probe for TimeSeriesSampler {
    fn record(&mut self, event: ProbeEvent) {
        match event {
            ProbeEvent::BinOpened { at, bin, .. } => {
                self.levels.insert(bin.0, 0);
                self.touch(at);
            }
            ProbeEvent::ItemPlaced { at, bin, level, .. } => {
                let slot = self.levels.entry(bin.0).or_insert(0);
                self.used = self.used + level.raw() - *slot;
                *slot = level.raw();
                self.touch(at);
            }
            ProbeEvent::ItemDeparted { at, bin, level, .. } => {
                let slot = self.levels.entry(bin.0).or_insert(0);
                self.used = self.used + level.raw() - *slot;
                *slot = level.raw();
                self.touch(at);
            }
            ProbeEvent::BinClosed { at, bin, .. } => {
                if let Some(level) = self.levels.remove(&bin.0) {
                    self.used -= level;
                }
                self.touch(at);
            }
            ProbeEvent::BinCrashed { at, bin, .. } => {
                if let Some(level) = self.levels.remove(&bin.0) {
                    self.used -= level;
                }
                self.touch(at);
            }
            ProbeEvent::ItemRedispatched { at, to, level, .. } => {
                let slot = self.levels.entry(to.0).or_insert(0);
                self.used = self.used + level.raw() - *slot;
                *slot = level.raw();
                self.touch(at);
            }
            ProbeEvent::ItemArrived { .. }
            | ProbeEvent::FitAttempt { .. }
            | ProbeEvent::Violation { .. }
            | ProbeEvent::ProvisionFailed { .. }
            | ProbeEvent::RetryScheduled { .. }
            | ProbeEvent::DispatchRejected { .. }
            | ProbeEvent::ItemDropped { .. }
            | ProbeEvent::RecoveryEnded { .. }
            | ProbeEvent::ShardKilled { .. }
            | ProbeEvent::ShardRestarted { .. }
            | ProbeEvent::ShardAbandoned { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;

    #[test]
    fn sampler_matches_trace_step_function() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 6);
        b.add(10, 35, 4);
        let inst = b.build().unwrap();
        let mut sampler = TimeSeriesSampler::new(inst.capacity().raw());
        let trace = simulate_probed(&inst, &mut FirstFit::new(), &mut sampler);
        // n(t) reconstructed from events must equal the trace's A(R,t)
        // at every event tick and in between.
        for t in 0..45 {
            assert_eq!(
                sampler.open_bins_at(Tick(t)),
                trace.open_bins_at(Tick(t)),
                "n({t})"
            );
        }
        let csv = sampler.to_csv();
        assert!(csv.starts_with("tick,open_bins,used,waste,utilization\n"));
        assert!(csv.lines().count() > 2);
    }

    #[test]
    fn waste_and_utilization_are_consistent() {
        let mut b = InstanceBuilder::new(8);
        b.add(0, 10, 5);
        b.add(0, 10, 5);
        let inst = b.build().unwrap();
        let mut sampler = TimeSeriesSampler::new(8);
        simulate_probed(&inst, &mut FirstFit::new(), &mut sampler);
        let first = sampler.samples()[0];
        assert_eq!(first.open_bins as u64 * 8, first.used + first.waste);
        assert!(first.utilization() > 0.0 && first.utilization() <= 1.0);
        let last = sampler.samples().last().unwrap();
        assert_eq!(last.open_bins, 0);
        assert_eq!(last.used, 0);
    }
}
