//! Recorders for the [`SpanRecorder`] seam: full span capture
//! ([`SpanCollector`]), streaming per-stage aggregation
//! ([`StageAggregator`]), the merged [`StageBreakdown`] table, and
//! Chrome-trace JSON export ([`chrome_trace_json`]).
//!
//! The merge model mirrors the cluster's metrics fan-in: every shard owns
//! its recorder for the whole run (no shared registry, no locks on the hot
//! path), and the driver collects the finished recorders in shard order at
//! report time. Timestamps are nanoseconds since a caller-supplied epoch
//! `Instant`, shared across lanes so all streams line up on one timeline.
//!
//! All measured quantities stay exact integers (`u64` nanoseconds,
//! [`Histogram`] value maps); floats appear only in rendered tables.

use crate::metrics::{Histogram, MetricsRegistry};
use dbp_core::span::{SpanEvent, SpanRecorder};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Shard id recorded for driver-lane spans (no shard owns them).
pub const DRIVER_LANE: u32 = u32::MAX;

/// A [`SpanRecorder`] that keeps every span: the input for Chrome-trace
/// export and span-correctness tests. Spans are stored in `enter` order
/// (pre-order), each carrying the index of its enclosing span.
#[derive(Debug, Clone)]
pub struct SpanCollector {
    shard: u32,
    epoch: Instant,
    spans: Vec<SpanEvent>,
    stack: Vec<u32>,
}

impl SpanCollector {
    /// A collector for `shard` with a fresh epoch (`Instant::now()`).
    pub fn new(shard: u32) -> SpanCollector {
        SpanCollector::with_epoch(Instant::now(), shard)
    }

    /// A collector whose timestamps are relative to `epoch` — pass the
    /// same epoch to every lane of a run so the streams merge onto one
    /// timeline.
    pub fn with_epoch(epoch: Instant, shard: u32) -> SpanCollector {
        SpanCollector {
            shard,
            epoch,
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// The collector's epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The shard lane this collector records.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The recorded spans, in `enter` order. Spans still open have
    /// `dur_ns == 0`; call [`close_open`](SpanCollector::close_open) first
    /// if the stream may be unbalanced.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// Consume the collector, returning its spans.
    pub fn into_spans(self) -> Vec<SpanEvent> {
        self.spans
    }

    /// Close any spans still open (stamping them with the current time).
    /// Normal instrumentation balances every `enter` with an `exit`; this
    /// is the safety net for aborted runs.
    pub fn close_open(&mut self) {
        while !self.stack.is_empty() {
            self.exit();
        }
    }

    /// The structural shape of the stream — `(name, parent)` per span, no
    /// timings — which is deterministic for a fixed workload even though
    /// durations are not.
    pub fn shape(&self) -> Vec<(&'static str, u32)> {
        self.spans.iter().map(|s| (s.name, s.parent)).collect()
    }

    /// Aggregate the collected spans into a per-stage table.
    pub fn stage_breakdown(&self) -> StageBreakdown {
        StageBreakdown::from_spans(&self.spans)
    }
}

impl SpanRecorder for SpanCollector {
    fn enter(&mut self, name: &'static str) {
        let parent = self.stack.last().copied().unwrap_or(SpanEvent::ROOT);
        let idx = self.spans.len() as u32;
        self.spans.push(SpanEvent {
            name,
            shard: self.shard,
            start_ns: self.now_ns(),
            dur_ns: 0,
            parent,
        });
        self.stack.push(idx);
    }

    fn exit(&mut self) {
        debug_assert!(!self.stack.is_empty(), "span exit without matching enter");
        if let Some(idx) = self.stack.pop() {
            let now = self.now_ns();
            let span = &mut self.spans[idx as usize];
            span.dur_ns = now.saturating_sub(span.start_ns);
        }
    }
}

/// Exact per-stage statistics: how often the stage ran, its total and
/// *self* time (total minus time spent in child spans), and the full
/// latency histogram of its durations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Completed spans of this stage.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Total minus the time spent in enclosed child spans.
    pub self_ns: u64,
    /// Exact histogram of span durations (nanoseconds).
    pub hist: Histogram,
}

/// One row of the serialized stage table (bench JSON, `dbp profile`).
/// Percentiles are nearest-rank over the exact duration histogram and are
/// only reported for stages with at least two observations: a
/// single-observation stage has no distribution, and serializing
/// `p50 == p95 == p99 == total` there reads as one (the table renders
/// such rows with `-` in the percentile columns).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageRow {
    /// Stage name (see `dbp_core::span::stage`).
    pub stage: String,
    /// Completed spans.
    pub count: u64,
    /// Sum of durations, nanoseconds.
    pub total_ns: u64,
    /// Self time (total minus child spans), nanoseconds.
    pub self_ns: u64,
    /// Median duration, nanoseconds (`None` when `count < 2`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p50_ns: Option<u64>,
    /// 95th-percentile duration, nanoseconds (`None` when `count < 2`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p95_ns: Option<u64>,
    /// 99th-percentile duration, nanoseconds (`None` when `count < 2`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p99_ns: Option<u64>,
    /// Largest duration, nanoseconds.
    pub max_ns: u64,
}

/// Per-stage aggregation over one or more span streams, merged exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    stages: BTreeMap<&'static str, StageStats>,
}

impl StageBreakdown {
    /// Empty breakdown.
    pub fn new() -> StageBreakdown {
        StageBreakdown::default()
    }

    /// Aggregate a finished span stream. Self time uses the stream's
    /// parent links: each span's duration is charged against its parent's
    /// self time.
    pub fn from_spans(spans: &[SpanEvent]) -> StageBreakdown {
        let mut b = StageBreakdown::new();
        b.absorb_spans(spans);
        b
    }

    /// Merge a finished span stream into this breakdown.
    pub fn absorb_spans(&mut self, spans: &[SpanEvent]) {
        for span in spans {
            let s = self.stages.entry(span.name).or_default();
            s.count += 1;
            s.total_ns += span.dur_ns;
            s.self_ns += span.dur_ns;
            s.hist.observe(span.dur_ns);
        }
        for span in spans {
            if span.parent != SpanEvent::ROOT {
                let parent = spans[span.parent as usize].name;
                let s = self.stages.entry(parent).or_default();
                // Children of one span never overlap and lie within it, so
                // the subtraction cannot underflow on balanced streams;
                // saturate anyway for spans closed early by `close_open`.
                s.self_ns = s.self_ns.saturating_sub(span.dur_ns);
            }
        }
    }

    /// Merge another breakdown into this one (exact: counts/totals add,
    /// histograms merge value-for-value).
    pub fn merge(&mut self, other: &StageBreakdown) {
        for (&name, stats) in &other.stages {
            let s = self.stages.entry(name).or_default();
            s.count += stats.count;
            s.total_ns += stats.total_ns;
            s.self_ns += stats.self_ns;
            s.hist.merge(&stats.hist);
        }
    }

    /// Whether no stage was recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The statistics of one stage, if recorded.
    pub fn get(&self, stage: &str) -> Option<&StageStats> {
        self.stages.get(stage)
    }

    /// Every stage, in name order.
    pub fn stages(&self) -> impl Iterator<Item = (&'static str, &StageStats)> + '_ {
        self.stages.iter().map(|(&n, s)| (n, s))
    }

    /// Serializable rows, ranked by self time (descending) — the order a
    /// profiler wants: the stage where the wall-clock actually went first.
    pub fn rows(&self) -> Vec<StageRow> {
        let mut rows: Vec<StageRow> = self
            .stages
            .iter()
            .map(|(&name, s)| {
                // A one-observation stage has no distribution to report.
                let dist = s.count >= 2;
                StageRow {
                    stage: name.to_string(),
                    count: s.count,
                    total_ns: s.total_ns,
                    self_ns: s.self_ns,
                    p50_ns: if dist { s.hist.p50() } else { None },
                    p95_ns: if dist { s.hist.p95() } else { None },
                    p99_ns: if dist { s.hist.p99() } else { None },
                    max_ns: s.hist.max().unwrap_or(0),
                }
            })
            .collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.stage.cmp(&b.stage)));
        rows
    }

    /// Fan the breakdown into a metrics registry as
    /// `dbp_stage_ns{stage="..."}` histograms (rendered with `_p50`/`_p95`/
    /// `_p99`/`_max` gauges by the Prometheus exporter) plus
    /// `dbp_stage_self_ns_total` counters.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        for (name, s) in &self.stages {
            reg.observe_histogram(&format!("dbp_stage_ns{{stage=\"{name}\"}}"), &s.hist);
            reg.counter_add(
                &format!("dbp_stage_self_ns_total{{stage=\"{name}\"}}"),
                s.self_ns,
            );
        }
    }

    /// Render the ranked self-time table as aligned text. `wall_ns` scales
    /// the `self%` column; floats appear here only, at render time.
    pub fn render(&self, wall_ns: u64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>10} {:>12} {:>12} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
            "stage",
            "count",
            "total_ms",
            "self_ms",
            "self%",
            "p50_ns",
            "p95_ns",
            "p99_ns",
            "max_ns"
        ));
        let fmt_p = |p: Option<u64>| match p {
            Some(v) => v.to_string(),
            None => "-".to_string(),
        };
        for r in self.rows() {
            let pct = if wall_ns == 0 {
                0.0
            } else {
                100.0 * r.self_ns as f64 / wall_ns as f64
            };
            out.push_str(&format!(
                "{:<16} {:>10} {:>12.3} {:>12.3} {:>6.1} {:>10} {:>10} {:>10} {:>10}\n",
                r.stage,
                r.count,
                r.total_ns as f64 / 1e6,
                r.self_ns as f64 / 1e6,
                pct,
                fmt_p(r.p50_ns),
                fmt_p(r.p95_ns),
                fmt_p(r.p99_ns),
                r.max_ns
            ));
        }
        out
    }
}

/// A [`SpanRecorder`] that aggregates into a [`StageBreakdown`] as spans
/// close, without buffering them — constant memory however many spans the
/// run produces, which is what the scaling bench needs at 10⁶ items.
///
/// Self time is computed on the fly: every frame accumulates the duration
/// of its direct children and subtracts it when the frame closes.
#[derive(Debug, Clone)]
pub struct StageAggregator {
    shard: u32,
    epoch: Instant,
    stack: Vec<Frame>,
    breakdown: StageBreakdown,
}

#[derive(Debug, Clone)]
struct Frame {
    name: &'static str,
    start_ns: u64,
    child_ns: u64,
}

impl StageAggregator {
    /// An aggregator for `shard` with a fresh epoch.
    pub fn new(shard: u32) -> StageAggregator {
        StageAggregator::with_epoch(Instant::now(), shard)
    }

    /// An aggregator whose timestamps are relative to `epoch`.
    pub fn with_epoch(epoch: Instant, shard: u32) -> StageAggregator {
        StageAggregator {
            shard,
            epoch,
            stack: Vec::new(),
            breakdown: StageBreakdown::new(),
        }
    }

    /// The shard lane this aggregator records.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Close any spans still open, then return the breakdown.
    pub fn finish(mut self) -> StageBreakdown {
        while !self.stack.is_empty() {
            self.exit();
        }
        self.breakdown
    }

    /// The breakdown accumulated so far (open spans not included).
    pub fn breakdown(&self) -> &StageBreakdown {
        &self.breakdown
    }
}

impl SpanRecorder for StageAggregator {
    fn enter(&mut self, name: &'static str) {
        self.stack.push(Frame {
            name,
            start_ns: self.epoch.elapsed().as_nanos() as u64,
            child_ns: 0,
        });
    }

    fn exit(&mut self) {
        debug_assert!(!self.stack.is_empty(), "span exit without matching enter");
        if let Some(frame) = self.stack.pop() {
            let now = self.epoch.elapsed().as_nanos() as u64;
            let dur = now.saturating_sub(frame.start_ns);
            if let Some(parent) = self.stack.last_mut() {
                parent.child_ns += dur;
            }
            let s = self.breakdown.stages.entry(frame.name).or_default();
            s.count += 1;
            s.total_ns += dur;
            s.self_ns += dur.saturating_sub(frame.child_ns);
            s.hist.observe(dur);
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn format_us(ns: u64) -> String {
    // Chrome trace timestamps are microseconds; keep the nanosecond
    // remainder as exact decimals instead of rounding through a float.
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render span lanes as Chrome-trace-format JSON (the "trace event
/// format" understood by `chrome://tracing` and Perfetto): one complete
/// (`"ph":"X"`) event per span with microsecond timestamps, plus a
/// `thread_name` metadata record per lane so the flamechart rows carry the
/// lane labels. Lanes must share one epoch to line up.
pub fn chrome_trace_json<'a, I>(lanes: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a [SpanEvent])>,
{
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (tid, (label, spans)) in lanes.into_iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(label)
        ));
        for span in spans {
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\
                 \"ts\":{},\"dur\":{}}}",
                json_escape(span.name),
                format_us(span.start_ns),
                format_us(span.dur_ns)
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::span::stage;

    fn walk(rec: &mut impl SpanRecorder) {
        rec.enter(stage::ARRIVAL);
        rec.enter(stage::DECIDE);
        rec.exit();
        rec.enter(stage::PLACE);
        rec.exit();
        rec.exit();
        rec.enter(stage::DEPARTURE);
        rec.exit();
    }

    #[test]
    fn collector_records_nested_spans_with_parent_links() {
        let mut c = SpanCollector::new(2);
        walk(&mut c);
        let spans = c.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(
            c.shape(),
            vec![
                (stage::ARRIVAL, SpanEvent::ROOT),
                (stage::DECIDE, 0),
                (stage::PLACE, 0),
                (stage::DEPARTURE, SpanEvent::ROOT),
            ]
        );
        for s in spans {
            assert_eq!(s.shard, 2);
        }
        // Children lie within their parent.
        let arrival = spans[0];
        for child in &spans[1..3] {
            assert!(child.start_ns >= arrival.start_ns);
            assert!(child.end_ns() <= arrival.end_ns());
        }
        // Departure starts after arrival ends (sequential).
        assert!(spans[3].start_ns >= arrival.end_ns());
    }

    #[test]
    fn close_open_closes_unbalanced_streams() {
        let mut c = SpanCollector::new(0);
        c.enter(stage::DISPATCH);
        c.enter(stage::QUEUE_WAIT);
        c.close_open();
        assert_eq!(c.spans().len(), 2);
        assert!(c.spans().iter().all(|s| s.end_ns() >= s.start_ns));
    }

    #[test]
    fn breakdown_self_time_subtracts_children() {
        let spans = [
            SpanEvent {
                name: stage::ARRIVAL,
                shard: 0,
                start_ns: 0,
                dur_ns: 100,
                parent: SpanEvent::ROOT,
            },
            SpanEvent {
                name: stage::DECIDE,
                shard: 0,
                start_ns: 10,
                dur_ns: 30,
                parent: 0,
            },
            SpanEvent {
                name: stage::PLACE,
                shard: 0,
                start_ns: 50,
                dur_ns: 40,
                parent: 0,
            },
        ];
        let b = StageBreakdown::from_spans(&spans);
        let arrival = b.get(stage::ARRIVAL).unwrap();
        assert_eq!(arrival.total_ns, 100);
        assert_eq!(arrival.self_ns, 30); // 100 - 30 - 40
        assert_eq!(b.get(stage::DECIDE).unwrap().self_ns, 30);
        let rows = b.rows();
        assert_eq!(rows.len(), 3);
        // Ranked by self time: place (40) first.
        assert_eq!(rows[0].stage, stage::PLACE);
        // Single observation: no distribution, so no percentiles.
        assert_eq!(rows[0].p50_ns, None);
        assert_eq!(rows[0].max_ns, 40);
        assert!(!b.render(100).is_empty());
    }

    #[test]
    fn single_observation_rows_suppress_percentiles() {
        let one = [SpanEvent {
            name: stage::DISPATCH,
            shard: 0,
            start_ns: 0,
            dur_ns: 70,
            parent: SpanEvent::ROOT,
        }];
        let two = [
            SpanEvent {
                name: stage::DECIDE,
                shard: 0,
                start_ns: 0,
                dur_ns: 10,
                parent: SpanEvent::ROOT,
            },
            SpanEvent {
                name: stage::DECIDE,
                shard: 0,
                start_ns: 20,
                dur_ns: 30,
                parent: SpanEvent::ROOT,
            },
        ];
        let mut b = StageBreakdown::from_spans(&one);
        b.absorb_spans(&two);
        let rows = b.rows();
        let dispatch = rows.iter().find(|r| r.stage == stage::DISPATCH).unwrap();
        assert_eq!(dispatch.count, 1);
        assert_eq!(
            (dispatch.p50_ns, dispatch.p95_ns, dispatch.p99_ns),
            (None, None, None)
        );
        assert_eq!(dispatch.max_ns, 70);
        let decide = rows.iter().find(|r| r.stage == stage::DECIDE).unwrap();
        assert_eq!(decide.count, 2);
        assert!(decide.p50_ns.is_some() && decide.p99_ns.is_some());

        // Serialized form drops the keys entirely for count-1 rows and a
        // round trip restores `None` via the serde defaults.
        let json = serde_json::to_string(&dispatch).unwrap();
        assert!(!json.contains("p50_ns"), "{json}");
        let back: StageRow = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, dispatch);
        let json = serde_json::to_string(&decide).unwrap();
        assert!(json.contains("p50_ns"), "{json}");

        // Rendered table shows `-` in the percentile columns.
        let table = b.render(100);
        let line = table
            .lines()
            .find(|l| l.starts_with(stage::DISPATCH))
            .unwrap();
        assert!(line.contains(" - "), "{line}");
    }

    #[test]
    fn aggregator_matches_collector_breakdown_shape() {
        let epoch = Instant::now();
        let mut c = SpanCollector::with_epoch(epoch, 1);
        let mut a = StageAggregator::with_epoch(epoch, 1);
        walk(&mut c);
        walk(&mut a);
        let cb = c.stage_breakdown();
        let ab = a.finish();
        // Same stages, same counts (durations differ — different clock reads).
        let names: Vec<&str> = cb.stages().map(|(n, _)| n).collect();
        assert_eq!(names, ab.stages().map(|(n, _)| n).collect::<Vec<_>>());
        for (n, s) in cb.stages() {
            assert_eq!(s.count, ab.get(n).unwrap().count, "{n}");
        }
        // Self + children totals are conserved: Σ self == Σ top-level total.
        let self_sum: u64 = ab.stages().map(|(_, s)| s.self_ns).sum();
        let top_total =
            ab.get(stage::ARRIVAL).unwrap().total_ns + ab.get(stage::DEPARTURE).unwrap().total_ns;
        assert_eq!(self_sum, top_total);
    }

    #[test]
    fn breakdown_merge_is_exact() {
        let mut a = StageAggregator::new(0);
        let mut b = StageAggregator::new(1);
        walk(&mut a);
        walk(&mut b);
        walk(&mut b);
        let ba = a.finish();
        let bb = b.finish();
        let mut merged = ba.clone();
        merged.merge(&bb);
        let s = merged.get(stage::ARRIVAL).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(
            s.total_ns,
            ba.get(stage::ARRIVAL).unwrap().total_ns + bb.get(stage::ARRIVAL).unwrap().total_ns
        );
        assert_eq!(s.hist.count(), 3);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_lane_names() {
        let mut c = SpanCollector::new(0);
        walk(&mut c);
        let spans = c.into_spans();
        let json = chrome_trace_json([("driver", &spans[..])]);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_seq().unwrap();
        assert_eq!(events.len(), 1 + spans.len());
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            events[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("driver")
        );
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("X"));
        assert!(events[1].get("ts").unwrap().as_f64().is_some());
    }

    #[test]
    fn export_metrics_lands_labeled_stage_histograms() {
        let mut a = StageAggregator::new(0);
        walk(&mut a);
        let mut reg = MetricsRegistry::new();
        a.finish().export_metrics(&mut reg);
        let h = reg
            .histogram("dbp_stage_ns{stage=\"decide\"}")
            .expect("stage histogram exported");
        assert_eq!(h.count(), 1);
        let text = reg.to_prometheus();
        assert!(
            text.contains("dbp_stage_ns_p95{stage=\"decide\"}"),
            "{text}"
        );
    }
}
