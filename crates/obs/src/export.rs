//! Exporters: JSONL event logs, Prometheus text files, CSV — all written
//! atomically (temp file in the target directory, fsync, rename, then fsync
//! of the directory) so neither a crash mid-run nor a power loss right
//! after the rename leaves a truncated or missing artifact behind.

use crate::metrics::MetricsRegistry;
use dbp_core::probe::ProbeEvent;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::Path;

/// Write `bytes` to `path` atomically: the parent directory is created if
/// missing, content goes to a `.tmp` sibling first (flushed to stable
/// storage with fsync), then a rename makes it visible in one step, and
/// finally the parent directory itself is fsynced — without that last step
/// the rename lives only in the page cache, and a power loss could roll the
/// directory back to the old (or no) entry even though the data blocks were
/// synced.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p)?;
            Some(p)
        }
        _ => None,
    };
    let tmp = path.with_extension(match path.extension() {
        Some(ext) => format!("{}.tmp", ext.to_string_lossy()),
        None => "tmp".to_string(),
    });
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = parent {
        // Directories cannot be opened for writing; a read handle is what
        // fsync-on-directory takes on Unix.
        fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Render events as JSONL: one externally-tagged JSON object per line,
/// e.g. `{"ItemPlaced":{"at":5,"item":1,"bin":0,"level":12}}`.
pub fn events_to_jsonl(events: &[ProbeEvent]) -> String {
    events_to_jsonl_dims(events)
}

/// [`events_to_jsonl`] at any demand dimensionality. One-dimensional
/// vector demands serialize as bare integers, so a `VSize<1>` stream is
/// byte-identical to the scalar stream — the D=1 equivalence suite
/// asserts exactly that.
pub fn events_to_jsonl_dims<Sz: dbp_core::demand::Demand>(
    events: &[dbp_core::probe::GProbeEvent<Sz>],
) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&serde_json::to_string(event).expect("ProbeEvent serializes infallibly"));
        out.push('\n');
    }
    out
}

/// Parse a JSONL string back into events. Blank lines are skipped; the
/// error names the offending line (1-based).
pub fn parse_jsonl(text: &str) -> Result<Vec<ProbeEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: ProbeEvent =
            serde_json::from_str(line).map_err(|e| format!("line {}: {:?}", i + 1, e))?;
        events.push(event);
    }
    Ok(events)
}

/// Write events to `path` as JSONL, atomically.
pub fn write_jsonl(path: &Path, events: &[ProbeEvent]) -> std::io::Result<()> {
    atomic_write(path, events_to_jsonl(events).as_bytes())
}

/// Read and parse a JSONL event log from disk.
pub fn read_jsonl(path: &Path) -> Result<Vec<ProbeEvent>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_jsonl(&text)
}

/// Write a registry to `path` in Prometheus text format, atomically.
pub fn write_prometheus(path: &Path, registry: &MetricsRegistry) -> std::io::Result<()> {
    atomic_write(path, registry.to_prometheus().as_bytes())
}

/// Serialize any value to pretty JSON and write it atomically.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let mut text = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    text.push('\n');
    atomic_write(path, text.as_bytes())
}

/// Read a JSON file and deserialize it.
pub fn read_json<T: Deserialize>(path: &Path) -> Result<T, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: {:?}", path.display(), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventLog;
    use dbp_core::prelude::*;

    fn sample_events() -> Vec<ProbeEvent> {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 6);
        b.add(10, 35, 4);
        let inst = b.build().unwrap();
        let mut log = EventLog::new();
        simulate_probed(&inst, &mut FirstFit::new(), &mut log);
        log.into_events()
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample_events();
        let text = events_to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn jsonl_rejects_garbage_with_line_number() {
        let err = parse_jsonl("{\"BinClosed\":{\"at\":1,\"bin\":0,\"open_ticks\":1}}\nnot json\n")
            .unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }

    #[test]
    fn atomic_write_creates_dirs_and_file() {
        let dir = std::env::temp_dir().join("dbp_obs_test_export");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested/events.jsonl");
        let events = sample_events();
        write_jsonl(&path, &events).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, events);
        // No temp file left behind.
        assert!(!path.with_extension("jsonl.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
