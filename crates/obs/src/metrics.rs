//! Metrics primitives: counters, gauges, exact integer histograms, and the
//! registry that renders them in Prometheus text format.
//!
//! Everything is exact-integer (histograms store full value→count maps, not
//! pre-bucketed approximations), matching the repository's "no floats in
//! measured quantities" rule; floats appear only at render time.

use std::collections::BTreeMap;

/// An exact integer histogram: every observed value is kept with its count.
///
/// For the distributions the engine produces (scan depths, occupancy
/// levels, nanosecond buckets) cardinality is small, so exactness is cheap
/// and quantiles are true order statistics rather than bucket estimates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    count: u64,
    sum: u128,
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest observation.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Mean observation (lossy, for display).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact nearest-rank percentile, all-integer: the smallest observed
    /// value whose cumulative count reaches rank `⌈p·count/100⌉` (1-based;
    /// `p` is clamped to 100). `percentile(0)` is the minimum,
    /// `percentile(100)` the maximum — true order statistics, since the
    /// histogram keeps every observed value.
    pub fn percentile(&self, p: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.min(100) as u128;
        let rank = (self.count as u128 * p).div_ceil(100).max(1) as u64;
        let mut cumulative = 0;
        for (&value, &n) in &self.counts {
            cumulative += n;
            if cumulative >= rank {
                return Some(value);
            }
        }
        self.max()
    }

    /// Nearest-rank median ([`percentile`](Histogram::percentile)`(50)`).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50)
    }

    /// Nearest-rank 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(90)
    }

    /// Nearest-rank 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.percentile(95)
    }

    /// Nearest-rank 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99)
    }

    /// Merge another histogram into this one, exactly: counts per value
    /// add, so every derived statistic equals the one of the concatenated
    /// observation streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.entries() {
            *self.counts.entry(v).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Exact `q`-quantile (`0.0 ≤ q ≤ 1.0`): the smallest observed value
    /// with cumulative count ≥ `q · count`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0;
        for (&value, &n) in &self.counts {
            cumulative += n;
            if cumulative >= rank {
                return Some(value);
            }
        }
        self.max()
    }

    /// The distinct (value, count) pairs in ascending value order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Names follow Prometheus conventions (`dbp_bins_opened_total`); the
/// registry itself does not enforce them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raise gauge `name` to `value` if it is below it (peak tracking).
    pub fn gauge_max(&mut self, name: &str, value: i64) {
        match self.gauges.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Record `value` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Every counter, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// Every gauge, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.gauges.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// Fan another registry into this one under a `{label="value"}` suffix:
    /// `other`'s `dbp_items_placed_total` lands here as
    /// `dbp_items_placed_total{label="value"}`. This is how per-shard
    /// registries merge into one cluster-wide export while staying
    /// distinguishable. Counters add, gauges keep their maximum (the
    /// labelled name is normally unique per source anyway), histogram
    /// entries merge exactly.
    pub fn absorb_labeled(&mut self, other: &MetricsRegistry, label: &str, value: &str) {
        let labeled = |name: &str| format!("{name}{{{label}=\"{value}\"}}");
        for (name, v) in &other.counters {
            self.counter_add(&labeled(name), *v);
        }
        for (name, v) in &other.gauges {
            self.gauge_max(&labeled(name), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(labeled(name)).or_default().merge(h);
        }
    }

    /// Merge a free-standing histogram into the one registered under
    /// `name` (creating it empty first). The named-registry counterpart of
    /// [`Histogram::merge`], used when per-stage span histograms fan into
    /// the Prometheus export.
    pub fn observe_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Render in Prometheus text exposition format. Histograms are emitted
    /// as summaries (`{quantile="..."}` series plus `_sum`/`_count`), which
    /// keeps exact values exact — no lossy bucket boundaries.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for q in [0.5, 0.9, 0.99, 1.0] {
                if let Some(v) = h.quantile(q) {
                    out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
                }
            }
            out.push_str(&format!(
                "{name}_sum {}\n{name}_count {}\n",
                h.sum(),
                h.count()
            ));
            // Nearest-rank percentile gauges (`_p50` … `_max`). For
            // labelled series (`name{shard="0"}`) the suffix lands on the
            // metric name, before the label set.
            let (base, labels) = match name.find('{') {
                Some(i) => name.split_at(i),
                None => (name.as_str(), ""),
            };
            let points = [
                ("p50", h.p50()),
                ("p90", h.p90()),
                ("p95", h.p95()),
                ("p99", h.p99()),
                ("max", h.max()),
            ];
            for (suffix, v) in points {
                if let Some(v) = v {
                    out.push_str(&format!(
                        "# TYPE {base}_{suffix} gauge\n{base}_{suffix}{labels} {v}\n"
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_exact_stats() {
        let mut h = Histogram::new();
        for v in [3, 1, 4, 1, 5, 9, 2, 6] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 31);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(1.0), Some(9));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn nearest_rank_percentiles_are_exact_order_statistics() {
        // The canonical nearest-rank example: {15, 20, 35, 40, 50}.
        let mut h = Histogram::new();
        for v in [15, 20, 35, 40, 50] {
            h.observe(v);
        }
        assert_eq!(h.percentile(0), Some(15));
        assert_eq!(h.percentile(5), Some(15));
        assert_eq!(h.percentile(30), Some(20));
        assert_eq!(h.percentile(40), Some(20));
        assert_eq!(h.percentile(41), Some(35));
        assert_eq!(h.p50(), Some(35));
        assert_eq!(h.percentile(95), Some(50));
        assert_eq!(h.percentile(100), Some(50));
        assert_eq!(h.percentile(900), Some(50), "p clamps to 100");

        // Single observation: every percentile is that value.
        let mut one = Histogram::new();
        one.observe(7);
        for p in [0, 1, 50, 99, 100] {
            assert_eq!(one.percentile(p), Some(7));
        }
        assert_eq!(Histogram::new().p99(), None);

        // Against a brute-force nearest-rank over the sorted multiset.
        let values = [3u64, 3, 1, 9, 9, 9, 2, 8, 4, 4, 4, 4];
        let mut h = Histogram::new();
        let mut sorted = values.to_vec();
        for v in values {
            h.observe(v);
        }
        sorted.sort_unstable();
        for p in 1..=100u64 {
            let rank = ((sorted.len() as u64 * p).div_ceil(100)).max(1) as usize;
            assert_eq!(h.percentile(p), Some(sorted[rank - 1]), "p{p}");
        }
    }

    #[test]
    fn merge_matches_concatenated_streams() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [1, 5, 5, 9] {
            a.observe(v);
            both.observe(v);
        }
        for v in [2, 5, 100] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.count(), 7);
        assert_eq!(a.p99(), Some(100));
    }

    #[test]
    fn prometheus_emits_percentile_gauges_with_label_aware_names() {
        let mut reg = MetricsRegistry::new();
        for v in [10, 20, 30] {
            reg.observe("dbp_stage_ns", v);
        }
        let mut shard = MetricsRegistry::new();
        shard.observe("dbp_decision_ns", 400);
        reg.absorb_labeled(&shard, "shard", "3");
        let text = reg.to_prometheus();
        assert!(text.contains("dbp_stage_ns_p50 20"), "{text}");
        assert!(text.contains("dbp_stage_ns_p99 30"), "{text}");
        assert!(text.contains("dbp_stage_ns_max 30"), "{text}");
        // The suffix must land before the label set, not after it.
        assert!(
            text.contains("dbp_decision_ns_p95{shard=\"3\"} 400"),
            "{text}"
        );
        assert!(!text.contains("{shard=\"3\"}_p95"), "{text}");
    }

    #[test]
    fn registry_renders_prometheus() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("dbp_bins_opened_total", 3);
        reg.gauge_set("dbp_open_bins", 2);
        reg.gauge_max("dbp_open_bins_peak", 5);
        reg.gauge_max("dbp_open_bins_peak", 4);
        reg.observe("dbp_fit_scan_depth", 1);
        reg.observe("dbp_fit_scan_depth", 7);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE dbp_bins_opened_total counter"));
        assert!(text.contains("dbp_bins_opened_total 3"));
        assert!(text.contains("dbp_open_bins_peak 5"));
        assert!(text.contains("dbp_fit_scan_depth{quantile=\"1\"} 7"));
        assert!(text.contains("dbp_fit_scan_depth_count 2"));
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn absorb_labeled_merges_under_suffixed_names() {
        let mut shard0 = MetricsRegistry::new();
        shard0.counter_add("dbp_items_placed_total", 3);
        shard0.gauge_max("dbp_open_bins_peak", 4);
        shard0.observe("dbp_fit_scan_depth", 2);
        shard0.observe("dbp_fit_scan_depth", 2);
        let mut shard1 = MetricsRegistry::new();
        shard1.counter_add("dbp_items_placed_total", 5);

        let mut merged = MetricsRegistry::new();
        merged.absorb_labeled(&shard0, "shard", "0");
        merged.absorb_labeled(&shard1, "shard", "1");
        // Same shard absorbed twice: counters keep adding.
        merged.absorb_labeled(&shard1, "shard", "1");

        assert_eq!(merged.counter("dbp_items_placed_total{shard=\"0\"}"), 3);
        assert_eq!(merged.counter("dbp_items_placed_total{shard=\"1\"}"), 10);
        assert_eq!(merged.gauge("dbp_open_bins_peak{shard=\"0\"}"), Some(4));
        let h = merged
            .histogram("dbp_fit_scan_depth{shard=\"0\"}")
            .expect("histogram absorbed");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4);
        assert_eq!(h.quantile(1.0), Some(2));
        // The labelled series render as distinct Prometheus lines.
        let text = merged.to_prometheus();
        assert!(text.contains("dbp_items_placed_total{shard=\"0\"} 3"));
        assert!(text.contains("dbp_items_placed_total{shard=\"1\"} 10"));
    }
}
