//! Journal replay: audit an event stream and rebuild engine state from it.
//!
//! Two consumers sit on top of a decoded journal
//! ([`JournalContents`](crate::journal::JournalContents)):
//!
//! * [`replay_events`] — an *audit*: walks the stream checking structural
//!   invariants (placements go to open bins, closes match opens, levels
//!   are consistent) and recomputes the exact integer total cost from the
//!   `BinClosed` events, independently of any recorded manifest;
//! * [`snapshot_from_events`] — a *recovery*: finds the longest prefix of
//!   the stream that corresponds to complete engine operations, rebuilds a
//!   [`Snapshot`](dbp_core::snapshot::Snapshot) at that boundary via
//!   deterministic re-execution ([`dbp_core::rebuild_snapshot`]), and
//!   reports how many trailing partial events were dropped. Resuming the
//!   engine from that snapshot re-emits exactly the dropped events first,
//!   so `journal prefix + resumed stream` is byte-identical to an
//!   uninterrupted run.
//!
//! Both functions return `Err` (never panic) on streams that no fault-free
//! engine run could have produced.

use dbp_core::bin::{BinId, BinTag};
use dbp_core::demand::Demand;
use dbp_core::instance::Instance;
use dbp_core::probe::{GProbeEvent, ProbeEvent};
use dbp_core::snapshot::Snapshot;
use dbp_core::time::Tick;

/// Aggregate results of auditing a journal stream. All quantities are
/// exact integers recomputed from the events alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySummary {
    /// `ItemArrived` events seen.
    pub arrivals: u64,
    /// `ItemPlaced` events seen.
    pub placements: u64,
    /// `ItemDeparted` events seen.
    pub departures: u64,
    /// Bins opened.
    pub bins_opened: u64,
    /// Bins closed.
    pub bins_closed: u64,
    /// Bins still open when the stream ended (nonzero ⇒ the run was
    /// interrupted or the journal is a prefix).
    pub open_at_end: u64,
    /// Peak number of simultaneously open bins.
    pub max_open: u64,
    /// Total cost Σ open-ticks over *closed* bins — equals the paper's
    /// objective Σᵢ span(bin i) when `open_at_end == 0`.
    pub cost_ticks: u128,
    /// `Violation` events carried in the stream.
    pub violations: u64,
    /// Fault-injection events carried in the stream (crash/retry/drop).
    pub fault_events: u64,
    /// Tick of the last event, if any.
    pub last_tick: Option<Tick>,
}

impl ReplaySummary {
    /// Whether the stream describes a run that finished (every opened bin
    /// closed again), making [`cost_ticks`](ReplaySummary::cost_ticks) the
    /// complete objective value.
    pub fn is_complete(&self) -> bool {
        self.open_at_end == 0 && self.bins_opened == self.bins_closed
    }
}

/// Audit an event stream: check structural invariants and recompute the
/// exact total cost. Errors describe the first inconsistency found.
pub fn replay_events(events: &[ProbeEvent]) -> Result<ReplaySummary, String> {
    replay_events_dims(events)
}

/// [`replay_events`] for any demand dimensionality — the audit walks only
/// structure (bin ids, opens/closes, ticks), so one body serves every
/// `Sz`; the scalar wrapper keeps the original signature.
pub fn replay_events_dims<Sz: Demand>(events: &[GProbeEvent<Sz>]) -> Result<ReplaySummary, String> {
    let mut summary = ReplaySummary {
        arrivals: 0,
        placements: 0,
        departures: 0,
        bins_opened: 0,
        bins_closed: 0,
        open_at_end: 0,
        max_open: 0,
        cost_ticks: 0,
        violations: 0,
        fault_events: 0,
        last_tick: None,
    };
    // Per opened bin (indexed by BinId): (is_open, member_count, opened_at).
    let mut bins: Vec<(bool, u32, Tick)> = Vec::new();
    let mut open = 0u64;
    let err = |i: usize, msg: String| Err(format!("event {i}: {msg}"));
    for (i, ev) in events.iter().enumerate() {
        if let Some(last) = summary.last_tick {
            if ev.at() < last {
                return err(i, format!("tick went backwards ({} after {last})", ev.at()));
            }
        }
        summary.last_tick = Some(ev.at());
        match ev {
            GProbeEvent::ItemArrived { .. } => summary.arrivals += 1,
            GProbeEvent::FitAttempt { open_bins, .. } => {
                // Emitted before any BinOpened, so it must agree with the
                // running open count exactly.
                if u64::from(*open_bins) != open {
                    return err(
                        i,
                        format!("FitAttempt claims {open_bins} open bins, saw {open}"),
                    );
                }
            }
            GProbeEvent::BinOpened { bin, .. } => {
                if bin.index() != bins.len() {
                    return err(
                        i,
                        format!("bin {bin} opened out of order (expected b{})", bins.len()),
                    );
                }
                bins.push((true, 0, ev.at()));
                summary.bins_opened += 1;
                open += 1;
                summary.max_open = summary.max_open.max(open);
            }
            GProbeEvent::ItemPlaced { bin, .. } => {
                match bins.get_mut(bin.index()) {
                    Some((true, count, _)) => *count += 1,
                    Some((false, ..)) => return err(i, format!("placement into closed bin {bin}")),
                    None => return err(i, format!("placement into never-opened bin {bin}")),
                }
                summary.placements += 1;
            }
            GProbeEvent::ItemDeparted { bin, .. } => {
                match bins.get_mut(bin.index()) {
                    Some((true, count @ 1.., _)) => *count -= 1,
                    Some((true, 0, _)) => return err(i, format!("departure from empty bin {bin}")),
                    Some((false, ..)) => return err(i, format!("departure from closed bin {bin}")),
                    None => return err(i, format!("departure from never-opened bin {bin}")),
                }
                summary.departures += 1;
            }
            GProbeEvent::BinClosed {
                bin, open_ticks, ..
            } => {
                match bins.get_mut(bin.index()) {
                    Some((is_open @ true, 0, opened_at)) => {
                        let span = ev.at().0.saturating_sub(opened_at.0);
                        if span != *open_ticks {
                            return err(
                                i,
                                format!(
                                    "bin {bin} closed with open_ticks {open_ticks}, \
                                     but opened at {opened_at} and closed at {} (span {span})",
                                    ev.at()
                                ),
                            );
                        }
                        *is_open = false;
                    }
                    Some((true, count, _)) => {
                        return err(i, format!("bin {bin} closed while holding {count} items"))
                    }
                    Some((false, ..)) => return err(i, format!("bin {bin} closed twice")),
                    None => return err(i, format!("never-opened bin {bin} closed")),
                }
                summary.bins_closed += 1;
                open -= 1;
                summary.cost_ticks += u128::from(*open_ticks);
            }
            GProbeEvent::Violation { .. } => summary.violations += 1,
            _ => summary.fault_events += 1,
        }
    }
    summary.open_at_end = open;
    Ok(summary)
}

/// Exact per-dimension served demand, recomputed from an event stream
/// alone: for every departed item, `size_d × (departure − placement)`
/// summed into dimension `d`. Returns one `u128` per dimension plus the
/// number of items placed but still resident when the stream ended (their
/// demand-ticks are not yet accountable). This is the vector analogue of
/// the scalar cost audit: at `D = 1` the single entry is the served
/// item-ticks of the run.
pub fn per_dim_demand_ticks<Sz: Demand>(events: &[GProbeEvent<Sz>]) -> (Vec<u128>, u64) {
    use std::collections::HashMap;
    let mut ticks = vec![0u128; Sz::DIMS];
    let mut sizes: HashMap<u32, Sz> = HashMap::new();
    let mut placed_at: HashMap<u32, Tick> = HashMap::new();
    for ev in events {
        match ev {
            GProbeEvent::ItemArrived { item, size, .. } => {
                sizes.insert(item.0, *size);
            }
            GProbeEvent::ItemPlaced { at, item, .. } => {
                placed_at.insert(item.0, *at);
            }
            GProbeEvent::ItemDeparted { at, item, .. } => {
                if let (Some(size), Some(t0)) = (sizes.remove(&item.0), placed_at.remove(&item.0)) {
                    let span = u128::from(at.0.saturating_sub(t0.0));
                    for (d, slot) in ticks.iter_mut().enumerate() {
                        *slot += u128::from(size.component(d)) * span;
                    }
                }
            }
            _ => {}
        }
    }
    (ticks, placed_at.len() as u64)
}

/// A snapshot recovered from a journal prefix.
#[derive(Debug)]
pub struct RecoveredSnapshot {
    /// Engine state at the boundary, rebuilt by deterministic replay.
    pub snapshot: Snapshot,
    /// Number of leading journal events the snapshot accounts for.
    pub events_used: usize,
    /// Trailing events dropped because they belong to an engine operation
    /// the crash cut in half. Resuming from the snapshot re-emits exactly
    /// these first.
    pub events_dropped: usize,
}

/// Rebuild engine state from a journaled event stream.
///
/// The journal is a flat event stream, but the engine advances in
/// *operations* — an arrival emits `ItemArrived`, `FitAttempt`,
/// (`BinOpened`,) `ItemPlaced`; a departure emits `ItemDeparted` and, when
/// it empties the bin, `BinClosed`. A crash can leave the final operation
/// half-journaled, so this scans for the last operation boundary, derives
/// the assignment prefix and bin tags up to it, and rebuilds the exact
/// [`Snapshot`] there via [`dbp_core::rebuild_snapshot`].
///
/// Errors on fault-injection events (crash-recovery journals describe a
/// different state machine) and on streams no engine run could emit.
pub fn snapshot_from_events(
    instance: &Instance,
    algorithm: &str,
    events: &[ProbeEvent],
) -> Result<RecoveredSnapshot, String> {
    // Pass 1: find the boundary — the end of the last complete operation —
    // and count completed operations (the engine-event cursor).
    let mut boundary = 0usize;
    let mut cursor = 0usize;
    // Member count per opened bin; a departure that empties its bin is only
    // complete once the matching BinClosed lands.
    let mut members: Vec<u32> = Vec::new();
    let mut pending_close: Option<BinId> = None;
    for (i, ev) in events.iter().enumerate() {
        if ev.is_fault_event() {
            return Err(format!(
                "event {i} is a fault-injection event ({}); snapshot recovery \
                 handles fault-free engine journals only",
                ev.kind()
            ));
        }
        if let Some(bin) = pending_close {
            match ev {
                ProbeEvent::BinClosed { bin: b, .. } if *b == bin => {
                    pending_close = None;
                    boundary = i + 1;
                    cursor += 1;
                    continue;
                }
                _ => {
                    return Err(format!(
                        "event {i}: expected BinClosed for emptied bin {bin}, found {}",
                        ev.kind()
                    ))
                }
            }
        }
        match ev {
            ProbeEvent::ItemArrived { .. } | ProbeEvent::FitAttempt { .. } => {}
            ProbeEvent::BinOpened { bin, .. } => {
                if bin.index() != members.len() {
                    return Err(format!(
                        "event {i}: bin {bin} opened out of order (expected b{})",
                        members.len()
                    ));
                }
                members.push(0);
            }
            ProbeEvent::ItemPlaced { bin, .. } => {
                match members.get_mut(bin.index()) {
                    Some(count) => *count += 1,
                    None => {
                        return Err(format!("event {i}: placement into never-opened bin {bin}"))
                    }
                }
                boundary = i + 1;
                cursor += 1;
            }
            ProbeEvent::ItemDeparted { bin, .. } => match members.get_mut(bin.index()) {
                Some(count @ 1..) => {
                    *count -= 1;
                    if *count == 0 {
                        pending_close = Some(*bin);
                    } else {
                        boundary = i + 1;
                        cursor += 1;
                    }
                }
                Some(0) => return Err(format!("event {i}: departure from empty bin {bin}")),
                None => return Err(format!("event {i}: departure from never-opened bin {bin}")),
            },
            ProbeEvent::BinClosed { bin, .. } => {
                return Err(format!("event {i}: unexpected BinClosed for bin {bin}"))
            }
            ProbeEvent::Violation { message, .. } => {
                return Err(format!("event {i}: journal records a violation: {message}"))
            }
            _ => unreachable!("fault events rejected above"),
        }
    }

    // Pass 2: derive the assignment prefix and bin tags from the complete
    // prefix only (a half-journaled arrival may have opened a bin or placed
    // nothing — neither belongs in the snapshot).
    let mut assignment: Vec<Option<BinId>> = vec![None; instance.len()];
    let mut tags: Vec<BinTag> = Vec::new();
    for (i, ev) in events[..boundary].iter().enumerate() {
        match ev {
            ProbeEvent::BinOpened { tag, .. } => tags.push(*tag),
            ProbeEvent::ItemPlaced { item, bin, .. } => match assignment.get_mut(item.index()) {
                Some(slot @ None) => *slot = Some(*bin),
                Some(Some(_)) => return Err(format!("event {i}: item {item} placed twice")),
                None => {
                    return Err(format!(
                        "event {i}: item {item} is outside the instance ({} items)",
                        instance.len()
                    ))
                }
            },
            _ => {}
        }
    }

    let snapshot = dbp_core::rebuild_snapshot(instance, algorithm, cursor, &assignment, &tags)?;
    Ok(RecoveredSnapshot {
        snapshot,
        events_used: boundary,
        events_dropped: events.len() - boundary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventLog;
    use dbp_core::prelude::*;

    fn sample() -> (Instance, Vec<ProbeEvent>) {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 6);
        b.add(10, 35, 4);
        b.add(12, 20, 3);
        let inst = b.build().unwrap();
        let mut log = EventLog::new();
        simulate_probed(&inst, &mut FirstFit::new(), &mut log);
        (inst, log.into_events())
    }

    #[test]
    fn audit_of_complete_run_matches_trace_cost() {
        let (inst, events) = sample();
        let trace = simulate(&inst, &mut FirstFit::new());
        let summary = replay_events(&events).unwrap();
        assert!(summary.is_complete());
        assert_eq!(summary.arrivals, inst.len() as u64);
        assert_eq!(summary.placements, inst.len() as u64);
        assert_eq!(summary.departures, inst.len() as u64);
        assert_eq!(summary.bins_opened, trace.bins_used() as u64);
        assert_eq!(summary.cost_ticks, trace.total_cost_ticks());
        assert_eq!(summary.violations, 0);
        assert_eq!(summary.fault_events, 0);
    }

    #[test]
    fn audit_rejects_impossible_streams() {
        use dbp_core::bin::BinId;
        use dbp_core::item::{ItemId, Size};
        use dbp_core::time::Tick;
        // Placement into a bin that never opened.
        let bad = vec![ProbeEvent::ItemPlaced {
            at: Tick(0),
            item: ItemId(0),
            bin: BinId(3),
            level: Size(5),
        }];
        assert!(replay_events(&bad).unwrap_err().contains("never-opened"));
        // A close whose open_ticks disagrees with its open/close ticks.
        let bad = vec![
            ProbeEvent::BinOpened {
                at: Tick(0),
                bin: BinId(0),
                tag: BinTag(0),
                item: ItemId(0),
            },
            ProbeEvent::BinClosed {
                at: Tick(10),
                bin: BinId(0),
                open_ticks: 7,
            },
        ];
        assert!(replay_events(&bad).unwrap_err().contains("span"));
    }

    #[test]
    fn snapshot_from_full_stream_is_complete() {
        let (inst, events) = sample();
        let rec = snapshot_from_events(&inst, "FF", &events).unwrap();
        assert_eq!(rec.events_used, events.len());
        assert_eq!(rec.events_dropped, 0);
        assert!(rec.snapshot.is_complete());
        let trace = simulate(&inst, &mut FirstFit::new());
        assert_eq!(rec.snapshot.closed_cost_ticks(), trace.total_cost_ticks());
    }

    #[test]
    fn snapshot_from_every_prefix_resumes_to_identical_stream() {
        let (inst, events) = sample();
        for cut in 0..=events.len() {
            let rec = snapshot_from_events(&inst, "FF", &events[..cut])
                .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            assert!(rec.events_used <= cut);
            // Resume with a fresh selector and capture the continuation.
            let mut log = EventLog::new();
            let mut ff = FirstFit::new();
            let trace = simulate_resumed_probed(&inst, &mut ff, &mut log, &rec.snapshot).unwrap();
            assert_eq!(trace, simulate(&inst, &mut FirstFit::new()));
            // Journal prefix (complete ops only) + continuation == full
            // uninterrupted stream.
            let mut combined = events[..rec.events_used].to_vec();
            combined.extend(log.into_events());
            assert_eq!(combined, events, "cut at {cut}");
        }
    }

    #[test]
    fn snapshot_rejects_fault_journals() {
        use dbp_core::bin::BinId;
        use dbp_core::time::Tick;
        let (inst, mut events) = sample();
        events.push(ProbeEvent::BinCrashed {
            at: Tick(99),
            bin: BinId(0),
            orphans: 1,
        });
        let err = snapshot_from_events(&inst, "FF", &events).unwrap_err();
        assert!(err.contains("fault"), "{err}");
    }
}
