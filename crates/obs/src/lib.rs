//! # dbp-obs — observability for the MinTotal DBP engine
//!
//! Consumers of the [`Probe`](dbp_core::probe::Probe) seam in `dbp-core`:
//!
//! * [`recorder`] — [`EventLog`](recorder::EventLog) (full event capture),
//!   [`CountingProbe`](recorder::CountingProbe) (per-kind counters for
//!   invariant tests), [`MetricsProbe`](recorder::MetricsProbe) (streaming
//!   aggregation into a registry);
//! * [`metrics`] — counters, gauges, and exact integer histograms with
//!   Prometheus text rendering;
//! * [`sampler`] — [`TimeSeriesSampler`](sampler::TimeSeriesSampler), the
//!   exact step functions `n(t)` (the paper's `A(R,t)`), used capacity,
//!   and waste;
//! * [`export`] — atomic JSONL / Prometheus / JSON writers and parsers;
//! * [`journal`] — the crash-safe write-ahead event journal
//!   (length-prefixed + CRC32-framed records, torn-tail-tolerant reader);
//! * [`replay`] — journal audit ([`replay_events`](replay::replay_events))
//!   and snapshot recovery
//!   ([`snapshot_from_events`](replay::snapshot_from_events));
//! * [`manifest`] — [`RunManifest`](manifest::RunManifest) provenance
//!   records, the `run_all` sweep manifest, and the sweep resume
//!   checkpoint;
//! * [`span`] — consumers of the `SpanRecorder` seam:
//!   [`SpanCollector`](span::SpanCollector) (full capture, Chrome-trace
//!   export), [`StageAggregator`](span::StageAggregator) (streaming
//!   per-stage histograms), and the ranked
//!   [`StageBreakdown`](span::StageBreakdown) self-time table;
//! * [`timeline`] — the `dbp trace` timeline renderer.
//!
//! Probes compose with the tuple combinator from `dbp-core`, so one
//! simulation pass can feed several consumers:
//!
//! ```
//! use dbp_core::prelude::*;
//! use dbp_obs::prelude::*;
//!
//! let mut b = InstanceBuilder::new(10);
//! b.add(0, 40, 6);
//! b.add(5, 25, 6);
//! let instance = b.build().unwrap();
//!
//! let mut probe = (EventLog::new(), MetricsProbe::new());
//! let trace = simulate_probed(&instance, &mut FirstFit::new(), &mut probe);
//! let (log, metrics) = probe;
//! assert_eq!(
//!     metrics.registry().counter("dbp_bins_opened_total"),
//!     trace.bins_used() as u64
//! );
//! let jsonl = dbp_obs::export::events_to_jsonl(log.events());
//! assert_eq!(dbp_obs::export::parse_jsonl(&jsonl).unwrap(), log.events());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod journal;
pub mod manifest;
pub mod metrics;
pub mod recorder;
pub mod replay;
pub mod sampler;
pub mod span;
pub mod timeline;

pub use journal::{
    peek_journal_dims, read_journal_dims, FsyncPolicy, GJournalContents, JournalContents,
    JournalProbe, JournalWriter,
};
pub use manifest::{
    instance_digest_dims, ExperimentManifest, ExperimentRecord, ExperimentStatus, RunManifest,
    SweepCheckpoint,
};
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{CountingProbe, EventLog, GEventLog, MetricsProbe};
pub use replay::{per_dim_demand_ticks, replay_events_dims, RecoveredSnapshot, ReplaySummary};
pub use sampler::{Sample, TimeSeriesSampler};
pub use span::{
    chrome_trace_json, SpanCollector, StageAggregator, StageBreakdown, StageRow, StageStats,
};

/// Everything most users need, in one import.
pub mod prelude {
    pub use crate::export::{events_to_jsonl, parse_jsonl, read_jsonl, write_jsonl};
    pub use crate::journal::{
        read_journal, FsyncPolicy, JournalContents, JournalProbe, JournalWriter,
    };
    pub use crate::manifest::{instance_digest, ExperimentManifest, RunManifest, SweepCheckpoint};
    pub use crate::metrics::{Histogram, MetricsRegistry};
    pub use crate::recorder::{CountingProbe, EventLog, MetricsProbe};
    pub use crate::replay::{replay_events, snapshot_from_events};
    pub use crate::sampler::{Sample, TimeSeriesSampler};
    pub use crate::span::{
        chrome_trace_json, SpanCollector, StageAggregator, StageBreakdown, StageRow,
    };
    pub use crate::timeline::render_timeline;
}
