//! Human-readable timeline rendering of a JSONL event log — the engine
//! behind the `dbp trace` subcommand.

use dbp_core::probe::ProbeEvent;
use std::fmt::Write;

/// Render events as a tick-grouped timeline with a trailing summary.
///
/// Output shape:
///
/// ```text
/// t=0
///   arrive  r0 (size 6)
///   scan    r0 depth 0/0
///   open    b0 <- r0
///   place   r0 -> b0 (level 6)
/// ...
/// -- 3 items, 2 bins opened, peak 2 open, 14 events
/// ```
pub fn render_timeline(events: &[ProbeEvent]) -> String {
    let mut out = String::new();
    let mut last_tick: Option<u64> = None;
    let mut items = 0u64;
    let mut opened = 0u64;
    let mut open_now = 0i64;
    let mut peak_open = 0i64;
    let mut violations = 0u64;

    for event in events {
        let t = event.at().0;
        if last_tick != Some(t) {
            let _ = writeln!(out, "t={t}");
            last_tick = Some(t);
        }
        match event {
            ProbeEvent::ItemArrived { item, size, .. } => {
                items += 1;
                let _ = writeln!(out, "  arrive  r{} (size {})", item.0, size.raw());
            }
            ProbeEvent::FitAttempt {
                item,
                bins_scanned,
                open_bins,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "  scan    r{} depth {}/{}",
                    item.0, bins_scanned, open_bins
                );
            }
            ProbeEvent::BinOpened { bin, item, .. } => {
                opened += 1;
                open_now += 1;
                peak_open = peak_open.max(open_now);
                let _ = writeln!(out, "  open    b{} <- r{}", bin.0, item.0);
            }
            ProbeEvent::ItemPlaced {
                item, bin, level, ..
            } => {
                let _ = writeln!(
                    out,
                    "  place   r{} -> b{} (level {})",
                    item.0,
                    bin.0,
                    level.raw()
                );
            }
            ProbeEvent::ItemDeparted {
                item, bin, level, ..
            } => {
                let _ = writeln!(
                    out,
                    "  depart  r{} from b{} (level {})",
                    item.0,
                    bin.0,
                    level.raw()
                );
            }
            ProbeEvent::BinClosed {
                bin, open_ticks, ..
            } => {
                open_now -= 1;
                let _ = writeln!(out, "  close   b{} after {} ticks", bin.0, open_ticks);
            }
            ProbeEvent::Violation { message, .. } => {
                violations += 1;
                let _ = writeln!(out, "  VIOLATION: {message}");
            }
        }
    }
    let _ = write!(
        out,
        "-- {items} items, {opened} bins opened, peak {peak_open} open, {} events",
        events.len()
    );
    if violations > 0 {
        let _ = write!(out, ", {violations} VIOLATIONS");
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventLog;
    use dbp_core::prelude::*;

    #[test]
    fn timeline_renders_all_phases() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 6);
        b.add(10, 35, 4);
        let inst = b.build().unwrap();
        let mut log = EventLog::new();
        simulate_probed(&inst, &mut FirstFit::new(), &mut log);
        let text = render_timeline(log.events());
        assert!(text.contains("t=0"));
        assert!(text.contains("arrive  r0 (size 6)"));
        assert!(text.contains("open    b0 <- r0"));
        assert!(text.contains("depart"));
        assert!(text.contains("close"));
        assert!(text.contains("3 items, 2 bins opened"));
        assert!(!text.contains("VIOLATION"));
    }
}
