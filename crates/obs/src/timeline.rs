//! Human-readable timeline rendering of a JSONL event log — the engine
//! behind the `dbp trace` subcommand.

use dbp_core::probe::ProbeEvent;
use std::fmt::Write;

/// Render events as a tick-grouped timeline with a trailing summary.
///
/// Output shape:
///
/// ```text
/// t=0
///   arrive  r0 (size 6)
///   scan    r0 depth 0/0
///   open    b0 <- r0
///   place   r0 -> b0 (level 6)
/// ...
/// -- 3 items, 2 bins opened, peak 2 open, 14 events
/// ```
///
/// Fault, retry, and recovery events (from `ResilientSystem` runs) render
/// with their own verbs (`CRASH`, `bootfail`, `retry`, `reject`, `DROP`,
/// `redisp`, `recover`), and when any are present a second footer line
/// summarises the fault activity for the run.
pub fn render_timeline(events: &[ProbeEvent]) -> String {
    let mut out = String::new();
    let mut last_tick: Option<u64> = None;
    let mut items = 0u64;
    let mut opened = 0u64;
    let mut open_now = 0i64;
    let mut peak_open = 0i64;
    let mut violations = 0u64;
    let mut crashes = 0u64;
    let mut boot_failures = 0u64;
    let mut retries = 0u64;
    let mut rejections = 0u64;
    let mut dropped = 0u64;
    let mut redispatched = 0u64;
    let mut lost = 0u64;
    let mut shard_kills = 0u64;
    let mut shard_restarts = 0u64;
    let mut shards_abandoned = 0u64;

    for event in events {
        let t = event.at().0;
        if last_tick != Some(t) {
            let _ = writeln!(out, "t={t}");
            last_tick = Some(t);
        }
        match event {
            ProbeEvent::ItemArrived { item, size, .. } => {
                items += 1;
                let _ = writeln!(out, "  arrive  r{} (size {})", item.0, size.raw());
            }
            ProbeEvent::FitAttempt {
                item,
                bins_scanned,
                open_bins,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "  scan    r{} depth {}/{}",
                    item.0, bins_scanned, open_bins
                );
            }
            ProbeEvent::BinOpened { bin, item, .. } => {
                opened += 1;
                open_now += 1;
                peak_open = peak_open.max(open_now);
                let _ = writeln!(out, "  open    b{} <- r{}", bin.0, item.0);
            }
            ProbeEvent::ItemPlaced {
                item, bin, level, ..
            } => {
                let _ = writeln!(
                    out,
                    "  place   r{} -> b{} (level {})",
                    item.0,
                    bin.0,
                    level.raw()
                );
            }
            ProbeEvent::ItemDeparted {
                item, bin, level, ..
            } => {
                let _ = writeln!(
                    out,
                    "  depart  r{} from b{} (level {})",
                    item.0,
                    bin.0,
                    level.raw()
                );
            }
            ProbeEvent::BinClosed {
                bin, open_ticks, ..
            } => {
                open_now -= 1;
                let _ = writeln!(out, "  close   b{} after {} ticks", bin.0, open_ticks);
            }
            ProbeEvent::Violation { message, .. } => {
                violations += 1;
                let _ = writeln!(out, "  VIOLATION: {message}");
            }
            ProbeEvent::BinCrashed { bin, orphans, .. } => {
                crashes += 1;
                open_now -= 1;
                let _ = writeln!(out, "  CRASH   b{} ({} orphans)", bin.0, orphans);
            }
            ProbeEvent::ProvisionFailed { item, attempt, .. } => {
                boot_failures += 1;
                let _ = writeln!(out, "  bootfail r{} (attempt {})", item.0, attempt);
            }
            ProbeEvent::RetryScheduled {
                item,
                attempt,
                next,
                ..
            } => {
                retries += 1;
                let _ = writeln!(
                    out,
                    "  retry   r{} attempt {} at t={}",
                    item.0, attempt, next.0
                );
            }
            ProbeEvent::DispatchRejected { item, bin, .. } => {
                rejections += 1;
                let _ = writeln!(out, "  reject  r{} by b{}", item.0, bin.0);
            }
            ProbeEvent::ItemDropped { item, reason, .. } => {
                dropped += 1;
                let _ = writeln!(out, "  DROP    r{} ({})", item.0, reason.name());
            }
            ProbeEvent::ItemRedispatched {
                item,
                from,
                to,
                level,
                ..
            } => {
                redispatched += 1;
                let _ = writeln!(
                    out,
                    "  redisp  r{} b{} -> b{} (level {})",
                    item.0,
                    from.0,
                    to.0,
                    level.raw()
                );
            }
            ProbeEvent::RecoveryEnded {
                bin,
                redispatched: re,
                lost: lo,
                ..
            } => {
                lost += *lo as u64;
                let _ = writeln!(
                    out,
                    "  recover b{} done ({} redispatched, {} lost)",
                    bin.0, re, lo
                );
            }
            ProbeEvent::ShardKilled {
                shard, events_done, ..
            } => {
                shard_kills += 1;
                let _ = writeln!(
                    out,
                    "  KILL    shard {} ({} events journaled)",
                    shard, events_done
                );
            }
            ProbeEvent::ShardRestarted {
                shard,
                attempt,
                replayed,
                ..
            } => {
                shard_restarts += 1;
                let _ = writeln!(
                    out,
                    "  resume  shard {} attempt {} ({} events replayed)",
                    shard, attempt, replayed
                );
            }
            ProbeEvent::ShardAbandoned {
                shard,
                lost: lo,
                rerouted,
                ..
            } => {
                shards_abandoned += 1;
                lost += *lo as u64;
                let _ = writeln!(
                    out,
                    "  ABANDON shard {} ({} lost, {} rerouted)",
                    shard, lo, rerouted
                );
            }
        }
    }
    let _ = write!(
        out,
        "-- {items} items, {opened} bins opened, peak {peak_open} open, {} events",
        events.len()
    );
    if violations > 0 {
        let _ = write!(out, ", {violations} VIOLATIONS");
    }
    out.push('\n');
    let faults = crashes + boot_failures + retries + rejections + dropped + redispatched;
    if faults > 0 {
        let _ = writeln!(
            out,
            "-- faults: {crashes} crashes, {boot_failures} boot failures, {retries} retries, \
             {rejections} rejections, {dropped} dropped, {redispatched} redispatched, {lost} lost"
        );
    }
    if shard_kills + shard_restarts + shards_abandoned > 0 {
        let _ = writeln!(
            out,
            "-- shards: {shard_kills} kills, {shard_restarts} restarts, \
             {shards_abandoned} abandoned"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventLog;
    use dbp_core::prelude::*;

    #[test]
    fn timeline_renders_all_phases() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 6);
        b.add(10, 35, 4);
        let inst = b.build().unwrap();
        let mut log = EventLog::new();
        simulate_probed(&inst, &mut FirstFit::new(), &mut log);
        let text = render_timeline(log.events());
        assert!(text.contains("t=0"));
        assert!(text.contains("arrive  r0 (size 6)"));
        assert!(text.contains("open    b0 <- r0"));
        assert!(text.contains("depart"));
        assert!(text.contains("close"));
        assert!(text.contains("3 items, 2 bins opened"));
        assert!(!text.contains("VIOLATION"));
        assert!(!text.contains("-- faults:"));
    }

    #[test]
    fn timeline_renders_fault_events() {
        use dbp_core::probe::DropReason;
        let events = vec![
            ProbeEvent::BinCrashed {
                at: Tick(10),
                bin: BinId(2),
                orphans: 3,
            },
            ProbeEvent::ProvisionFailed {
                at: Tick(10),
                item: ItemId(7),
                attempt: 1,
            },
            ProbeEvent::RetryScheduled {
                at: Tick(10),
                item: ItemId(7),
                attempt: 2,
                next: Tick(14),
            },
            ProbeEvent::DispatchRejected {
                at: Tick(11),
                item: ItemId(8),
                bin: BinId(0),
            },
            ProbeEvent::ItemRedispatched {
                at: Tick(12),
                item: ItemId(4),
                from: BinId(2),
                to: BinId(5),
                level: Size(6),
            },
            ProbeEvent::ItemDropped {
                at: Tick(13),
                item: ItemId(9),
                reason: DropReason::QueueTimeout,
            },
            ProbeEvent::RecoveryEnded {
                at: Tick(14),
                bin: BinId(2),
                redispatched: 2,
                lost: 1,
            },
            ProbeEvent::ShardKilled {
                at: Tick(15),
                shard: 1,
                events_done: 42,
            },
            ProbeEvent::ShardRestarted {
                at: Tick(15),
                shard: 1,
                attempt: 1,
                replayed: 40,
            },
            ProbeEvent::ShardAbandoned {
                at: Tick(16),
                shard: 2,
                lost: 2,
                rerouted: 5,
            },
        ];
        let text = render_timeline(&events);
        assert!(text.contains("CRASH   b2 (3 orphans)"));
        assert!(text.contains("bootfail r7 (attempt 1)"));
        assert!(text.contains("retry   r7 attempt 2 at t=14"));
        assert!(text.contains("reject  r8 by b0"));
        assert!(text.contains("redisp  r4 b2 -> b5 (level 6)"));
        assert!(text.contains("DROP    r9 (queue_timeout)"));
        assert!(text.contains("recover b2 done (2 redispatched, 1 lost)"));
        assert!(text.contains("KILL    shard 1 (42 events journaled)"));
        assert!(text.contains("resume  shard 1 attempt 1 (40 events replayed)"));
        assert!(text.contains("ABANDON shard 2 (2 lost, 5 rerouted)"));
        assert!(text.contains(
            "-- faults: 1 crashes, 1 boot failures, 1 retries, 1 rejections, 1 dropped, 1 redispatched, 3 lost"
        ));
        assert!(text.contains("-- shards: 1 kills, 1 restarts, 1 abandoned"));
    }
}
