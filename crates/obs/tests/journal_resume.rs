//! End-to-end crash-recovery properties: a journal cut anywhere — at any
//! event prefix or any *byte* offset — recovers to a snapshot whose resumed
//! run reproduces the uninterrupted trace, cost, and JSONL stream
//! byte-for-byte.

use dbp_core::algorithms::indexed::{IndexedBestFit, IndexedFirstFit};
use dbp_core::algorithms::{BestFit, FirstFit, ModifiedFirstFit, NextFit, RandomFit};
use dbp_core::prelude::*;
use dbp_obs::journal::{parse_journal, FsyncPolicy, JournalProbe};
use dbp_obs::prelude::*;
use proptest::prelude::*;
use proptest::TestCaseError;

fn selectors(seed: u64) -> [SelectorFactory; 7] {
    [
        SelectorFactory::new("FF", || Box::new(FirstFit::new())),
        SelectorFactory::new("BF", || Box::new(BestFit::new())),
        SelectorFactory::new("NF", || Box::new(NextFit::new())),
        SelectorFactory::new("MFF", || Box::new(ModifiedFirstFit::new(4))),
        SelectorFactory::new("IFF", || Box::new(IndexedFirstFit::new())),
        SelectorFactory::new("IBF", || Box::new(IndexedBestFit::new())),
        SelectorFactory::new("RF", move || Box::new(RandomFit::seeded(seed))),
    ]
}

fn build_instance(raw: &[(u64, u64, u64)]) -> Instance {
    let mut b = InstanceBuilder::new(10);
    for &(a, len, size) in raw {
        b.add(a, a + len, size);
    }
    b.build().unwrap()
}

proptest! {
    /// The satellite property from the issue: resuming from a snapshot
    /// taken at *every* event prefix yields an identical final trace,
    /// cost, and JSONL stream (journal prefix + continuation, byte-wise).
    #[test]
    fn resume_at_every_event_prefix_is_jsonl_byte_identical(
        raw in proptest::collection::vec((0u64..40, 1u64..25, 1u64..10), 1..10),
        seed in 0u64..1_000,
    ) {
        let inst = build_instance(&raw);
        for factory in &selectors(seed) {
            let mut sel = factory.build();
            // The name recovery must match is the selector's own (the
            // indexed variants report their naive twin's name by design).
            let alg = sel.name();
            let mut log = EventLog::new();
            let full_trace = simulate_probed(&inst, &mut *sel, &mut log);
            let events = log.into_events();
            let full_jsonl = events_to_jsonl(&events);
            for cut in 0..=events.len() {
                let rec = snapshot_from_events(&inst, alg, &events[..cut])
                    .map_err(|e| TestCaseError::Fail(
                        format!("{} cut {cut}: {e}", factory.name())))?;
                prop_assert!(rec.events_used <= cut);
                let mut sel2 = factory.build();
                let mut log2 = EventLog::new();
                let trace =
                    simulate_resumed_probed(&inst, &mut *sel2, &mut log2, &rec.snapshot)
                        .map_err(|e| TestCaseError::Fail(
                            format!("{} cut {cut}: resume: {e}", factory.name())))?;
                prop_assert_eq!(&trace, &full_trace, "{} trace diverged at {}", factory.name(), cut);
                prop_assert_eq!(
                    trace.total_cost_ticks(),
                    full_trace.total_cost_ticks()
                );
                let mut combined = events_to_jsonl(&events[..rec.events_used]);
                combined.push_str(&events_to_jsonl(&log2.into_events()));
                prop_assert_eq!(
                    combined.as_bytes(),
                    full_jsonl.as_bytes(),
                    "{} JSONL stream diverged at {}",
                    factory.name(),
                    cut
                );
            }
        }
    }

    /// The same property through the on-disk WAL: truncate the journal
    /// *file* at arbitrary byte offsets (simulating SIGKILL mid-append),
    /// read it torn-tolerantly, recover, resume, and demand byte-identical
    /// JSONL.
    #[test]
    fn journal_file_cut_at_any_byte_recovers_exactly(
        raw in proptest::collection::vec((0u64..40, 1u64..25, 1u64..10), 1..8),
        stride in 1usize..23,
    ) {
        let inst = build_instance(&raw);
        let dir = std::env::temp_dir().join("dbp_obs_journal_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cut.wal");
        let mut probe = JournalProbe::create(&path, FsyncPolicy::Never).unwrap();
        let full_trace = simulate_probed(&inst, &mut FirstFit::new(), &mut probe);
        probe.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let mut log = EventLog::new();
        simulate_probed(&inst, &mut FirstFit::new(), &mut log);
        let full_jsonl = events_to_jsonl(log.events());
        for cut in (0..=bytes.len()).step_by(stride) {
            // Torn tails must decode (never error, never panic)...
            let contents = parse_journal(&bytes[..cut])
                .map_err(|e| TestCaseError::Fail(format!("byte cut {cut}: {e}")))?;
            // ...and the decoded prefix must recover and resume exactly.
            let rec = snapshot_from_events(&inst, "FF", &contents.events)
                .map_err(|e| TestCaseError::Fail(format!("byte cut {cut}: {e}")))?;
            let mut log2 = EventLog::new();
            let trace = simulate_resumed_probed(
                &inst, &mut FirstFit::new(), &mut log2, &rec.snapshot,
            ).map_err(|e| TestCaseError::Fail(format!("byte cut {cut}: resume: {e}")))?;
            prop_assert_eq!(&trace, &full_trace);
            let mut combined =
                events_to_jsonl(&contents.events[..rec.events_used]);
            combined.push_str(&events_to_jsonl(&log2.into_events()));
            prop_assert_eq!(combined, full_jsonl.clone(), "byte cut at {}", cut);
        }
    }
}
