//! Property tests for the span seam: whatever the workload, the recorded
//! span tree is well-nested, deterministic in structure for a fixed seed,
//! and invisible to the packing itself (`NoSpans` runs produce the same
//! trace and JSONL event stream byte for byte).

use dbp_core::algorithms::{BestFit, FirstFit, IndexedFirstFit};
use dbp_core::engine::{simulate, simulate_probed, simulate_traced};
use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::packer::BinSelector;
use dbp_core::probe::NoProbe;
use dbp_core::span::{stage, NoSpans, SpanEvent};
use dbp_obs::export::events_to_jsonl;
use dbp_obs::span::{SpanCollector, StageAggregator};
use dbp_obs::EventLog;
use proptest::prelude::*;

/// Random well-formed instances: 20–150 items, arrivals and durations
/// spread enough to interleave arrivals with departures.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0u64..500, 1u64..300, 5u64..60), 20..150).prop_map(|items| {
        let mut b = InstanceBuilder::new(100);
        for (at, dur, size) in items {
            b.add(at, at + dur, size);
        }
        b.build().expect("strategy builds valid instances")
    })
}

fn selector(which: u8) -> Box<dyn BinSelector> {
    match which % 3 {
        0 => Box::new(FirstFit::new()),
        1 => Box::new(BestFit::new()),
        _ => Box::new(IndexedFirstFit::new()),
    }
}

/// Every span's children lie strictly inside the parent's `[start, end]`
/// window, and parent indices always point backwards (a span's parent was
/// entered before it).
fn assert_well_nested(spans: &[SpanEvent]) {
    for (i, s) in spans.iter().enumerate() {
        if s.parent == SpanEvent::ROOT {
            continue;
        }
        let p = s.parent as usize;
        assert!(p < i, "parent {p} of span {i} must come earlier");
        let parent = &spans[p];
        assert!(s.start_ns >= parent.start_ns, "child starts before parent");
        assert!(s.end_ns() <= parent.end_ns(), "child outlives parent");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn span_trees_are_well_nested(
        inst in instance_strategy(),
        which in 0u8..3,
    ) {
        let mut spans = SpanCollector::new(0);
        let mut sel = selector(which);
        simulate_traced(&inst, &mut *sel, &mut NoProbe, &mut spans);
        let spans = spans.spans();
        prop_assert!(!spans.is_empty());
        assert_well_nested(spans);
        // The engine emits exactly one arrival (with decide + place
        // nested) and one departure per item.
        let count = |name| spans.iter().filter(|s| s.name == name).count();
        prop_assert_eq!(count(stage::ARRIVAL), inst.len());
        prop_assert_eq!(count(stage::DECIDE), inst.len());
        prop_assert_eq!(count(stage::PLACE), inst.len());
        prop_assert_eq!(count(stage::DEPARTURE), inst.len());
    }

    #[test]
    fn span_shape_is_deterministic_for_a_fixed_seed(
        inst in instance_strategy(),
        which in 0u8..3,
    ) {
        let run = || {
            let mut spans = SpanCollector::new(0);
            let mut sel = selector(which);
            simulate_traced(&inst, &mut *sel, &mut NoProbe, &mut spans);
            spans.shape()
        };
        // Timings differ between runs; the tree (names + parents) must not.
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn noop_spans_leave_trace_and_event_stream_byte_identical(
        inst in instance_strategy(),
        which in 0u8..3,
    ) {
        let mut sel = selector(which);
        let plain = simulate(&inst, &mut *sel);

        let mut sel = selector(which);
        let noop = simulate_traced(&inst, &mut *sel, &mut NoProbe, NoSpans);
        prop_assert_eq!(&plain, &noop);

        // The live recorder must not perturb the packing either, and the
        // JSONL event stream (the engine's full observable behavior) must
        // come out byte-identical with and without spans.
        let mut log_plain = EventLog::new();
        let mut sel = selector(which);
        simulate_probed(&inst, &mut *sel, &mut log_plain);

        let mut log_traced = EventLog::new();
        let mut spans = SpanCollector::new(0);
        let mut sel = selector(which);
        let traced = simulate_traced(&inst, &mut *sel, &mut log_traced, &mut spans);
        prop_assert_eq!(&plain, &traced);
        prop_assert_eq!(
            events_to_jsonl(log_plain.events()),
            events_to_jsonl(log_traced.events())
        );
    }

    #[test]
    fn aggregator_and_collector_agree_on_stage_totals(
        inst in instance_strategy(),
    ) {
        let mut collector = SpanCollector::new(3);
        let mut sel = FirstFit::new();
        simulate_traced(&inst, &mut sel, &mut NoProbe, &mut collector);

        let mut agg = StageAggregator::new(3);
        let mut sel = FirstFit::new();
        simulate_traced(&inst, &mut sel, &mut NoProbe, &mut agg);

        // Same structure ⇒ same counts per stage (durations differ — they
        // are separate wall-clock runs).
        let from_collector = collector.stage_breakdown();
        let streamed = agg.finish();
        let counts = |b: &dbp_obs::StageBreakdown| -> Vec<(&'static str, u64)> {
            b.stages().map(|(name, s)| (name, s.count)).collect()
        };
        prop_assert_eq!(counts(&from_collector), counts(&streamed));
    }
}
