//! End-to-end tests of the `dbp` binary: every subcommand through a real
//! process, files round-tripping through a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dbp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dbp"))
        .args(args)
        .output()
        .expect("failed to spawn dbp")
}

fn tmpfile(name: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("dbp-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    (p.clone(), p.to_string_lossy().into_owned())
}

fn stdout(o: &Output) -> String {
    assert!(
        o.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    );
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn help_prints_usage() {
    let out = dbp(&["help"]);
    let text = stdout(&out);
    assert!(text.contains("USAGE"));
    assert!(text.contains("adversary"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dbp(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_run_compare_analyze_opt_pipeline() {
    let (_, path) = tmpfile("mu_trace.json");
    let out = dbp(&["generate", "mu", "--mu", "6", "--n", "80", "--out", &path]);
    assert!(stdout(&out).contains("wrote 80 items"));

    let out = dbp(&["run", &path, "--algo", "ff", "--validate", "--gantt"]);
    let text = stdout(&out);
    assert!(text.contains("algorithm      : FF"));
    assert!(text.contains("cost / LB"));
    assert!(text.contains("open bins:"), "gantt sparkline missing");

    let out = dbp(&["compare", &path]);
    let text = stdout(&out);
    for algo in ["FF", "BF", "WF", "NF", "LF", "MI", "RF", "MFF(8)", "HFF(4)"] {
        assert!(text.contains(algo), "missing {algo} in compare output");
    }

    let out = dbp(&["analyze", &path]);
    let text = stdout(&out);
    assert!(text.contains("analysis clean"));
    assert!(text.contains("Theorem 5 check"));

    let out = dbp(&["opt", &path]);
    assert!(stdout(&out).contains("OPT_total"));
}

#[test]
fn adversary_thm1_produces_exact_witness() {
    let (_, path) = tmpfile("thm1.json");
    let out = dbp(&["adversary", "thm1", "--k", "4", "--mu", "5", "--out", &path]);
    let text = stdout(&out);
    assert!(
        text.contains("ratio 5/2") || text.contains("ratio 20/8"),
        "{text}"
    );

    // The witness runs and yields the forced cost.
    let out = dbp(&["run", &path, "--algo", "bf"]);
    assert!(stdout(&out).contains("total cost     : 20000 bin-ticks"));
}

#[test]
fn adversary_adaptive_works_against_named_algorithm() {
    let (_, path) = tmpfile("adaptive.json");
    let out = dbp(&[
        "adversary",
        "adaptive",
        "--k",
        "3",
        "--mu",
        "4",
        "--algo",
        "wf",
        "--out",
        &path,
    ]);
    let text = stdout(&out);
    assert!(text.contains("3 bins opened"), "{text}");
    let out = dbp(&["opt", &path]);
    assert!(stdout(&out).contains("exact"));
}

#[test]
fn run_saves_trace_and_prints_fleet() {
    let (_, trace_in) = tmpfile("wl.json");
    let (_, trace_out) = tmpfile("trace_out.json");
    let _ = dbp(&[
        "generate", "mu", "--mu", "4", "--n", "40", "--out", &trace_in,
    ]);
    let out = dbp(&[
        "run",
        &trace_in,
        "--algo",
        "bf",
        "--fleet",
        "--save-trace",
        &trace_out,
    ]);
    let text = stdout(&out);
    assert!(text.contains("fleet"));
    assert!(text.contains("bin lifetimes"));
    assert!(text.contains("trace saved"));
    let body = std::fs::read_to_string(&trace_out).unwrap();
    assert!(body.contains("\"algorithm\":\"BF\""));
}

#[test]
fn generate_scenario_by_name() {
    let (_, path) = tmpfile("scenario.json");
    let out = dbp(&[
        "generate",
        "scenario",
        "--name",
        "launch-day",
        "--seed",
        "2",
        "--out",
        &path,
    ]);
    assert!(stdout(&out).contains("wrote"));
    let out = dbp(&["run", &path, "--algo", "mff"]);
    assert!(stdout(&out).contains("algorithm      : MFF"));

    let out = dbp(&["generate", "scenario", "--name", "nope", "--out", &path]);
    assert!(!out.status.success());
}

#[test]
fn stats_scenarios_and_svg() {
    let (_, path) = tmpfile("svg_wl.json");
    let (_, svg_path) = tmpfile("trace.svg");
    let _ = dbp(&["generate", "mu", "--mu", "3", "--n", "30", "--out", &path]);
    let out = dbp(&["stats", &path]);
    let text = stdout(&out);
    assert!(text.contains("total demand"));
    assert!(text.contains("µ ="));

    let out = dbp(&["run", &path, "--algo", "ff", "--svg", &svg_path]);
    assert!(stdout(&out).contains("svg saved"));
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.matches("<rect").count() >= 30);

    let out = dbp(&["scenarios"]);
    let text = stdout(&out);
    for name in [
        "steady",
        "diurnal-day",
        "launch-day",
        "night-owls",
        "multi-region",
    ] {
        assert!(text.contains(name), "missing scenario {name}");
    }
}

#[test]
fn run_rejects_unknown_algorithm() {
    let (_, path) = tmpfile("r.json");
    let _ = dbp(&["generate", "mu", "--mu", "2", "--n", "10", "--out", &path]);
    let out = dbp(&["run", &path, "--algo", "quantum"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}

#[test]
fn opt_timeline_prints_profiles() {
    let (_, path) = tmpfile("tl.json");
    let _ = dbp(&["generate", "mu", "--mu", "3", "--n", "25", "--out", &path]);
    let out = dbp(&["opt", &path, "--timeline"]);
    let text = stdout(&out);
    assert!(text.contains("OPT(R,t) profile"));
    assert!(text.contains("top: OPT, bottom: FF"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = dbp(&["run", "/nonexistent/trace.json"]);
    assert!(!out.status.success());
}
