//! End-to-end tests of the crash-recovery CLI surface: `run --journal` /
//! `--run-manifest` and the `recover` subcommand, through a real process.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dbp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dbp"))
        .args(args)
        .output()
        .expect("failed to spawn dbp")
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbp-recover-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn path(dir: &std::path::Path, name: &str) -> String {
    dir.join(name).to_string_lossy().into_owned()
}

fn stdout(o: &Output) -> String {
    assert!(
        o.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    );
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr_of_failure(o: &Output) -> String {
    assert!(
        !o.status.success(),
        "command unexpectedly succeeded:\nstdout: {}",
        String::from_utf8_lossy(&o.stdout)
    );
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// Generate an instance and run it with a journal + manifest; returns
/// (trace path, journal path, manifest path).
fn journaled_run(dir: &std::path::Path, stem: &str) -> (String, String, String) {
    let tr = path(dir, &format!("{stem}.json"));
    let wal = path(dir, &format!("{stem}.wal"));
    let man = path(dir, &format!("{stem}.manifest.json"));
    stdout(&dbp(&[
        "generate", "mu", "--mu", "10", "--n", "60", "--seed", "7", "--out", &tr,
    ]));
    // `--fsync never`: these tests exercise the format, not durability.
    let out = stdout(&dbp(&[
        "run",
        &tr,
        "--algo",
        "ff",
        "--journal",
        &wal,
        "--fsync",
        "never",
        "--run-manifest",
        &man,
    ]));
    assert!(out.contains("journal saved to"), "{out}");
    assert!(out.contains("manifest saved to"), "{out}");
    (tr, wal, man)
}

#[test]
fn recover_audits_a_clean_journal_against_its_manifest() {
    let dir = tmpdir();
    let (tr, wal, man) = journaled_run(&dir, "clean");
    let out = stdout(&dbp(&["recover", &wal, "--trace", &tr, "--manifest", &man]));
    assert!(out.contains("journal        : clean"), "{out}");
    assert!(out.contains("complete run"), "{out}");
    assert!(out.contains("cost check     : OK"), "{out}");
    assert!(out.contains("digest check   : OK"), "{out}");
    assert!(out.contains("manifest check : OK"), "{out}");
}

#[test]
fn recover_resumes_a_torn_journal_to_a_byte_identical_stream() {
    let dir = tmpdir();
    let (tr, wal, man) = journaled_run(&dir, "torn");
    // Reference JSONL stream from an uninterrupted probed run.
    let reference = path(&dir, "reference.jsonl");
    stdout(&dbp(&[
        "run",
        &tr,
        "--algo",
        "ff",
        "--trace-events",
        &reference,
    ]));
    // Tear the journal mid-frame, as a SIGKILL mid-append would.
    let bytes = std::fs::read(&wal).unwrap();
    let torn = path(&dir, "torn.wal");
    std::fs::write(&torn, &bytes[..bytes.len() / 2 - 3]).unwrap();
    let combined = path(&dir, "combined.jsonl");
    let out = stdout(&dbp(&[
        "recover",
        &torn,
        "--trace",
        &tr,
        "--manifest",
        &man,
        "--resume-jsonl",
        &combined,
        "--repair",
    ]));
    assert!(out.contains("torn tail"), "{out}");
    assert!(out.contains("repaired"), "{out}");
    // The resumed run recomputes the exact recorded cost...
    assert!(out.contains("cost check     : OK"), "{out}");
    // ...and prefix + continuation is the uninterrupted stream, bytewise.
    assert_eq!(
        std::fs::read(&combined).unwrap(),
        std::fs::read(&reference).unwrap(),
        "combined stream differs from the uninterrupted run"
    );
    // --repair truncated the torn frame: the file now reads back clean.
    let out = stdout(&dbp(&["recover", &torn]));
    assert!(out.contains("journal        : clean"), "{out}");
}

#[test]
fn recover_fails_on_a_manifest_that_disagrees() {
    let dir = tmpdir();
    let (tr, wal, man) = journaled_run(&dir, "diff");
    // Tamper with the recorded cost.
    let body = std::fs::read_to_string(&man).unwrap();
    let cost: u128 = body
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"total_cost_ticks\": "))
        .and_then(|v| v.trim_end_matches(',').parse().ok())
        .expect("manifest records a cost");
    let bad = path(&dir, "bad.manifest.json");
    std::fs::write(
        &bad,
        body.replace(&cost.to_string(), &(cost + 1).to_string()),
    )
    .unwrap();
    let err = stderr_of_failure(&dbp(&["recover", &wal, "--manifest", &bad]));
    assert!(err.contains("disagrees"), "{err}");
    assert!(err.contains("total cost"), "{err}");
    // A wrong --algo is caught through the manifest's recorded algorithm.
    let err = stderr_of_failure(&dbp(&[
        "recover",
        &wal,
        "--trace",
        &tr,
        "--manifest",
        &man,
        "--algo",
        "bf",
    ]));
    assert!(err.contains("algorithm: manifest records FF"), "{err}");
    // An incomplete journal cannot satisfy a cost check without --trace.
    let bytes = std::fs::read(&wal).unwrap();
    let torn = path(&dir, "diff-torn.wal");
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
    let err = stderr_of_failure(&dbp(&["recover", &torn, "--manifest", &man]));
    assert!(err.contains("incomplete prefix"), "{err}");
}

#[test]
fn recover_reexecutes_fault_journals_and_rejects_foreign_plans() {
    let dir = tmpdir();
    let tr = path(&dir, "faulty.json");
    stdout(&dbp(&[
        "generate", "mu", "--mu", "10", "--n", "60", "--seed", "7", "--out", &tr,
    ]));
    let wal = path(&dir, "faulty.wal");
    stdout(&dbp(&[
        "run",
        &tr,
        "--algo",
        "ff",
        "--faults",
        "42",
        "--journal",
        &wal,
        "--fsync",
        "never",
    ]));
    let reference = path(&dir, "faulty-ref.jsonl");
    stdout(&dbp(&[
        "run",
        &tr,
        "--algo",
        "ff",
        "--faults",
        "42",
        "--trace-events",
        &reference,
    ]));
    // Tear the journal and recover by verified re-execution.
    let bytes = std::fs::read(&wal).unwrap();
    let torn = path(&dir, "faulty-torn.wal");
    std::fs::write(&torn, &bytes[..bytes.len() * 2 / 3]).unwrap();
    let combined = path(&dir, "faulty-combined.jsonl");
    let out = stdout(&dbp(&[
        "recover",
        &torn,
        "--trace",
        &tr,
        "--faults",
        "42",
        "--resume-jsonl",
        &combined,
    ]));
    assert!(out.contains("events verified"), "{out}");
    assert_eq!(
        std::fs::read(&combined).unwrap(),
        std::fs::read(&reference).unwrap(),
        "combined fault stream differs from the uninterrupted run"
    );
    // A journal from one plan must not recover under another.
    let err = stderr_of_failure(&dbp(&["recover", &torn, "--trace", &tr, "--faults", "43"]));
    assert!(err.contains("diverges"), "{err}");
}

#[test]
fn journal_flag_validation() {
    let dir = tmpdir();
    let tr = path(&dir, "flags.json");
    stdout(&dbp(&[
        "generate", "mu", "--mu", "10", "--n", "20", "--seed", "1", "--out", &tr,
    ]));
    // --fsync without --journal is rejected.
    let err = stderr_of_failure(&dbp(&["run", &tr, "--algo", "ff", "--fsync", "always"]));
    assert!(err.contains("--fsync"), "{err}");
    // A bad --fsync spelling is rejected.
    let wal = path(&dir, "flags.wal");
    let err = stderr_of_failure(&dbp(&[
        "run",
        &tr,
        "--algo",
        "ff",
        "--journal",
        &wal,
        "--fsync",
        "sometimes",
    ]));
    assert!(err.contains("--fsync"), "{err}");
    // The EveryN policy parses and runs.
    let out = stdout(&dbp(&[
        "run",
        &tr,
        "--algo",
        "ff",
        "--journal",
        &wal,
        "--fsync",
        "8",
    ]));
    assert!(out.contains("journal saved to"), "{out}");
    // --resume-jsonl without --trace cannot work.
    let err = stderr_of_failure(&dbp(&["recover", &wal, "--resume-jsonl", &wal]));
    assert!(err.contains("--trace"), "{err}");
}

// ---------------------------------------------------------------------
// Format-v2 (vector) journals: append → SIGKILL → `dbp recover` with the
// exact per-dimension cost audit; v1 scalar journals keep their path.

/// Write a 3-dimensional journal exactly as a daemon shard would — then
/// "SIGKILL" it: the writer is dropped mid-stream, never `finish`ed.
/// Returns the journal path and the exact per-dimension demand-ticks of
/// the departed items.
fn vector_journal_killed_midstream(dir: &std::path::Path, stem: &str) -> (String, [u128; 3]) {
    use dbp_core::demand::VSize;
    use dbp_core::item::{GItem, ItemId};
    use dbp_core::StreamingEngine;
    use dbp_obs::journal::{FsyncPolicy, JournalProbe};

    let wal = path(dir, &format!("{stem}.wal"));
    let probe = JournalProbe::create_dims(std::path::Path::new(&wal), FsyncPolicy::Never, 3)
        .expect("journal opens");
    let mut eng = StreamingEngine::new(
        VSize::<3>([1000, 800, 1000]),
        dbp_core::algorithms::selector_for::<VSize<3>>("FF").unwrap(),
        probe,
    );
    // Three sessions with heterogeneous footprints; the first two depart
    // inside the journaled window, the third is still resident at the
    // kill. Demand-ticks below count the departed only.
    let items: [(u64, u64, [u64; 3]); 3] = [
        (0, 40, [125, 90, 220]),
        (5, 25, [240, 170, 680]),
        (10, 900, [65, 45, 120]),
    ];
    let mut ticks = [0u128; 3];
    for (i, &(a, dep, size)) in items.iter().enumerate() {
        eng.push_arrival(
            GItem::<VSize<3>> {
                id: ItemId(i as u32),
                arrival: dbp_core::time::Tick(a),
                departure: dbp_core::time::Tick(dep),
                size: VSize(size),
                region: dbp_core::item::RegionId::GLOBAL,
            },
            dbp_core::time::Tick(a),
        )
        .unwrap();
    }
    // Advance past the first two departures so they hit the journal.
    eng.push_arrival(
        GItem::<VSize<3>> {
            id: ItemId(3),
            arrival: dbp_core::time::Tick(50),
            departure: dbp_core::time::Tick(60),
            size: VSize([1, 1, 1]),
            region: dbp_core::item::RegionId::GLOBAL,
        },
        dbp_core::time::Tick(50),
    )
    .unwrap();
    for &(a, dep, size) in &items[..2] {
        let span = (dep - a) as u128;
        for d in 0..3 {
            ticks[d] += size[d] as u128 * span;
        }
    }
    drop(eng); // SIGKILL: no finish, no drain
    (wal, ticks)
}

#[test]
fn recover_audits_a_killed_vector_journal_per_dimension() {
    let dir = tmpdir();
    let (wal, ticks) = vector_journal_killed_midstream(&dir, "vec-kill");
    let out = stdout(&dbp(&["recover", &wal]));
    assert!(out.contains("journal        : clean"), "{out}");
    assert!(out.contains("dimensions     : 3"), "{out}");
    assert!(
        out.contains("closed bins only — run was interrupted"),
        "{out}"
    );
    for (d, t) in ticks.iter().enumerate() {
        assert!(
            out.contains(&format!("dim {d} served   : {t} demand-ticks")),
            "missing exact dim {d} audit in:\n{out}"
        );
    }
    assert!(out.contains("resident       : 2 items"), "{out}");
}

#[test]
fn vector_journals_reject_scalar_only_resume() {
    let dir = tmpdir();
    let (wal, _) = vector_journal_killed_midstream(&dir, "vec-resume");
    let tr = path(&dir, "vec-resume.json");
    stdout(&dbp(&[
        "generate", "mu", "--mu", "10", "--n", "20", "--seed", "3", "--out", &tr,
    ]));
    let err = stderr_of_failure(&dbp(&["recover", &wal, "--trace", &tr]));
    assert!(err.contains("scalar-only"), "{err}");
    assert!(err.contains("3-dimensional"), "{err}");
}

#[test]
fn torn_vector_journal_reports_and_repairs() {
    let dir = tmpdir();
    let (wal, ticks) = vector_journal_killed_midstream(&dir, "vec-torn");
    // Tear the tail: chop a few bytes off the final record.
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
    let out = stdout(&dbp(&["recover", &wal]));
    assert!(out.contains("torn tail"), "{out}");
    assert!(out.contains("dimensions     : 3"), "{out}");
    let out = stdout(&dbp(&["recover", &wal, "--repair"]));
    assert!(out.contains("repaired       : truncated to"), "{out}");
    // After repair the journal is clean and the audit is unchanged for
    // every fully-journaled dimension total.
    let out = stdout(&dbp(&["recover", &wal]));
    assert!(out.contains("journal        : clean"), "{out}");
    assert!(
        out.contains(&format!("dim 0 served   : {} demand-ticks", ticks[0])),
        "{out}"
    );
}

#[test]
fn serve_shard_set_audit_aggregates_vector_dimensions() {
    let dir = tmpdir();
    // Two shards of the same daemon: BASE.shard0 and BASE.shard1.
    let base = path(&dir, "vecdaemon.wal");
    let (s0, t0) = vector_journal_killed_midstream(&dir, "vecdaemon.wal.shard0-stage");
    let (s1, t1) = vector_journal_killed_midstream(&dir, "vecdaemon.wal.shard1-stage");
    std::fs::rename(&s0, format!("{base}.shard0")).unwrap();
    std::fs::rename(&s1, format!("{base}.shard1")).unwrap();
    let out = stdout(&dbp(&["recover", &base, "--serve-shards", "2"]));
    assert!(out.contains("shard  0"), "{out}");
    assert!(out.contains("shard  1"), "{out}");
    for d in 0..3usize {
        let total = t0[d] + t1[d];
        assert!(
            out.contains(&format!("dim {d} served   : {total} demand-ticks")),
            "missing aggregated dim {d} in:\n{out}"
        );
    }
    assert!(out.contains("\"dims\":3"), "{out}");
    assert!(out.contains("\"dim_demand_ticks\":["), "{out}");
}

/// A v1 scalar journal written today still replays through the scalar
/// path — no dims line, no per-dimension rows, byte-stable output shape.
#[test]
fn v1_scalar_journals_keep_the_scalar_recover_path() {
    let dir = tmpdir();
    let (_, wal, _) = journaled_run(&dir, "v1-compat");
    let header = {
        let mut f = std::fs::File::open(&wal).unwrap();
        use std::io::Read;
        let mut m = [0u8; 8];
        f.read_exact(&mut m).unwrap();
        m
    };
    assert_eq!(&header, b"DBPWAL01", "scalar journals must stay format v1");
    let out = stdout(&dbp(&["recover", &wal]));
    assert!(out.contains("journal        : clean"), "{out}");
    assert!(
        !out.contains("dimensions"),
        "scalar output grew a dims line:\n{out}"
    );
    assert!(!out.contains("dim 0 served"), "{out}");
}
