//! End-to-end tests of `dbp cluster`: sharded dispatch through a real
//! process, per-shard journals replayed by `dbp recover` to the recorded
//! aggregate cost, labelled metrics, and 1-shard equivalence to `dbp run`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dbp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dbp"))
        .args(args)
        .output()
        .expect("failed to spawn dbp")
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbp-cluster-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn path(dir: &std::path::Path, name: &str) -> String {
    dir.join(name).to_string_lossy().into_owned()
}

fn stdout(o: &Output) -> String {
    assert!(
        o.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    );
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn field(out: &str, key: &str) -> String {
    out.lines()
        .find(|l| l.starts_with(key))
        .unwrap_or_else(|| panic!("no '{key}' line in:\n{out}"))
        .split(':')
        .nth(1)
        .unwrap()
        .trim()
        .to_string()
}

fn generate(dir: &std::path::Path, stem: &str) -> String {
    let tr = path(dir, &format!("{stem}.json"));
    stdout(&dbp(&[
        "generate", "scenario", "--name", "steady", "--seed", "5", "--out", &tr,
    ]));
    tr
}

#[test]
fn shard_journals_replay_to_the_recorded_aggregate_cost() {
    let dir = tmpdir();
    let tr = generate(&dir, "replay");
    let wal = path(&dir, "replay.wal");
    let man = path(&dir, "replay.manifest.json");
    let out = stdout(&dbp(&[
        "cluster",
        &tr,
        "--algo",
        "ff",
        "--shards",
        "3",
        "--router",
        "hash",
        "--journal",
        &wal,
        "--fsync",
        "never",
        "--run-manifest",
        &man,
    ]));
    let busy: u128 = field(&out, "busy ticks").parse().unwrap();

    // Every shard journal is a clean, complete run; their replayed costs
    // sum exactly to the aggregate the cluster reported and recorded.
    let mut replayed_sum: u128 = 0;
    for s in 0..3 {
        let rec = stdout(&dbp(&["recover", &format!("{wal}.shard{s}")]));
        assert!(rec.contains("journal        : clean"), "{rec}");
        let cost_line = field(&rec, "replayed cost");
        assert!(cost_line.ends_with("(complete run)"), "{cost_line}");
        replayed_sum += cost_line
            .split_whitespace()
            .next()
            .unwrap()
            .parse::<u128>()
            .unwrap();
    }
    assert_eq!(replayed_sum, busy);

    let manifest = std::fs::read_to_string(&man).unwrap();
    assert!(
        manifest.contains(&format!("\"total_cost_ticks\": {busy}")),
        "manifest must record the exact aggregate cost:\n{manifest}"
    );
}

#[test]
fn one_shard_cluster_matches_plain_run_output() {
    let dir = tmpdir();
    let tr = generate(&dir, "one");
    let plain = stdout(&dbp(&[
        "run",
        &tr,
        "--algo",
        "bf",
        "--run-manifest",
        &path(&dir, "plain.manifest.json"),
    ]));
    for router in ["hash", "affinity", "least-loaded"] {
        let clustered = stdout(&dbp(&[
            "cluster", &tr, "--algo", "bf", "--shards", "1", "--router", router,
        ]));
        assert_eq!(
            field(&clustered, "busy ticks"),
            field(&plain, "total cost").replace(" bin-ticks", ""),
            "{router}"
        );
        assert_eq!(
            field(&clustered, "instance digest"),
            field(&plain, "instance digest"),
            "{router}"
        );
        assert_eq!(field(&clustered, "sessions"), field(&plain, "items"));
    }
}

#[test]
fn cluster_metrics_carry_per_shard_labels_and_totals() {
    let dir = tmpdir();
    let tr = generate(&dir, "metrics");
    let prom = path(&dir, "metrics.prom");
    let out = stdout(&dbp(&[
        "cluster",
        &tr,
        "--algo",
        "ff",
        "--shards",
        "4",
        "--router",
        "least-loaded",
        "--metrics",
        &prom,
    ]));
    let sessions: u64 = field(&out, "sessions").parse().unwrap();
    let text = std::fs::read_to_string(&prom).unwrap();
    assert!(text.contains("dbp_cluster_shards 4"), "{text}");
    assert!(
        text.contains(&format!("dbp_cluster_sessions_served_total {sessions}")),
        "{text}"
    );
    for s in 0..4 {
        assert!(
            text.contains(&format!("{{shard=\"{s}\"}}")),
            "no shard {s} series in:\n{text}"
        );
    }
}

#[test]
fn faulted_cluster_reports_a_conserved_ledger() {
    let dir = tmpdir();
    let tr = generate(&dir, "faults");
    let out = stdout(&dbp(&[
        "cluster", &tr, "--algo", "ff", "--shards", "3", "--router", "affinity", "--faults", "42",
    ]));
    assert_eq!(field(&out, "ledger"), "conserved");
    let total: u64 = field(&out, "sessions").parse().unwrap();
    let served: u64 = field(&out, "served").parse().unwrap();
    let dropped: u64 = field(&out, "dropped").parse().unwrap();
    let lost: u64 = field(&out, "lost to crash").parse().unwrap();
    assert_eq!(served + dropped + lost, total);
}

#[test]
fn batch_policies_do_not_change_the_bill() {
    let dir = tmpdir();
    let tr = generate(&dir, "batch");
    let mut bills = Vec::new();
    for batch in ["event", "7", "whole"] {
        let out = stdout(&dbp(&[
            "cluster", &tr, "--algo", "mff", "--shards", "2", "--router", "hash", "--batch", batch,
        ]));
        bills.push((field(&out, "busy ticks"), field(&out, "bill")));
    }
    assert_eq!(bills[0], bills[1]);
    assert_eq!(bills[1], bills[2]);
}

#[test]
fn shard_faulted_cluster_heals_and_conserves_the_extended_ledger() {
    let dir = tmpdir();
    let tr = generate(&dir, "shardfaults");
    let prom = path(&dir, "shardfaults.prom");
    let man = path(&dir, "shardfaults.manifest.json");
    let out = stdout(&dbp(&[
        "cluster",
        &tr,
        "--algo",
        "ff",
        "--shards",
        "4",
        "--router",
        "hash",
        "--shard-faults",
        "7",
        "--metrics",
        &prom,
        "--run-manifest",
        &man,
    ]));
    assert_eq!(field(&out, "ledger"), "conserved");
    let total: u64 = field(&out, "sessions").parse().unwrap();
    let served: u64 = field(&out, "served").parse().unwrap();
    let dropped: u64 = field(&out, "dropped").parse().unwrap();
    let lost: u64 = field(&out, "lost to kills").parse().unwrap();
    let rerouted: u64 = field(&out, "rerouted").parse().unwrap();
    assert_eq!(served + dropped + lost + rerouted, total);
    // A seeded 4-shard plan lands kills; the footer mirrors `dbp trace`.
    assert!(out.contains("-- shards:"), "{out}");

    let text = std::fs::read_to_string(&prom).unwrap();
    for s in 0..4 {
        assert!(
            text.contains(&format!("dbp_cluster_shard_up{{shard=\"{s}\"}}")),
            "no shard {s} health gauge in:\n{text}"
        );
    }
    assert!(text.contains("dbp_cluster_shard_restarts_total"), "{text}");

    let manifest = std::fs::read_to_string(&man).unwrap();
    assert!(manifest.contains("\"shard_restarts\""), "{manifest}");
    assert!(
        manifest.contains("\"ledger_conserved\": true"),
        "{manifest}"
    );
}

#[test]
fn zero_kill_shard_fault_plan_matches_the_plain_cluster_bill() {
    let dir = tmpdir();
    let tr = generate(&dir, "zerokill");
    let plan = path(&dir, "none.json");
    std::fs::write(&plan, r#"{"seed":0,"kills":[]}"#).unwrap();
    let plain = stdout(&dbp(&[
        "cluster", &tr, "--algo", "ff", "--shards", "3", "--router", "hash",
    ]));
    let healed = stdout(&dbp(&[
        "cluster",
        &tr,
        "--algo",
        "ff",
        "--shards",
        "3",
        "--router",
        "hash",
        "--shard-faults",
        &plan,
    ]));
    assert_eq!(field(&healed, "busy ticks"), field(&plain, "busy ticks"));
    assert_eq!(field(&healed, "bill"), field(&plain, "bill"));
    assert_eq!(field(&healed, "ledger"), "conserved");
    assert!(!healed.contains("-- shards:"), "{healed}");
}

#[test]
fn zero_shards_is_a_clear_error() {
    let dir = tmpdir();
    let tr = generate(&dir, "zeroshards");
    let out = dbp(&["cluster", &tr, "--algo", "ff", "--shards", "0"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--shards must be at least 1"), "{err}");
}

#[test]
fn shard_faults_and_faults_are_mutually_exclusive() {
    let dir = tmpdir();
    let tr = generate(&dir, "exclusive");
    let out = dbp(&[
        "cluster",
        &tr,
        "--algo",
        "ff",
        "--shards",
        "2",
        "--faults",
        "1",
        "--shard-faults",
        "2",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mutually exclusive"), "{err}");
}
