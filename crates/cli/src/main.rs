//! `dbp` — command-line driver for the MinTotal DBP reproduction.
//!
//! ```text
//! dbp generate gaming --seed 1 --horizon 14400 --out trace.json
//! dbp generate mu --mu 10 --n 200 --out trace.json
//! dbp adversary thm1 --k 8 --mu 10 --out witness.json
//! dbp adversary thm2 --k 4 --mu 2 --n 8 --out witness.json
//! dbp run trace.json --algo ff [--validate] [--trace-events ev.jsonl] [--metrics m.prom]
//! dbp run trace.json --algo ff --faults 42          # seeded crash/flaky-boot injection
//! dbp run trace.json --algo ff --faults plan.json   # explicit fault plan
//! dbp run trace.json --algo ff --journal run.wal --run-manifest run.json
//! dbp recover run.wal --trace trace.json --manifest run.json
//! dbp trace ev.jsonl              # replay a JSONL event log as a timeline
//! dbp compare trace.json
//! dbp analyze trace.json          # §4.3 FF proof-machinery report
//! dbp opt trace.json              # OPT_total integral
//! ```

mod args;

use args::Args;
use dbp_adversary::{AdaptiveMuAdversary, Theorem1, Theorem2};
use dbp_core::algorithms::standard_factories;
use dbp_core::algorithms::{
    BestFit, ConstrainedFirstFit, FirstFit, HarmonicFit, LastFit, ModifiedFirstFit, MostItemsFit,
    NextFit, RandomFit, WorstFit,
};
use dbp_core::analysis::analyze_first_fit;
use dbp_core::bounds;
use dbp_core::engine::{
    simulate, simulate_probed, simulate_resumed_probed, simulate_validated,
    simulate_validated_probed,
};
use dbp_core::instance::Instance;
use dbp_core::metrics::summarize;
use dbp_core::packer::BinSelector;
use dbp_core::probe::{Probe, ProbeEvent};
use dbp_core::ratio::Ratio;
use dbp_opt::{opt_total, SolveMode};
use dbp_workloads::{
    generate, generate_mu_controlled, ArrivalKind, CloudGamingConfig, MuControlledConfig, Scenario,
};
use std::process::ExitCode;

const USAGE: &str = "\
dbp — MinTotal Dynamic Bin Packing (SPAA'14 reproduction)

USAGE:
  dbp generate gaming [--seed N] [--horizon TICKS] [--rate R] [--regions N] --out FILE
  dbp generate mu --mu N [--n ITEMS] [--seed N] --out FILE
  dbp generate scenario --name steady|diurnal-day|launch-day|night-owls|multi-region
               [--seed N] --out FILE
  dbp adversary thm1 --k N --mu N [--out FILE]
  dbp adversary thm2 --k N --mu N --n N [--out FILE]
  dbp adversary adaptive --k N --mu N --algo NAME [--out FILE]
  dbp run FILE --algo ff|bf|wf|nf|lf|mi|rf|hff|mff|mff-mu|cff
          [--hetero]                  # widen to the [gpu,cpu,mem] vector catalog
          [--validate] [--gantt] [--fleet] [--save-trace FILE] [--svg FILE]
          [--trace-events FILE.jsonl] [--metrics FILE.prom] [--timeseries FILE.csv]
          [--faults SEED|PLAN.json]   # resilient dispatch under injected faults
          [--journal FILE.wal] [--fsync always|never|N]   # crash-safe event journal
          [--run-manifest FILE.json]  # provenance + exact cost, for `recover`
  dbp cluster FILE --algo NAME --shards N [--router hash|affinity|least-loaded]
          [--hetero]                  # vector dispatch with per-dimension ledger
          [--batch event|whole|N] [--jobs N]
          [--trace-events FILE.jsonl] [--metrics FILE.prom]
          [--faults SEED|PLAN.json]   # per-shard fault plans (seed+shard / shared plan)
          [--shard-faults SEED|PLAN.json]  # kill shards mid-run; self-heal from journals
          [--journal FILE.wal] [--fsync always|never|N]   # one journal per shard: FILE.wal.shardK
          [--run-manifest FILE.json]  # merged provenance + exact aggregate cost
  dbp profile [FILE] [--algo NAME] [--shards N] [--router hash|affinity|least-loaded]
          [--batch event|whole|N] [--jobs N] [--items N] [--seed N]
          [--shard-faults SEED|PLAN.json]  # profile the self-healing engine instead
          [--trace-out FILE.json]     # Chrome-trace JSON (chrome://tracing, Perfetto)
          [--metrics FILE.prom]       # per-stage latency histograms
  dbp serve --shards N [--algo NAME] [--capacity W] [--router hash|least-loaded]
          [--dims D] [--capacities A,B,..]  # D-dimensional demands (demand:[..] on the wire)
          [--addr HOST:PORT] [--metrics-addr HOST:PORT]   # NDJSON ingest + Prometheus
          [--queue-capacity N] [--queue-timeout TICKS]    # bounded ingress + event-time shed
          [--backpressure block|shed] [--max-sessions N]
          [--journal BASE] [--fsync always|never|N]       # per-shard WAL: BASE.shardK
  dbp recover FILE.wal [--repair] [--manifest FILE.json]
          [--trace FILE] [--algo NAME] [--faults SEED|PLAN.json]
          [--resume-jsonl FILE.jsonl]
          [--serve-shards N]          # audit a daemon's BASE.shardK journal set
  dbp trace FILE.jsonl [--summary]
  dbp compare FILE
  dbp analyze FILE
  dbp opt FILE [--bounds-only] [--timeline]
  dbp stats FILE
  dbp scenarios [--seed N]
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let cmd = args.positional.first().map(|s| s.as_str()).unwrap_or("");
    match cmd {
        "generate" => cmd_generate(&args),
        "adversary" => cmd_adversary(&args),
        "run" => cmd_run(&args),
        "cluster" => cmd_cluster(&args),
        "serve" => cmd_serve(&args),
        "profile" => cmd_profile(&args),
        "recover" => cmd_recover(&args),
        "trace" => cmd_trace(&args),
        "compare" => cmd_compare(&args),
        "analyze" => cmd_analyze(&args),
        "opt" => cmd_opt(&args),
        "stats" => cmd_stats(&args),
        "scenarios" => cmd_scenarios(&args),
        "" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn load_instance(args: &Args, pos: usize) -> Result<Instance, String> {
    let path = args
        .positional
        .get(pos)
        .ok_or("missing trace file argument")?;
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&body).map_err(|e| format!("{path}: {e}"))
}

fn save_instance(inst: &Instance, path: &str) -> Result<(), String> {
    let body = serde_json::to_string(inst).map_err(|e| e.to_string())?;
    std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {} items to {path}", inst.len());
    Ok(())
}

fn selector_by_name(name: &str, mu_hint: Option<u64>) -> Result<Box<dyn BinSelector>, String> {
    Ok(match name {
        "ff" => Box::new(FirstFit::new()),
        "bf" => Box::new(BestFit::new()),
        "wf" => Box::new(WorstFit::new()),
        "nf" => Box::new(NextFit::new()),
        "lf" => Box::new(LastFit::new()),
        "mi" => Box::new(MostItemsFit::new()),
        "rf" => Box::new(RandomFit::seeded(0)),
        "hff" => Box::new(HarmonicFit::new(4)),
        "mff" => Box::new(ModifiedFirstFit::new(8)),
        "mff-mu" => {
            let mu = mu_hint.ok_or("mff-mu needs a µ estimate from the instance")?;
            Box::new(ModifiedFirstFit::for_known_mu(mu))
        }
        "cff" => Box::new(ConstrainedFirstFit::new()),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let kind = args.positional.get(1).map(|s| s.as_str()).unwrap_or("");
    let out = args.str_flag("out").ok_or("missing --out FILE")?;
    let inst = match kind {
        "gaming" => {
            let cfg = CloudGamingConfig {
                horizon: args.u64_flag_or("horizon", 4 * 3600)?,
                arrivals: ArrivalKind::Poisson {
                    rate: args.f64_flag_or("rate", 0.05)?,
                },
                regions: args.u64_flag_or("regions", 1)? as u16,
                seed: args.u64_flag_or("seed", 0)?,
                ..CloudGamingConfig::default()
            };
            generate(&cfg)
        }
        "mu" => {
            let cfg = MuControlledConfig {
                n_items: args.u64_flag_or("n", 200)? as usize,
                seed: args.u64_flag_or("seed", 0)?,
                ..MuControlledConfig::new(args.u64_flag("mu")?)
            };
            generate_mu_controlled(&cfg)
        }
        "scenario" => {
            let name = args.str_flag("name").ok_or("missing --name")?;
            let scenario =
                Scenario::from_name(name).ok_or_else(|| format!("unknown scenario '{name}'"))?;
            let cfg = CloudGamingConfig {
                seed: args.u64_flag_or("seed", 0)?,
                ..scenario.config()
            };
            generate(&cfg)
        }
        other => {
            return Err(format!(
                "unknown workload kind '{other}' (gaming|mu|scenario)"
            ))
        }
    };
    save_instance(&inst, out)
}

fn cmd_adversary(args: &Args) -> Result<(), String> {
    let which = args.positional.get(1).map(|s| s.as_str()).unwrap_or("");
    let inst = match which {
        "thm1" => {
            let t1 = Theorem1::new(args.u64_flag("k")?, args.u64_flag("mu")?);
            println!(
                "Theorem 1 witness: forced Any Fit cost {} bin-ticks, OPT {} — ratio {}",
                t1.expected_anyfit_cost_ticks(),
                t1.expected_opt_cost_ticks(),
                t1.expected_ratio()
            );
            t1.instance()
        }
        "adaptive" => {
            let adv = AdaptiveMuAdversary::new(args.u64_flag("k")?, args.u64_flag("mu")?);
            let algo = args.str_flag("algo").unwrap_or("ff");
            let mut sel = selector_by_name(algo, Some(adv.mu))?;
            let outcome = adv.play(&mut *sel);
            println!(
                "adaptive adversary vs {}: {} bins opened, forced cost {} bin-ticks",
                algo, outcome.bins_opened, outcome.forced_cost_ticks
            );
            outcome.instance
        }
        "thm2" => {
            let t2 = Theorem2::new(
                args.u64_flag("k")?,
                args.u64_flag("mu")?,
                args.u64_flag("n")?,
            );
            println!(
                "Theorem 2 witness: BF cost {} bin-ticks; ratio floor {}",
                t2.expected_bf_cost_ticks(),
                t2.ratio_floor()
            );
            t2.instance()
        }
        other => {
            return Err(format!(
                "unknown construction '{other}' (thm1|thm2|adaptive)"
            ))
        }
    };
    match args.str_flag("out") {
        Some(path) => save_instance(&inst, path),
        None => {
            println!("{} items (pass --out FILE to save)", inst.len());
            Ok(())
        }
    }
}

fn mu_hint(inst: &Instance) -> Option<u64> {
    inst.mu().map(|m| m.ceil() as u64)
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let inst = load_instance(args, 1)?;
    let algo = args.str_flag("algo").unwrap_or("ff");
    if args.has("hetero") {
        return cmd_run_hetero(args, &inst, algo);
    }
    let mut sel = selector_by_name(algo, mu_hint(&inst))?;
    if let Some(spec) = args.str_flag("faults") {
        return cmd_run_faults(args, &inst, algo, &mut *sel, spec);
    }
    let observing = args.has("trace-events")
        || args.has("metrics")
        || args.has("timeseries")
        || args.has("journal")
        || args.has("run-manifest");
    let started = std::time::Instant::now();
    let mut probe = (
        (
            (dbp_obs::EventLog::new(), dbp_obs::MetricsProbe::new()),
            dbp_obs::TimeSeriesSampler::new(inst.capacity().raw()),
        ),
        MaybeJournal::open(args)?,
    );
    // Journaled runs honor SIGINT/SIGTERM: the step loop polls the
    // shutdown latch between bursts and exits early, so the journal seals
    // a clean prefix that `dbp recover --trace` can resume. Validated
    // runs keep the one-shot path — validation needs the complete trace.
    let interruptible = probe.1.probe.is_some() && !args.has("validate");
    let trace = if interruptible {
        dbp_serve::install_signal_handlers();
        let mut run = dbp_core::engine::EngineRun::new(&inst, &mut *sel, &mut probe);
        let mut interrupted = false;
        while !run.is_done() {
            if dbp_serve::shutdown_requested() {
                interrupted = true;
                break;
            }
            for _ in 0..4096 {
                if !run.step() {
                    break;
                }
            }
        }
        if interrupted {
            None
        } else {
            Some(run.finish())
        }
    } else {
        Some(match (observing, args.has("validate")) {
            (true, true) => simulate_validated_probed(&inst, &mut *sel, &mut probe),
            (true, false) => simulate_probed(&inst, &mut *sel, &mut probe),
            (false, true) => simulate_validated(&inst, &mut *sel),
            (false, false) => simulate(&inst, &mut *sel),
        })
    };
    let wall = started.elapsed();
    let (((event_log, metrics_probe), sampler), journal) = probe;
    let Some(trace) = trace else {
        let wal = journal.path.clone();
        let trace_file = args.positional.get(1).cloned().unwrap_or_default();
        journal.finish()?;
        println!("interrupted    : stopped by signal; the journal holds a clean prefix");
        println!("resume with    : dbp recover {wal} --trace {trace_file} --algo {algo}");
        return Ok(());
    };
    journal.finish()?;
    if let Some(path) = args.str_flag("trace-events") {
        dbp_obs::export::write_jsonl(std::path::Path::new(path), event_log.events())
            .map_err(|e| format!("{path}: {e}"))?;
        println!("events saved to {path} ({} events)", event_log.len());
    }
    if let Some(path) = args.str_flag("metrics") {
        dbp_obs::export::write_prometheus(std::path::Path::new(path), metrics_probe.registry())
            .map_err(|e| format!("{path}: {e}"))?;
        println!("metrics saved to {path}");
    }
    if let Some(path) = args.str_flag("timeseries") {
        dbp_obs::export::atomic_write(std::path::Path::new(path), sampler.to_csv().as_bytes())
            .map_err(|e| format!("{path}: {e}"))?;
        println!(
            "time series saved to {path} ({} samples)",
            sampler.samples().len()
        );
    }
    let s = summarize(&inst, &trace);
    println!("algorithm      : {}", s.algorithm);
    println!("items          : {}", s.n_items);
    println!("total cost     : {} bin-ticks", s.total_cost_ticks);
    println!("bins used      : {}", s.bins_used);
    println!("max open bins  : {}", s.max_open_bins);
    println!("cost / LB      : {:.4}", s.ratio_vs_lower_bound.to_f64());
    println!("utilization    : {:.4}", s.mean_utilization.to_f64());
    if observing {
        let manifest = dbp_obs::RunManifest::capture(&s.algorithm, None, &inst, wall)
            .with_cost(trace.total_cost_ticks());
        println!("instance digest: {}", manifest.instance_digest);
        println!(
            "wall time      : {:.3} ms",
            manifest.wall_time_ns as f64 / 1e6
        );
        if let Some(rss) = manifest.peak_rss_bytes {
            println!("peak rss       : {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
        }
        if let Some(path) = args.str_flag("run-manifest") {
            dbp_obs::export::write_json(std::path::Path::new(path), &manifest)
                .map_err(|e| format!("{path}: {e}"))?;
            println!("manifest saved to {path}");
        }
    }
    if args.has("fleet") {
        if let Some(f) = dbp_core::metrics::fleet_stats(&trace) {
            println!(
                "fleet          : mean {:.2}, p50 {}, p95 {}, max {}",
                f.mean_open, f.p50_open, f.p95_open, f.max_open
            );
            println!(
                "bin lifetimes  : {}..{} ticks (mean {:.0})",
                f.min_bin_life, f.max_bin_life, f.mean_bin_life
            );
        }
    }
    if args.has("gantt") {
        println!("\n{}", dbp_core::gantt::render_gantt(&inst, &trace, 72));
        println!("open bins: {}", dbp_core::gantt::sparkline(&trace));
    }
    if let Some(path) = args.str_flag("svg") {
        let svg = dbp_core::svg::render_svg(&inst, &trace, dbp_core::svg::SvgOptions::default());
        std::fs::write(path, svg).map_err(|e| format!("{path}: {e}"))?;
        println!("svg saved to {path}");
    }
    if let Some(path) = args.str_flag("save-trace") {
        let body = serde_json::to_string(&trace).map_err(|e| e.to_string())?;
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        println!("trace saved to {path}");
    }
    Ok(())
}

/// `dbp run FILE --hetero`: widen the scalar trace to the heterogeneous
/// `[gpu, cpu, mem]` catalog and pack it as one 3-dimensional vector
/// instance. Feasibility is the intersection of the per-dimension
/// constraints; the per-dimension utilization table shows which
/// dimension actually binds.
fn cmd_run_hetero(args: &Args, scalar: &Instance, algo: &str) -> Result<(), String> {
    use dbp_core::demand::{Demand, VSize};
    use dbp_workloads::vector::{DIM_NAMES, HETERO_DIMS};
    let inst = dbp_workloads::widen(scalar);
    let mut sel =
        dbp_core::algorithms::selector_for::<VSize<HETERO_DIMS>>(algo).ok_or_else(|| {
            format!(
            "--hetero packs with ff, bf, mff or dom (plus -idx variants); '{algo}' is scalar-only"
        )
        })?;
    let started = std::time::Instant::now();
    let trace = if args.has("validate") {
        dbp_core::engine::simulate_validated(&inst, &mut sel)
    } else {
        dbp_core::engine::simulate(&inst, &mut sel)
    };
    let wall = started.elapsed();
    let busy = trace.total_cost_ticks();
    println!(
        "algorithm      : {} ({HETERO_DIMS}-dimensional)",
        trace.algorithm
    );
    println!("items          : {}", inst.len());
    println!("total cost     : {busy} bin-ticks");
    println!("bins used      : {}", trace.bins_used());
    println!("max open bins  : {}", trace.max_open_bins());
    let cap = inst.capacity();
    let peak = dbp_workloads::vector::peak_pressure(&inst);
    let mut dim_reg = Vec::new();
    for d in 0..HETERO_DIMS {
        let demand: u128 = inst
            .items()
            .iter()
            .map(|it| {
                it.size.component(d) as u128 * (it.departure.raw() - it.arrival.raw()) as u128
            })
            .sum();
        let rented = cap.component(d) as u128 * busy;
        let waste = rented - demand;
        let ppm = (demand * 1_000_000).checked_div(rented).unwrap_or(0);
        // Peak concurrent demand is fleet-wide; divide by the per-server
        // capacity to express it in servers' worth of this resource.
        println!(
            "dim {} ({:<3})    : {:.4} utilized, {} demand-ticks, {} wasted, peak {:.1} servers",
            d,
            DIM_NAMES[d],
            ppm as f64 / 1e6,
            demand,
            waste,
            peak[d].0 as f64 / peak[d].1 as f64,
        );
        dim_reg.push((demand, rented, waste, ppm));
    }
    println!("wall time      : {:.3} ms", wall.as_secs_f64() * 1e3);
    if let Some(path) = args.str_flag("metrics") {
        let clamp = |v: u128| v.min(i64::MAX as u128) as i64;
        let mut reg = dbp_obs::MetricsRegistry::new();
        reg.gauge_set("dbp_bins_used", trace.bins_used() as i64);
        reg.gauge_set("dbp_cost_ticks", clamp(busy));
        for (d, (demand, rented, waste, ppm)) in dim_reg.iter().enumerate() {
            let mut dreg = dbp_obs::MetricsRegistry::new();
            dreg.gauge_set("dbp_dim_demand_ticks", clamp(*demand));
            dreg.gauge_set("dbp_dim_rented_ticks", clamp(*rented));
            dreg.gauge_set("dbp_dim_waste_ticks", clamp(*waste));
            dreg.gauge_set("dbp_dim_utilization_ppm", clamp(*ppm));
            reg.absorb_labeled(&dreg, "dim", DIM_NAMES[d]);
        }
        dbp_obs::export::write_prometheus(std::path::Path::new(path), &reg)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("metrics saved to {path}");
    }
    Ok(())
}

/// `dbp cluster FILE --hetero`: route the widened vector instance across
/// shards with per-dimension load folds and report the exact
/// per-dimension ledger (conservation is asserted inside
/// [`dbp_cluster::vector::run_cluster_vec`]).
fn cmd_cluster_hetero(
    args: &Args,
    scalar: &Instance,
    algo: &str,
    shards: usize,
    router: dbp_cluster::Router,
) -> Result<(), String> {
    use dbp_core::demand::VSize;
    use dbp_workloads::vector::{DIM_NAMES, HETERO_DIMS};
    let inst = dbp_workloads::widen(scalar);
    dbp_core::algorithms::selector_for::<VSize<HETERO_DIMS>>(algo).ok_or_else(|| {
        format!(
            "--hetero packs with ff, bf, mff or dom (plus -idx variants); '{algo}' is scalar-only"
        )
    })?;
    let run = dbp_cluster::vector::run_cluster_vec(&inst, router, shards, || {
        dbp_core::algorithms::selector_for::<VSize<HETERO_DIMS>>(algo)
            .expect("algorithm name validated above")
    });
    println!(
        "algorithm      : {} ({HETERO_DIMS}-dimensional)",
        run.algorithm
    );
    println!("router         : {}", run.router);
    println!("shards         : {}", run.shards_used);
    println!("sessions       : {}", run.sessions_served);
    println!("servers rented : {}", run.servers_rented);
    println!("busy ticks     : {}", run.busy_ticks);
    println!("ledger         : conserved");
    for d in &run.dims {
        println!(
            "dim {} ({:<3})    : {:.4} utilized, {} demand-ticks, {} wasted",
            d.dim,
            DIM_NAMES[d.dim],
            d.utilization.to_f64(),
            d.demand_ticks,
            d.waste_ticks,
        );
    }
    for s in &run.shards {
        println!(
            "  shard {:>2}     : {} sessions, {} bins, {} bin-ticks",
            s.shard,
            s.back.len(),
            s.trace.bins_used(),
            s.trace.total_cost_ticks(),
        );
    }
    if let Some(path) = args.str_flag("metrics") {
        let clamp = |v: u128| v.min(i64::MAX as u128) as i64;
        let mut reg = dbp_obs::MetricsRegistry::new();
        reg.gauge_set("dbp_cluster_servers_rented", run.servers_rented as i64);
        reg.gauge_set("dbp_cluster_busy_ticks", clamp(run.busy_ticks));
        for d in &run.dims {
            let mut dreg = dbp_obs::MetricsRegistry::new();
            dreg.gauge_set("dbp_dim_demand_ticks", clamp(d.demand_ticks));
            dreg.gauge_set("dbp_dim_rented_ticks", clamp(d.rented_ticks));
            dreg.gauge_set("dbp_dim_waste_ticks", clamp(d.waste_ticks));
            let ppm = (d.demand_ticks * 1_000_000)
                .checked_div(d.rented_ticks)
                .unwrap_or(0);
            dreg.gauge_set("dbp_dim_utilization_ppm", clamp(ppm));
            reg.absorb_labeled(&dreg, "dim", DIM_NAMES[d.dim]);
        }
        dbp_obs::export::write_prometheus(std::path::Path::new(path), &reg)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("metrics saved to {path}");
    }
    Ok(())
}

/// The paper's cost model over `inst`'s capacity: per-tick billing on
/// GPU VMs. Shared by `run --faults` and `recover --faults`, which must
/// reconstruct the *same* system for deterministic re-execution.
fn paper_gaming_system(inst: &Instance) -> dbp_cloudsim::GamingSystem {
    dbp_cloudsim::GamingSystem {
        server: dbp_cloudsim::ServerType {
            gpu_capacity: inst.capacity().raw(),
            ..dbp_cloudsim::ServerType::default_gpu_vm()
        },
        granularity: dbp_cloudsim::Granularity::PerTick,
    }
}

/// Optional write-ahead-journal leg of the run probe: a no-op when
/// `--journal` is absent, so the probe tuple composes without a separate
/// code path per flag combination.
struct MaybeJournal {
    probe: Option<dbp_obs::JournalProbe>,
    path: String,
}

impl MaybeJournal {
    /// Open the journal named by `--journal`, honoring `--fsync`
    /// (default `always`: a crash loses at most the frame being written).
    fn open(args: &Args) -> Result<MaybeJournal, String> {
        let Some(path) = args.str_flag("journal") else {
            if args.has("fsync") {
                return Err("--fsync only makes sense with --journal FILE".into());
            }
            return Ok(MaybeJournal {
                probe: None,
                path: String::new(),
            });
        };
        let policy = match args.str_flag("fsync") {
            None => dbp_obs::FsyncPolicy::Always,
            Some(spec) => dbp_obs::FsyncPolicy::parse(spec).map_err(|e| format!("--fsync: {e}"))?,
        };
        let probe = dbp_obs::JournalProbe::create(std::path::Path::new(path), policy)
            .map_err(|e| format!("{path}: {e}"))?;
        Ok(MaybeJournal {
            probe: Some(probe),
            path: path.to_string(),
        })
    }

    /// Seal the journal, surfacing any write error latched during the run.
    fn finish(self) -> Result<(), String> {
        if let Some(probe) = self.probe {
            let records = probe.finish().map_err(|e| format!("{}: {e}", self.path))?;
            println!("journal saved to {} ({records} records)", self.path);
        }
        Ok(())
    }
}

impl Probe for MaybeJournal {
    fn record(&mut self, event: ProbeEvent) {
        if let Some(probe) = &mut self.probe {
            probe.record(event);
        }
    }
}

/// Resolve a `--faults` spec: a `.json` file holding a serialized
/// [`dbp_cloudsim::FaultPlan`], or a bare integer seed expanded with
/// [`dbp_cloudsim::FaultPlan::from_seed`] over the trace's horizon.
fn load_fault_plan(spec: &str, horizon: u64) -> Result<dbp_cloudsim::FaultPlan, String> {
    if spec.ends_with(".json") || std::path::Path::new(spec).exists() {
        let body = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        serde_json::from_str(&body).map_err(|e| format!("{spec}: {e}"))
    } else {
        let seed: u64 = spec
            .parse()
            .map_err(|_| format!("--faults expects a seed or a plan .json, got '{spec}'"))?;
        Ok(dbp_cloudsim::FaultPlan::from_seed(seed, horizon))
    }
}

/// `dbp run FILE --faults <spec|seed>`: dispatch through the resilient
/// wrapper (crashes, flaky provisioning, retries, orphan re-dispatch) and
/// print the SLA ledger next to the bill.
fn cmd_run_faults(
    args: &Args,
    inst: &Instance,
    algo: &str,
    sel: &mut dyn BinSelector,
    spec: &str,
) -> Result<(), String> {
    let horizon = dbp_core::events::event_ticks(inst)
        .last()
        .map(|t| t.raw())
        .unwrap_or(0);
    let plan = load_fault_plan(spec, horizon)?;
    let resilient = dbp_cloudsim::ResilientSystem::new(paper_gaming_system(inst), plan.clone());
    let observing = args.has("trace-events")
        || args.has("metrics")
        || args.has("journal")
        || args.has("run-manifest");
    let started = std::time::Instant::now();
    let mut probe = (
        (dbp_obs::EventLog::new(), dbp_obs::MetricsProbe::new()),
        MaybeJournal::open(args)?,
    );
    let report = if observing {
        resilient.run_probed(inst, sel, &mut probe)
    } else {
        resilient.run(inst, sel)
    }
    .map_err(|e| e.to_string())?;
    let wall = started.elapsed();
    let ((event_log, metrics_probe), journal) = probe;
    journal.finish()?;
    if let Some(path) = args.str_flag("run-manifest") {
        // No packing trace here, so no exact cost: `recover --faults`
        // re-derives the report by verified re-execution instead.
        let manifest = dbp_obs::RunManifest::capture(sel.name(), None, inst, wall);
        dbp_obs::export::write_json(std::path::Path::new(path), &manifest)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("manifest saved to {path}");
    }
    if let Some(path) = args.str_flag("trace-events") {
        dbp_obs::export::write_jsonl(std::path::Path::new(path), event_log.events())
            .map_err(|e| format!("{path}: {e}"))?;
        println!("events saved to {path} ({} events)", event_log.len());
    }
    if let Some(path) = args.str_flag("metrics") {
        dbp_obs::export::write_prometheus(std::path::Path::new(path), metrics_probe.registry())
            .map_err(|e| format!("{path}: {e}"))?;
        println!("metrics saved to {path}");
    }
    println!("algorithm      : {algo}");
    println!(
        "fault plan     : seed {}, {} crashes, boot fail {:.2}, delay ≤{}, reject {:.2}",
        plan.seed,
        plan.crashes.len(),
        plan.boot_fail_prob,
        plan.boot_delay_max,
        plan.reject_prob
    );
    println!("sessions       : {}", report.sessions_total);
    println!(
        "served         : {} ({:.1}%)",
        report.sessions_served,
        100.0 * report.service_rate()
    );
    println!("dropped        : {}", report.sessions_dropped);
    println!("lost to crash  : {}", report.sessions_lost);
    println!("re-dispatched  : {}", report.redispatches);
    println!(
        "faults         : {} crashes, {} boot failures, {} retries, {} rejections",
        report.crashes,
        report.provision_failures,
        report.retries_scheduled,
        report.dispatch_rejections
    );
    println!("queue peak     : {}", report.queue_peak);
    println!(
        "servers        : {} rented, peak {}",
        report.servers_rented, report.peak_servers
    );
    println!("busy ticks     : {}", report.busy_ticks);
    println!("billed ticks   : {}", report.billed_ticks);
    println!(
        "bill           : {:.2} USD",
        report.cost_cents.to_f64() / 100.0
    );
    Ok(())
}

/// The CLI algorithm roster as `'static` names, for [`SelectorFactory`]
/// (whose name field is `&'static str`).
fn static_algo_name(name: &str) -> Option<&'static str> {
    const NAMES: [&str; 11] = [
        "ff", "bf", "wf", "nf", "lf", "mi", "rf", "hff", "mff", "mff-mu", "cff",
    ];
    NAMES.into_iter().find(|n| *n == name)
}

/// One shard's instrumentation leg: event log + metrics + optional journal.
type ShardProbe = ((dbp_obs::EventLog, dbp_obs::MetricsProbe), MaybeJournal);

/// Parse a `--shard-faults` spec: a bare integer seeds a deterministic
/// [`ShardFaultPlan`] sized to the instance (about two kills' worth of
/// events per shard); anything that looks like a file loads an explicit
/// plan JSON.
fn load_shard_fault_plan(
    spec: &str,
    shards: usize,
    inst: &dbp_core::instance::Instance,
) -> Result<dbp_cluster::ShardFaultPlan, String> {
    if spec.ends_with(".json") || std::path::Path::new(spec).exists() {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{spec}: {e}"))
    } else {
        let seed: u64 = spec
            .parse()
            .map_err(|_| format!("--shard-faults expects a seed or a plan .json, got '{spec}'"))?;
        // Each shard sees ~2 events per item it serves; aim kill offsets
        // inside the live part of the stream.
        let events_hint = (2 * inst.len() as u64 / shards.max(1) as u64).max(4);
        Ok(dbp_cluster::ShardFaultPlan::from_seed(
            seed,
            shards,
            events_hint,
        ))
    }
}

/// `dbp cluster FILE --algo A --shards N --router R`: partition the request
/// stream across N independent dispatcher shards, run them on a worker
/// pool, and report the exact aggregate bill. `--journal FILE.wal` writes
/// one crash-safe journal per shard at `FILE.wal.shardK` (each replayable
/// with `dbp recover`); `--faults` derives one fault plan per shard (seed
/// plans get `seed + shard`, explicit `.json` plans are shared verbatim);
/// `--shard-faults` kills whole shards mid-run instead and self-heals them
/// from their journals (seed or a `ShardFaultPlan` `.json`).
fn cmd_cluster(args: &Args) -> Result<(), String> {
    let inst = load_instance(args, 1)?;
    let algo = args.str_flag("algo").unwrap_or("ff");
    let algo = static_algo_name(algo).ok_or_else(|| format!("unknown algorithm '{algo}'"))?;
    let shards = args.u64_flag_or("shards", 2)? as usize;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let router = parse_router(args)?;
    if args.has("hetero") {
        return cmd_cluster_hetero(args, &inst, algo, shards, router);
    }
    let batch = parse_batch(args)?;
    let mut config = dbp_cluster::ClusterConfig::new(shards, router).map_err(|e| e.to_string())?;
    config.batch = batch;
    config.jobs = args.u64_flag_or("jobs", 0)? as usize;
    let engine = dbp_cluster::ClusterEngine::new(paper_gaming_system(&inst), config);

    let hint = mu_hint(&inst);
    selector_by_name(algo, hint)?; // validate (incl. the mff-mu µ hint) up front
    let algo_name = algo.to_string();
    let factory = dbp_core::packer::SelectorFactory::new(algo, move || {
        selector_by_name(&algo_name, hint).expect("algorithm name validated above")
    });

    if let Some(spec) = args.str_flag("shard-faults") {
        if args.str_flag("faults").is_some() {
            return Err(
                "--faults and --shard-faults are mutually exclusive; pick one fault model".into(),
            );
        }
        if args.str_flag("journal").is_some() {
            return Err(
                "--journal is not supported with --shard-faults: each shard keeps its own \
                 in-memory journal for resurrection; use --trace-events for the merged stream"
                    .into(),
            );
        }
        let plan = load_shard_fault_plan(spec, shards, &inst)?;
        let mut probe = (dbp_obs::EventLog::new(), dbp_obs::MetricsProbe::new());
        let run = engine
            .run_self_healing_probed(&inst, &factory, &plan, &mut probe)
            .map_err(|e| e.to_string())?;
        let (event_log, metrics_probe) = probe;
        if let Some(path) = args.str_flag("trace-events") {
            dbp_obs::export::write_jsonl(std::path::Path::new(path), event_log.events())
                .map_err(|e| format!("{path}: {e}"))?;
            println!("events saved to {path} ({} events)", event_log.len());
        }
        if let Some(path) = args.str_flag("metrics") {
            let mut merged = run.metrics();
            merged.absorb_labeled(metrics_probe.registry(), "scope", "cluster");
            dbp_obs::export::write_prometheus(std::path::Path::new(path), &merged)
                .map_err(|e| format!("{path}: {e}"))?;
            println!("metrics saved to {path}");
        }
        if let Some(path) = args.str_flag("run-manifest") {
            dbp_obs::export::write_json(std::path::Path::new(path), &run.manifest)
                .map_err(|e| format!("{path}: {e}"))?;
            println!("manifest saved to {path}");
        }
        let r = &run.report;
        println!("algorithm      : {}", r.algorithm);
        println!("router         : {}", r.router);
        println!("shards         : {}", r.shards);
        println!("sessions       : {}", r.sessions_total);
        println!("served         : {}", r.sessions_served);
        println!("dropped        : {}", r.sessions_dropped);
        println!("lost to kills  : {}", r.sessions_lost);
        println!("rerouted       : {}", r.sessions_rerouted);
        println!(
            "ledger         : {}",
            if r.conserved() {
                "conserved"
            } else {
                "NOT CONSERVED"
            }
        );
        println!("busy ticks     : {}", r.busy_ticks);
        println!("billed ticks   : {}", r.billed_ticks);
        println!("bill           : {:.2} USD", r.cost_cents.to_f64() / 100.0);
        for h in &run.shards {
            println!(
                "  shard {:>2}     : {:<10} {}/{} served, {} lost, {} rerouted out, \
                 {} hosted, {} kills, {} restarts",
                h.shard,
                h.health.name(),
                h.sessions_served,
                h.sessions_total,
                h.sessions_lost,
                h.sessions_rerouted_out,
                h.sessions_rerouted_in,
                h.kills,
                h.restarts,
            );
            if let Some(reason) = &h.down_reason {
                println!("                 down: {reason}");
            }
        }
        // Mirror `dbp trace`'s shard-fault footer so greps work on both.
        if r.shard_kills + r.shard_restarts + r.shards_lost > 0 {
            println!(
                "-- shards: {} kills, {} restarts, {} abandoned",
                r.shard_kills, r.shard_restarts, r.shards_lost
            );
        }
        return Ok(());
    }

    // Pre-open every shard's instrumentation so journal I/O errors surface
    // before any work runs; the pool then takes them by shard index.
    let journal_base = args.str_flag("journal");
    if args.has("fsync") && journal_base.is_none() {
        return Err("--fsync only makes sense with --journal FILE".into());
    }
    let fsync = match args.str_flag("fsync") {
        None => dbp_obs::FsyncPolicy::Always,
        Some(spec) => dbp_obs::FsyncPolicy::parse(spec).map_err(|e| format!("--fsync: {e}"))?,
    };
    let mut shard_probes: Vec<Option<ShardProbe>> = Vec::with_capacity(shards);
    for s in 0..shards {
        let journal = match journal_base {
            Some(base) => {
                let path = format!("{base}.shard{s}");
                let probe = dbp_obs::JournalProbe::create(std::path::Path::new(&path), fsync)
                    .map_err(|e| format!("{path}: {e}"))?;
                MaybeJournal {
                    probe: Some(probe),
                    path,
                }
            }
            None => MaybeJournal {
                probe: None,
                path: String::new(),
            },
        };
        shard_probes.push(Some((
            (dbp_obs::EventLog::new(), dbp_obs::MetricsProbe::new()),
            journal,
        )));
    }
    let take_probe = |s: usize, probes: &mut Vec<Option<ShardProbe>>| {
        probes[s].take().expect("each shard probe is taken once")
    };

    let started = std::time::Instant::now();
    if let Some(spec) = args.str_flag("faults") {
        let horizon = dbp_core::events::event_ticks(&inst)
            .last()
            .map(|t| t.raw())
            .unwrap_or(0);
        let plans: Vec<dbp_cloudsim::FaultPlan> =
            if spec.ends_with(".json") || std::path::Path::new(spec).exists() {
                let plan = load_fault_plan(spec, horizon)?;
                vec![plan; shards]
            } else {
                let seed: u64 = spec.parse().map_err(|_| {
                    format!("--faults expects a seed or a plan .json, got '{spec}'")
                })?;
                (0..shards as u64)
                    .map(|s| dbp_cloudsim::FaultPlan::from_seed(seed + s, horizon))
                    .collect()
            };
        let (run, probes) = engine
            .run_resilient_probed(&inst, &factory, &plans, |s| {
                take_probe(s, &mut shard_probes)
            })
            .map_err(|e| e.to_string())?;
        let wall = started.elapsed();
        drain_cluster_probes(args, probes, None)?;
        if let Some(path) = args.str_flag("run-manifest") {
            // No single packing trace under faults, so no exact cost —
            // mirrors `run --faults`.
            let manifest = dbp_obs::RunManifest::capture(algo, None, &inst, wall);
            dbp_obs::export::write_json(std::path::Path::new(path), &manifest)
                .map_err(|e| format!("{path}: {e}"))?;
            println!("manifest saved to {path}");
        }
        let r = &run.report;
        println!("algorithm      : {}", r.algorithm);
        println!("router         : {}", r.router);
        println!("shards         : {}", r.shards);
        println!("sessions       : {}", r.sessions_total);
        println!("served         : {}", r.sessions_served);
        println!("dropped        : {}", r.sessions_dropped);
        println!("lost to crash  : {}", r.sessions_lost);
        println!(
            "ledger         : {}",
            if r.conserved() {
                "conserved"
            } else {
                "NOT CONSERVED"
            }
        );
        println!("busy ticks     : {}", r.busy_ticks);
        println!("billed ticks   : {}", r.billed_ticks);
        println!("bill           : {:.2} USD", r.cost_cents.to_f64() / 100.0);
        for (s, shard) in run.shards.iter().enumerate() {
            println!(
                "  shard {s:>2}     : {} sessions, {}/{} served, {} busy ticks",
                shard.sessions_total, shard.sessions_served, shard.sessions_total, shard.busy_ticks
            );
        }
        return Ok(());
    }

    // Journaled cluster runs honor SIGINT/SIGTERM: the shard loops poll
    // the shutdown latch, the run surfaces as Interrupted, and dropping
    // the probes flushes + fsyncs every shard journal on the way out.
    if journal_base.is_some() {
        dbp_serve::install_signal_handlers();
        dbp_cluster::cancel::set_flag(dbp_serve::global_flag());
    }
    let (run, probes) =
        match engine.run_probed(&inst, &factory, |s| take_probe(s, &mut shard_probes)) {
            Ok(ok) => ok,
            Err(dbp_cluster::ClusterError::Interrupted) => {
                println!("interrupted    : stopped by signal; shard journals hold clean prefixes");
                if let Some(base) = journal_base {
                    for s in 0..shards {
                        println!("  shard {s:>2}     : dbp recover {base}.shard{s}");
                    }
                }
                return Ok(());
            }
            Err(e) => return Err(e.to_string()),
        };
    drain_cluster_probes(args, probes, Some(&run))?;
    if let Some(path) = args.str_flag("run-manifest") {
        dbp_obs::export::write_json(std::path::Path::new(path), &run.report.manifest)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("manifest saved to {path}");
    }
    let r = &run.report;
    println!("algorithm      : {}", r.algorithm);
    println!("router         : {}", r.router);
    println!("shards         : {}", r.shards);
    println!("sessions       : {}", r.sessions_served);
    println!(
        "servers        : {} rented, peak {} (sum of shard peaks)",
        r.servers_rented, r.peak_servers
    );
    println!("busy ticks     : {}", r.busy_ticks);
    println!("billed ticks   : {}", r.billed_ticks);
    println!("bill           : {:.2} USD", r.cost_cents.to_f64() / 100.0);
    println!("utilization    : {:.4}", r.utilization.to_f64());
    println!("instance digest: {}", r.manifest.instance_digest);
    for shard in &run.shards {
        println!(
            "  shard {:>2}     : {} sessions, {} busy ticks, {} servers",
            shard.shard,
            shard.report.sessions_served,
            shard.report.busy_ticks,
            shard.report.servers_rented
        );
    }
    Ok(())
}

/// Seal every shard journal and write the cluster's `--trace-events` /
/// `--metrics` artifacts: one JSONL stream per shard (`FILE.jsonl.shardK`)
/// and a single Prometheus file with `{shard="K"}`-labelled series plus
/// cluster totals (when the plain run's merged view is available).
fn drain_cluster_probes(
    args: &Args,
    probes: Vec<ShardProbe>,
    run: Option<&dbp_cluster::ClusterRun>,
) -> Result<(), String> {
    let mut registries = Vec::with_capacity(probes.len());
    for (s, ((event_log, metrics_probe), journal)) in probes.into_iter().enumerate() {
        journal.finish()?;
        if let Some(base) = args.str_flag("trace-events") {
            let path = format!("{base}.shard{s}");
            dbp_obs::export::write_jsonl(std::path::Path::new(&path), event_log.events())
                .map_err(|e| format!("{path}: {e}"))?;
            println!("events saved to {path} ({} events)", event_log.len());
        }
        registries.push(metrics_probe.registry().clone());
    }
    if let Some(path) = args.str_flag("metrics") {
        let merged = match run {
            Some(run) => run.metrics(&registries),
            None => {
                let mut merged = dbp_obs::MetricsRegistry::new();
                for (s, reg) in registries.iter().enumerate() {
                    merged.absorb_labeled(reg, "shard", &s.to_string());
                }
                merged
            }
        };
        dbp_obs::export::write_prometheus(std::path::Path::new(path), &merged)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("metrics saved to {path}");
    }
    Ok(())
}

fn parse_router(args: &Args) -> Result<dbp_cluster::Router, String> {
    let name = args.str_flag("router").unwrap_or("hash");
    dbp_cluster::Router::from_name(name)
        .ok_or_else(|| format!("unknown router '{name}' (hash|affinity|least-loaded)"))
}

fn parse_batch(args: &Args) -> Result<dbp_cluster::BatchPolicy, String> {
    Ok(match args.str_flag("batch") {
        None | Some("whole") => dbp_cluster::BatchPolicy::WholeStream,
        Some("event") => dbp_cluster::BatchPolicy::PerEvent,
        Some(n) => dbp_cluster::BatchPolicy::Chunks(
            n.parse()
                .map_err(|_| format!("--batch expects event|whole|N, got '{n}'"))?,
        ),
    })
}

/// `dbp serve --shards N`: the live dispatcher daemon. NDJSON arrivals and
/// departures over TCP, online routing across N shard pipelines (each a
/// bounded-memory streaming engine), bounded ingress queues with
/// block/shed backpressure, event-time admission control, optional
/// per-shard write-ahead journals (`BASE.shardK`, each auditable with
/// `dbp recover`), and a Prometheus `/metrics` endpoint. SIGINT/SIGTERM
/// drains gracefully: open connections finish, journals seal, and the
/// conserved final ledger prints as one JSON line.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let shards = args.u64_flag_or("shards", 2)? as usize;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let algo = args.str_flag("algo").unwrap_or("ff");
    let algo = static_algo_name(algo).ok_or_else(|| format!("unknown algorithm '{algo}'"))?;
    // No instance up front, so no µ hint: validate the name accepts that.
    selector_by_name(algo, None)?;
    let algo_name = algo.to_string();
    let factory = dbp_core::packer::SelectorFactory::new(algo, move || {
        selector_by_name(&algo_name, None).expect("algorithm name validated above")
    });

    let capacity = args.u64_flag_or("capacity", 100)?;
    if capacity == 0 {
        return Err("--capacity must be at least 1".into());
    }
    // --capacities A,B,.. implies the dimensionality; --dims D alone splats
    // --capacity across D resource dimensions.
    let capacities: Option<Vec<u64>> = match args.str_flag("capacities") {
        None => None,
        Some(spec) => Some(
            spec.split(',')
                .map(|c| {
                    c.trim()
                        .parse::<u64>()
                        .map_err(|_| format!("--capacities expects N,N,.. — got '{c}'"))
                })
                .collect::<Result<Vec<u64>, String>>()?,
        ),
    };
    let dims = match (&capacities, args.str_flag("dims")) {
        (Some(caps), None) => caps.len(),
        (caps, Some(d)) => {
            let d: usize = d
                .parse()
                .map_err(|_| format!("--dims expects 1..={}, got '{d}'", dbp_serve::MAX_DIMS))?;
            if let Some(caps) = caps {
                if caps.len() != d {
                    return Err(format!(
                        "--capacities lists {} dimensions but --dims says {d}",
                        caps.len()
                    ));
                }
            }
            d
        }
        (None, None) => 1,
    };
    if !(1..=dbp_serve::MAX_DIMS).contains(&dims) {
        return Err(format!("--dims must be 1..={}", dbp_serve::MAX_DIMS));
    }
    let defaults = dbp_cloudsim::AdmissionPolicy::default();
    let admission = dbp_cloudsim::AdmissionPolicy {
        queue_capacity: args.u64_flag_or("queue-capacity", defaults.queue_capacity as u64)? as u32,
        queue_timeout: args.u64_flag_or("queue-timeout", defaults.queue_timeout)?,
    };
    let backpressure = match args.str_flag("backpressure") {
        None => dbp_serve::BackpressurePolicy::Block,
        Some(name) => dbp_serve::BackpressurePolicy::parse(name)?,
    };
    let journal_base = args.str_flag("journal").map(std::path::PathBuf::from);
    if args.has("fsync") && journal_base.is_none() {
        return Err("--fsync only makes sense with --journal BASE".into());
    }
    let fsync = match args.str_flag("fsync") {
        None => dbp_obs::FsyncPolicy::Always,
        Some(spec) => dbp_obs::FsyncPolicy::parse(spec).map_err(|e| format!("--fsync: {e}"))?,
    };
    let cfg = dbp_serve::ServeConfig {
        addr: args
            .str_flag("addr")
            .unwrap_or("127.0.0.1:7878")
            .to_string(),
        metrics_addr: args.str_flag("metrics-addr").map(|s| s.to_string()),
        shards,
        router: parse_router(args)?,
        capacity,
        dims,
        capacities,
        admission,
        backpressure,
        max_sessions: args.u64_flag_or("max-sessions", 65_536)? as usize,
        read_timeout_ms: args.u64_flag_or("read-timeout-ms", 25)?,
        journal_base,
        fsync,
    };

    dbp_serve::install_signal_handlers();
    let summary = dbp_serve::run_server(cfg, &factory, dbp_serve::global_flag(), |h| {
        println!(
            "listening      : {} ({} shards, {algo}, {dims}-dimensional)",
            h.addr, shards
        );
        if let Some(m) = h.metrics_addr {
            println!("metrics        : http://{m}/metrics");
        }
        let arrive = if dims == 1 {
            "{\"op\":\"arrive\",\"id\":N,\"at\":T,\"size\":S}".to_string()
        } else {
            format!("{{\"op\":\"arrive\",\"id\":N,\"at\":T,\"demand\":[{dims} components]}}")
        };
        println!(
            "protocol       : one JSON object per line — {arrive} | \
                  {{\"op\":\"depart\",\"id\":N,\"at\":T}} | {{\"op\":\"ping\",\"id\":N}}"
        );
    })?;

    println!(
        "drained        : {} served, {} dropped, {} lost of {} arrivals",
        summary.served, summary.dropped, summary.lost, summary.total
    );
    println!(
        "ledger         : {}",
        if summary.conserved() {
            "conserved"
        } else {
            "NOT CONSERVED"
        }
    );
    println!("{}", summary.to_json());
    if !summary.conserved() {
        return Err("drain ledger is not conserved (served + dropped + lost != total)".into());
    }
    Ok(())
}

/// `dbp profile`: run one traced cluster dispatch and explain where the
/// wall clock went — the ranked per-stage self-time table, the per-shard
/// busy vs queue-wait utilization split, and (with `--trace-out`) the full
/// Chrome-trace flamechart. With no FILE it packs the shared churn fixture
/// (`dbp_workloads::churn`), the same stream the scaling benches measure,
/// so the numbers here explain those curves directly.
fn cmd_profile(args: &Args) -> Result<(), String> {
    let inst = match args.positional.get(1) {
        Some(_) => load_instance(args, 1)?,
        None => {
            let n = args.u64_flag_or("items", 100_000)? as usize;
            let seed = args.u64_flag_or("seed", 42)?;
            dbp_workloads::churn(n, seed)
        }
    };
    let algo = args.str_flag("algo").unwrap_or("ff");
    let algo = static_algo_name(algo).ok_or_else(|| format!("unknown algorithm '{algo}'"))?;
    let shards = args.u64_flag_or("shards", 8)? as usize;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let mut config =
        dbp_cluster::ClusterConfig::new(shards, parse_router(args)?).map_err(|e| e.to_string())?;
    config.batch = parse_batch(args)?;
    config.jobs = args.u64_flag_or("jobs", 0)? as usize;
    let engine = dbp_cluster::ClusterEngine::new(paper_gaming_system(&inst), config);

    let hint = mu_hint(&inst);
    selector_by_name(algo, hint)?;
    let algo_name = algo.to_string();
    let factory = dbp_core::packer::SelectorFactory::new(algo, move || {
        selector_by_name(&algo_name, hint).expect("algorithm name validated above")
    });

    // With `--shard-faults` the profile runs the self-healing engine
    // instead, so `shard_restart` / `shard_replay` spans (and the driver's
    // `reroute` span) show up in the stage table and the Chrome trace.
    let (algorithm, router_name, shard_sessions, trace) =
        if let Some(spec) = args.str_flag("shard-faults") {
            let plan = load_shard_fault_plan(spec, shards, &inst)?;
            let (run, trace) = engine
                .run_self_healing_traced(
                    &inst,
                    &factory,
                    &plan,
                    &mut dbp_core::probe::NoProbe,
                    |s, epoch| dbp_obs::SpanCollector::with_epoch(epoch, s as u32),
                )
                .map_err(|e| e.to_string())?;
            let sessions: Vec<u64> = run.shards.iter().map(|h| h.sessions_served).collect();
            (run.report.algorithm, run.report.router, sessions, trace)
        } else {
            let (run, _probes, trace) = engine
                .run_traced(
                    &inst,
                    &factory,
                    |_| dbp_core::probe::NoProbe,
                    |s, epoch| dbp_obs::SpanCollector::with_epoch(epoch, s as u32),
                )
                .map_err(|e| e.to_string())?;
            let sessions: Vec<u64> = run
                .shards
                .iter()
                .map(|sr| sr.report.sessions_served as u64)
                .collect();
            (run.report.algorithm, run.report.router, sessions, trace)
        };

    let t = &trace.timing;
    println!("algorithm      : {algorithm}");
    println!("router         : {router_name}");
    println!("shards         : {} ({} workers)", shards, config.workers());
    println!("sessions       : {}", shard_sessions.iter().sum::<u64>());
    println!("wall           : {:.3} ms", t.wall_ns as f64 / 1e6);

    // Ranked self-time table over every lane (driver + shards).
    let mut breakdown = dbp_obs::StageBreakdown::from_spans(trace.driver.spans());
    for lane in &trace.shards {
        breakdown.absorb_spans(lane.spans());
    }
    println!();
    print!("{}", breakdown.render(t.wall_ns));

    // Per-shard utilization: where each shard's slice of the dispatch
    // window went. queue-wait is pool contention — with fewer workers than
    // shards this is exactly the scaling plateau.
    println!();
    println!("shard   sessions     busy_ms   queue_ms   busy%_of_dispatch");
    for (s, &sessions) in shard_sessions.iter().enumerate().take(shards) {
        let busy = t.busy_ns[s];
        let wait = t.queue_wait_ns[s];
        let pct = if t.dispatch_ns == 0 {
            0.0
        } else {
            busy as f64 * 100.0 / t.dispatch_ns as f64
        };
        println!(
            "{s:>5}   {sessions:>8}   {:>9.3}   {:>8.3}   {pct:>6.1}%",
            busy as f64 / 1e6,
            wait as f64 / 1e6,
        );
    }

    // Driver coverage: the sequential stages must explain the wall.
    let accounted = t.accounted_ns();
    let pct = |ns: u64| ns as f64 * 100.0 / t.wall_ns.max(1) as f64;
    println!();
    println!(
        "coverage       : partition {:.1}% + enqueue {:.1}% + dispatch {:.1}% + fan-in {:.1}% \
         = {:.1}% of wall",
        pct(t.partition_ns),
        pct(t.batch_enqueue_ns),
        pct(t.dispatch_ns),
        pct(t.fan_in_ns),
        pct(accounted),
    );

    if let Some(path) = args.str_flag("trace-out") {
        let mut names = vec!["driver".to_string()];
        names.extend((0..shards).map(|s| format!("shard {s}")));
        let mut lanes: Vec<(&str, &[dbp_core::span::SpanEvent])> =
            vec![(names[0].as_str(), trace.driver.spans())];
        for (s, lane) in trace.shards.iter().enumerate() {
            lanes.push((names[s + 1].as_str(), lane.spans()));
        }
        let json = dbp_obs::chrome_trace_json(lanes);
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("chrome trace saved to {path} (open in chrome://tracing or Perfetto)");
    }
    if let Some(path) = args.str_flag("metrics") {
        let mut reg = dbp_obs::MetricsRegistry::new();
        breakdown.export_metrics(&mut reg);
        for s in 0..shards {
            reg.gauge_set(
                &format!("dbp_shard_busy_ns{{shard=\"{s}\"}}"),
                t.busy_ns[s] as i64,
            );
            reg.gauge_set(
                &format!("dbp_shard_queue_wait_ns{{shard=\"{s}\"}}"),
                t.queue_wait_ns[s] as i64,
            );
        }
        dbp_obs::export::write_prometheus(std::path::Path::new(path), &reg)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("metrics saved to {path}");
    }
    Ok(())
}

/// `dbp recover JOURNAL`: audit a write-ahead journal from `run --journal`.
///
/// Always: read the journal tolerating a torn tail frame (`--repair`
/// truncates it on disk), replay the event stream checking every structural
/// invariant, and recompute the exact integer cost from the events alone.
///
/// With `--trace FILE` (the instance the run packed): rebuild an engine
/// snapshot at the last complete-operation boundary and resume the
/// interrupted run — `--resume-jsonl OUT` writes the journaled prefix plus
/// the continuation, byte-identical to an uninterrupted run's stream. A
/// journal carrying fault-injection events instead needs `--faults` (the
/// original plan) and recovers by verified deterministic re-execution.
///
/// With `--manifest FILE` (from `run --run-manifest`): diff the replayed
/// run against the recorded provenance — algorithm, item count, instance
/// digest, and exact cost — and fail on any disagreement.
fn cmd_recover(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing journal argument (a .wal file from run --journal)")?;
    if args.has("serve-shards") {
        return cmd_recover_serve(path, args.u64_flag("serve-shards")? as usize);
    }
    // Vector journals (format v2) carry their dimensionality in the header;
    // dispatch to the monomorphized per-dimension audit. Scalar (v1)
    // journals keep the original path byte-for-byte.
    let dims = dbp_obs::journal::peek_journal_dims(std::path::Path::new(path))
        .map_err(|e| format!("{path}: {e}"))?;
    if dims > 1 {
        return match dims {
            2 => cmd_recover_vector::<2>(args, path),
            3 => cmd_recover_vector::<3>(args, path),
            4 => cmd_recover_vector::<4>(args, path),
            d => Err(format!(
                "{path}: journal holds {d}-dimensional demands; this build audits up to 4"
            )),
        };
    }
    let contents = dbp_obs::journal::read_journal(std::path::Path::new(path))?;
    match &contents.torn {
        Some(torn) => {
            println!(
                "journal        : torn tail — {} (sound prefix {} bytes)",
                torn.reason, torn.sound_len
            );
            if args.has("repair") {
                dbp_obs::journal::repair_journal(std::path::Path::new(path))?;
                println!("repaired       : truncated to {} bytes", torn.sound_len);
            }
        }
        None => println!("journal        : clean"),
    }
    let fault_events = contents
        .events
        .iter()
        .filter(|e| e.is_fault_event())
        .count();
    println!("events         : {}", contents.events.len());
    // A fault-injection stream breaks the engine's structural invariants by
    // design (crashed bins vanish, their sessions reopen elsewhere), so its
    // audit is the verified re-execution below, not the replay walk.
    let summary = if fault_events == 0 {
        let s = dbp_obs::replay::replay_events(&contents.events)
            .map_err(|e| format!("{path}: audit failed: {e}"))?;
        println!(
            "items          : {} arrived, {} placed, {} departed",
            s.arrivals, s.placements, s.departures
        );
        println!(
            "bins           : {} opened, {} closed, {} still open (peak {})",
            s.bins_opened, s.bins_closed, s.open_at_end, s.max_open
        );
        if s.violations > 0 {
            println!("carried        : {} violations", s.violations);
        }
        println!(
            "replayed cost  : {} bin-ticks ({})",
            s.cost_ticks,
            if s.is_complete() {
                "complete run"
            } else {
                "closed bins only — run was interrupted"
            }
        );
        Some(s)
    } else {
        println!(
            "audit          : {fault_events} fault events — a resilient-dispatch journal; \
             pass --trace and --faults to audit by verified re-execution"
        );
        None
    };
    let complete = summary.as_ref().is_some_and(|s| s.is_complete());

    // With the original instance in hand, finish what the journal started.
    let mut final_cost = complete.then(|| summary.as_ref().unwrap().cost_ticks);
    let mut algorithm_used: Option<String> = None;
    let mut trace_digest: Option<String> = None;
    if let Some(trace_path) = args.str_flag("trace") {
        let body = std::fs::read_to_string(trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
        let inst: Instance =
            serde_json::from_str(&body).map_err(|e| format!("{trace_path}: {e}"))?;
        trace_digest = Some(dbp_obs::manifest::instance_digest(&inst));
        let algo = args.str_flag("algo").unwrap_or("ff");
        let mut sel = selector_by_name(algo, mu_hint(&inst))?;
        algorithm_used = Some(sel.name().to_string());
        if fault_events > 0 {
            let spec = args.str_flag("faults").ok_or(
                "journal carries fault-injection events; pass --faults SEED|PLAN.json \
                 matching the original run",
            )?;
            let horizon = dbp_core::events::event_ticks(&inst)
                .last()
                .map(|t| t.raw())
                .unwrap_or(0);
            let plan = load_fault_plan(spec, horizon)?;
            let resilient = dbp_cloudsim::ResilientSystem::new(paper_gaming_system(&inst), plan);
            let mut log = dbp_obs::EventLog::new();
            let out = resilient
                .recover_probed(&inst, &mut *sel, &mut log, &contents.events)
                .map_err(|e| format!("recovery failed: {e}"))?;
            println!(
                "recovery       : {} journaled events verified, {} re-derived",
                out.events_replayed, out.events_appended
            );
            println!(
                "report         : {}/{} sessions served, {} crashes, {} re-dispatched",
                out.report.sessions_served,
                out.report.sessions_total,
                out.report.crashes,
                out.report.redispatches
            );
            if let Some(out_path) = args.str_flag("resume-jsonl") {
                let mut combined = dbp_obs::export::events_to_jsonl(&contents.events);
                combined.push_str(&dbp_obs::export::events_to_jsonl(log.events()));
                dbp_obs::export::atomic_write(std::path::Path::new(out_path), combined.as_bytes())
                    .map_err(|e| format!("{out_path}: {e}"))?;
                println!("combined stream saved to {out_path}");
            }
        } else {
            if args.has("faults") {
                return Err("--faults given but the journal carries no fault events".into());
            }
            let alg = sel.name().to_string();
            let rec = dbp_obs::replay::snapshot_from_events(&inst, &alg, &contents.events)
                .map_err(|e| format!("recovery failed: {e}"))?;
            println!(
                "snapshot       : at event {} ({} trailing partial events dropped)",
                rec.events_used, rec.events_dropped
            );
            let mut log = dbp_obs::EventLog::new();
            let trace = simulate_resumed_probed(&inst, &mut *sel, &mut log, &rec.snapshot)
                .map_err(|e| format!("resume failed: {e}"))?;
            println!(
                "resumed cost   : {} bin-ticks ({} continuation events)",
                trace.total_cost_ticks(),
                log.len()
            );
            final_cost = Some(trace.total_cost_ticks());
            if let Some(out_path) = args.str_flag("resume-jsonl") {
                let mut combined =
                    dbp_obs::export::events_to_jsonl(&contents.events[..rec.events_used]);
                combined.push_str(&dbp_obs::export::events_to_jsonl(log.events()));
                dbp_obs::export::atomic_write(std::path::Path::new(out_path), combined.as_bytes())
                    .map_err(|e| format!("{out_path}: {e}"))?;
                println!("combined stream saved to {out_path}");
            }
        }
    } else if args.has("resume-jsonl") {
        return Err("--resume-jsonl needs --trace FILE (the instance the run packed)".into());
    }

    // Diff everything the journal could recompute against the recorded
    // provenance; any disagreement is a hard failure.
    if let Some(manifest_path) = args.str_flag("manifest") {
        let body =
            std::fs::read_to_string(manifest_path).map_err(|e| format!("{manifest_path}: {e}"))?;
        let recorded: dbp_obs::RunManifest =
            serde_json::from_str(&body).map_err(|e| format!("{manifest_path}: {e}"))?;
        let mut mismatches: Vec<String> = Vec::new();
        match (recorded.total_cost_ticks, final_cost) {
            (Some(want), Some(got)) if want != got => mismatches.push(format!(
                "total cost: manifest records {want} bin-ticks, journal replays to {got}"
            )),
            (Some(want), Some(_)) => {
                println!("cost check     : OK ({want} bin-ticks, recomputed exactly)");
            }
            (Some(_), None) => mismatches.push(
                "total cost: journal is an incomplete prefix; pass --trace FILE to \
                 resume the run and recompute it"
                    .into(),
            ),
            (None, _) => println!("cost check     : manifest records no cost (skipped)"),
        }
        if let Some(s) = &summary {
            if s.is_complete() && s.arrivals != recorded.n_items {
                mismatches.push(format!(
                    "items: manifest records {}, journal replays {}",
                    recorded.n_items, s.arrivals
                ));
            }
        }
        if let Some(alg) = &algorithm_used {
            if *alg != recorded.algorithm {
                mismatches.push(format!(
                    "algorithm: manifest records {}, recovery used {alg} (pass --algo)",
                    recorded.algorithm
                ));
            }
        }
        if let Some(digest) = &trace_digest {
            if *digest != recorded.instance_digest {
                mismatches.push(format!(
                    "instance digest: manifest records {}, --trace hashes to {digest}",
                    recorded.instance_digest
                ));
            } else {
                println!("digest check   : OK ({digest})");
            }
        }
        if !mismatches.is_empty() {
            return Err(format!(
                "manifest {manifest_path} disagrees with the journal:\n  {}",
                mismatches.join("\n  ")
            ));
        }
        println!("manifest check : OK");
    }
    Ok(())
}

/// `dbp recover FILE.wal` for a format-v2 (vector) journal: the
/// structural audit plus the **exact per-dimension cost audit** — served
/// demand-ticks recomputed from the events alone, one integer per
/// resource dimension. Resume (`--trace`) stays scalar-only; a vector
/// journal names its own dimensionality, so this path never guesses.
fn cmd_recover_vector<const D: usize>(args: &Args, path: &str) -> Result<(), String> {
    if args.has("trace") {
        return Err(format!(
            "--trace resume is scalar-only; this journal is {D}-dimensional"
        ));
    }
    let contents = dbp_obs::journal::read_journal_dims::<dbp_core::demand::VSize<D>>(
        std::path::Path::new(path),
    )?;
    match &contents.torn {
        Some(torn) => {
            println!(
                "journal        : torn tail — {} (sound prefix {} bytes)",
                torn.reason, torn.sound_len
            );
            if args.has("repair") {
                dbp_obs::journal::repair_journal(std::path::Path::new(path))?;
                println!("repaired       : truncated to {} bytes", torn.sound_len);
            }
        }
        None => println!("journal        : clean"),
    }
    println!("dimensions     : {D}");
    println!("events         : {}", contents.events.len());
    let s = dbp_obs::replay::replay_events_dims(&contents.events)
        .map_err(|e| format!("{path}: audit failed: {e}"))?;
    println!(
        "items          : {} arrived, {} placed, {} departed",
        s.arrivals, s.placements, s.departures
    );
    println!(
        "bins           : {} opened, {} closed, {} still open (peak {})",
        s.bins_opened, s.bins_closed, s.open_at_end, s.max_open
    );
    if s.violations > 0 {
        println!("carried        : {} violations", s.violations);
    }
    println!(
        "replayed cost  : {} bin-ticks ({})",
        s.cost_ticks,
        if s.is_complete() {
            "complete run"
        } else {
            "closed bins only — run was interrupted"
        }
    );
    let (ticks, resident) = dbp_obs::per_dim_demand_ticks(&contents.events);
    for (d, t) in ticks.iter().enumerate() {
        println!("dim {d} served   : {t} demand-ticks");
    }
    if resident > 0 {
        println!(
            "resident       : {resident} items still placed at stream end \
             (their demand-ticks are not yet accountable)"
        );
    }
    Ok(())
}

/// `dbp recover BASE --serve-shards N`: audit a daemon's journal set.
///
/// Reads `BASE.shardK` for every shard — tolerating torn tails, exactly
/// what a SIGKILL'd daemon leaves behind — replays each through the
/// instance-free auditor, and prints the aggregate as one JSON line. The
/// placements/departures counts are the daemon's served/departed ledger
/// recomputed from disk alone, so CI can diff them against a pre-kill
/// `/metrics` scrape.
fn cmd_recover_serve(base: &str, shards: usize) -> Result<(), String> {
    if shards == 0 {
        return Err("--serve-shards must be at least 1".into());
    }
    let mut events = 0u64;
    let mut torn_shards = 0u64;
    let mut placements = 0u64;
    let mut departures = 0u64;
    let mut sheds = 0u64;
    let mut open_bins = 0u64;
    let mut cost_ticks = 0u128;
    let mut journal_dims = 1usize;
    let mut dim_ticks: Vec<u128> = Vec::new();
    for k in 0..shards {
        let path = format!("{base}.shard{k}");
        let a = audit_serve_journal(std::path::Path::new(&path))?;
        journal_dims = journal_dims.max(a.dim_ticks.len());
        let s = &a.summary;
        let tail = match &a.torn {
            Some(reason) => {
                torn_shards += 1;
                format!("torn tail ({reason})")
            }
            None => "clean".to_string(),
        };
        println!(
            "shard {k:>2}       : {} events, {} placed, {} departed, {} shed, \
             {} bins open — {tail}",
            a.events, s.placements, s.departures, s.fault_events, s.open_at_end,
        );
        events += a.events as u64;
        placements += s.placements;
        departures += s.departures;
        sheds += s.fault_events;
        open_bins += s.open_at_end;
        cost_ticks += s.cost_ticks;
        dim_ticks.resize(dim_ticks.len().max(a.dim_ticks.len()), 0);
        for (slot, t) in dim_ticks.iter_mut().zip(&a.dim_ticks) {
            *slot += t;
        }
    }
    if journal_dims > 1 {
        for (d, t) in dim_ticks.iter().enumerate() {
            println!("dim {d} served   : {t} demand-ticks");
        }
    }
    let dims_json = if journal_dims > 1 {
        let ticks: Vec<String> = dim_ticks.iter().map(|t| t.to_string()).collect();
        format!(
            ",\"dims\":{journal_dims},\"dim_demand_ticks\":[{}]",
            ticks.join(",")
        )
    } else {
        String::new()
    };
    println!(
        "{{\"shards\":{shards},\"torn_shards\":{torn_shards},\"events\":{events},\
         \"placements\":{placements},\"departures\":{departures},\"sheds\":{sheds},\
         \"open_bins\":{open_bins},\"closed_cost_ticks\":{cost_ticks}{dims_json}}}"
    );
    Ok(())
}

/// One serve-shard journal, read at whatever dimensionality its header
/// declares, audited structurally plus per-dimension.
struct ShardAudit {
    events: usize,
    torn: Option<String>,
    summary: dbp_obs::ReplaySummary,
    dim_ticks: Vec<u128>,
}

fn audit_serve_journal(path: &std::path::Path) -> Result<ShardAudit, String> {
    fn at_dims<const D: usize>(path: &std::path::Path) -> Result<ShardAudit, String> {
        let c = dbp_obs::journal::read_journal_dims::<dbp_core::demand::VSize<D>>(path)?;
        // Serve journals interleave drop records (admission sheds) with
        // the engine stream; the auditor counts them alongside the
        // structural replay.
        let summary = dbp_obs::replay::replay_events_dims(&c.events)
            .map_err(|e| format!("{}: audit failed: {e}", path.display()))?;
        let (dim_ticks, _) = dbp_obs::per_dim_demand_ticks(&c.events);
        Ok(ShardAudit {
            events: c.events.len(),
            torn: c.torn.map(|t| t.reason),
            summary,
            dim_ticks,
        })
    }
    match dbp_obs::journal::peek_journal_dims(path)? {
        1 => at_dims::<1>(path),
        2 => at_dims::<2>(path),
        3 => at_dims::<3>(path),
        4 => at_dims::<4>(path),
        d => Err(format!(
            "{}: journal holds {d}-dimensional demands; this build audits up to 4",
            path.display()
        )),
    }
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing event-log argument (a .jsonl file from run --trace-events)")?;
    let events = dbp_obs::export::read_jsonl(std::path::Path::new(path))?;
    let rendered = dbp_obs::timeline::render_timeline(&events);
    if args.has("summary") {
        // Just the trailing summary line.
        println!("{}", rendered.lines().last().unwrap_or(""));
    } else {
        print!("{rendered}");
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let inst = load_instance(args, 1)?;
    let lb = bounds::combined_lower_bound(&inst);
    println!(
        "{} items, span {} ticks, µ = {:.3}, LB = {:.1} bin-ticks",
        inst.len(),
        inst.span().raw(),
        inst.mu().map(|m| m.to_f64()).unwrap_or(f64::NAN),
        lb.to_f64()
    );
    println!(
        "{:>8}  {:>14}  {:>9}  {:>8}  {:>8}",
        "algo", "cost", "cost/LB", "bins", "peak"
    );
    for f in standard_factories(0) {
        let mut sel = f.build();
        let trace = simulate(&inst, &mut *sel);
        let cost = trace.total_cost_ticks();
        println!(
            "{:>8}  {:>14}  {:>9.4}  {:>8}  {:>8}",
            f.name(),
            cost,
            (Ratio::from_int(cost) / lb).to_f64(),
            trace.bins_used(),
            trace.max_open_bins()
        );
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let inst = load_instance(args, 1)?;
    let trace = simulate(&inst, &mut FirstFit::new());
    let a = analyze_first_fit(&inst, &trace);
    println!(
        "First Fit trace: {} bins, cost {} bin-ticks",
        trace.bins_used(),
        a.certificates.ff_total
    );
    println!("∆ = {}, µ∆ = {} ticks", a.delta.raw(), a.max_len.raw());
    println!("sub-periods     : {}", a.subperiods.len());
    println!(
        "pairing         : J = {}, S = {}, U = {}",
        a.refs.pairing.joint_pairs, a.refs.pairing.single_periods, a.refs.pairing.non_intersecting
    );
    println!("case totals     : {:?}", a.refs.case_counts.total);
    println!("case intersects : {:?}", a.refs.case_counts.intersecting);
    println!("eq (6) holds    : {}", a.certificates.eq6_holds);
    println!("ineq (13) holds : {}", a.certificates.ineq13_holds);
    println!("ineq (15) holds : {}", a.certificates.ineq15_holds);
    println!(
        "Theorem 5 check : FF_total = {} <= (2µ+13)·LB = {:.1} : {}",
        a.certificates.ff_total,
        a.certificates.theorem5_rhs.to_f64(),
        a.certificates.theorem5_holds
    );
    if a.is_clean() {
        println!("analysis clean: every feature/lemma of §4.3 verified");
        Ok(())
    } else {
        Err(format!("analysis violations:\n{}", a.violations.join("\n")))
    }
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let inst = load_instance(args, 1)?;
    let s = inst.stats();
    println!("items            : {}", s.n_items);
    println!("capacity W       : {}", s.capacity);
    println!("span             : {} ticks", s.span.raw());
    println!("total demand u(R): {} size·ticks", s.total_demand);
    println!(
        "interval lengths : {}..{} ticks  (µ = {:.3})",
        s.min_interval_len.raw(),
        s.max_interval_len.raw(),
        s.mu.to_f64()
    );
    println!("sizes            : {}..{}", s.min_size, s.max_size);
    println!(
        "lower bounds     : u/W = {:.1}, span = {}",
        bounds::demand_lower_bound(&inst).to_f64(),
        s.span.raw()
    );
    Ok(())
}

fn cmd_scenarios(args: &Args) -> Result<(), String> {
    let seed = args.u64_flag_or("seed", 0)?;
    println!(
        "{:>13}  {:>6}  {:>8}  {:>12}  {:>9}  {:>8}",
        "scenario", "items", "mu", "best algo", "cost/LB", "peak"
    );
    for scenario in dbp_workloads::Scenario::ALL {
        let cfg = CloudGamingConfig {
            seed,
            ..scenario.config()
        };
        let inst = generate(&cfg);
        let lb = bounds::combined_lower_bound(&inst);
        let mut best: Option<(String, Ratio, u32)> = None;
        for f in standard_factories(seed) {
            let mut sel = f.build();
            let trace = simulate(&inst, &mut *sel);
            let ratio = Ratio::from_int(trace.total_cost_ticks()) / lb;
            if best.as_ref().is_none_or(|(_, r, _)| ratio < *r) {
                best = Some((f.name().to_string(), ratio, trace.max_open_bins()));
            }
        }
        let (name, ratio, peak) = best.expect("roster is nonempty");
        println!(
            "{:>13}  {:>6}  {:>8.2}  {:>12}  {:>9.3}  {:>8}",
            scenario.name(),
            inst.len(),
            inst.mu().map(|m| m.to_f64()).unwrap_or(f64::NAN),
            name,
            ratio.to_f64(),
            peak
        );
    }
    Ok(())
}

fn cmd_opt(args: &Args) -> Result<(), String> {
    let inst = load_instance(args, 1)?;
    let mode = if args.has("bounds-only") {
        SolveMode::Bounds
    } else {
        SolveMode::default()
    };
    let opt = opt_total(&inst, mode);
    if opt.is_exact() {
        println!(
            "OPT_total = {} bin-ticks (exact, {} segments, {} distinct sets)",
            opt.lb_ticks, opt.segments, opt.distinct_sets
        );
    } else {
        println!(
            "OPT_total in [{}, {}] bin-ticks ({} segments, {} distinct sets)",
            opt.lb_ticks, opt.ub_ticks, opt.segments, opt.distinct_sets
        );
    }
    println!(
        "lower bounds: u(R)/W = {:.1}, span = {}",
        bounds::demand_lower_bound(&inst).to_f64(),
        inst.span().raw()
    );
    if args.has("timeline") {
        let timeline = dbp_opt::opt_timeline(&inst, mode);
        let max = timeline
            .iter()
            .map(|&(_, _, ub)| ub)
            .max()
            .unwrap_or(1)
            .max(1);
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let spark: String = timeline
            .iter()
            .map(|&(_, lb, _)| GLYPHS[(lb * (GLYPHS.len() - 1)) / max])
            .collect();
        println!(
            "OPT(R,t) profile ({} event ticks, peak {max}):",
            timeline.len()
        );
        println!("{spark}");
        // Compare against First Fit's open-bin profile at the same ticks.
        let trace = simulate(&inst, &mut FirstFit::new());
        let ff_spark: String = timeline
            .iter()
            .map(|&(t, _, _)| {
                let n = trace.open_bins_at(t) as usize;
                GLYPHS[(n * (GLYPHS.len() - 1)) / max.max(n).max(1)]
            })
            .collect();
        println!("{ff_spark}");
        println!("(top: OPT, bottom: FF open bins)");
    }
    Ok(())
}
