//! Minimal flag parser for the `dbp` binary (no external deps): positional
//! subcommand + `--key value` flags.

use std::collections::BTreeMap;

/// Parsed command line: subcommand path and flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// Positional words before the first `--flag`.
    pub positional: Vec<String>,
    /// `--key value` pairs (`--key` alone stores an empty string).
    pub flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding `argv[0]`).
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty flag name '--'".into());
                }
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap(),
                    _ => String::new(),
                };
                if out.flags.insert(key.to_string(), value).is_some() {
                    return Err(format!("duplicate flag --{key}"));
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// Required u64 flag.
    pub fn u64_flag(&self, key: &str) -> Result<u64, String> {
        self.flags
            .get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))?
            .parse()
            .map_err(|e| format!("--{key}: {e}"))
    }

    /// Optional u64 flag with default.
    pub fn u64_flag_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }

    /// Optional f64 flag with default.
    pub fn f64_flag_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }

    /// Optional string flag.
    pub fn str_flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = parse(&["adversary", "thm1", "--k", "8", "--mu", "10"]);
        assert_eq!(a.positional, vec!["adversary", "thm1"]);
        assert_eq!(a.u64_flag("k").unwrap(), 8);
        assert_eq!(a.u64_flag("mu").unwrap(), 10);
        assert_eq!(a.u64_flag_or("n", 4).unwrap(), 4);
    }

    #[test]
    fn bare_flags_are_boolean() {
        let a = parse(&["run", "--validate", "--algo", "ff"]);
        assert!(a.has("validate"));
        assert_eq!(a.str_flag("algo"), Some("ff"));
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = parse(&["adversary"]);
        assert!(a.u64_flag("k").is_err());
    }

    #[test]
    fn duplicate_flag_errors() {
        let err = Args::parse(["--k", "1", "--k", "2"].iter().map(|s| s.to_string()));
        assert!(err.is_err());
    }

    #[test]
    fn bad_number_errors() {
        let a = parse(&["x", "--k", "eight"]);
        assert!(a.u64_flag("k").is_err());
        assert!(a.f64_flag_or("k", 1.0).is_err());
    }
}
