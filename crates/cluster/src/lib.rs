//! # dbp-cluster — sharded multi-dispatcher scale-out
//!
//! The paper's dispatcher is a single MinTotal DBP instance; the providers
//! its introduction cites run many regional server pools behind a routing
//! layer. This crate is that layer over the `dbp-core` engine:
//!
//! * [`Router`] — deterministic routing policies (hash-by-item,
//!   game-affinity against the `dbp-workloads` catalog, exact-integer
//!   least-loaded) that partition one request stream into per-shard
//!   instances via [`Instance::restrict`](dbp_core::instance::Instance::restrict);
//! * [`ClusterEngine`] — runs every shard as an independent
//!   [`GamingSystem`](dbp_cloudsim::GamingSystem)-equivalent dispatch on a
//!   bounded thread pool, with batched time-ordered ingestion
//!   ([`BatchPolicy`]) and a per-shard
//!   [`Probe`](dbp_core::probe::Probe) fan-in;
//! * [`ClusterReport`] — the exact aggregate: `busy_ticks`, `billed_ticks`
//!   and `cost_cents` are plain `u128`/`Ratio` sums over the shards
//!   (shards share no servers, so costs are additive), plus a merged
//!   [`RunManifest`](dbp_obs::RunManifest) whose digest covers the full
//!   pre-partition stream;
//! * [`ClusterEngine::run_resilient`] — per-shard
//!   [`FaultPlan`](dbp_cloudsim::FaultPlan)s through the resilient
//!   dispatcher, with a cluster-wide conserved SLA ledger;
//! * [`ClusterEngine::run_traced`] — the probed run plus one
//!   [`SpanRecorder`](dbp_core::span::SpanRecorder) per shard and a
//!   driver lane, returning a [`ClusterTrace`] with exact
//!   [`ClusterTiming`] (partition / enqueue / dispatch / fan-in, and
//!   per-shard queue-wait vs busy) for `dbp profile` and Chrome traces.
//!
//! * [`ClusterEngine::run_self_healing`] — shard-level fault containment:
//!   a deterministic [`ShardFaultPlan`] kills shards mid-run, a per-shard
//!   supervisor catches the unwind, rebuilds the engine from the shard's
//!   own event journal
//!   ([`snapshot_from_events`](dbp_obs::prelude::snapshot_from_events) +
//!   [`EngineRun::resume`](dbp_core::engine::EngineRun::resume)) under a
//!   bounded restart budget, and reroutes only *future* arrivals off
//!   shards that stay dead — returning a [`ClusterHealedRun`] whose
//!   extended ledger conserves
//!   `served + dropped + lost + rerouted == total`.
//!
//! The differential guarantee the test suite pins down: a 1-shard cluster
//! *is* the plain system run — same report, same JSONL event stream, same
//! manifest digest — and for any shard count the union of shard traces
//! serves every item exactly once.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cancel;
pub mod engine;
pub mod faults;
pub mod router;
pub mod vector;

pub use engine::{
    run_shard_probed, run_shard_traced, BatchPolicy, ClusterConfig, ClusterEngine, ClusterError,
    ClusterHealedRun, ClusterReport, ClusterResilientReport, ClusterResilientRun, ClusterRun,
    ClusterTiming, ClusterTrace, ShardHealthReport, ShardRun,
};
pub use faults::{KillPoint, RestartPolicy, ShardFaultPlan, ShardHealth, ShardKill};
pub use router::Router;
pub use vector::{assign_vec, route_one_dims, route_one_vec, run_cluster_vec, VectorClusterRun};
