//! Shard-level fault injection and self-healing supervision.
//!
//! Where `dbp-cloudsim`'s [`FaultPlan`](dbp_cloudsim::FaultPlan) kills
//! individual *servers* inside one dispatcher, a [`ShardFaultPlan`] kills
//! whole dispatcher *shards* — the biggest untested failure domain of the
//! cluster layer. The supervisor in this module contains each kill with
//! `catch_unwind`, walks the shard through the
//! Up → Failed → Recovering → Up health machine ([`ShardHealth`]), and
//! resurrects it from its own write-ahead event stream via
//! [`snapshot_from_events`] + [`EngineRun::resume`] — the same machinery
//! `dbp recover` uses for process crashes.
//!
//! ## The resurrection invariant
//!
//! Every event a shard emits is journaled *before* a kill can land after
//! it, so the WAL prefix at death is exact. Recovery truncates the WAL to
//! the last complete engine operation, rebuilds the snapshot there by
//! deterministic replay, and resumes with a fresh selector; the resumed
//! run re-emits exactly the dropped suffix first. The continued stream is
//! therefore **byte-identical** to an unkilled run of the same shard —
//! kill markers aside, which are fault-vocabulary events interleaved at
//! their stream position and filtered by `is_fault_event()`.

use crate::engine::{run_shard_traced, BatchPolicy};
use dbp_cloudsim::{GamingSystem, RetryPolicy, SystemReport, TICKS_PER_HOUR};
use dbp_core::engine::EngineRun;
use dbp_core::instance::Instance;
use dbp_core::packer::SelectorFactory;
use dbp_core::probe::{Probe, ProbeEvent};
use dbp_core::ratio::Ratio;
use dbp_core::snapshot::Snapshot;
use dbp_core::span::{stage, SpanRecorder};
use dbp_core::time::Tick;
use dbp_core::trace::PackingTrace;
use dbp_obs::prelude::snapshot_from_events;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// When, along a shard's own event stream, a kill fires.
///
/// Kills in a schedule fire in plan order: the cursor only advances past a
/// kill once it has fired, so a later entry cannot fire before an earlier
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KillPoint {
    /// Kill once the shard has journaled at least `k` engine events
    /// (fires immediately after the `k`-th event is durably recorded —
    /// the event survives, the shard does not).
    Event(u64),
    /// Kill immediately *before* the shard records its first event at
    /// simulation tick ≥ `t` (that event is lost with the shard).
    Tick(u64),
}

/// One scheduled shard kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardKill {
    /// Target shard index.
    pub shard: u32,
    /// When the kill fires along the shard's stream.
    pub at: KillPoint,
}

/// Bounded restart budget for killed shards, reusing the
/// [`RetryPolicy`] backoff semantics of the server-level fault layer:
/// restart `i` charges `backoff.backoff_ticks(i)` ticks of accounted
/// downtime before the shard is considered up again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestartPolicy {
    /// Restarts allowed per shard before it is abandoned.
    pub max_restarts: u32,
    /// Capped exponential backoff charged per restart attempt.
    pub backoff: RetryPolicy,
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy {
            max_restarts: 3,
            backoff: RetryPolicy::default(),
        }
    }
}

/// A deterministic, JSON-loadable shard-kill schedule for one cluster run,
/// mirroring [`FaultPlan`](dbp_cloudsim::FaultPlan)'s seeded/explicit dual
/// construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardFaultPlan {
    /// Seed the plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// Scheduled kills; entries targeting one shard fire in plan order.
    pub kills: Vec<ShardKill>,
    /// Restart budget and backoff applied to every shard.
    #[serde(default)]
    pub restart: RestartPolicy,
}

const STREAM_SHARD_KILL: u64 = 0x5AAD_F417_C1A5_7E12;

/// SplitMix64-style avalanche, independent of the cloudsim fault streams.
fn mix(seed: u64, stream: u64, counter: u64) -> u64 {
    let mut z = seed ^ stream.rotate_left(17) ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardFaultPlan {
    /// The empty plan: no kills, default restart budget. A self-healing
    /// run under this plan is byte-identical to the fault-free cluster
    /// run (property-tested).
    pub fn none() -> ShardFaultPlan {
        ShardFaultPlan {
            seed: 0,
            kills: Vec::new(),
            restart: RestartPolicy::default(),
        }
    }

    /// Deterministic plan with exactly `kill_count` kills spread over
    /// `shards` shards at event offsets in `1..=events_hint`. Same seed,
    /// same plan — independent of platform and call site.
    pub fn generate(
        seed: u64,
        shards: usize,
        events_hint: u64,
        kill_count: usize,
    ) -> ShardFaultPlan {
        let span = events_hint.max(2);
        let shards = shards.max(1) as u64;
        let mut kills: Vec<ShardKill> = (0..kill_count as u64)
            .map(|i| ShardKill {
                shard: (mix(seed, STREAM_SHARD_KILL, 2 * i) % shards) as u32,
                at: KillPoint::Event(1 + mix(seed, STREAM_SHARD_KILL, 2 * i + 1) % span),
            })
            .collect();
        // Ascending offsets per shard so every generated kill can fire.
        kills.sort_by_key(|k| {
            let off = match k.at {
                KillPoint::Event(e) => e,
                KillPoint::Tick(t) => t,
            };
            (k.shard, off)
        });
        ShardFaultPlan {
            seed,
            kills,
            restart: RestartPolicy::default(),
        }
    }

    /// Seeded default: roughly one kill per shard.
    pub fn from_seed(seed: u64, shards: usize, events_hint: u64) -> ShardFaultPlan {
        ShardFaultPlan::generate(seed, shards, events_hint, shards.max(1))
    }
}

/// Health of one shard, as reported after a self-healing run. The
/// supervisor drives each shard through
/// `Up → Failed → Recovering → Up` per kill, ending `Down` only when the
/// restart budget is exhausted or WAL recovery itself fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardHealth {
    /// Serving (possibly after one or more resurrections).
    Up,
    /// Killed; a restart is pending.
    Failed,
    /// Rebuilding engine state from the WAL.
    Recovering,
    /// Abandoned: restart budget exhausted or recovery failed.
    Down,
}

impl ShardHealth {
    /// Stable lower-snake name for reports and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Up => "up",
            ShardHealth::Failed => "failed",
            ShardHealth::Recovering => "recovering",
            ShardHealth::Down => "down",
        }
    }
}

/// Typed panic payload for injected shard kills, so the panic hook can
/// keep them off stderr and the supervisor can tell them from genuine
/// engine panics.
pub(crate) struct ShardKillSignal;

static KILL_SILENCER: Once = Once::new();

/// Install (once, process-wide) a panic hook that swallows injected
/// [`ShardKillSignal`] panics and delegates everything else to the
/// previous hook.
fn silence_kill_panics() {
    KILL_SILENCER.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ShardKillSignal>() {
                return;
            }
            prev(info);
        }));
    });
}

/// The scheduled kills of one shard, consumed front to back.
struct KillCursor {
    kills: Vec<KillPoint>,
    next: usize,
}

impl KillCursor {
    fn new(kills: Vec<KillPoint>) -> KillCursor {
        KillCursor { kills, next: 0 }
    }

    /// Fires a pending `Tick(t)` kill before an event at tick ≥ `t`.
    fn fire_before_tick(&mut self, at: Tick) -> bool {
        match self.kills.get(self.next) {
            Some(KillPoint::Tick(t)) if at.0 >= *t => {
                self.next += 1;
                true
            }
            _ => false,
        }
    }

    /// Fires a pending `Event(k)` kill once the WAL holds ≥ `k` events.
    fn fire_at_len(&mut self, len: usize) -> bool {
        match self.kills.get(self.next) {
            Some(KillPoint::Event(k)) if len as u64 >= *k => {
                self.next += 1;
                true
            }
            _ => false,
        }
    }
}

/// The supervised shard's write-ahead probe: every engine event is pushed
/// to the in-memory WAL *before* a post-event kill can fire, so the WAL at
/// death is exactly what a durable journal would hold.
struct WalProbe<'a> {
    wal: &'a mut Vec<ProbeEvent>,
    decisions: &'a mut Vec<u64>,
    kills: &'a mut KillCursor,
}

impl Probe for WalProbe<'_> {
    fn record(&mut self, event: ProbeEvent) {
        if self.kills.fire_before_tick(event.at()) {
            std::panic::panic_any(ShardKillSignal);
        }
        self.wal.push(event);
        if self.kills.fire_at_len(self.wal.len()) {
            std::panic::panic_any(ShardKillSignal);
        }
    }

    fn on_decision_ns(&mut self, ns: u64) {
        self.decisions.push(ns);
    }
}

/// Span forwarding that counts open depth, so the supervisor can close the
/// spans a kill left dangling and keep every lane well-nested.
struct DepthTracked<'r, R: SpanRecorder> {
    inner: &'r mut R,
    depth: u32,
}

impl<R: SpanRecorder> SpanRecorder for DepthTracked<'_, R> {
    const ENABLED: bool = R::ENABLED;

    fn enter(&mut self, name: &'static str) {
        self.depth += 1;
        self.inner.enter(name);
    }

    fn exit(&mut self) {
        self.depth = self.depth.saturating_sub(1);
        self.inner.exit();
    }
}

/// What ultimately became of a supervised shard.
pub(crate) enum ShardFate {
    /// The shard served its whole stream (possibly after resurrections).
    Completed {
        /// The shard's dispatch report, as a fault-free run would build it.
        report: SystemReport,
    },
    /// The shard was abandoned.
    Dead(DeadShard),
}

/// Exact accounting of an abandoned shard, derived from its WAL alone.
pub(crate) struct DeadShard {
    /// Tick of the last journaled event (the shard's time of death).
    pub died_at: u64,
    /// Sessions that fully departed before death.
    pub served: u64,
    /// Sessions in flight at death (arrived, never departed) — billed lost.
    pub lost: u64,
    /// Shard-local indices of sessions that had not arrived yet — the
    /// reroute set.
    pub unarrived: Vec<usize>,
    /// Server-ticks actually used, open servers billed to `died_at`.
    pub busy_ticks: u128,
    /// Billed ticks under the system granularity.
    pub billed_ticks: u128,
    /// Servers the shard booted before dying.
    pub servers_rented: u64,
    /// Exact bill for the shard's partial run.
    pub cost_cents: Ratio,
    /// Why the shard was abandoned.
    pub reason: String,
}

/// The full outcome of supervising one shard.
pub(crate) struct ShardSupervision {
    /// The shard's user-visible event stream: the engine WAL with
    /// `ShardKilled`/`ShardRestarted` markers interleaved at the stream
    /// positions they occurred.
    pub events: Vec<ProbeEvent>,
    /// Per-arrival decision timings (each arrival timed exactly once,
    /// replay is silent).
    pub decisions: Vec<u64>,
    /// Kills that landed (injected or genuine panics).
    pub kills: u32,
    /// Successful WAL resurrections.
    pub restarts: u32,
    /// Total events replayed across all resurrections.
    pub replayed_events: u64,
    /// Total restart backoff charged, in ticks.
    pub backoff_ticks: u64,
    /// Health transitions, starting `Up`.
    pub transitions: Vec<ShardHealth>,
    /// Final outcome.
    pub fate: ShardFate,
}

impl ShardSupervision {
    /// Final health: the last transition.
    pub fn health(&self) -> ShardHealth {
        *self.transitions.last().unwrap_or(&ShardHealth::Up)
    }
}

/// Run one shard under a kill schedule: contain every kill with
/// `catch_unwind`, resurrect from the WAL within the restart budget, and
/// account the corpse exactly when the budget runs out.
#[allow(clippy::too_many_arguments)] // internal seam: the engine passes the full shard context
pub(crate) fn supervise_shard<R: SpanRecorder>(
    system: &GamingSystem,
    requests: &Instance,
    factory: &SelectorFactory,
    kills: Vec<KillPoint>,
    restart: RestartPolicy,
    batch: BatchPolicy,
    shard: u32,
    spans: &mut R,
) -> ShardSupervision {
    if !kills.is_empty() {
        silence_kill_panics();
    }
    let mut wal: Vec<ProbeEvent> = Vec::new();
    let mut decisions: Vec<u64> = Vec::new();
    let mut cursor = KillCursor::new(kills);
    let mut markers: Vec<(usize, ProbeEvent)> = Vec::new();
    let mut kills_fired = 0u32;
    let mut restarts = 0u32;
    let mut replayed_events = 0u64;
    let mut backoff_ticks = 0u64;
    let mut transitions = vec![ShardHealth::Up];
    let mut snapshot: Option<Snapshot> = None;

    let fate = loop {
        let mut sel = factory.build();
        let mut tracked = DepthTracked {
            inner: &mut *spans,
            depth: 0,
        };
        let attempt = {
            let wal_ref = &mut wal;
            let dec_ref = &mut decisions;
            let cur_ref = &mut cursor;
            let snap_ref = snapshot.as_ref();
            let sel_ref = &mut *sel;
            let tracked_ref = &mut tracked;
            catch_unwind(AssertUnwindSafe(move || {
                let mut probe = WalProbe {
                    wal: wal_ref,
                    decisions: dec_ref,
                    kills: cur_ref,
                };
                match snap_ref {
                    None => Ok(run_shard_traced(
                        system,
                        requests,
                        sel_ref,
                        &mut probe,
                        tracked_ref,
                        batch,
                    )),
                    Some(snap) => run_shard_resumed(
                        system,
                        requests,
                        sel_ref,
                        &mut probe,
                        tracked_ref,
                        snap,
                        batch,
                    ),
                }
            }))
        };
        match attempt {
            Ok(Ok((report, _trace))) => break ShardFate::Completed { report },
            Ok(Err(message)) => {
                // WAL recovery produced a snapshot the engine refuses —
                // deterministic, so retrying cannot help.
                transitions.push(ShardHealth::Down);
                break ShardFate::Dead(account_dead_shard(
                    system,
                    requests,
                    &wal,
                    format!("shard resume rejected: {message}"),
                ));
            }
            Err(payload) => {
                for _ in 0..tracked.depth {
                    tracked.inner.exit();
                }
                let injected = payload.is::<ShardKillSignal>();
                kills_fired += 1;
                transitions.push(ShardHealth::Failed);
                let k = wal.len();
                let at = wal.last().map(|e| e.at()).unwrap_or(Tick(0));
                markers.push((
                    k,
                    ProbeEvent::ShardKilled {
                        at,
                        shard,
                        events_done: k as u64,
                    },
                ));
                if restarts >= restart.max_restarts {
                    transitions.push(ShardHealth::Down);
                    let reason = if injected {
                        "restart budget exhausted".to_string()
                    } else {
                        format!("panic: {}", panic_message(&payload))
                    };
                    break ShardFate::Dead(account_dead_shard(system, requests, &wal, reason));
                }
                restarts += 1;
                backoff_ticks += restart.backoff.backoff_ticks(restarts);
                transitions.push(ShardHealth::Recovering);
                if R::ENABLED {
                    spans.enter(stage::SHARD_RESTART);
                }
                // The snapshot's algorithm is checked against the *selector*'s
                // name on resume, which may differ from the factory label.
                let recovered = snapshot_from_events(requests, sel.name(), &wal);
                if R::ENABLED {
                    spans.exit();
                }
                match recovered {
                    Ok(rec) => {
                        wal.truncate(rec.events_used);
                        replayed_events += rec.events_used as u64;
                        markers.push((
                            k,
                            ProbeEvent::ShardRestarted {
                                at,
                                shard,
                                attempt: restarts,
                                replayed: rec.events_used as u64,
                            },
                        ));
                        transitions.push(ShardHealth::Up);
                        snapshot = Some(rec.snapshot);
                    }
                    Err(e) => {
                        transitions.push(ShardHealth::Down);
                        break ShardFate::Dead(account_dead_shard(
                            system,
                            requests,
                            &wal,
                            format!("WAL snapshot recovery failed: {e}"),
                        ));
                    }
                }
            }
        }
    };

    ShardSupervision {
        events: assemble_stream(wal, markers),
        decisions,
        kills: kills_fired,
        restarts,
        replayed_events,
        backoff_ticks,
        transitions,
        fate,
    }
}

/// Resume a shard from a recovered snapshot and drive it to completion,
/// mirroring [`run_shard_traced`]'s validation and report construction.
/// The replay phase gets a `shard_replay` span; the resumed engine loop
/// itself runs span-free ([`EngineRun::resume`] carries no recorder) —
/// byte-identity is about events, not spans.
fn run_shard_resumed<S, P, R>(
    system: &GamingSystem,
    requests: &Instance,
    dispatcher: &mut S,
    probe: &mut P,
    spans: &mut R,
    snapshot: &Snapshot,
    batch: BatchPolicy,
) -> Result<(SystemReport, PackingTrace), String>
where
    S: dbp_core::packer::BinSelector + ?Sized,
    P: Probe,
    R: SpanRecorder,
{
    let started = std::time::Instant::now();
    if R::ENABLED {
        spans.enter(stage::SHARD_REPLAY);
    }
    let resumed = EngineRun::resume(requests, dispatcher, probe, snapshot);
    if R::ENABLED {
        spans.exit();
    }
    let mut run = resumed?;
    let burst = batch.burst();
    while !run.is_done() {
        for _ in 0..burst {
            if !run.step() {
                break;
            }
        }
    }
    let trace = run.finish();
    if R::ENABLED {
        spans.enter(stage::VALIDATE);
    }
    // Same cheap conservation check as the normal shard path — resumed
    // shards must not pay more validation than healthy ones.
    let errs = trace.check_conservation(requests);
    if R::ENABLED {
        spans.exit();
    }
    if P::ENABLED {
        for err in &errs {
            probe.record(ProbeEvent::Violation {
                at: Tick(0),
                message: err.clone(),
            });
        }
    }
    assert!(
        errs.is_empty(),
        "trace conservation check failed for resumed {}:\n{}",
        trace.algorithm,
        errs.join("\n")
    );
    if R::ENABLED {
        spans.enter(stage::REPORT_BUILD);
    }
    let wall = started.elapsed();
    let busy = trace.total_cost_ticks();
    let utilization = if busy == 0 {
        Ratio::ZERO
    } else {
        Ratio::new(
            requests.total_demand(),
            requests.capacity().raw() as u128 * busy,
        )
    };
    let report = SystemReport {
        algorithm: trace.algorithm.clone(),
        sessions_served: requests.len(),
        servers_rented: trace.bins_used(),
        peak_servers: trace.max_open_bins(),
        busy_ticks: busy,
        billed_ticks: dbp_cloudsim::billed_ticks(&trace, system.granularity),
        cost_cents: dbp_cloudsim::rental_cost_cents(&trace, system.server, system.granularity),
        utilization,
        manifest: Some(dbp_obs::RunManifest::capture(
            &trace.algorithm,
            None,
            requests,
            wall,
        )),
    };
    if R::ENABLED {
        spans.exit();
    }
    Ok((report, trace))
}

/// Interleave health markers into the WAL at their stream positions:
/// a marker at position `k` lands after the `k`-th engine event.
fn assemble_stream(wal: Vec<ProbeEvent>, mut markers: Vec<(usize, ProbeEvent)>) -> Vec<ProbeEvent> {
    if markers.is_empty() {
        return wal;
    }
    markers.sort_by_key(|(pos, _)| *pos);
    let mut out = Vec::with_capacity(wal.len() + markers.len());
    let mut mi = 0;
    for (i, ev) in wal.into_iter().enumerate() {
        while mi < markers.len() && markers[mi].0 <= i {
            out.push(markers[mi].1.clone());
            mi += 1;
        }
        out.push(ev);
    }
    for (_, m) in markers.drain(mi..) {
        out.push(m);
    }
    out
}

/// Bill an abandoned shard from its WAL alone: closed servers at their
/// journaled spans, still-open servers from boot to the time of death,
/// sessions split into served (departed) / lost (in flight) / unarrived.
fn account_dead_shard(
    system: &GamingSystem,
    requests: &Instance,
    wal: &[ProbeEvent],
    reason: String,
) -> DeadShard {
    let died_at = wal.last().map(|e| e.at().0).unwrap_or(0);
    let n = requests.len();
    let mut arrived = vec![false; n];
    let mut departed = vec![false; n];
    // Bin ids are dense in opening order, so `opened_at[b]` is bin b's boot.
    let mut opened_at: Vec<u64> = Vec::new();
    let mut open: Vec<bool> = Vec::new();
    let mut busy: u128 = 0;
    let mut billed: u128 = 0;
    for ev in wal {
        match ev {
            ProbeEvent::ItemArrived { item, .. } => {
                if let Some(slot) = arrived.get_mut(item.index()) {
                    *slot = true;
                }
            }
            ProbeEvent::ItemDeparted { item, .. } => {
                if let Some(slot) = departed.get_mut(item.index()) {
                    *slot = true;
                }
            }
            ProbeEvent::BinOpened { at, .. } => {
                opened_at.push(at.0);
                open.push(true);
            }
            ProbeEvent::BinClosed {
                bin, open_ticks, ..
            } => {
                if let Some(slot) = open.get_mut(bin.index()) {
                    *slot = false;
                }
                busy += *open_ticks as u128;
                billed += system.granularity.billed_ticks(*open_ticks) as u128;
            }
            _ => {}
        }
    }
    for b in 0..open.len() {
        if open[b] {
            let span = died_at.saturating_sub(opened_at[b]);
            busy += span as u128;
            billed += system.granularity.billed_ticks(span) as u128;
        }
    }
    let servers_rented = opened_at.len() as u64;
    let cost_cents =
        Ratio::new(
            billed * system.server.cents_per_hour as u128,
            TICKS_PER_HOUR as u128,
        ) + Ratio::from_int(servers_rented as u128 * system.server.setup_cents as u128);
    let mut served = 0u64;
    let mut lost = 0u64;
    let mut unarrived = Vec::new();
    for i in 0..n {
        if departed[i] {
            served += 1;
        } else if arrived[i] {
            lost += 1;
        } else {
            unarrived.push(i);
        }
    }
    DeadShard {
        died_at,
        served,
        lost,
        unarrived,
        busy_ticks: busy,
        billed_ticks: billed,
        servers_rented,
        cost_cents,
        reason,
    }
}

/// Human-readable panic payload (for `ShardPanicked` errors and abandon
/// reasons).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if payload.is::<ShardKillSignal>() {
        "shard killed by fault injection".to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::algorithms::FirstFit;
    use dbp_core::span::NoSpans;
    use dbp_workloads::{generate, CloudGamingConfig};

    fn workload(seed: u64) -> Instance {
        generate(&CloudGamingConfig {
            horizon: 900,
            seed,
            ..CloudGamingConfig::default()
        })
    }

    fn ff_factory() -> SelectorFactory {
        SelectorFactory::new("FF", || Box::new(FirstFit::new()))
    }

    #[test]
    fn plan_generation_is_deterministic_and_json_round_trips() {
        let a = ShardFaultPlan::from_seed(7, 4, 100);
        let b = ShardFaultPlan::from_seed(7, 4, 100);
        assert_eq!(a, b);
        assert_eq!(a.kills.len(), 4);
        for k in &a.kills {
            assert!(k.shard < 4);
            match k.at {
                KillPoint::Event(e) => assert!((1..=100).contains(&e)),
                KillPoint::Tick(_) => {}
            }
        }
        let text = serde_json::to_string(&a).unwrap();
        let back: ShardFaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(back, a);
        // `restart` is optional in hand-written plans.
        let bare: ShardFaultPlan =
            serde_json::from_str(r#"{"seed":0,"kills":[{"shard":1,"at":{"Event":5}}]}"#).unwrap();
        assert_eq!(bare.restart, RestartPolicy::default());
        assert!(ShardFaultPlan::none().kills.is_empty());
    }

    #[test]
    fn unkilled_supervision_is_byte_identical_to_the_plain_shard_run() {
        let inst = workload(3);
        let system = GamingSystem::paper_model();
        let sup = supervise_shard(
            &system,
            &inst,
            &ff_factory(),
            Vec::new(),
            RestartPolicy::default(),
            BatchPolicy::WholeStream,
            0,
            &mut NoSpans,
        );
        let mut log = dbp_obs::EventLog::new();
        let mut sel = ff_factory().build();
        let (report, _) = crate::engine::run_shard_probed(
            &system,
            &inst,
            &mut *sel,
            &mut log,
            BatchPolicy::WholeStream,
        );
        assert_eq!(sup.events, log.events());
        // Decision *timings* are wall-clock and differ run to run; only the
        // count is deterministic.
        assert_eq!(sup.decisions.len(), log.decision_ns().len());
        assert_eq!(sup.transitions, vec![ShardHealth::Up]);
        assert_eq!((sup.kills, sup.restarts), (0, 0));
        match sup.fate {
            ShardFate::Completed { report: r, .. } => {
                assert_eq!(r.busy_ticks, report.busy_ticks);
                assert_eq!(r.cost_cents, report.cost_cents);
            }
            ShardFate::Dead(_) => panic!("unkilled shard must complete"),
        }
    }

    #[test]
    fn killed_shard_resurrects_with_a_byte_identical_stream() {
        let inst = workload(4);
        let system = GamingSystem::paper_model();
        let mut unkilled = dbp_obs::EventLog::new();
        let mut sel = ff_factory().build();
        crate::engine::run_shard_probed(
            &system,
            &inst,
            &mut *sel,
            &mut unkilled,
            BatchPolicy::WholeStream,
        );
        let total = unkilled.len() as u64;
        assert!(total > 20, "fixture too small");
        // Kill early, mid and late along the same shard's stream.
        for offset in [1, total / 2, total - 1] {
            let sup = supervise_shard(
                &system,
                &inst,
                &ff_factory(),
                vec![KillPoint::Event(offset)],
                RestartPolicy::default(),
                BatchPolicy::WholeStream,
                0,
                &mut NoSpans,
            );
            assert_eq!(sup.kills, 1, "offset {offset}");
            assert_eq!(sup.restarts, 1, "offset {offset}");
            assert!(matches!(sup.fate, ShardFate::Completed { .. }));
            assert_eq!(
                sup.transitions,
                vec![
                    ShardHealth::Up,
                    ShardHealth::Failed,
                    ShardHealth::Recovering,
                    ShardHealth::Up
                ]
            );
            let engine_events: Vec<&ProbeEvent> =
                sup.events.iter().filter(|e| !e.is_fault_event()).collect();
            let expected: Vec<&ProbeEvent> = unkilled.events().iter().collect();
            assert_eq!(engine_events, expected, "offset {offset}");
            // Markers sit at the kill position.
            let kinds: Vec<&str> = sup.events.iter().map(|e| e.kind()).collect();
            assert!(kinds.contains(&"ShardKilled"));
            assert!(kinds.contains(&"ShardRestarted"));
            // Replay is timing-silent, so no arrival is ever timed twice;
            // a kill landing between an arrival's last event and its
            // timing callback can lose at most that one measurement.
            assert!(sup.decisions.len() <= inst.len(), "offset {offset}");
            assert!(
                sup.decisions.len() + sup.kills as usize >= inst.len(),
                "offset {offset}"
            );
        }
    }

    #[test]
    fn budget_exhaustion_leaves_an_exactly_accounted_corpse() {
        let inst = workload(5);
        let system = GamingSystem::paper_model();
        let kills = vec![
            KillPoint::Event(10),
            KillPoint::Event(20),
            KillPoint::Event(30),
        ];
        let sup = supervise_shard(
            &system,
            &inst,
            &ff_factory(),
            kills,
            RestartPolicy {
                max_restarts: 2,
                backoff: RetryPolicy::default(),
            },
            BatchPolicy::WholeStream,
            3,
            &mut NoSpans,
        );
        assert_eq!(sup.kills, 3);
        assert_eq!(sup.restarts, 2);
        assert_eq!(sup.health(), ShardHealth::Down);
        let ShardFate::Dead(dead) = sup.fate else {
            panic!("third kill must exhaust a budget of 2 restarts");
        };
        assert_eq!(
            dead.served + dead.lost + dead.unarrived.len() as u64,
            inst.len() as u64,
            "every session accounted"
        );
        assert_eq!(dead.reason, "restart budget exhausted");
        // Backoff follows RetryPolicy semantics: base, then 2*base.
        let p = RetryPolicy::default();
        assert_eq!(sup.backoff_ticks, p.backoff_ticks(1) + p.backoff_ticks(2));
    }

    #[test]
    fn tick_kills_lose_the_triggering_event() {
        let inst = workload(6);
        let system = GamingSystem::paper_model();
        let mut unkilled = dbp_obs::EventLog::new();
        let mut sel = ff_factory().build();
        crate::engine::run_shard_probed(
            &system,
            &inst,
            &mut *sel,
            &mut unkilled,
            BatchPolicy::WholeStream,
        );
        let mid_tick = unkilled.events()[unkilled.len() / 2].at().0;
        let sup = supervise_shard(
            &system,
            &inst,
            &ff_factory(),
            vec![KillPoint::Tick(mid_tick)],
            RestartPolicy::default(),
            BatchPolicy::PerEvent,
            0,
            &mut NoSpans,
        );
        assert_eq!(sup.kills, 1);
        assert!(matches!(sup.fate, ShardFate::Completed { .. }));
        let engine_events: Vec<&ProbeEvent> =
            sup.events.iter().filter(|e| !e.is_fault_event()).collect();
        assert_eq!(
            engine_events,
            unkilled.events().iter().collect::<Vec<_>>(),
            "resurrection heals the lost event"
        );
    }
}
