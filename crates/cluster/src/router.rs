//! Routing policies: which shard serves which request.
//!
//! A router is a *pure function* of the instance — no RNG, no wall clock —
//! so the same workload always lands on the same shards and every cluster
//! run is exactly reproducible. Routing happens before dispatch and sees
//! only what an online router could see at arrival time: the item's id,
//! arrival tick and size (never the departure).

use dbp_core::instance::Instance;
use dbp_core::item::Item;
use dbp_workloads::GameCatalog;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// The routing policy catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Router {
    /// SplitMix64 hash of the item id — stateless, uniform in expectation.
    HashByItem,
    /// Game affinity: requests for the same title (recovered from the
    /// session's GPU footprint against the default
    /// [`GameCatalog`]) go to the same shard, so
    /// each pool holds few distinct game images. Sizes matching no
    /// catalog title fall back to the hash route.
    GameAffinity,
    /// Exact-integer least-loaded: route each arrival to the shard whose
    /// currently *active* routed load (sum of sizes of sessions routed
    /// there and not yet departed) is smallest, lowest shard index winning
    /// ties. The load view uses the router's own bookkeeping — integers
    /// only, no floats.
    LeastLoaded,
}

impl Router {
    /// Every router, for sweeps.
    pub const ALL: [Router; 3] = [
        Router::HashByItem,
        Router::GameAffinity,
        Router::LeastLoaded,
    ];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Router::HashByItem => "hash",
            Router::GameAffinity => "affinity",
            Router::LeastLoaded => "least-loaded",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(name: &str) -> Option<Router> {
        Router::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Assign every item of `requests` to a shard in `0..shards`.
    /// Deterministic: two calls on equal instances return equal vectors.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn assign(self, requests: &Instance, shards: usize) -> Vec<usize> {
        assert!(shards > 0, "a cluster needs at least one shard");
        match self {
            Router::HashByItem => requests
                .items()
                .iter()
                .map(|it| (splitmix64(it.id.0 as u64) % shards as u64) as usize)
                .collect(),
            Router::GameAffinity => {
                let by_size = title_by_gpu_units();
                requests
                    .items()
                    .iter()
                    .map(|it| match by_size.get(&it.size.raw()) {
                        Some(&title) => title % shards,
                        None => (splitmix64(it.id.0 as u64) % shards as u64) as usize,
                    })
                    .collect()
            }
            Router::LeastLoaded => least_loaded(requests, shards),
        }
    }

    /// Route **one** arrival online, without the whole stream: the shape a
    /// live daemon needs, where the next request is unknown until it lands.
    /// `loads` is the caller's live per-shard active-load view (sum of sizes
    /// of routed, not-yet-departed sessions), consulted only by
    /// [`Router::LeastLoaded`]; hash and affinity routes are stateless.
    ///
    /// Consistency with [`Router::assign`]: fed the same stream in event
    /// order with `loads` maintained from its own answers (add the size on
    /// route, subtract on departure), this returns the same shard for every
    /// item — the batch router is just this function folded over the
    /// instance.
    ///
    /// # Panics
    /// Panics if `loads.len()` is zero (a cluster needs at least one shard).
    pub fn route_one(self, id: u64, size: u64, loads: &[u128]) -> usize {
        let shards = loads.len();
        assert!(shards > 0, "a cluster needs at least one shard");
        match self {
            Router::HashByItem => (splitmix64(id) % shards as u64) as usize,
            Router::GameAffinity => {
                // Built once: `route_one` is a daemon hot path.
                static BY_SIZE: std::sync::OnceLock<HashMap<u64, usize>> =
                    std::sync::OnceLock::new();
                match BY_SIZE.get_or_init(title_by_gpu_units).get(&size) {
                    Some(&title) => title % shards,
                    None => (splitmix64(id) % shards as u64) as usize,
                }
            }
            Router::LeastLoaded => (0..shards)
                .min_by_key(|&s| loads[s])
                .expect("shards is nonzero"),
        }
    }
}

/// First catalog index per GPU footprint. Two titles sharing a footprint
/// (the default catalog has two such pairs) collapse onto the first — the
/// router cannot tell them apart from the size alone, which is all an
/// arrival carries.
fn title_by_gpu_units() -> HashMap<u64, usize> {
    let mut map = HashMap::new();
    for (i, g) in GameCatalog::default_catalog().games.iter().enumerate() {
        map.entry(g.gpu_units).or_insert(i);
    }
    map
}

/// SplitMix64 finalizer — the same avalanche the fault layer's hash
/// streams use, applied to item ids.
fn splitmix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Least-loaded routing: process arrivals in (tick, id) order, expiring
/// departed sessions first (the engine's departures-before-arrivals rule),
/// and keep per-shard active-load counters in exact integers.
fn least_loaded(requests: &Instance, shards: usize) -> Vec<usize> {
    let mut order: Vec<&Item> = requests.items().iter().collect();
    order.sort_by_key(|it| (it.arrival.raw(), it.id.0));
    let mut load = vec![0u128; shards];
    // Min-heap of (departure, shard, size) via Reverse ordering.
    let mut active: BinaryHeap<std::cmp::Reverse<(u64, usize, u64)>> = BinaryHeap::new();
    let mut assignment = vec![0usize; requests.len()];
    for it in order {
        while let Some(&std::cmp::Reverse((dep, shard, size))) = active.peek() {
            if dep > it.arrival.raw() {
                break;
            }
            active.pop();
            load[shard] -= size as u128;
        }
        let best = (0..shards)
            .min_by_key(|&s| load[s])
            .expect("shards is nonzero");
        load[best] += it.size.raw() as u128;
        active.push(std::cmp::Reverse((it.departure.raw(), best, it.size.raw())));
        assignment[it.id.index()] = best;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::instance::InstanceBuilder;

    fn tiny() -> Instance {
        let mut b = InstanceBuilder::new(100);
        b.add(0, 10, 5);
        b.add(0, 10, 5);
        b.add(5, 20, 7);
        b.add(12, 30, 9);
        b.build().unwrap()
    }

    #[test]
    fn names_round_trip() {
        for r in Router::ALL {
            assert_eq!(Router::from_name(r.name()), Some(r));
        }
        assert_eq!(Router::from_name("bogus"), None);
    }

    #[test]
    fn assignments_cover_every_item_and_stay_in_range() {
        let inst = tiny();
        for r in Router::ALL {
            for shards in [1, 2, 3, 8] {
                let a = r.assign(&inst, shards);
                assert_eq!(a.len(), inst.len(), "{}", r.name());
                assert!(a.iter().all(|&s| s < shards), "{}", r.name());
            }
        }
    }

    #[test]
    fn one_shard_routes_everything_to_zero() {
        let inst = tiny();
        for r in Router::ALL {
            assert!(r.assign(&inst, 1).iter().all(|&s| s == 0));
        }
    }

    #[test]
    fn least_loaded_balances_simultaneous_arrivals() {
        // Two identical items arriving together must go to different shards.
        let mut b = InstanceBuilder::new(100);
        b.add(0, 10, 5);
        b.add(0, 10, 5);
        let inst = b.build().unwrap();
        let a = Router::LeastLoaded.assign(&inst, 2);
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn least_loaded_expires_departed_sessions() {
        // Item 0 departs before item 2 arrives, so shard 0 is free again.
        let mut b = InstanceBuilder::new(100);
        b.add(0, 5, 9);
        b.add(0, 20, 1);
        b.add(5, 10, 9);
        let inst = b.build().unwrap();
        let a = Router::LeastLoaded.assign(&inst, 2);
        assert_eq!(a[0], 0);
        assert_eq!(a[1], 1);
        // At t=5 shard 0's load is 0 (item 0 gone), shard 1 holds size 1.
        assert_eq!(a[2], 0);
    }

    #[test]
    fn affinity_groups_equal_footprints() {
        let catalog = GameCatalog::default_catalog();
        let units = catalog.games[0].gpu_units;
        let mut b = InstanceBuilder::new(1000);
        b.add(0, 10, units);
        b.add(3, 12, units);
        b.add(5, 20, units);
        let inst = b.build().unwrap();
        let a = Router::GameAffinity.assign(&inst, 4);
        assert!(a.windows(2).all(|w| w[0] == w[1]), "{a:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Router::HashByItem.assign(&tiny(), 0);
    }

    #[test]
    fn route_one_folds_to_the_batch_assignment() {
        // Online routing fed the stream in event order, with the live-load
        // view maintained from its own answers, must reproduce `assign`.
        let inst = tiny();
        for r in Router::ALL {
            for shards in [1usize, 2, 3] {
                let batch = r.assign(&inst, shards);
                let mut order: Vec<&Item> = inst.items().iter().collect();
                order.sort_by_key(|it| (it.arrival.raw(), it.id.0));
                let mut loads = vec![0u128; shards];
                let mut active: BinaryHeap<std::cmp::Reverse<(u64, usize, u64)>> =
                    BinaryHeap::new();
                for it in order {
                    while let Some(&std::cmp::Reverse((dep, shard, size))) = active.peek() {
                        if dep > it.arrival.raw() {
                            break;
                        }
                        active.pop();
                        loads[shard] -= size as u128;
                    }
                    let s = r.route_one(it.id.0 as u64, it.size.raw(), &loads);
                    assert_eq!(s, batch[it.id.index()], "{} item {}", r.name(), it.id);
                    loads[s] += it.size.raw() as u128;
                    active.push(std::cmp::Reverse((it.departure.raw(), s, it.size.raw())));
                }
            }
        }
    }
}
