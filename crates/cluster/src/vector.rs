//! Vector (multi-resource) cluster routing and dispatch.
//!
//! The scalar [`Router`] folds each shard's active load into a single
//! `u128`. With `D`-dimensional demands there is no single load number:
//! this module keeps one `u128` per dimension per shard and orders shards
//! by `(max-dimension load, total load, index)`. At `D = 1` the max and
//! the total are both the scalar load, so every comparison — and therefore
//! every routing decision — degenerates to the scalar router's exactly.
//!
//! The same degeneracy holds per policy:
//!
//! * **hash** looks only at the item id — identical by construction;
//! * **affinity** keys on the GPU dimension (`component(0)`), which at
//!   `D = 1` *is* the scalar size;
//! * **least-loaded** compares `(max, total)` pairs that collapse to the
//!   scalar load at `D = 1`.
//!
//! [`run_cluster_vec`] then dispatches each shard's restricted
//! sub-instance through the generic engine and folds the results into a
//! per-dimension utilization/waste report with a conservation ledger.

use crate::router::Router;
use dbp_core::demand::Demand;
use dbp_core::instance::GInstance;
use dbp_core::item::{GItem, ItemId};
use dbp_core::packer::BinSelector;
use dbp_core::ratio::Ratio;
use dbp_core::trace::GPackingTrace;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// SplitMix64 finalizer, identical to the scalar router's.
fn splitmix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// First catalog index per GPU footprint (the scalar router's lookup).
fn title_by_gpu_units() -> HashMap<u64, usize> {
    let mut map = HashMap::new();
    for (i, g) in dbp_workloads::GameCatalog::default_catalog()
        .games
        .iter()
        .enumerate()
    {
        map.entry(g.gpu_units).or_insert(i);
    }
    map
}

/// Per-shard, per-dimension active load: `loads[shard][dim]`.
pub type DimLoads = Vec<Vec<u128>>;

/// Fresh all-zero load view for `shards` shards of `dims` dimensions.
pub fn zero_loads(shards: usize, dims: usize) -> DimLoads {
    vec![vec![0u128; dims]; shards]
}

/// The least-loaded ordering key for one shard's per-dimension loads:
/// `(max over dimensions, sum over dimensions)`. At `D = 1` both entries
/// equal the scalar load, so the induced order (lowest index breaking
/// ties, via `min_by_key` stability) matches the scalar router's.
fn load_key(dims: &[u128]) -> (u128, u128) {
    let max = dims.iter().copied().max().unwrap_or(0);
    let total: u128 = dims.iter().sum();
    (max, total)
}

/// Route one arrival online with a runtime-dimensional demand slice — the
/// shape the serve daemon's front door needs, where the dimensionality is
/// a config value, not a type. `demand[0]` is the GPU footprint the
/// affinity router keys on; `loads` is consulted only by
/// [`Router::LeastLoaded`].
///
/// # Panics
/// Panics if `loads` or `demand` is empty.
pub fn route_one_dims(router: Router, id: u64, demand: &[u64], loads: &DimLoads) -> usize {
    let shards = loads.len();
    assert!(shards > 0, "a cluster needs at least one shard");
    assert!(!demand.is_empty(), "a demand needs at least one dimension");
    match router {
        Router::HashByItem => (splitmix64(id) % shards as u64) as usize,
        Router::GameAffinity => {
            static BY_SIZE: std::sync::OnceLock<HashMap<u64, usize>> = std::sync::OnceLock::new();
            match BY_SIZE.get_or_init(title_by_gpu_units).get(&demand[0]) {
                Some(&title) => title % shards,
                None => (splitmix64(id) % shards as u64) as usize,
            }
        }
        Router::LeastLoaded => (0..shards)
            .min_by_key(|&s| load_key(&loads[s]))
            .expect("shards is nonzero"),
    }
}

/// Route one arrival online with vector demands. Mirrors
/// [`Router::route_one`] exactly; `loads` is consulted only by
/// [`Router::LeastLoaded`].
///
/// # Panics
/// Panics if `loads` is empty.
pub fn route_one_vec<Sz: Demand>(router: Router, id: u64, size: &Sz, loads: &DimLoads) -> usize {
    route_one_dims(router, id, &size.components(), loads)
}

/// Add a routed arrival's demand to the load view (call on route).
pub fn apply_route<Sz: Demand>(loads: &mut DimLoads, shard: usize, size: &Sz) {
    for (d, slot) in loads[shard].iter_mut().enumerate() {
        *slot += size.component(d) as u128;
    }
}

/// Remove a departed (or refused) session's demand from the load view.
pub fn unapply_route<Sz: Demand>(loads: &mut DimLoads, shard: usize, size: &Sz) {
    for (d, slot) in loads[shard].iter_mut().enumerate() {
        *slot -= size.component(d) as u128;
    }
}

/// Slice variants of [`apply_route`]/[`unapply_route`] for runtime-dims
/// callers. Components past the load view's dimensionality are ignored;
/// removal saturates (a refused route can race a concurrent view rebuild).
pub fn apply_route_dims(loads: &mut DimLoads, shard: usize, demand: &[u64]) {
    for (slot, &d) in loads[shard].iter_mut().zip(demand) {
        *slot += d as u128;
    }
}

/// See [`apply_route_dims`].
pub fn unapply_route_dims(loads: &mut DimLoads, shard: usize, demand: &[u64]) {
    for (slot, &d) in loads[shard].iter_mut().zip(demand) {
        *slot = slot.saturating_sub(d as u128);
    }
}

/// Assign every item of `requests` to a shard, vector-aware. Mirrors
/// [`Router::assign`]: hash and affinity are per-item pure functions;
/// least-loaded folds [`route_one_vec`] over the stream in
/// `(arrival, id)` order with departures expired first.
///
/// # Panics
/// Panics if `shards` is zero.
pub fn assign_vec<Sz: Demand>(
    router: Router,
    requests: &GInstance<Sz>,
    shards: usize,
) -> Vec<usize> {
    assert!(shards > 0, "a cluster needs at least one shard");
    match router {
        Router::HashByItem | Router::GameAffinity => {
            let loads = zero_loads(shards, Sz::DIMS);
            requests
                .items()
                .iter()
                .map(|it| route_one_vec(router, it.id.0 as u64, &it.size, &loads))
                .collect()
        }
        Router::LeastLoaded => {
            let mut order: Vec<&GItem<Sz>> = requests.items().iter().collect();
            order.sort_by_key(|it| (it.arrival.raw(), it.id.0));
            let mut loads = zero_loads(shards, Sz::DIMS);
            // Min-heap of (departure, shard, item index) via Reverse.
            let mut active: BinaryHeap<std::cmp::Reverse<(u64, usize, u32)>> = BinaryHeap::new();
            let mut assignment = vec![0usize; requests.len()];
            for it in order {
                while let Some(&std::cmp::Reverse((dep, shard, idx))) = active.peek() {
                    if dep > it.arrival.raw() {
                        break;
                    }
                    active.pop();
                    let size = requests.items()[idx as usize].size;
                    unapply_route(&mut loads, shard, &size);
                }
                let best = route_one_vec(router, it.id.0 as u64, &it.size, &loads);
                apply_route(&mut loads, best, &it.size);
                active.push(std::cmp::Reverse((it.departure.raw(), best, it.id.0)));
                assignment[it.id.index()] = best;
            }
            assignment
        }
    }
}

/// One shard's vector outcome.
#[derive(Debug, Clone)]
pub struct VectorShardRun<Sz> {
    /// Shard index.
    pub shard: usize,
    /// The shard's packing trace (item ids are shard-local).
    pub trace: GPackingTrace<Sz>,
    /// Shard-local item index → original [`ItemId`].
    pub back: Vec<ItemId>,
}

/// Per-dimension accounting of one cluster run. All sums are exact
/// integers; ratios are exact rationals.
#[derive(Debug, Clone, PartialEq)]
pub struct DimReport {
    /// Dimension index.
    pub dim: usize,
    /// Capacity `W_d` of this dimension.
    pub capacity: u64,
    /// Σ over items of `size_d · duration` — the demand volume.
    pub demand_ticks: u128,
    /// `W_d ·` Σ over bins of their open length — the rented volume.
    pub rented_ticks: u128,
    /// `demand_ticks / rented_ticks`, the utilization of this dimension.
    pub utilization: Ratio,
    /// `rented_ticks − demand_ticks`, idle capacity-ticks.
    pub waste_ticks: u128,
}

/// Exact aggregate of a vector cluster run.
#[derive(Debug, Clone)]
pub struct VectorClusterRun<Sz> {
    /// Dispatcher name.
    pub algorithm: String,
    /// Router name.
    pub router: String,
    /// Shard count.
    pub shards_used: usize,
    /// Sessions served (= the instance size; conservation holds by
    /// construction and is re-checked in [`run_cluster_vec`]).
    pub sessions_served: usize,
    /// Distinct servers rented across shards.
    pub servers_rented: usize,
    /// Σ of per-shard total costs, in server-ticks.
    pub busy_ticks: u128,
    /// Per-dimension utilization/waste, indexed by dimension.
    pub dims: Vec<DimReport>,
    /// Per-shard outcomes.
    pub shards: Vec<VectorShardRun<Sz>>,
    /// `assignment[item.index()]` is the shard that served the item.
    pub assignment: Vec<usize>,
}

/// Route, restrict, and dispatch a vector instance across `shards`
/// independent shards, each running a fresh selector from `mk_selector`.
/// Every shard trace is validated (per-dimension capacity, interval
/// exactness), and the run's conservation ledger — each item served by
/// exactly one shard — is asserted before returning.
///
/// With one shard the single trace is the plain engine's for the whole
/// instance: byte-identical serialization at `D = 1` to the scalar run.
///
/// # Panics
/// Panics if `shards` is zero or any shard trace fails validation.
pub fn run_cluster_vec<Sz, S, F>(
    requests: &GInstance<Sz>,
    router: Router,
    shards: usize,
    mut mk_selector: F,
) -> VectorClusterRun<Sz>
where
    Sz: Demand,
    S: BinSelector<Sz>,
    F: FnMut() -> S,
{
    let assignment = assign_vec(router, requests, shards);
    let mut shard_runs = Vec::with_capacity(shards);
    let mut served = vec![false; requests.len()];
    let mut algorithm = String::new();
    for k in 0..shards {
        let (sub, back) = requests.restrict(|it| assignment[it.id.index()] == k);
        let mut sel = mk_selector();
        algorithm = <S as BinSelector<Sz>>::name(&sel).to_string();
        let trace = dbp_core::engine::simulate_validated(&sub, &mut sel);
        for id in &back {
            assert!(!served[id.index()], "item {id:?} routed to two shards");
            served[id.index()] = true;
        }
        shard_runs.push(VectorShardRun {
            shard: k,
            trace,
            back,
        });
    }
    assert!(
        served.iter().all(|&s| s),
        "conservation violated: some item was never dispatched"
    );

    let servers_rented: usize = shard_runs.iter().map(|s| s.trace.bins_used()).sum();
    let busy_ticks: u128 = shard_runs.iter().map(|s| s.trace.total_cost_ticks()).sum();

    let cap = requests.capacity();
    let dims = (0..Sz::DIMS)
        .map(|d| {
            let demand_ticks: u128 = requests
                .items()
                .iter()
                .map(|it| {
                    it.size.component(d) as u128 * (it.departure.raw() - it.arrival.raw()) as u128
                })
                .sum();
            let rented_ticks = cap.component(d) as u128 * busy_ticks;
            let utilization = if rented_ticks == 0 {
                Ratio::from_int(0)
            } else {
                Ratio::new(demand_ticks, rented_ticks)
            };
            DimReport {
                dim: d,
                capacity: cap.component(d),
                demand_ticks,
                rented_ticks,
                utilization,
                waste_ticks: rented_ticks - demand_ticks,
            }
        })
        .collect();

    VectorClusterRun {
        algorithm,
        router: router.name().to_string(),
        shards_used: shards,
        sessions_served: requests.len(),
        servers_rented,
        busy_ticks,
        dims,
        shards: shard_runs,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::algorithms::FirstFit;
    use dbp_core::demand::VSize;
    use dbp_core::instance::{GInstanceBuilder, InstanceBuilder};

    fn tiny_scalar() -> dbp_core::instance::Instance {
        let mut b = InstanceBuilder::new(1000);
        b.add(0, 10, 5);
        b.add(0, 10, 5);
        b.add(5, 20, 7);
        b.add(12, 30, 9);
        b.add(13, 22, 50);
        b.add(14, 40, 125); // matches a catalog footprint (affinity path)
        b.build().unwrap()
    }

    fn lift1(inst: &dbp_core::instance::Instance) -> GInstance<VSize<1>> {
        inst.map_demand(|s| VSize([s.raw()])).unwrap()
    }

    #[test]
    fn d1_assignment_matches_scalar_for_every_router_and_shard_count() {
        let inst = tiny_scalar();
        let lifted = lift1(&inst);
        for r in Router::ALL {
            for shards in [1, 2, 3, 8] {
                assert_eq!(
                    assign_vec(r, &lifted, shards),
                    r.assign(&inst, shards),
                    "router {} × {shards} shards diverged",
                    r.name()
                );
            }
        }
    }

    #[test]
    fn d1_route_one_matches_scalar_under_identical_load_views() {
        let loads_scalar = [7u128, 3, 5, 3];
        let loads_vec: DimLoads = loads_scalar.iter().map(|&l| vec![l]).collect();
        for r in Router::ALL {
            for (id, size) in [(0u64, 125u64), (1, 17), (9, 200), (77, 1)] {
                assert_eq!(
                    route_one_vec(r, id, &VSize([size]), &loads_vec),
                    r.route_one(id, size, &loads_scalar),
                    "router {} diverged on id {id}",
                    r.name()
                );
            }
        }
    }

    #[test]
    fn least_loaded_spreads_by_binding_dimension() {
        // Shard 0 is GPU-hot, shard 1 is memory-hot with a higher max:
        // the max-dimension key must prefer shard 0.
        let loads: DimLoads = vec![vec![80, 10], vec![10, 90]];
        let got = route_one_vec(Router::LeastLoaded, 0, &VSize([1u64, 1]), &loads);
        assert_eq!(got, 0);
    }

    #[test]
    fn vector_cluster_run_conserves_and_respects_every_dimension() {
        let mut b = GInstanceBuilder::new(VSize([100u64, 50]));
        b.add(0, 10, VSize([30, 20]));
        b.add(1, 12, VSize([30, 20]));
        b.add(2, 14, VSize([30, 20])); // dim 1 binds: 60 ≤ 100 but 60 > 50
        b.add(3, 20, VSize([5, 5]));
        b.add(15, 25, VSize([99, 1]));
        let inst = b.build().unwrap();
        for r in Router::ALL {
            for shards in [1, 2, 3] {
                let run = run_cluster_vec(&inst, r, shards, FirstFit::new);
                assert_eq!(run.sessions_served, inst.len());
                assert_eq!(run.dims.len(), 2);
                for d in &run.dims {
                    assert_eq!(
                        d.rented_ticks,
                        d.demand_ticks + d.waste_ticks,
                        "dimension ledger must balance"
                    );
                }
                // Each shard trace validated inside simulate_validated;
                // check the back-maps partition the id space.
                let mut seen: Vec<ItemId> =
                    run.shards.iter().flat_map(|s| s.back.clone()).collect();
                seen.sort();
                assert_eq!(seen.len(), inst.len());
            }
        }
    }

    #[test]
    fn one_shard_vector_trace_is_the_plain_engine_trace() {
        let inst = tiny_scalar();
        let lifted = lift1(&inst);
        let run = run_cluster_vec(&lifted, Router::LeastLoaded, 1, FirstFit::new);
        let scalar_trace = dbp_core::engine::simulate_validated(&inst, &mut FirstFit::new());
        let a = serde_json::to_string(&run.shards[0].trace).unwrap();
        let b = serde_json::to_string(&scalar_trace).unwrap();
        assert_eq!(a, b, "D=1 single-shard trace must be byte-identical");
    }
}
