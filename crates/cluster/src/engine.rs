//! The cluster engine: partition one request stream across N independent
//! `dbp-core` engine shards, run them on a bounded thread pool, and merge
//! the accounting exactly.
//!
//! Every shard is a full [`GamingSystem`]-equivalent dispatch run over the
//! restricted instance its router slice produced; costs are additive
//! because shards share no servers, so the aggregate `busy_ticks`,
//! `billed_ticks` and `cost_cents` are plain sums in `u128`/[`Ratio`] —
//! no floats anywhere in the ledger. A 1-shard cluster is *the* plain
//! system run: same trace, same event stream, same report.

use crate::faults::{
    panic_message, supervise_shard, KillPoint, ShardFate, ShardFaultPlan, ShardHealth,
    ShardSupervision,
};
use crate::router::Router;
use dbp_cloudsim::{
    billed_ticks, rental_cost_cents, DispatchError, FaultPlan, GamingSystem, ResilientReport,
    ResilientSystem, SystemReport,
};
use dbp_core::engine::EngineRun;
use dbp_core::instance::Instance;
use dbp_core::item::ItemId;
use dbp_core::packer::SelectorFactory;
use dbp_core::probe::{NoProbe, Probe, ProbeEvent};
use dbp_core::ratio::Ratio;
use dbp_core::span::{stage, NoSpans, SpanRecorder};
use dbp_core::time::Tick;
use dbp_core::trace::PackingTrace;
use dbp_obs::span::{SpanCollector, DRIVER_LANE};
use dbp_obs::{MetricsRegistry, RunManifest};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// How the ingestion loop drains each shard's schedule.
///
/// Batching is *transparent by construction*: the engine's schedule is
/// already time-ordered and a batch boundary only decides how many events
/// one `step()` burst processes before the worker yields, so the decision
/// sequence, trace and cost are identical for every policy (property-tested
/// in `tests/cluster_props.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// One schedule event per burst — the unbatched reference feeding.
    PerEvent,
    /// Time-ordered chunks of up to `n` schedule events.
    Chunks(usize),
    /// Drain the whole shard schedule in one burst.
    WholeStream,
}

impl BatchPolicy {
    pub(crate) fn burst(self) -> usize {
        match self {
            BatchPolicy::PerEvent => 1,
            BatchPolicy::Chunks(n) => n.max(1),
            BatchPolicy::WholeStream => usize::MAX,
        }
    }
}

/// Typed failure of a cluster run: bad shape, workload mismatch, a
/// malformed fault plan, or a shard worker panic the pool contained. One
/// shard dying yields this value — never a process abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The cluster was configured with zero shards.
    ZeroShards,
    /// The ingestion batch size was zero ([`BatchPolicy::Chunks(0)`]).
    ZeroBatch,
    /// The per-shard system rejected the workload.
    Dispatch(DispatchError),
    /// A shard worker panicked; the pool contained the unwind and the
    /// run was abandoned with this report instead of aborting.
    ShardPanicked {
        /// Index of the shard whose worker died.
        shard: usize,
        /// The panic payload, rendered.
        message: String,
    },
    /// `run_resilient` needs exactly one [`FaultPlan`] per shard.
    FaultPlanCount {
        /// The cluster's shard count.
        expected: usize,
        /// Plans supplied.
        got: usize,
    },
    /// A [`ShardFaultPlan`] is inconsistent with this cluster.
    BadFaultPlan {
        /// What was wrong.
        message: String,
    },
    /// The registered [`cancel`](crate::cancel) latch was raised mid-run:
    /// every shard stopped stepping promptly and the run was abandoned.
    /// Probes (journals included) flush and fsync on the way out, so a
    /// journaled run interrupted this way stays `dbp recover`-clean.
    Interrupted,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::ZeroShards => write!(f, "a cluster needs at least one shard"),
            ClusterError::ZeroBatch => write!(f, "ingestion batch size must be at least 1"),
            ClusterError::Dispatch(e) => write!(f, "{e}"),
            ClusterError::ShardPanicked { shard, message } => {
                write!(f, "shard {shard} panicked: {message}")
            }
            ClusterError::Interrupted => {
                write!(f, "run interrupted by shutdown request; journals flushed")
            }
            ClusterError::FaultPlanCount { expected, got } => {
                write!(
                    f,
                    "need exactly one fault plan per shard ({expected}), got {got}"
                )
            }
            ClusterError::BadFaultPlan { message } => write!(f, "bad shard fault plan: {message}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Dispatch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DispatchError> for ClusterError {
    fn from(e: DispatchError) -> ClusterError {
        ClusterError::Dispatch(e)
    }
}

/// Cluster shape: shard count, routing policy, ingestion batching and the
/// worker pool bound.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of engine shards (≥ 1).
    pub shards: usize,
    /// Routing policy.
    pub router: Router,
    /// Ingestion batching policy.
    pub batch: BatchPolicy,
    /// Worker threads running shards; `0` means available parallelism.
    /// Always clamped to the shard count, like `run_all`'s pool.
    pub jobs: usize,
}

impl ClusterConfig {
    /// A cluster of `shards` shards under `router`, whole-stream batching,
    /// default worker pool.
    ///
    /// # Errors
    /// [`ClusterError::ZeroShards`] when `shards == 0`.
    pub fn new(shards: usize, router: Router) -> Result<ClusterConfig, ClusterError> {
        let config = ClusterConfig {
            shards,
            router,
            batch: BatchPolicy::WholeStream,
            jobs: 0,
        };
        config.validate()?;
        Ok(config)
    }

    /// Check the shape invariants. The fields are public, so every run
    /// boundary re-validates rather than trusting construction.
    ///
    /// # Errors
    /// [`ClusterError::ZeroShards`] / [`ClusterError::ZeroBatch`].
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.shards == 0 {
            return Err(ClusterError::ZeroShards);
        }
        if matches!(self.batch, BatchPolicy::Chunks(0)) {
            return Err(ClusterError::ZeroBatch);
        }
        Ok(())
    }

    /// The resolved worker-pool size: `jobs` (or available parallelism
    /// when 0), clamped to the shard count.
    pub fn workers(&self) -> usize {
        let n = if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.jobs
        };
        n.clamp(1, self.shards)
    }
}

/// One shard's complete outcome.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// The shard's dispatch report (per-shard manifest attached, its
    /// digest taken over the shard's restricted instance).
    pub report: SystemReport,
    /// The shard's packing trace (item ids are shard-local).
    pub trace: PackingTrace,
    /// Back-map: shard-local item id index → original [`ItemId`].
    pub back: Vec<ItemId>,
}

/// Exact aggregate of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Dispatcher name (every shard runs the same policy).
    pub algorithm: String,
    /// Router name.
    pub router: String,
    /// Shard count.
    pub shards: usize,
    /// Sessions served across all shards (= the instance size).
    pub sessions_served: usize,
    /// Distinct servers rented across all shards (ids are per-shard).
    pub servers_rented: usize,
    /// Sum of per-shard peak fleets — what the cluster must be able to
    /// provision if every pool peaks at once.
    pub peak_servers: u32,
    /// Exact sum of shard busy times, in server-ticks.
    pub busy_ticks: u128,
    /// Exact sum of shard billed times.
    pub billed_ticks: u128,
    /// Exact sum of shard bills, in cents.
    pub cost_cents: Ratio,
    /// Cluster-wide utilization: total demand over `W ·` total busy time.
    pub utilization: Ratio,
    /// Merged provenance: the *combined* digest is taken over the full
    /// (pre-partition) instance, so it is independent of shard count and
    /// router — any two clusterings of the same stream share it — and for
    /// one shard it equals the plain run's digest byte for byte.
    pub manifest: RunManifest,
}

/// A finished cluster run: the aggregate report, every shard's outcome,
/// and the router's item → shard assignment.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Exact aggregate accounting.
    pub report: ClusterReport,
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardRun>,
    /// `assignment[item.index()]` is the shard that served the item.
    pub assignment: Vec<usize>,
}

impl ClusterRun {
    /// Per-shard metrics with `{shard="N"}`-labelled names plus unlabelled
    /// cluster totals, ready for Prometheus text export. The per-shard
    /// registries fan in via [`MetricsRegistry::absorb_labeled`].
    pub fn metrics(&self, per_shard: &[MetricsRegistry]) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        merged.counter_add("dbp_cluster_shards", self.report.shards as u64);
        merged.counter_add(
            "dbp_cluster_sessions_served_total",
            self.report.sessions_served as u64,
        );
        merged.counter_add(
            "dbp_cluster_servers_rented_total",
            self.report.servers_rented as u64,
        );
        merged.counter_add(
            "dbp_cluster_busy_ticks_total",
            u64::try_from(self.report.busy_ticks).unwrap_or(u64::MAX),
        );
        merged.counter_add(
            "dbp_cluster_billed_ticks_total",
            u64::try_from(self.report.billed_ticks).unwrap_or(u64::MAX),
        );
        for (shard, reg) in per_shard.iter().enumerate() {
            merged.absorb_labeled(reg, "shard", &shard.to_string());
        }
        merged
    }
}

/// Exact wall-clock attribution of one cluster run, nanoseconds end to
/// end: where the driver spent its time and, per shard, how long the work
/// unit waited for a pool worker versus actually ran. Derived from the
/// same epoch as every span lane, so `partition + batch_enqueue + dispatch
/// + fan_in` accounts for (nearly all of) `wall_ns`, and per shard
/// `queue_wait + busy ≤ dispatch`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTiming {
    /// Whole run, capacity check to merged report.
    pub wall_ns: u64,
    /// Router assignment + instance restriction.
    pub partition_ns: u64,
    /// Building the per-shard work units.
    pub batch_enqueue_ns: u64,
    /// The parallel section: pool start to last shard done.
    pub dispatch_ns: u64,
    /// Collecting shard outcomes and merging the ledger + manifest.
    pub fan_in_ns: u64,
    /// Per shard: pool start → a worker claimed the unit.
    pub queue_wait_ns: Vec<u64>,
    /// Per shard: claim → shard complete (engine run + validation + report).
    pub busy_ns: Vec<u64>,
}

impl ClusterTiming {
    /// Driver-side accounted time: the sequential stages end to end.
    pub fn accounted_ns(&self) -> u64 {
        self.partition_ns + self.batch_enqueue_ns + self.dispatch_ns + self.fan_in_ns
    }
}

/// Span capture of one traced cluster run: the driver lane, one recorder
/// per shard (in shard order, merged lock-free by collection), and the
/// derived [`ClusterTiming`]. All lanes share one epoch.
#[derive(Debug, Clone)]
pub struct ClusterTrace<R> {
    /// Driver-lane spans: `partition`/`route`, `batch_enqueue`,
    /// `dispatch`, `fan_in`/`manifest_merge`.
    pub driver: SpanCollector,
    /// Per-shard recorders, indexed by shard. Each holds the shard's
    /// `queue_wait` and `shard_busy` spans with the engine's
    /// `arrival`/`decide`/`place`/`departure` spans nested inside.
    pub shards: Vec<R>,
    /// Exact stage/utilization attribution.
    pub timing: ClusterTiming,
}

/// Aggregate SLA ledger of a fault-injected cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterResilientReport {
    /// Dispatcher name.
    pub algorithm: String,
    /// Router name.
    pub router: String,
    /// Shard count.
    pub shards: usize,
    /// Sum of shard session totals (= the instance size).
    pub sessions_total: u64,
    /// Sessions served to completion, across shards.
    pub sessions_served: u64,
    /// Sessions dropped at admission, across shards.
    pub sessions_dropped: u64,
    /// Sessions lost to crashes, across shards.
    pub sessions_lost: u64,
    /// Exact sum of shard busy times.
    pub busy_ticks: u128,
    /// Exact sum of shard billed times.
    pub billed_ticks: u128,
    /// Exact sum of shard bills, in cents.
    pub cost_cents: Ratio,
    /// Sessions rerouted off dead shards onto healthy ones by the
    /// self-healing runs; always 0 for [`ClusterEngine::run_resilient`].
    #[serde(default)]
    pub sessions_rerouted: u64,
    /// Shard kills that landed (self-healing runs; injected or genuine).
    #[serde(default)]
    pub shard_kills: u64,
    /// Successful journal-backed shard resurrections.
    #[serde(default)]
    pub shard_restarts: u64,
    /// Total events replayed across all resurrections.
    #[serde(default)]
    pub shard_replayed_events: u64,
    /// Shards that ended the run abandoned ([`ShardHealth::Down`]).
    #[serde(default)]
    pub shards_lost: u64,
}

impl ClusterResilientReport {
    /// The conservation law, cluster-wide: every session is served,
    /// dropped, lost, or rerouted — nothing double-counted, nothing
    /// vanishes. (Rerouted sessions are billed under `sessions_rerouted`
    /// alone, even though a healthy shard ultimately served them.)
    pub fn conserved(&self) -> bool {
        self.sessions_served + self.sessions_dropped + self.sessions_lost + self.sessions_rerouted
            == self.sessions_total
    }
}

/// A finished fault-injected cluster run.
#[derive(Debug, Clone)]
pub struct ClusterResilientRun {
    /// Aggregate SLA ledger.
    pub report: ClusterResilientReport,
    /// Per-shard ledgers, indexed by shard.
    pub shards: Vec<ResilientReport>,
    /// Router assignment, item → shard.
    pub assignment: Vec<usize>,
}

/// One shard's outcome under self-healing supervision: final health, the
/// four-way session ledger over its *original* assignment, restart
/// statistics, and its exact bill (reroute work it hosted included).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardHealthReport {
    /// Shard index.
    pub shard: usize,
    /// Final health ([`ShardHealth::Up`] possibly after resurrections).
    pub health: ShardHealth,
    /// Sessions the router originally assigned to this shard.
    pub sessions_total: u64,
    /// Of those, sessions served to completion here.
    pub sessions_served: u64,
    /// Of those, sessions dropped (shard died with no healthy peer left).
    pub sessions_dropped: u64,
    /// Of those, sessions in flight when the shard was abandoned.
    pub sessions_lost: u64,
    /// Of those, not-yet-arrived sessions moved to healthy shards.
    pub sessions_rerouted_out: u64,
    /// Sessions this shard hosted *for* dead peers (not part of its own
    /// conservation ledger — they stay billed under the cluster's
    /// `sessions_rerouted`).
    pub sessions_rerouted_in: u64,
    /// Kills that landed on this shard.
    pub kills: u64,
    /// Successful journal-backed resurrections.
    pub restarts: u64,
    /// Events replayed across this shard's resurrections.
    pub replayed_events: u64,
    /// Restart backoff charged, in ticks.
    pub backoff_ticks: u64,
    /// Distinct servers this shard rented (host work included).
    pub servers_rented: u64,
    /// Server-ticks used (host work for rerouted sessions included).
    pub busy_ticks: u128,
    /// Billed ticks under the system granularity.
    pub billed_ticks: u128,
    /// Exact bill in cents.
    pub cost_cents: Ratio,
    /// Why the shard went [`ShardHealth::Down`], when it did.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub down_reason: Option<String>,
}

impl ShardHealthReport {
    /// Per-shard conservation over the original assignment:
    /// `served + dropped + lost + rerouted_out == total`.
    pub fn conserved(&self) -> bool {
        self.sessions_served
            + self.sessions_dropped
            + self.sessions_lost
            + self.sessions_rerouted_out
            == self.sessions_total
    }
}

/// A finished self-healing cluster run: the extended SLA ledger, per-shard
/// health, the original routing, and the run manifest (restart count and
/// conservation verdict stamped in).
#[derive(Debug, Clone)]
pub struct ClusterHealedRun {
    /// Extended aggregate ledger; `report.conserved()` is the cluster's
    /// conservation law.
    pub report: ClusterResilientReport,
    /// Per-shard health reports, indexed by shard.
    pub shards: Vec<ShardHealthReport>,
    /// Router assignment, item → shard (the *original* assignment;
    /// rerouted sessions keep their dead home shard here).
    pub assignment: Vec<usize>,
    /// Provenance with `shard_restarts` and `ledger_conserved` attached.
    pub manifest: RunManifest,
}

impl ClusterHealedRun {
    /// Prometheus-ready metrics: cluster totals plus per-shard
    /// `dbp_cluster_shard_up{shard="K"}` gauges and restart/kill counters.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("dbp_cluster_shards", self.report.shards as u64);
        reg.counter_add(
            "dbp_cluster_sessions_served_total",
            self.report.sessions_served,
        );
        reg.counter_add(
            "dbp_cluster_sessions_dropped_total",
            self.report.sessions_dropped,
        );
        reg.counter_add("dbp_cluster_sessions_lost_total", self.report.sessions_lost);
        reg.counter_add(
            "dbp_cluster_sessions_rerouted_total",
            self.report.sessions_rerouted,
        );
        reg.counter_add("dbp_cluster_shard_kills_total", self.report.shard_kills);
        reg.counter_add(
            "dbp_cluster_shard_restarts_total",
            self.report.shard_restarts,
        );
        reg.counter_add(
            "dbp_cluster_shard_replayed_events_total",
            self.report.shard_replayed_events,
        );
        reg.counter_add(
            "dbp_cluster_busy_ticks_total",
            u64::try_from(self.report.busy_ticks).unwrap_or(u64::MAX),
        );
        reg.counter_add(
            "dbp_cluster_billed_ticks_total",
            u64::try_from(self.report.billed_ticks).unwrap_or(u64::MAX),
        );
        for h in &self.shards {
            let up = matches!(h.health, ShardHealth::Up);
            reg.gauge_set(
                &format!("dbp_cluster_shard_up{{shard=\"{}\"}}", h.shard),
                i64::from(up),
            );
            reg.counter_add(
                &format!("dbp_cluster_shard_restarts{{shard=\"{}\"}}", h.shard),
                h.restarts,
            );
            reg.counter_add(
                &format!("dbp_cluster_shard_kills{{shard=\"{}\"}}", h.shard),
                h.kills,
            );
        }
        reg
    }
}

/// The scale-out dispatch layer: a [`GamingSystem`] per shard behind a
/// [`Router`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterEngine {
    /// The per-shard system (server flavor + billing granularity).
    pub system: GamingSystem,
    /// Cluster shape.
    pub config: ClusterConfig,
}

impl ClusterEngine {
    /// A cluster of `config` shape over `system`.
    pub fn new(system: GamingSystem, config: ClusterConfig) -> ClusterEngine {
        ClusterEngine { system, config }
    }

    /// Partition `requests` by the configured router: one restricted
    /// instance + back-map per shard, plus the item → shard assignment.
    /// Restriction preserves arrival order and renumbers densely, so each
    /// shard is a well-formed instance in its own right.
    pub fn partition(&self, requests: &Instance) -> (Vec<(Instance, Vec<ItemId>)>, Vec<usize>) {
        let assignment = self.config.router.assign(requests, self.config.shards);
        let parts = (0..self.config.shards)
            .map(|s| requests.restrict(|it| assignment[it.id.index()] == s))
            .collect();
        (parts, assignment)
    }

    /// Run the cluster without instrumentation.
    pub fn run(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
    ) -> Result<ClusterRun, ClusterError> {
        self.run_probed(requests, factory, |_| NoProbe)
            .map(|(run, _)| run)
    }

    /// Run the cluster with one probe per shard. `make_probe(shard)` is
    /// called in shard order before the pool starts; the probes come back
    /// in the same order for draining (event logs, journal sealing).
    ///
    /// # Errors
    /// [`ClusterError::Dispatch`] when the workload was generated against
    /// a different `W` than the shard server flavor provides;
    /// [`ClusterError::ZeroShards`] / [`ClusterError::ZeroBatch`] for a
    /// malformed shape; [`ClusterError::ShardPanicked`] when a shard
    /// worker dies (the pool contains the unwind).
    pub fn run_probed<P, F>(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        make_probe: F,
    ) -> Result<(ClusterRun, Vec<P>), ClusterError>
    where
        P: Probe + Send,
        F: FnMut(usize) -> P,
    {
        self.run_traced(requests, factory, make_probe, |_, _| NoSpans)
            .map(|(run, probes, _trace)| (run, probes))
    }

    /// [`run_probed`](Self::run_probed) plus one [`SpanRecorder`] per shard
    /// and a driver-lane recorder, all sharing one epoch so their
    /// timestamps compose into a single timeline (Chrome trace, stage
    /// table). `make_spans(shard, epoch)` is called in shard order before
    /// the pool starts; recorders come back in [`ClusterTrace::shards`] in
    /// the same order — merged at fan-in time, lock-free by construction
    /// because each lane is single-writer.
    ///
    /// The driver lane records `partition`/`route`, `batch_enqueue`,
    /// `dispatch` and `fan_in`/`manifest_merge`. Each shard recorder is
    /// entered into its `queue_wait` span *before* the pool starts and
    /// flipped to `shard_busy` the moment a worker claims the unit, so
    /// pool contention is attributed, not lost. Pass `|_, _| NoSpans` to
    /// get the zero-cost path — [`run_probed`](Self::run_probed) is
    /// exactly that delegation.
    ///
    /// # Errors
    /// As for [`run_probed`](Self::run_probed).
    pub fn run_traced<P, R, FP, FR>(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        mut make_probe: FP,
        mut make_spans: FR,
    ) -> Result<(ClusterRun, Vec<P>, ClusterTrace<R>), ClusterError>
    where
        P: Probe + Send,
        R: SpanRecorder + Send,
        FP: FnMut(usize) -> P,
        FR: FnMut(usize, Instant) -> R,
    {
        self.config.validate()?;
        self.check_capacity(requests)?;
        let epoch = Instant::now();
        let mut driver = SpanCollector::with_epoch(epoch, DRIVER_LANE);

        driver.enter(stage::PARTITION);
        driver.enter(stage::ROUTE);
        let assignment = self.config.router.assign(requests, self.config.shards);
        driver.exit();
        let parts: Vec<(Instance, Vec<ItemId>)> = (0..self.config.shards)
            .map(|s| requests.restrict(|it| assignment[it.id.index()] == s))
            .collect();
        driver.exit();

        driver.enter(stage::BATCH_ENQUEUE);
        let mut units: Vec<(Instance, Vec<ItemId>, P, R)> = parts
            .into_iter()
            .enumerate()
            .map(|(s, (inst, back))| (inst, back, make_probe(s), make_spans(s, epoch)))
            .collect();
        driver.exit();

        // Open every shard's queue-wait span on the driver thread, before
        // the pool exists: the gap until a worker claims the unit is real
        // contention and must land in the shard's own lane.
        let dispatch_start = elapsed_ns(epoch);
        for unit in &mut units {
            unit.3.enter(stage::QUEUE_WAIT);
        }
        driver.enter(stage::DISPATCH);
        let system = self.system;
        let batch = self.config.batch;
        let outcomes = run_pool(
            units,
            self.config.workers(),
            |shard, (inst, back, mut probe, mut spans)| {
                let claim_ns = elapsed_ns(epoch);
                spans.exit(); // queue_wait ends the moment the worker claims
                spans.enter(stage::SHARD_BUSY);
                let mut sel = factory.build();
                let (report, trace) =
                    run_shard_traced(&system, &inst, &mut *sel, &mut probe, &mut spans, batch);
                spans.exit();
                let done_ns = elapsed_ns(epoch);
                (
                    ShardRun {
                        shard,
                        report,
                        trace,
                        back,
                    },
                    probe,
                    spans,
                    claim_ns,
                    done_ns,
                )
            },
        );
        driver.exit();

        let n = outcomes.len();
        let mut shards = Vec::with_capacity(n);
        let mut probes = Vec::with_capacity(n);
        let mut recorders = Vec::with_capacity(n);
        let mut queue_wait_ns = Vec::with_capacity(n);
        let mut busy_ns = Vec::with_capacity(n);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let (shard, probe, spans, claim_ns, done_ns) =
                outcome.map_err(|p| ClusterError::ShardPanicked {
                    shard: i,
                    message: panic_message(&*p),
                })?;
            queue_wait_ns.push(claim_ns.saturating_sub(dispatch_start));
            busy_ns.push(done_ns.saturating_sub(claim_ns));
            shards.push(shard);
            probes.push(probe);
            recorders.push(spans);
        }

        if crate::cancel::requested() {
            // Shards returned sentinels, not real reports; aggregating
            // them would fabricate a zero-cost run. Dropping the probes
            // here flushes and fsyncs any journals (JournalWriter syncs
            // on drop), so the on-disk prefix is recover-clean.
            return Err(ClusterError::Interrupted);
        }

        driver.enter(stage::FAN_IN);
        let report = self.aggregate(
            requests,
            &shards,
            epoch.elapsed(),
            factory.name(),
            &mut driver,
        );
        driver.exit();

        let stage_ns = |name: &'static str| -> u64 {
            driver
                .spans()
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.dur_ns)
                .sum()
        };
        let timing = ClusterTiming {
            wall_ns: elapsed_ns(epoch),
            partition_ns: stage_ns(stage::PARTITION),
            batch_enqueue_ns: stage_ns(stage::BATCH_ENQUEUE),
            dispatch_ns: stage_ns(stage::DISPATCH),
            fan_in_ns: stage_ns(stage::FAN_IN),
            queue_wait_ns,
            busy_ns,
        };
        Ok((
            ClusterRun {
                report,
                shards,
                assignment,
            },
            probes,
            ClusterTrace {
                driver,
                shards: recorders,
                timing,
            },
        ))
    }

    /// Run the cluster under per-shard fault plans through
    /// [`ResilientSystem`]; `plans` must hold one plan per shard.
    ///
    /// # Errors
    /// As for [`run_probed`](Self::run_probed), plus
    /// [`ClusterError::FaultPlanCount`] when `plans.len()` differs from
    /// the shard count.
    pub fn run_resilient(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        plans: &[FaultPlan],
    ) -> Result<ClusterResilientRun, ClusterError> {
        self.run_resilient_probed(requests, factory, plans, |_| NoProbe)
            .map(|(run, _)| run)
    }

    /// [`run_resilient`](Self::run_resilient) with one probe per shard.
    ///
    /// # Errors
    /// As for [`run_resilient`](Self::run_resilient).
    pub fn run_resilient_probed<P, F>(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        plans: &[FaultPlan],
        mut make_probe: F,
    ) -> Result<(ClusterResilientRun, Vec<P>), ClusterError>
    where
        P: Probe + Send,
        F: FnMut(usize) -> P,
    {
        if plans.len() != self.config.shards {
            return Err(ClusterError::FaultPlanCount {
                expected: self.config.shards,
                got: plans.len(),
            });
        }
        self.config.validate()?;
        self.check_capacity(requests)?;
        let (parts, assignment) = self.partition(requests);
        let units: Vec<(Instance, FaultPlan, P)> = parts
            .into_iter()
            .enumerate()
            .map(|(s, (inst, _back))| (inst, plans[s].clone(), make_probe(s)))
            .collect();
        let system = self.system;
        let results = run_pool(
            units,
            self.config.workers(),
            |_shard, (inst, plan, mut probe)| {
                let mut sel = factory.build();
                let resilient = ResilientSystem::new(system, plan);
                let report = resilient.run_probed(&inst, &mut *sel, &mut probe);
                (report, probe)
            },
        );
        let mut shards = Vec::with_capacity(results.len());
        let mut probes = Vec::with_capacity(results.len());
        for (i, result) in results.into_iter().enumerate() {
            let (report, probe) = result.map_err(|p| ClusterError::ShardPanicked {
                shard: i,
                message: panic_message(&*p),
            })?;
            shards.push(report.map_err(ClusterError::Dispatch)?);
            probes.push(probe);
        }
        let algorithm = shards
            .first()
            .map(|r| r.algorithm.clone())
            .unwrap_or_else(|| factory.name().to_string());
        let report = ClusterResilientReport {
            algorithm,
            router: self.config.router.name().to_string(),
            shards: self.config.shards,
            sessions_total: shards.iter().map(|r| r.sessions_total).sum(),
            sessions_served: shards.iter().map(|r| r.sessions_served).sum(),
            sessions_dropped: shards.iter().map(|r| r.sessions_dropped).sum(),
            sessions_lost: shards.iter().map(|r| r.sessions_lost).sum(),
            busy_ticks: shards.iter().map(|r| r.busy_ticks).sum(),
            billed_ticks: shards.iter().map(|r| r.billed_ticks).sum(),
            cost_cents: shards.iter().fold(Ratio::ZERO, |acc, r| acc + r.cost_cents),
            sessions_rerouted: 0,
            shard_kills: 0,
            shard_restarts: 0,
            shard_replayed_events: 0,
            shards_lost: 0,
        };
        Ok((
            ClusterResilientRun {
                report,
                shards,
                assignment,
            },
            probes,
        ))
    }

    /// Run the cluster under a [`ShardFaultPlan`] with self-healing
    /// supervision: every scheduled kill is contained with
    /// `catch_unwind`, the killed shard is resurrected from its own
    /// write-ahead event journal (bounded retries with
    /// [`RetryPolicy`](dbp_cloudsim::RetryPolicy) backoff), and shards
    /// that exhaust their budget are abandoned with exact accounting —
    /// in-flight sessions billed lost, not-yet-arrived sessions rerouted
    /// to healthy shards.
    ///
    /// # Errors
    /// As for [`run_probed`](Self::run_probed), plus
    /// [`ClusterError::BadFaultPlan`] when a kill targets a shard outside
    /// the cluster. [`ClusterError::ShardPanicked`] here means the
    /// *supervisor itself* died — engine and selector panics are treated
    /// as kills and handled inside the run.
    pub fn run_self_healing(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        plan: &ShardFaultPlan,
    ) -> Result<ClusterHealedRun, ClusterError> {
        self.run_self_healing_probed(requests, factory, plan, &mut NoProbe)
    }

    /// [`run_self_healing`](Self::run_self_healing) with a single probe.
    ///
    /// Unlike [`run_probed`](Self::run_probed)'s per-shard probes, the
    /// whole cluster's event stream is delivered to `probe` at fan-in on
    /// the driver thread, shard by shard in shard order: each shard's
    /// engine events with its `ShardKilled`/`ShardRestarted` markers
    /// interleaved at the stream positions they occurred, and a final
    /// `ShardAbandoned` marker for dead shards. Under a zero-kill plan
    /// the delivered stream is byte-identical to the per-shard streams of
    /// a plain run, concatenated.
    ///
    /// # Errors
    /// As for [`run_self_healing`](Self::run_self_healing).
    pub fn run_self_healing_probed<P: Probe>(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        plan: &ShardFaultPlan,
        probe: &mut P,
    ) -> Result<ClusterHealedRun, ClusterError> {
        self.run_self_healing_traced(requests, factory, plan, probe, |_, _| NoSpans)
            .map(|(run, _)| run)
    }

    /// [`run_self_healing_probed`](Self::run_self_healing_probed) plus
    /// span capture, mirroring [`run_traced`](Self::run_traced): one
    /// recorder per shard and a driver lane sharing one epoch. Shard
    /// lanes additionally carry `shard_restart` (journal snapshot
    /// rebuild) and `shard_replay` (resume replay) spans for every
    /// resurrection; the driver lane carries a `reroute` span nested in
    /// `fan_in` when degraded-mode routing ran.
    ///
    /// # Errors
    /// As for [`run_self_healing`](Self::run_self_healing).
    pub fn run_self_healing_traced<P, R, FR>(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        plan: &ShardFaultPlan,
        probe: &mut P,
        mut make_spans: FR,
    ) -> Result<(ClusterHealedRun, ClusterTrace<R>), ClusterError>
    where
        P: Probe,
        R: SpanRecorder + Send,
        FR: FnMut(usize, Instant) -> R,
    {
        self.config.validate()?;
        self.check_capacity(requests)?;
        let shards_n = self.config.shards;
        let mut sched: Vec<Vec<KillPoint>> = vec![Vec::new(); shards_n];
        for kill in &plan.kills {
            let s = kill.shard as usize;
            if s >= shards_n {
                return Err(ClusterError::BadFaultPlan {
                    message: format!(
                        "kill targets shard {} but the cluster has {} shards",
                        kill.shard, shards_n
                    ),
                });
            }
            sched[s].push(kill.at);
        }
        let epoch = Instant::now();
        let mut driver = SpanCollector::with_epoch(epoch, DRIVER_LANE);

        driver.enter(stage::PARTITION);
        driver.enter(stage::ROUTE);
        let assignment = self.config.router.assign(requests, shards_n);
        driver.exit();
        let parts: Vec<(Instance, Vec<ItemId>)> = (0..shards_n)
            .map(|s| requests.restrict(|it| assignment[it.id.index()] == s))
            .collect();
        driver.exit();

        driver.enter(stage::BATCH_ENQUEUE);
        let mut units: Vec<(Instance, Vec<ItemId>, Vec<KillPoint>, R)> = parts
            .into_iter()
            .enumerate()
            .map(|(s, (inst, back))| {
                (
                    inst,
                    back,
                    std::mem::take(&mut sched[s]),
                    make_spans(s, epoch),
                )
            })
            .collect();
        driver.exit();

        let dispatch_start = elapsed_ns(epoch);
        for unit in &mut units {
            unit.3.enter(stage::QUEUE_WAIT);
        }
        driver.enter(stage::DISPATCH);
        let system = self.system;
        let batch = self.config.batch;
        let restart = plan.restart;
        let outcomes = run_pool(
            units,
            self.config.workers(),
            |shard, (inst, back, kills, mut spans)| {
                let claim_ns = elapsed_ns(epoch);
                spans.exit(); // queue_wait
                spans.enter(stage::SHARD_BUSY);
                let sup = supervise_shard(
                    &system,
                    &inst,
                    factory,
                    kills,
                    restart,
                    batch,
                    shard as u32,
                    &mut spans,
                );
                spans.exit();
                let done_ns = elapsed_ns(epoch);
                (back, sup, spans, claim_ns, done_ns)
            },
        );
        driver.exit();

        let mut collected: Vec<(Vec<ItemId>, ShardSupervision)> = Vec::with_capacity(shards_n);
        let mut recorders = Vec::with_capacity(shards_n);
        let mut queue_wait_ns = Vec::with_capacity(shards_n);
        let mut busy_ns = Vec::with_capacity(shards_n);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let (back, sup, spans, claim_ns, done_ns) =
                outcome.map_err(|p| ClusterError::ShardPanicked {
                    shard: i,
                    message: panic_message(&*p),
                })?;
            queue_wait_ns.push(claim_ns.saturating_sub(dispatch_start));
            busy_ns.push(done_ns.saturating_sub(claim_ns));
            recorders.push(spans);
            collected.push((back, sup));
        }

        driver.enter(stage::FAN_IN);
        let any_healthy = collected
            .iter()
            .any(|(_, sup)| matches!(sup.fate, ShardFate::Completed { .. }));

        // First pass: per-shard ledgers, abandon markers, the reroute set.
        let mut health_reports: Vec<ShardHealthReport> = Vec::with_capacity(shards_n);
        let mut streams: Vec<Vec<ProbeEvent>> = Vec::with_capacity(shards_n);
        let mut decision_streams: Vec<Vec<u64>> = Vec::with_capacity(shards_n);
        let mut algorithm: Option<String> = None;
        let mut reroute = vec![false; requests.len()];
        let mut rerouted_total = 0u64;
        for (s, (back, sup)) in collected.into_iter().enumerate() {
            let health = sup.health();
            let ShardSupervision {
                mut events,
                decisions,
                kills,
                restarts,
                replayed_events,
                backoff_ticks,
                fate,
                ..
            } = sup;
            match fate {
                ShardFate::Completed { report, .. } => {
                    if algorithm.is_none() {
                        algorithm = Some(report.algorithm.clone());
                    }
                    health_reports.push(ShardHealthReport {
                        shard: s,
                        health,
                        sessions_total: back.len() as u64,
                        sessions_served: report.sessions_served as u64,
                        sessions_dropped: 0,
                        sessions_lost: 0,
                        sessions_rerouted_out: 0,
                        sessions_rerouted_in: 0,
                        kills: kills as u64,
                        restarts: restarts as u64,
                        replayed_events,
                        backoff_ticks,
                        servers_rented: report.servers_rented as u64,
                        busy_ticks: report.busy_ticks,
                        billed_ticks: report.billed_ticks,
                        cost_cents: report.cost_cents,
                        down_reason: None,
                    });
                }
                ShardFate::Dead(dead) => {
                    // Online-legal degradation: only sessions that had NOT
                    // yet arrived at the time of death move — in-flight
                    // sessions are lost with their servers, never migrated.
                    let moved = if any_healthy {
                        dead.unarrived.len() as u64
                    } else {
                        0
                    };
                    let dropped = dead.unarrived.len() as u64 - moved;
                    if any_healthy {
                        for &local in &dead.unarrived {
                            reroute[back[local].index()] = true;
                        }
                    }
                    rerouted_total += moved;
                    events.push(ProbeEvent::ShardAbandoned {
                        at: Tick(dead.died_at),
                        shard: s as u32,
                        lost: dead.lost as u32,
                        rerouted: moved as u32,
                    });
                    health_reports.push(ShardHealthReport {
                        shard: s,
                        health,
                        sessions_total: back.len() as u64,
                        sessions_served: dead.served,
                        sessions_dropped: dropped,
                        sessions_lost: dead.lost,
                        sessions_rerouted_out: moved,
                        sessions_rerouted_in: 0,
                        kills: kills as u64,
                        restarts: restarts as u64,
                        replayed_events,
                        backoff_ticks,
                        servers_rented: dead.servers_rented,
                        busy_ticks: dead.busy_ticks,
                        billed_ticks: dead.billed_ticks,
                        cost_cents: dead.cost_cents,
                        down_reason: Some(dead.reason),
                    });
                }
            }
            streams.push(events);
            decision_streams.push(decisions);
        }

        // Degraded-mode routing: re-run the router over the displaced
        // sub-stream across the surviving shards only. Each host packs its
        // slice in a fresh overflow pool — an upper bound on the cost a
        // merged packing would pay, and the only online-legal choice
        // (rerouted sessions arrive in the future; no migration happens).
        // Host-side reroute events are deliberately NOT journaled into any
        // shard stream: healthy journals stay single-engine-replayable.
        if rerouted_total > 0 {
            driver.enter(stage::REROUTE);
            let (sub, _sub_back) = requests.restrict(|it| reroute[it.id.index()]);
            let hosts: Vec<usize> = health_reports
                .iter()
                .filter(|h| matches!(h.health, ShardHealth::Up))
                .map(|h| h.shard)
                .collect();
            let sub_assign = self.config.router.assign(&sub, hosts.len());
            for (pos, &host) in hosts.iter().enumerate() {
                let (hinst, _) = sub.restrict(|it| sub_assign[it.id.index()] == pos);
                if hinst.is_empty() {
                    continue;
                }
                let mut sel = factory.build();
                let (rep, _trace) =
                    run_shard_probed(&system, &hinst, &mut *sel, &mut NoProbe, batch);
                let hr = &mut health_reports[host];
                hr.sessions_rerouted_in += hinst.len() as u64;
                hr.servers_rented += rep.servers_rented as u64;
                hr.busy_ticks += rep.busy_ticks;
                hr.billed_ticks += rep.billed_ticks;
                hr.cost_cents = hr.cost_cents + rep.cost_cents;
            }
            driver.exit();
        }

        // Deliver the whole cluster's stream to the user probe, shard by
        // shard in shard order — on the driver thread, after the ledger is
        // final, so markers and engine events interleave deterministically.
        if P::ENABLED {
            for events in &streams {
                for ev in events {
                    probe.record(ev.clone());
                }
            }
            for decisions in &decision_streams {
                for &ns in decisions {
                    probe.on_decision_ns(ns);
                }
            }
        }

        let algorithm = algorithm.unwrap_or_else(|| factory.name().to_string());
        let busy: u128 = health_reports.iter().map(|h| h.busy_ticks).sum();
        let total_restarts: u64 = health_reports.iter().map(|h| h.restarts).sum();
        let report = ClusterResilientReport {
            algorithm: algorithm.clone(),
            router: self.config.router.name().to_string(),
            shards: shards_n,
            sessions_total: health_reports.iter().map(|h| h.sessions_total).sum(),
            sessions_served: health_reports.iter().map(|h| h.sessions_served).sum(),
            sessions_dropped: health_reports.iter().map(|h| h.sessions_dropped).sum(),
            sessions_lost: health_reports.iter().map(|h| h.sessions_lost).sum(),
            busy_ticks: busy,
            billed_ticks: health_reports.iter().map(|h| h.billed_ticks).sum(),
            cost_cents: health_reports
                .iter()
                .fold(Ratio::ZERO, |acc, h| acc + h.cost_cents),
            sessions_rerouted: rerouted_total,
            shard_kills: health_reports.iter().map(|h| h.kills).sum(),
            shard_restarts: total_restarts,
            shard_replayed_events: health_reports.iter().map(|h| h.replayed_events).sum(),
            shards_lost: health_reports
                .iter()
                .filter(|h| !matches!(h.health, ShardHealth::Up))
                .count() as u64,
        };
        driver.enter(stage::MANIFEST_MERGE);
        let manifest = RunManifest::capture(&algorithm, None, requests, epoch.elapsed())
            .with_cost(busy)
            .with_shard_restarts(total_restarts)
            .with_ledger_conserved(report.conserved());
        driver.exit();
        driver.exit(); // fan_in

        let stage_ns = |name: &'static str| -> u64 {
            driver
                .spans()
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.dur_ns)
                .sum()
        };
        let timing = ClusterTiming {
            wall_ns: elapsed_ns(epoch),
            partition_ns: stage_ns(stage::PARTITION),
            batch_enqueue_ns: stage_ns(stage::BATCH_ENQUEUE),
            dispatch_ns: stage_ns(stage::DISPATCH),
            fan_in_ns: stage_ns(stage::FAN_IN),
            queue_wait_ns,
            busy_ns,
        };
        Ok((
            ClusterHealedRun {
                report,
                shards: health_reports,
                assignment,
                manifest,
            },
            ClusterTrace {
                driver,
                shards: recorders,
                timing,
            },
        ))
    }

    fn check_capacity(&self, requests: &Instance) -> Result<(), DispatchError> {
        if requests.capacity().raw() != self.system.server.gpu_capacity {
            return Err(DispatchError::CapacityMismatch {
                workload: requests.capacity().raw(),
                server: self.system.server.gpu_capacity,
            });
        }
        Ok(())
    }

    /// Merge shard reports into the exact aggregate. The manifest capture
    /// (full-stream digest) dominates fan-in cost, so it gets its own span.
    fn aggregate<R: SpanRecorder>(
        &self,
        requests: &Instance,
        shards: &[ShardRun],
        wall: std::time::Duration,
        fallback_algorithm: &str,
        spans: &mut R,
    ) -> ClusterReport {
        let busy: u128 = shards.iter().map(|s| s.report.busy_ticks).sum();
        let algorithm = shards
            .first()
            .map(|s| s.report.algorithm.clone())
            .unwrap_or_else(|| fallback_algorithm.to_string());
        let utilization = if busy == 0 {
            Ratio::ZERO
        } else {
            Ratio::new(
                requests.total_demand(),
                requests.capacity().raw() as u128 * busy,
            )
        };
        spans.enter(stage::MANIFEST_MERGE);
        let manifest = RunManifest::capture(&algorithm, None, requests, wall).with_cost(busy);
        spans.exit();
        ClusterReport {
            algorithm: algorithm.clone(),
            router: self.config.router.name().to_string(),
            shards: self.config.shards,
            sessions_served: shards.iter().map(|s| s.report.sessions_served).sum(),
            servers_rented: shards.iter().map(|s| s.report.servers_rented).sum(),
            peak_servers: shards.iter().map(|s| s.report.peak_servers).sum(),
            busy_ticks: busy,
            billed_ticks: shards.iter().map(|s| s.report.billed_ticks).sum(),
            cost_cents: shards
                .iter()
                .fold(Ratio::ZERO, |acc, s| acc + s.report.cost_cents),
            utilization,
            manifest,
        }
    }
}

fn elapsed_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One shard's dispatch: the [`GamingSystem::run`] accounting, driven
/// through [`EngineRun`] in time-ordered bursts so ingestion can batch.
/// Validation and report construction mirror the plain system run exactly —
/// a 1-shard cluster must be byte-identical to it.
pub fn run_shard_probed<S, P>(
    system: &GamingSystem,
    requests: &Instance,
    dispatcher: &mut S,
    probe: &mut P,
    batch: BatchPolicy,
) -> (SystemReport, PackingTrace)
where
    S: dbp_core::packer::BinSelector + ?Sized,
    P: Probe,
{
    run_shard_traced(system, requests, dispatcher, probe, &mut NoSpans, batch)
}

/// [`run_shard_probed`] plus a [`SpanRecorder`]: the engine loop runs
/// through [`EngineRun::traced`] (per-event `arrival`/`decide`/`place`/
/// `departure` spans), and the shard's own validation and report
/// construction get `validate` / `report_build` spans. With [`NoSpans`]
/// this compiles down to exactly the probed path.
pub fn run_shard_traced<S, P, R>(
    system: &GamingSystem,
    requests: &Instance,
    dispatcher: &mut S,
    probe: &mut P,
    spans: &mut R,
    batch: BatchPolicy,
) -> (SystemReport, PackingTrace)
where
    S: dbp_core::packer::BinSelector + ?Sized,
    P: Probe,
    R: SpanRecorder,
{
    assert_eq!(
        requests.capacity().raw(),
        system.server.gpu_capacity,
        "capacity is checked at the cluster boundary"
    );
    let started = std::time::Instant::now();
    // Poll the cancellation latch at least every CANCEL_CHECK steps even
    // under whole-stream batching; the clamp is semantically invisible
    // (the outer loop re-enters until `is_done`).
    const CANCEL_CHECK: usize = 4096;
    let burst = batch.burst().min(CANCEL_CHECK);
    let mut run = EngineRun::traced(requests, &mut *dispatcher, &mut *probe, &mut *spans);
    while !run.is_done() {
        if crate::cancel::requested() {
            // Stop stepping now. The journaled prefix is already durable
            // (probes flush + fsync on drop); the caller sees
            // [`ClusterError::Interrupted`] and discards this sentinel.
            return (
                SystemReport {
                    algorithm: dispatcher.name().to_string(),
                    sessions_served: 0,
                    servers_rented: 0,
                    peak_servers: 0,
                    busy_ticks: 0,
                    billed_ticks: 0,
                    cost_cents: Ratio::ZERO,
                    utilization: Ratio::ZERO,
                    manifest: None,
                },
                PackingTrace {
                    algorithm: dispatcher.name().to_string(),
                    capacity: requests.capacity(),
                    bins: Vec::new(),
                    assignment: Vec::new(),
                    open_bins_steps: Vec::new(),
                },
            );
        }
        for _ in 0..burst {
            if !run.step() {
                break;
            }
        }
    }
    let trace = run.finish();
    if R::ENABLED {
        spans.enter(stage::VALIDATE);
    }
    // O(n + B) conservation check, not the full quadratic
    // `PackingTrace::validate`: the engine already asserts fit on every
    // placement, so the per-tick level audit is redundant defense that used
    // to dominate shard wall time. Full validation stays available through
    // `simulate_validated` and the test suites.
    let errs = trace.check_conservation(requests);
    if R::ENABLED {
        spans.exit();
    }
    if P::ENABLED {
        for err in &errs {
            probe.record(ProbeEvent::Violation {
                at: Tick(0),
                message: err.clone(),
            });
        }
    }
    assert!(
        errs.is_empty(),
        "trace conservation check failed for {}:\n{}",
        trace.algorithm,
        errs.join("\n")
    );
    if R::ENABLED {
        spans.enter(stage::REPORT_BUILD);
    }
    let wall = started.elapsed();
    let busy = trace.total_cost_ticks();
    let utilization = if busy == 0 {
        Ratio::ZERO
    } else {
        Ratio::new(
            requests.total_demand(),
            requests.capacity().raw() as u128 * busy,
        )
    };
    let report = SystemReport {
        algorithm: trace.algorithm.clone(),
        sessions_served: requests.len(),
        servers_rented: trace.bins_used(),
        peak_servers: trace.max_open_bins(),
        busy_ticks: busy,
        billed_ticks: billed_ticks(&trace, system.granularity),
        cost_cents: rental_cost_cents(&trace, system.server, system.granularity),
        utilization,
        manifest: Some(RunManifest::capture(&trace.algorithm, None, requests, wall)),
    };
    if R::ENABLED {
        spans.exit();
    }
    (report, trace)
}

/// One pool unit's outcome: the work's value, or the panic payload the
/// unit died with.
type PoolResult<T> = Result<T, Box<dyn std::any::Any + Send>>;

/// The bounded worker pool `run_all` uses, as a library primitive: `n`
/// work units claimed by index from `workers` scoped threads, results
/// returned in unit order regardless of scheduling.
///
/// Fault containment: each unit runs under `catch_unwind`, so one unit
/// panicking yields `Err(payload)` in its slot instead of unwinding
/// through the scope and aborting the whole run; every other unit still
/// completes. Mutex poison left behind by a dying sibling is recovered,
/// not propagated — the guarded data (a claim token / result slot) is
/// valid regardless of where the panic landed.
fn run_pool<U, T, F>(units: Vec<U>, workers: usize, work: F) -> Vec<PoolResult<T>>
where
    U: Send,
    T: Send,
    F: Fn(usize, U) -> T + Sync,
{
    let n = units.len();
    // Dedicated-thread fast path: with a worker per unit there is nothing
    // to schedule, so each shard gets its own long-lived thread with a
    // direct handoff — no claim counter, no Mutex slots, no contention on
    // the dispatch path. Containment is identical: the unit runs under
    // `catch_unwind` and a panicking thread yields `Err(payload)` in its
    // slot via the join handle.
    if workers >= n && n > 0 {
        return std::thread::scope(|scope| {
            let handles: Vec<_> = units
                .into_iter()
                .enumerate()
                .map(|(i, unit)| {
                    let work = &work;
                    scope.spawn(move || catch_unwind(AssertUnwindSafe(|| work(i, unit))))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(Err))
                .collect()
        });
    }
    let slots: Vec<Mutex<Option<U>>> = units.into_iter().map(|u| Mutex::new(Some(u))).collect();
    let results: Vec<Mutex<Option<PoolResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.clamp(1, n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let unit = slots[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take();
                let Some(unit) = unit else { continue };
                let out = catch_unwind(AssertUnwindSafe(|| work(i, unit)));
                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(Box::new("worker pool lost a result".to_string())
                        as Box<dyn std::any::Any + Send>)
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::algorithms::FirstFit;
    use dbp_core::instance::InstanceBuilder;
    use dbp_workloads::{generate, CloudGamingConfig};

    fn workload(seed: u64) -> Instance {
        generate(&CloudGamingConfig {
            horizon: 1800,
            seed,
            ..CloudGamingConfig::default()
        })
    }

    fn ff_factory() -> SelectorFactory {
        SelectorFactory::new("FF", || Box::new(FirstFit::new()))
    }

    #[test]
    fn shard_reports_sum_to_the_aggregate_exactly() {
        let inst = workload(11);
        for router in Router::ALL {
            let engine = ClusterEngine::new(
                GamingSystem::paper_model(),
                ClusterConfig::new(4, router).unwrap(),
            );
            let run = engine.run(&inst, &ff_factory()).unwrap();
            let busy: u128 = run.shards.iter().map(|s| s.report.busy_ticks).sum();
            assert_eq!(run.report.busy_ticks, busy, "{}", router.name());
            let cents = run
                .shards
                .iter()
                .fold(Ratio::ZERO, |acc, s| acc + s.report.cost_cents);
            assert_eq!(run.report.cost_cents, cents, "{}", router.name());
            assert_eq!(run.report.sessions_served, inst.len(), "{}", router.name());
        }
    }

    #[test]
    fn manifest_digest_is_router_and_shard_count_independent() {
        let inst = workload(12);
        let mut digests = Vec::new();
        for router in Router::ALL {
            for shards in [1, 2, 8] {
                let engine = ClusterEngine::new(
                    GamingSystem::paper_model(),
                    ClusterConfig::new(shards, router).unwrap(),
                );
                let run = engine.run(&inst, &ff_factory()).unwrap();
                digests.push(run.report.manifest.instance_digest.clone());
            }
        }
        digests.dedup();
        assert_eq!(digests.len(), 1, "combined digest must be the stream's");
        assert_eq!(digests[0], dbp_obs::manifest::instance_digest(&inst));
    }

    #[test]
    fn capacity_mismatch_is_rejected_at_the_boundary() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 3);
        let inst = b.build().unwrap();
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(2, Router::HashByItem).unwrap(),
        );
        assert!(matches!(
            engine.run(&inst, &ff_factory()),
            Err(ClusterError::Dispatch(
                DispatchError::CapacityMismatch { .. }
            ))
        ));
    }

    #[test]
    fn zero_shards_and_zero_batch_are_typed_errors() {
        assert_eq!(
            ClusterConfig::new(0, Router::HashByItem).unwrap_err(),
            ClusterError::ZeroShards
        );
        // The fields are public, so the run boundary re-validates.
        let mut config = ClusterConfig::new(2, Router::HashByItem).unwrap();
        config.batch = BatchPolicy::Chunks(0);
        let engine = ClusterEngine::new(GamingSystem::paper_model(), config);
        assert_eq!(
            engine.run(&workload(31), &ff_factory()).unwrap_err(),
            ClusterError::ZeroBatch
        );
    }

    /// A selector that panics on the k-th select call — a stand-in for a
    /// genuine dispatcher bug, not an injected kill.
    struct PanicAfter {
        calls: u32,
        at: u32,
    }

    impl dbp_core::packer::BinSelector for PanicAfter {
        fn name(&self) -> &'static str {
            "PanicAfter"
        }
        fn select(
            &mut self,
            bins: &[dbp_core::OpenBinView],
            item: &dbp_core::ArrivingItem,
            _capacity: dbp_core::Size,
        ) -> dbp_core::packer::Decision {
            self.calls += 1;
            assert!(self.calls < self.at, "selector bug tripped");
            for b in bins {
                if b.fits(item.size) {
                    return dbp_core::packer::Decision::Use(b.id);
                }
            }
            dbp_core::packer::Decision::Open {
                tag: dbp_core::BinTag::DEFAULT,
            }
        }
    }

    #[test]
    fn a_panicking_selector_is_contained_as_a_typed_error() {
        let inst = workload(32);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(3, Router::HashByItem).unwrap(),
        );
        let factory =
            SelectorFactory::new("PanicAfter", || Box::new(PanicAfter { calls: 0, at: 5 }));
        // The pool contains the unwind: a failure value, not an abort,
        // and the test process is alive to assert on it.
        let err = engine.run(&inst, &factory).unwrap_err();
        assert!(
            matches!(err, ClusterError::ShardPanicked { .. }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("selector bug tripped"));
    }

    #[test]
    fn self_healing_with_zero_kills_is_byte_identical_to_the_plain_run() {
        let inst = workload(33);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(4, Router::HashByItem).unwrap(),
        );
        let mut healed_log = dbp_obs::EventLog::new();
        let healed = engine
            .run_self_healing_probed(
                &inst,
                &ff_factory(),
                &ShardFaultPlan::none(),
                &mut healed_log,
            )
            .unwrap();
        // Same ledger as the zero-fault resilient run...
        let resilient = engine
            .run_resilient(&inst, &ff_factory(), &vec![FaultPlan::none(); 4])
            .unwrap();
        assert_eq!(healed.report, resilient.report);
        assert!(healed.report.conserved());
        assert_eq!(healed.report.shard_restarts, 0);
        assert_eq!(healed.manifest.ledger_conserved, Some(true));
        // ...and the delivered stream is the plain per-shard streams,
        // concatenated in shard order, byte for byte.
        let (_, logs) = engine
            .run_probed(&inst, &ff_factory(), |_| dbp_obs::EventLog::new())
            .unwrap();
        let plain: Vec<ProbeEvent> = logs
            .iter()
            .flat_map(|l| l.events().iter().cloned())
            .collect();
        assert_eq!(healed_log.events(), &plain[..]);
        for shard in &healed.shards {
            assert!(shard.conserved());
            assert_eq!(shard.health, ShardHealth::Up);
        }
    }

    #[test]
    fn self_healing_reroutes_only_future_arrivals_off_dead_shards() {
        let inst = workload(34);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(4, Router::HashByItem).unwrap(),
        );
        // Kill shard 2 four times at event 5: budget of 3 restarts is
        // exhausted on the fourth kill and the shard dies for good.
        let plan = ShardFaultPlan {
            seed: 0,
            kills: vec![
                crate::faults::ShardKill {
                    shard: 2,
                    at: KillPoint::Event(5),
                };
                4
            ],
            restart: crate::faults::RestartPolicy::default(),
        };
        let mut log = dbp_obs::EventLog::new();
        let healed = engine
            .run_self_healing_probed(&inst, &ff_factory(), &plan, &mut log)
            .unwrap();
        assert!(healed.report.conserved(), "extended ledger must conserve");
        let dead = &healed.shards[2];
        assert_eq!(dead.health, ShardHealth::Down);
        assert!(dead.down_reason.is_some());
        assert_eq!(dead.kills, 4);
        assert_eq!(dead.restarts, 3);
        assert!(dead.conserved());
        assert!(
            dead.sessions_rerouted_out > 0,
            "a shard killed early must strand future arrivals"
        );
        assert_eq!(healed.report.sessions_rerouted, dead.sessions_rerouted_out);
        let hosted: u64 = healed.shards.iter().map(|h| h.sessions_rerouted_in).sum();
        assert_eq!(hosted, dead.sessions_rerouted_out);
        // The abandonment is stamped into the delivered stream.
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e, ProbeEvent::ShardAbandoned { shard: 2, .. })));
        assert_eq!(healed.manifest.shard_restarts, Some(3));
    }

    #[test]
    fn fault_plan_outside_the_cluster_is_rejected() {
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(2, Router::HashByItem).unwrap(),
        );
        let plan = ShardFaultPlan {
            seed: 0,
            kills: vec![crate::faults::ShardKill {
                shard: 7,
                at: KillPoint::Event(1),
            }],
            restart: crate::faults::RestartPolicy::default(),
        };
        assert!(matches!(
            engine.run_self_healing(&workload(35), &ff_factory(), &plan),
            Err(ClusterError::BadFaultPlan { .. })
        ));
        let wrong_count = engine.run_resilient(&workload(35), &ff_factory(), &[FaultPlan::none()]);
        assert!(matches!(
            wrong_count,
            Err(ClusterError::FaultPlanCount {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn more_shards_than_items_leaves_empty_shards_sound() {
        let mut b = InstanceBuilder::new(1000);
        b.add(0, 10, 100);
        b.add(2, 8, 200);
        let inst = b.build().unwrap();
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(8, Router::HashByItem).unwrap(),
        );
        let run = engine.run(&inst, &ff_factory()).unwrap();
        assert_eq!(run.report.sessions_served, 2);
        let nonempty = run.shards.iter().filter(|s| !s.back.is_empty()).count();
        assert!(nonempty <= 2);
        assert!(run.report.busy_ticks > 0);
    }

    #[test]
    fn traced_run_matches_probed_run_and_accounts_the_wall() {
        let inst = workload(21);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(4, Router::HashByItem).unwrap(),
        );
        let (plain, _) = engine
            .run_probed(&inst, &ff_factory(), |_| NoProbe)
            .unwrap();
        let (traced, _, trace) = engine
            .run_traced(
                &inst,
                &ff_factory(),
                |_| NoProbe,
                |s, e| SpanCollector::with_epoch(e, s as u32),
            )
            .unwrap();

        // Spans never touch the ledger.
        assert_eq!(traced.report.busy_ticks, plain.report.busy_ticks);
        assert_eq!(traced.report.cost_cents, plain.report.cost_cents);
        assert_eq!(traced.report.sessions_served, plain.report.sessions_served);
        for (a, b) in traced.shards.iter().zip(plain.shards.iter()) {
            assert_eq!(a.trace, b.trace);
        }

        // Exact timing: the sequential driver stages fit inside the wall,
        // and every shard's queue-wait + busy fits inside dispatch.
        let t = &trace.timing;
        assert!(t.accounted_ns() <= t.wall_ns);
        assert!(t.dispatch_ns > 0);
        assert_eq!(t.queue_wait_ns.len(), 4);
        assert_eq!(t.busy_ns.len(), 4);
        for s in 0..4 {
            assert!(t.queue_wait_ns[s] + t.busy_ns[s] <= t.wall_ns);
        }

        // Every shard lane starts with queue_wait then shard_busy, with
        // the engine's spans nested under shard_busy.
        for lane in &trace.shards {
            let shape = lane.shape();
            assert_eq!(
                shape[0],
                (stage::QUEUE_WAIT, dbp_core::span::SpanEvent::ROOT)
            );
            assert_eq!(
                shape[1],
                (stage::SHARD_BUSY, dbp_core::span::SpanEvent::ROOT)
            );
        }
    }

    #[test]
    fn driver_lane_records_the_pipeline_stages_in_order() {
        let inst = workload(22);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(2, Router::LeastLoaded).unwrap(),
        );
        let (_, _, trace) = engine
            .run_traced(&inst, &ff_factory(), |_| NoProbe, |_, _| NoSpans)
            .unwrap();
        let shape = trace.driver.shape();
        use dbp_core::span::SpanEvent;
        const ROOT: u32 = SpanEvent::ROOT;
        assert_eq!(
            shape,
            vec![
                (stage::PARTITION, ROOT),
                (stage::ROUTE, 0),
                (stage::BATCH_ENQUEUE, ROOT),
                (stage::DISPATCH, ROOT),
                (stage::FAN_IN, ROOT),
                (stage::MANIFEST_MERGE, 4),
            ]
        );
    }

    #[test]
    fn shard_span_shapes_are_deterministic_for_a_fixed_seed() {
        let inst = workload(23);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(3, Router::HashByItem).unwrap(),
        );
        let run = |_: &()| {
            let (_, _, trace) = engine
                .run_traced(
                    &inst,
                    &ff_factory(),
                    |_| NoProbe,
                    |s, e| SpanCollector::with_epoch(e, s as u32),
                )
                .unwrap();
            trace
                .shards
                .iter()
                .map(|lane| lane.shape())
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(&()),
            run(&()),
            "span structure must not depend on timing"
        );
    }

    #[test]
    fn resilient_ledger_is_conserved_across_shards() {
        let inst = workload(13);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(3, Router::LeastLoaded).unwrap(),
        );
        let plans: Vec<FaultPlan> = (0..3)
            .map(|s| FaultPlan::from_seed(100 + s, 1800))
            .collect();
        let run = engine.run_resilient(&inst, &ff_factory(), &plans).unwrap();
        assert!(run.report.conserved());
        assert_eq!(run.report.sessions_total, inst.len() as u64);
        for shard in &run.shards {
            assert!(shard.conserved());
        }
    }

    #[test]
    fn zero_fault_plans_reproduce_the_plain_cluster_bill() {
        let inst = workload(14);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(4, Router::HashByItem).unwrap(),
        );
        let plain = engine.run(&inst, &ff_factory()).unwrap();
        let plans = vec![FaultPlan::none(); 4];
        let faulted = engine.run_resilient(&inst, &ff_factory(), &plans).unwrap();
        assert_eq!(faulted.report.busy_ticks, plain.report.busy_ticks);
        assert_eq!(faulted.report.cost_cents, plain.report.cost_cents);
        assert_eq!(faulted.report.sessions_served, inst.len() as u64);
    }
}
