//! The cluster engine: partition one request stream across N independent
//! `dbp-core` engine shards, run them on a bounded thread pool, and merge
//! the accounting exactly.
//!
//! Every shard is a full [`GamingSystem`]-equivalent dispatch run over the
//! restricted instance its router slice produced; costs are additive
//! because shards share no servers, so the aggregate `busy_ticks`,
//! `billed_ticks` and `cost_cents` are plain sums in `u128`/[`Ratio`] —
//! no floats anywhere in the ledger. A 1-shard cluster is *the* plain
//! system run: same trace, same event stream, same report.

use crate::router::Router;
use dbp_cloudsim::{
    billed_ticks, rental_cost_cents, DispatchError, FaultPlan, GamingSystem, ResilientReport,
    ResilientSystem, SystemReport,
};
use dbp_core::engine::EngineRun;
use dbp_core::instance::Instance;
use dbp_core::item::ItemId;
use dbp_core::packer::SelectorFactory;
use dbp_core::probe::{NoProbe, Probe, ProbeEvent};
use dbp_core::ratio::Ratio;
use dbp_core::time::Tick;
use dbp_core::trace::PackingTrace;
use dbp_obs::{MetricsRegistry, RunManifest};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the ingestion loop drains each shard's schedule.
///
/// Batching is *transparent by construction*: the engine's schedule is
/// already time-ordered and a batch boundary only decides how many events
/// one `step()` burst processes before the worker yields, so the decision
/// sequence, trace and cost are identical for every policy (property-tested
/// in `tests/cluster_props.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// One schedule event per burst — the unbatched reference feeding.
    PerEvent,
    /// Time-ordered chunks of up to `n` schedule events.
    Chunks(usize),
    /// Drain the whole shard schedule in one burst.
    WholeStream,
}

impl BatchPolicy {
    fn burst(self) -> usize {
        match self {
            BatchPolicy::PerEvent => 1,
            BatchPolicy::Chunks(n) => n.max(1),
            BatchPolicy::WholeStream => usize::MAX,
        }
    }
}

/// Cluster shape: shard count, routing policy, ingestion batching and the
/// worker pool bound.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of engine shards (≥ 1).
    pub shards: usize,
    /// Routing policy.
    pub router: Router,
    /// Ingestion batching policy.
    pub batch: BatchPolicy,
    /// Worker threads running shards; `0` means available parallelism.
    /// Always clamped to the shard count, like `run_all`'s pool.
    pub jobs: usize,
}

impl ClusterConfig {
    /// A cluster of `shards` shards under `router`, whole-stream batching,
    /// default worker pool.
    pub fn new(shards: usize, router: Router) -> ClusterConfig {
        assert!(shards > 0, "a cluster needs at least one shard");
        ClusterConfig {
            shards,
            router,
            batch: BatchPolicy::WholeStream,
            jobs: 0,
        }
    }

    fn workers(&self) -> usize {
        let n = if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.jobs
        };
        n.clamp(1, self.shards)
    }
}

/// One shard's complete outcome.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// The shard's dispatch report (per-shard manifest attached, its
    /// digest taken over the shard's restricted instance).
    pub report: SystemReport,
    /// The shard's packing trace (item ids are shard-local).
    pub trace: PackingTrace,
    /// Back-map: shard-local item id index → original [`ItemId`].
    pub back: Vec<ItemId>,
}

/// Exact aggregate of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Dispatcher name (every shard runs the same policy).
    pub algorithm: String,
    /// Router name.
    pub router: String,
    /// Shard count.
    pub shards: usize,
    /// Sessions served across all shards (= the instance size).
    pub sessions_served: usize,
    /// Distinct servers rented across all shards (ids are per-shard).
    pub servers_rented: usize,
    /// Sum of per-shard peak fleets — what the cluster must be able to
    /// provision if every pool peaks at once.
    pub peak_servers: u32,
    /// Exact sum of shard busy times, in server-ticks.
    pub busy_ticks: u128,
    /// Exact sum of shard billed times.
    pub billed_ticks: u128,
    /// Exact sum of shard bills, in cents.
    pub cost_cents: Ratio,
    /// Cluster-wide utilization: total demand over `W ·` total busy time.
    pub utilization: Ratio,
    /// Merged provenance: the *combined* digest is taken over the full
    /// (pre-partition) instance, so it is independent of shard count and
    /// router — any two clusterings of the same stream share it — and for
    /// one shard it equals the plain run's digest byte for byte.
    pub manifest: RunManifest,
}

/// A finished cluster run: the aggregate report, every shard's outcome,
/// and the router's item → shard assignment.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Exact aggregate accounting.
    pub report: ClusterReport,
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardRun>,
    /// `assignment[item.index()]` is the shard that served the item.
    pub assignment: Vec<usize>,
}

impl ClusterRun {
    /// Per-shard metrics with `{shard="N"}`-labelled names plus unlabelled
    /// cluster totals, ready for Prometheus text export. The per-shard
    /// registries fan in via [`MetricsRegistry::absorb_labeled`].
    pub fn metrics(&self, per_shard: &[MetricsRegistry]) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        merged.counter_add("dbp_cluster_shards", self.report.shards as u64);
        merged.counter_add(
            "dbp_cluster_sessions_served_total",
            self.report.sessions_served as u64,
        );
        merged.counter_add(
            "dbp_cluster_servers_rented_total",
            self.report.servers_rented as u64,
        );
        merged.counter_add(
            "dbp_cluster_busy_ticks_total",
            u64::try_from(self.report.busy_ticks).unwrap_or(u64::MAX),
        );
        merged.counter_add(
            "dbp_cluster_billed_ticks_total",
            u64::try_from(self.report.billed_ticks).unwrap_or(u64::MAX),
        );
        for (shard, reg) in per_shard.iter().enumerate() {
            merged.absorb_labeled(reg, "shard", &shard.to_string());
        }
        merged
    }
}

/// Aggregate SLA ledger of a fault-injected cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterResilientReport {
    /// Dispatcher name.
    pub algorithm: String,
    /// Router name.
    pub router: String,
    /// Shard count.
    pub shards: usize,
    /// Sum of shard session totals (= the instance size).
    pub sessions_total: u64,
    /// Sessions served to completion, across shards.
    pub sessions_served: u64,
    /// Sessions dropped at admission, across shards.
    pub sessions_dropped: u64,
    /// Sessions lost to crashes, across shards.
    pub sessions_lost: u64,
    /// Exact sum of shard busy times.
    pub busy_ticks: u128,
    /// Exact sum of shard billed times.
    pub billed_ticks: u128,
    /// Exact sum of shard bills, in cents.
    pub cost_cents: Ratio,
}

impl ClusterResilientReport {
    /// The conservation law, cluster-wide: every session is served,
    /// dropped or lost — nothing double-counted, nothing vanishes.
    pub fn conserved(&self) -> bool {
        self.sessions_served + self.sessions_dropped + self.sessions_lost == self.sessions_total
    }
}

/// A finished fault-injected cluster run.
#[derive(Debug, Clone)]
pub struct ClusterResilientRun {
    /// Aggregate SLA ledger.
    pub report: ClusterResilientReport,
    /// Per-shard ledgers, indexed by shard.
    pub shards: Vec<ResilientReport>,
    /// Router assignment, item → shard.
    pub assignment: Vec<usize>,
}

/// The scale-out dispatch layer: a [`GamingSystem`] per shard behind a
/// [`Router`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterEngine {
    /// The per-shard system (server flavor + billing granularity).
    pub system: GamingSystem,
    /// Cluster shape.
    pub config: ClusterConfig,
}

impl ClusterEngine {
    /// A cluster of `config` shape over `system`.
    pub fn new(system: GamingSystem, config: ClusterConfig) -> ClusterEngine {
        ClusterEngine { system, config }
    }

    /// Partition `requests` by the configured router: one restricted
    /// instance + back-map per shard, plus the item → shard assignment.
    /// Restriction preserves arrival order and renumbers densely, so each
    /// shard is a well-formed instance in its own right.
    pub fn partition(&self, requests: &Instance) -> (Vec<(Instance, Vec<ItemId>)>, Vec<usize>) {
        let assignment = self.config.router.assign(requests, self.config.shards);
        let parts = (0..self.config.shards)
            .map(|s| requests.restrict(|it| assignment[it.id.index()] == s))
            .collect();
        (parts, assignment)
    }

    /// Run the cluster without instrumentation.
    pub fn run(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
    ) -> Result<ClusterRun, DispatchError> {
        self.run_probed(requests, factory, |_| NoProbe)
            .map(|(run, _)| run)
    }

    /// Run the cluster with one probe per shard. `make_probe(shard)` is
    /// called in shard order before the pool starts; the probes come back
    /// in the same order for draining (event logs, journal sealing).
    ///
    /// # Errors
    /// [`DispatchError::CapacityMismatch`] when the workload was generated
    /// against a different `W` than the shard server flavor provides.
    pub fn run_probed<P, F>(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        mut make_probe: F,
    ) -> Result<(ClusterRun, Vec<P>), DispatchError>
    where
        P: Probe + Send,
        F: FnMut(usize) -> P,
    {
        self.check_capacity(requests)?;
        let started = std::time::Instant::now();
        let (parts, assignment) = self.partition(requests);
        let units: Vec<(Instance, Vec<ItemId>, P)> = parts
            .into_iter()
            .enumerate()
            .map(|(s, (inst, back))| (inst, back, make_probe(s)))
            .collect();
        let system = self.system;
        let batch = self.config.batch;
        let outcomes = run_pool(
            units,
            self.config.workers(),
            |shard, (inst, back, mut probe)| {
                let mut sel = factory.build();
                let (report, trace) =
                    run_shard_probed(&system, &inst, &mut *sel, &mut probe, batch);
                (
                    ShardRun {
                        shard,
                        report,
                        trace,
                        back,
                    },
                    probe,
                )
            },
        );
        let mut shards = Vec::with_capacity(outcomes.len());
        let mut probes = Vec::with_capacity(outcomes.len());
        for (shard, probe) in outcomes {
            shards.push(shard);
            probes.push(probe);
        }
        let report = self.aggregate(requests, &shards, started.elapsed());
        Ok((
            ClusterRun {
                report,
                shards,
                assignment,
            },
            probes,
        ))
    }

    /// Run the cluster under per-shard fault plans through
    /// [`ResilientSystem`]; `plans` must hold one plan per shard.
    ///
    /// # Errors
    /// [`DispatchError::CapacityMismatch`] as for [`run`](Self::run).
    ///
    /// # Panics
    /// Panics when `plans.len()` differs from the shard count.
    pub fn run_resilient(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        plans: &[FaultPlan],
    ) -> Result<ClusterResilientRun, DispatchError> {
        self.run_resilient_probed(requests, factory, plans, |_| NoProbe)
            .map(|(run, _)| run)
    }

    /// [`run_resilient`](Self::run_resilient) with one probe per shard.
    pub fn run_resilient_probed<P, F>(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        plans: &[FaultPlan],
        mut make_probe: F,
    ) -> Result<(ClusterResilientRun, Vec<P>), DispatchError>
    where
        P: Probe + Send,
        F: FnMut(usize) -> P,
    {
        assert_eq!(
            plans.len(),
            self.config.shards,
            "need exactly one fault plan per shard"
        );
        self.check_capacity(requests)?;
        let (parts, assignment) = self.partition(requests);
        let units: Vec<(Instance, FaultPlan, P)> = parts
            .into_iter()
            .enumerate()
            .map(|(s, (inst, _back))| (inst, plans[s].clone(), make_probe(s)))
            .collect();
        let system = self.system;
        let results = run_pool(
            units,
            self.config.workers(),
            |_shard, (inst, plan, mut probe)| {
                let mut sel = factory.build();
                let resilient = ResilientSystem::new(system, plan);
                let report = resilient
                    .run_probed(&inst, &mut *sel, &mut probe)
                    .expect("capacity was checked at the cluster boundary");
                (report, probe)
            },
        );
        let mut shards = Vec::with_capacity(results.len());
        let mut probes = Vec::with_capacity(results.len());
        for (report, probe) in results {
            shards.push(report);
            probes.push(probe);
        }
        let algorithm = shards
            .first()
            .map(|r| r.algorithm.clone())
            .unwrap_or_else(|| factory.name().to_string());
        let report = ClusterResilientReport {
            algorithm,
            router: self.config.router.name().to_string(),
            shards: self.config.shards,
            sessions_total: shards.iter().map(|r| r.sessions_total).sum(),
            sessions_served: shards.iter().map(|r| r.sessions_served).sum(),
            sessions_dropped: shards.iter().map(|r| r.sessions_dropped).sum(),
            sessions_lost: shards.iter().map(|r| r.sessions_lost).sum(),
            busy_ticks: shards.iter().map(|r| r.busy_ticks).sum(),
            billed_ticks: shards.iter().map(|r| r.billed_ticks).sum(),
            cost_cents: shards.iter().fold(Ratio::ZERO, |acc, r| acc + r.cost_cents),
        };
        Ok((
            ClusterResilientRun {
                report,
                shards,
                assignment,
            },
            probes,
        ))
    }

    fn check_capacity(&self, requests: &Instance) -> Result<(), DispatchError> {
        if requests.capacity().raw() != self.system.server.gpu_capacity {
            return Err(DispatchError::CapacityMismatch {
                workload: requests.capacity().raw(),
                server: self.system.server.gpu_capacity,
            });
        }
        Ok(())
    }

    /// Merge shard reports into the exact aggregate.
    fn aggregate(
        &self,
        requests: &Instance,
        shards: &[ShardRun],
        wall: std::time::Duration,
    ) -> ClusterReport {
        let busy: u128 = shards.iter().map(|s| s.report.busy_ticks).sum();
        let algorithm = shards
            .first()
            .map(|s| s.report.algorithm.clone())
            .expect("a cluster has at least one shard");
        let utilization = if busy == 0 {
            Ratio::ZERO
        } else {
            Ratio::new(
                requests.total_demand(),
                requests.capacity().raw() as u128 * busy,
            )
        };
        ClusterReport {
            algorithm: algorithm.clone(),
            router: self.config.router.name().to_string(),
            shards: self.config.shards,
            sessions_served: shards.iter().map(|s| s.report.sessions_served).sum(),
            servers_rented: shards.iter().map(|s| s.report.servers_rented).sum(),
            peak_servers: shards.iter().map(|s| s.report.peak_servers).sum(),
            busy_ticks: busy,
            billed_ticks: shards.iter().map(|s| s.report.billed_ticks).sum(),
            cost_cents: shards
                .iter()
                .fold(Ratio::ZERO, |acc, s| acc + s.report.cost_cents),
            utilization,
            manifest: RunManifest::capture(&algorithm, None, requests, wall).with_cost(busy),
        }
    }
}

/// One shard's dispatch: the [`GamingSystem::run`] accounting, driven
/// through [`EngineRun`] in time-ordered bursts so ingestion can batch.
/// Validation and report construction mirror the plain system run exactly —
/// a 1-shard cluster must be byte-identical to it.
pub fn run_shard_probed<S, P>(
    system: &GamingSystem,
    requests: &Instance,
    dispatcher: &mut S,
    probe: &mut P,
    batch: BatchPolicy,
) -> (SystemReport, PackingTrace)
where
    S: dbp_core::packer::BinSelector + ?Sized,
    P: Probe,
{
    assert_eq!(
        requests.capacity().raw(),
        system.server.gpu_capacity,
        "capacity is checked at the cluster boundary"
    );
    let started = std::time::Instant::now();
    let burst = batch.burst();
    let mut run = EngineRun::new(requests, &mut *dispatcher, &mut *probe);
    while !run.is_done() {
        for _ in 0..burst {
            if !run.step() {
                break;
            }
        }
    }
    let trace = run.finish();
    let errs = trace.validate(requests);
    if P::ENABLED {
        for err in &errs {
            probe.record(ProbeEvent::Violation {
                at: Tick(0),
                message: err.clone(),
            });
        }
    }
    assert!(
        errs.is_empty(),
        "trace validation failed for {}:\n{}",
        trace.algorithm,
        errs.join("\n")
    );
    let wall = started.elapsed();
    let busy = trace.total_cost_ticks();
    let utilization = if busy == 0 {
        Ratio::ZERO
    } else {
        Ratio::new(
            requests.total_demand(),
            requests.capacity().raw() as u128 * busy,
        )
    };
    let report = SystemReport {
        algorithm: trace.algorithm.clone(),
        sessions_served: requests.len(),
        servers_rented: trace.bins_used(),
        peak_servers: trace.max_open_bins(),
        busy_ticks: busy,
        billed_ticks: billed_ticks(&trace, system.granularity),
        cost_cents: rental_cost_cents(&trace, system.server, system.granularity),
        utilization,
        manifest: Some(RunManifest::capture(&trace.algorithm, None, requests, wall)),
    };
    (report, trace)
}

/// The bounded worker pool `run_all` uses, as a library primitive: `n`
/// work units claimed by index from `workers` scoped threads, results
/// returned in unit order regardless of scheduling.
fn run_pool<U, T, F>(units: Vec<U>, workers: usize, work: F) -> Vec<T>
where
    U: Send,
    T: Send,
    F: Fn(usize, U) -> T + Sync,
{
    let n = units.len();
    let slots: Vec<Mutex<Option<U>>> = units.into_iter().map(|u| Mutex::new(Some(u))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.clamp(1, n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let unit = slots[i]
                    .lock()
                    .expect("poisoned work slot")
                    .take()
                    .expect("work unit claimed twice");
                let out = work(i, unit);
                *results[i].lock().expect("poisoned result slot") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("poisoned result slot")
                .expect("worker pool lost a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::algorithms::FirstFit;
    use dbp_core::instance::InstanceBuilder;
    use dbp_workloads::{generate, CloudGamingConfig};

    fn workload(seed: u64) -> Instance {
        generate(&CloudGamingConfig {
            horizon: 1800,
            seed,
            ..CloudGamingConfig::default()
        })
    }

    fn ff_factory() -> SelectorFactory {
        SelectorFactory::new("FF", || Box::new(FirstFit::new()))
    }

    #[test]
    fn shard_reports_sum_to_the_aggregate_exactly() {
        let inst = workload(11);
        for router in Router::ALL {
            let engine =
                ClusterEngine::new(GamingSystem::paper_model(), ClusterConfig::new(4, router));
            let run = engine.run(&inst, &ff_factory()).unwrap();
            let busy: u128 = run.shards.iter().map(|s| s.report.busy_ticks).sum();
            assert_eq!(run.report.busy_ticks, busy, "{}", router.name());
            let cents = run
                .shards
                .iter()
                .fold(Ratio::ZERO, |acc, s| acc + s.report.cost_cents);
            assert_eq!(run.report.cost_cents, cents, "{}", router.name());
            assert_eq!(run.report.sessions_served, inst.len(), "{}", router.name());
        }
    }

    #[test]
    fn manifest_digest_is_router_and_shard_count_independent() {
        let inst = workload(12);
        let mut digests = Vec::new();
        for router in Router::ALL {
            for shards in [1, 2, 8] {
                let engine = ClusterEngine::new(
                    GamingSystem::paper_model(),
                    ClusterConfig::new(shards, router),
                );
                let run = engine.run(&inst, &ff_factory()).unwrap();
                digests.push(run.report.manifest.instance_digest.clone());
            }
        }
        digests.dedup();
        assert_eq!(digests.len(), 1, "combined digest must be the stream's");
        assert_eq!(digests[0], dbp_obs::manifest::instance_digest(&inst));
    }

    #[test]
    fn capacity_mismatch_is_rejected_at_the_boundary() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 3);
        let inst = b.build().unwrap();
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(2, Router::HashByItem),
        );
        assert!(matches!(
            engine.run(&inst, &ff_factory()),
            Err(DispatchError::CapacityMismatch { .. })
        ));
    }

    #[test]
    fn more_shards_than_items_leaves_empty_shards_sound() {
        let mut b = InstanceBuilder::new(1000);
        b.add(0, 10, 100);
        b.add(2, 8, 200);
        let inst = b.build().unwrap();
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(8, Router::HashByItem),
        );
        let run = engine.run(&inst, &ff_factory()).unwrap();
        assert_eq!(run.report.sessions_served, 2);
        let nonempty = run.shards.iter().filter(|s| !s.back.is_empty()).count();
        assert!(nonempty <= 2);
        assert!(run.report.busy_ticks > 0);
    }

    #[test]
    fn resilient_ledger_is_conserved_across_shards() {
        let inst = workload(13);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(3, Router::LeastLoaded),
        );
        let plans: Vec<FaultPlan> = (0..3)
            .map(|s| FaultPlan::from_seed(100 + s, 1800))
            .collect();
        let run = engine.run_resilient(&inst, &ff_factory(), &plans).unwrap();
        assert!(run.report.conserved());
        assert_eq!(run.report.sessions_total, inst.len() as u64);
        for shard in &run.shards {
            assert!(shard.conserved());
        }
    }

    #[test]
    fn zero_fault_plans_reproduce_the_plain_cluster_bill() {
        let inst = workload(14);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(4, Router::HashByItem),
        );
        let plain = engine.run(&inst, &ff_factory()).unwrap();
        let plans = vec![FaultPlan::none(); 4];
        let faulted = engine.run_resilient(&inst, &ff_factory(), &plans).unwrap();
        assert_eq!(faulted.report.busy_ticks, plain.report.busy_ticks);
        assert_eq!(faulted.report.cost_cents, plain.report.cost_cents);
        assert_eq!(faulted.report.sessions_served, inst.len() as u64);
    }
}
