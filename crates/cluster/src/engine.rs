//! The cluster engine: partition one request stream across N independent
//! `dbp-core` engine shards, run them on a bounded thread pool, and merge
//! the accounting exactly.
//!
//! Every shard is a full [`GamingSystem`]-equivalent dispatch run over the
//! restricted instance its router slice produced; costs are additive
//! because shards share no servers, so the aggregate `busy_ticks`,
//! `billed_ticks` and `cost_cents` are plain sums in `u128`/[`Ratio`] —
//! no floats anywhere in the ledger. A 1-shard cluster is *the* plain
//! system run: same trace, same event stream, same report.

use crate::router::Router;
use dbp_cloudsim::{
    billed_ticks, rental_cost_cents, DispatchError, FaultPlan, GamingSystem, ResilientReport,
    ResilientSystem, SystemReport,
};
use dbp_core::engine::EngineRun;
use dbp_core::instance::Instance;
use dbp_core::item::ItemId;
use dbp_core::packer::SelectorFactory;
use dbp_core::probe::{NoProbe, Probe, ProbeEvent};
use dbp_core::ratio::Ratio;
use dbp_core::span::{stage, NoSpans, SpanRecorder};
use dbp_core::time::Tick;
use dbp_core::trace::PackingTrace;
use dbp_obs::span::{SpanCollector, DRIVER_LANE};
use dbp_obs::{MetricsRegistry, RunManifest};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How the ingestion loop drains each shard's schedule.
///
/// Batching is *transparent by construction*: the engine's schedule is
/// already time-ordered and a batch boundary only decides how many events
/// one `step()` burst processes before the worker yields, so the decision
/// sequence, trace and cost are identical for every policy (property-tested
/// in `tests/cluster_props.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// One schedule event per burst — the unbatched reference feeding.
    PerEvent,
    /// Time-ordered chunks of up to `n` schedule events.
    Chunks(usize),
    /// Drain the whole shard schedule in one burst.
    WholeStream,
}

impl BatchPolicy {
    fn burst(self) -> usize {
        match self {
            BatchPolicy::PerEvent => 1,
            BatchPolicy::Chunks(n) => n.max(1),
            BatchPolicy::WholeStream => usize::MAX,
        }
    }
}

/// Cluster shape: shard count, routing policy, ingestion batching and the
/// worker pool bound.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of engine shards (≥ 1).
    pub shards: usize,
    /// Routing policy.
    pub router: Router,
    /// Ingestion batching policy.
    pub batch: BatchPolicy,
    /// Worker threads running shards; `0` means available parallelism.
    /// Always clamped to the shard count, like `run_all`'s pool.
    pub jobs: usize,
}

impl ClusterConfig {
    /// A cluster of `shards` shards under `router`, whole-stream batching,
    /// default worker pool.
    pub fn new(shards: usize, router: Router) -> ClusterConfig {
        assert!(shards > 0, "a cluster needs at least one shard");
        ClusterConfig {
            shards,
            router,
            batch: BatchPolicy::WholeStream,
            jobs: 0,
        }
    }

    /// The resolved worker-pool size: `jobs` (or available parallelism
    /// when 0), clamped to the shard count.
    pub fn workers(&self) -> usize {
        let n = if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.jobs
        };
        n.clamp(1, self.shards)
    }
}

/// One shard's complete outcome.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// The shard's dispatch report (per-shard manifest attached, its
    /// digest taken over the shard's restricted instance).
    pub report: SystemReport,
    /// The shard's packing trace (item ids are shard-local).
    pub trace: PackingTrace,
    /// Back-map: shard-local item id index → original [`ItemId`].
    pub back: Vec<ItemId>,
}

/// Exact aggregate of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Dispatcher name (every shard runs the same policy).
    pub algorithm: String,
    /// Router name.
    pub router: String,
    /// Shard count.
    pub shards: usize,
    /// Sessions served across all shards (= the instance size).
    pub sessions_served: usize,
    /// Distinct servers rented across all shards (ids are per-shard).
    pub servers_rented: usize,
    /// Sum of per-shard peak fleets — what the cluster must be able to
    /// provision if every pool peaks at once.
    pub peak_servers: u32,
    /// Exact sum of shard busy times, in server-ticks.
    pub busy_ticks: u128,
    /// Exact sum of shard billed times.
    pub billed_ticks: u128,
    /// Exact sum of shard bills, in cents.
    pub cost_cents: Ratio,
    /// Cluster-wide utilization: total demand over `W ·` total busy time.
    pub utilization: Ratio,
    /// Merged provenance: the *combined* digest is taken over the full
    /// (pre-partition) instance, so it is independent of shard count and
    /// router — any two clusterings of the same stream share it — and for
    /// one shard it equals the plain run's digest byte for byte.
    pub manifest: RunManifest,
}

/// A finished cluster run: the aggregate report, every shard's outcome,
/// and the router's item → shard assignment.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Exact aggregate accounting.
    pub report: ClusterReport,
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardRun>,
    /// `assignment[item.index()]` is the shard that served the item.
    pub assignment: Vec<usize>,
}

impl ClusterRun {
    /// Per-shard metrics with `{shard="N"}`-labelled names plus unlabelled
    /// cluster totals, ready for Prometheus text export. The per-shard
    /// registries fan in via [`MetricsRegistry::absorb_labeled`].
    pub fn metrics(&self, per_shard: &[MetricsRegistry]) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        merged.counter_add("dbp_cluster_shards", self.report.shards as u64);
        merged.counter_add(
            "dbp_cluster_sessions_served_total",
            self.report.sessions_served as u64,
        );
        merged.counter_add(
            "dbp_cluster_servers_rented_total",
            self.report.servers_rented as u64,
        );
        merged.counter_add(
            "dbp_cluster_busy_ticks_total",
            u64::try_from(self.report.busy_ticks).unwrap_or(u64::MAX),
        );
        merged.counter_add(
            "dbp_cluster_billed_ticks_total",
            u64::try_from(self.report.billed_ticks).unwrap_or(u64::MAX),
        );
        for (shard, reg) in per_shard.iter().enumerate() {
            merged.absorb_labeled(reg, "shard", &shard.to_string());
        }
        merged
    }
}

/// Exact wall-clock attribution of one cluster run, nanoseconds end to
/// end: where the driver spent its time and, per shard, how long the work
/// unit waited for a pool worker versus actually ran. Derived from the
/// same epoch as every span lane, so `partition + batch_enqueue + dispatch
/// + fan_in` accounts for (nearly all of) `wall_ns`, and per shard
/// `queue_wait + busy ≤ dispatch`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTiming {
    /// Whole run, capacity check to merged report.
    pub wall_ns: u64,
    /// Router assignment + instance restriction.
    pub partition_ns: u64,
    /// Building the per-shard work units.
    pub batch_enqueue_ns: u64,
    /// The parallel section: pool start to last shard done.
    pub dispatch_ns: u64,
    /// Collecting shard outcomes and merging the ledger + manifest.
    pub fan_in_ns: u64,
    /// Per shard: pool start → a worker claimed the unit.
    pub queue_wait_ns: Vec<u64>,
    /// Per shard: claim → shard complete (engine run + validation + report).
    pub busy_ns: Vec<u64>,
}

impl ClusterTiming {
    /// Driver-side accounted time: the sequential stages end to end.
    pub fn accounted_ns(&self) -> u64 {
        self.partition_ns + self.batch_enqueue_ns + self.dispatch_ns + self.fan_in_ns
    }
}

/// Span capture of one traced cluster run: the driver lane, one recorder
/// per shard (in shard order, merged lock-free by collection), and the
/// derived [`ClusterTiming`]. All lanes share one epoch.
#[derive(Debug, Clone)]
pub struct ClusterTrace<R> {
    /// Driver-lane spans: `partition`/`route`, `batch_enqueue`,
    /// `dispatch`, `fan_in`/`manifest_merge`.
    pub driver: SpanCollector,
    /// Per-shard recorders, indexed by shard. Each holds the shard's
    /// `queue_wait` and `shard_busy` spans with the engine's
    /// `arrival`/`decide`/`place`/`departure` spans nested inside.
    pub shards: Vec<R>,
    /// Exact stage/utilization attribution.
    pub timing: ClusterTiming,
}

/// Aggregate SLA ledger of a fault-injected cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterResilientReport {
    /// Dispatcher name.
    pub algorithm: String,
    /// Router name.
    pub router: String,
    /// Shard count.
    pub shards: usize,
    /// Sum of shard session totals (= the instance size).
    pub sessions_total: u64,
    /// Sessions served to completion, across shards.
    pub sessions_served: u64,
    /// Sessions dropped at admission, across shards.
    pub sessions_dropped: u64,
    /// Sessions lost to crashes, across shards.
    pub sessions_lost: u64,
    /// Exact sum of shard busy times.
    pub busy_ticks: u128,
    /// Exact sum of shard billed times.
    pub billed_ticks: u128,
    /// Exact sum of shard bills, in cents.
    pub cost_cents: Ratio,
}

impl ClusterResilientReport {
    /// The conservation law, cluster-wide: every session is served,
    /// dropped or lost — nothing double-counted, nothing vanishes.
    pub fn conserved(&self) -> bool {
        self.sessions_served + self.sessions_dropped + self.sessions_lost == self.sessions_total
    }
}

/// A finished fault-injected cluster run.
#[derive(Debug, Clone)]
pub struct ClusterResilientRun {
    /// Aggregate SLA ledger.
    pub report: ClusterResilientReport,
    /// Per-shard ledgers, indexed by shard.
    pub shards: Vec<ResilientReport>,
    /// Router assignment, item → shard.
    pub assignment: Vec<usize>,
}

/// The scale-out dispatch layer: a [`GamingSystem`] per shard behind a
/// [`Router`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterEngine {
    /// The per-shard system (server flavor + billing granularity).
    pub system: GamingSystem,
    /// Cluster shape.
    pub config: ClusterConfig,
}

impl ClusterEngine {
    /// A cluster of `config` shape over `system`.
    pub fn new(system: GamingSystem, config: ClusterConfig) -> ClusterEngine {
        ClusterEngine { system, config }
    }

    /// Partition `requests` by the configured router: one restricted
    /// instance + back-map per shard, plus the item → shard assignment.
    /// Restriction preserves arrival order and renumbers densely, so each
    /// shard is a well-formed instance in its own right.
    pub fn partition(&self, requests: &Instance) -> (Vec<(Instance, Vec<ItemId>)>, Vec<usize>) {
        let assignment = self.config.router.assign(requests, self.config.shards);
        let parts = (0..self.config.shards)
            .map(|s| requests.restrict(|it| assignment[it.id.index()] == s))
            .collect();
        (parts, assignment)
    }

    /// Run the cluster without instrumentation.
    pub fn run(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
    ) -> Result<ClusterRun, DispatchError> {
        self.run_probed(requests, factory, |_| NoProbe)
            .map(|(run, _)| run)
    }

    /// Run the cluster with one probe per shard. `make_probe(shard)` is
    /// called in shard order before the pool starts; the probes come back
    /// in the same order for draining (event logs, journal sealing).
    ///
    /// # Errors
    /// [`DispatchError::CapacityMismatch`] when the workload was generated
    /// against a different `W` than the shard server flavor provides.
    pub fn run_probed<P, F>(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        make_probe: F,
    ) -> Result<(ClusterRun, Vec<P>), DispatchError>
    where
        P: Probe + Send,
        F: FnMut(usize) -> P,
    {
        self.run_traced(requests, factory, make_probe, |_, _| NoSpans)
            .map(|(run, probes, _trace)| (run, probes))
    }

    /// [`run_probed`](Self::run_probed) plus one [`SpanRecorder`] per shard
    /// and a driver-lane recorder, all sharing one epoch so their
    /// timestamps compose into a single timeline (Chrome trace, stage
    /// table). `make_spans(shard, epoch)` is called in shard order before
    /// the pool starts; recorders come back in [`ClusterTrace::shards`] in
    /// the same order — merged at fan-in time, lock-free by construction
    /// because each lane is single-writer.
    ///
    /// The driver lane records `partition`/`route`, `batch_enqueue`,
    /// `dispatch` and `fan_in`/`manifest_merge`. Each shard recorder is
    /// entered into its `queue_wait` span *before* the pool starts and
    /// flipped to `shard_busy` the moment a worker claims the unit, so
    /// pool contention is attributed, not lost. Pass `|_, _| NoSpans` to
    /// get the zero-cost path — [`run_probed`](Self::run_probed) is
    /// exactly that delegation.
    ///
    /// # Errors
    /// [`DispatchError::CapacityMismatch`] as for [`run`](Self::run).
    pub fn run_traced<P, R, FP, FR>(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        mut make_probe: FP,
        mut make_spans: FR,
    ) -> Result<(ClusterRun, Vec<P>, ClusterTrace<R>), DispatchError>
    where
        P: Probe + Send,
        R: SpanRecorder + Send,
        FP: FnMut(usize) -> P,
        FR: FnMut(usize, Instant) -> R,
    {
        self.check_capacity(requests)?;
        let epoch = Instant::now();
        let mut driver = SpanCollector::with_epoch(epoch, DRIVER_LANE);

        driver.enter(stage::PARTITION);
        driver.enter(stage::ROUTE);
        let assignment = self.config.router.assign(requests, self.config.shards);
        driver.exit();
        let parts: Vec<(Instance, Vec<ItemId>)> = (0..self.config.shards)
            .map(|s| requests.restrict(|it| assignment[it.id.index()] == s))
            .collect();
        driver.exit();

        driver.enter(stage::BATCH_ENQUEUE);
        let mut units: Vec<(Instance, Vec<ItemId>, P, R)> = parts
            .into_iter()
            .enumerate()
            .map(|(s, (inst, back))| (inst, back, make_probe(s), make_spans(s, epoch)))
            .collect();
        driver.exit();

        // Open every shard's queue-wait span on the driver thread, before
        // the pool exists: the gap until a worker claims the unit is real
        // contention and must land in the shard's own lane.
        let dispatch_start = elapsed_ns(epoch);
        for unit in &mut units {
            unit.3.enter(stage::QUEUE_WAIT);
        }
        driver.enter(stage::DISPATCH);
        let system = self.system;
        let batch = self.config.batch;
        let outcomes = run_pool(
            units,
            self.config.workers(),
            |shard, (inst, back, mut probe, mut spans)| {
                let claim_ns = elapsed_ns(epoch);
                spans.exit(); // queue_wait ends the moment the worker claims
                spans.enter(stage::SHARD_BUSY);
                let mut sel = factory.build();
                let (report, trace) =
                    run_shard_traced(&system, &inst, &mut *sel, &mut probe, &mut spans, batch);
                spans.exit();
                let done_ns = elapsed_ns(epoch);
                (
                    ShardRun {
                        shard,
                        report,
                        trace,
                        back,
                    },
                    probe,
                    spans,
                    claim_ns,
                    done_ns,
                )
            },
        );
        driver.exit();

        let n = outcomes.len();
        let mut shards = Vec::with_capacity(n);
        let mut probes = Vec::with_capacity(n);
        let mut recorders = Vec::with_capacity(n);
        let mut queue_wait_ns = Vec::with_capacity(n);
        let mut busy_ns = Vec::with_capacity(n);
        for (shard, probe, spans, claim_ns, done_ns) in outcomes {
            queue_wait_ns.push(claim_ns.saturating_sub(dispatch_start));
            busy_ns.push(done_ns.saturating_sub(claim_ns));
            shards.push(shard);
            probes.push(probe);
            recorders.push(spans);
        }

        driver.enter(stage::FAN_IN);
        let report = self.aggregate(requests, &shards, epoch.elapsed(), &mut driver);
        driver.exit();

        let stage_ns = |name: &'static str| -> u64 {
            driver
                .spans()
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.dur_ns)
                .sum()
        };
        let timing = ClusterTiming {
            wall_ns: elapsed_ns(epoch),
            partition_ns: stage_ns(stage::PARTITION),
            batch_enqueue_ns: stage_ns(stage::BATCH_ENQUEUE),
            dispatch_ns: stage_ns(stage::DISPATCH),
            fan_in_ns: stage_ns(stage::FAN_IN),
            queue_wait_ns,
            busy_ns,
        };
        Ok((
            ClusterRun {
                report,
                shards,
                assignment,
            },
            probes,
            ClusterTrace {
                driver,
                shards: recorders,
                timing,
            },
        ))
    }

    /// Run the cluster under per-shard fault plans through
    /// [`ResilientSystem`]; `plans` must hold one plan per shard.
    ///
    /// # Errors
    /// [`DispatchError::CapacityMismatch`] as for [`run`](Self::run).
    ///
    /// # Panics
    /// Panics when `plans.len()` differs from the shard count.
    pub fn run_resilient(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        plans: &[FaultPlan],
    ) -> Result<ClusterResilientRun, DispatchError> {
        self.run_resilient_probed(requests, factory, plans, |_| NoProbe)
            .map(|(run, _)| run)
    }

    /// [`run_resilient`](Self::run_resilient) with one probe per shard.
    pub fn run_resilient_probed<P, F>(
        &self,
        requests: &Instance,
        factory: &SelectorFactory,
        plans: &[FaultPlan],
        mut make_probe: F,
    ) -> Result<(ClusterResilientRun, Vec<P>), DispatchError>
    where
        P: Probe + Send,
        F: FnMut(usize) -> P,
    {
        assert_eq!(
            plans.len(),
            self.config.shards,
            "need exactly one fault plan per shard"
        );
        self.check_capacity(requests)?;
        let (parts, assignment) = self.partition(requests);
        let units: Vec<(Instance, FaultPlan, P)> = parts
            .into_iter()
            .enumerate()
            .map(|(s, (inst, _back))| (inst, plans[s].clone(), make_probe(s)))
            .collect();
        let system = self.system;
        let results = run_pool(
            units,
            self.config.workers(),
            |_shard, (inst, plan, mut probe)| {
                let mut sel = factory.build();
                let resilient = ResilientSystem::new(system, plan);
                let report = resilient
                    .run_probed(&inst, &mut *sel, &mut probe)
                    .expect("capacity was checked at the cluster boundary");
                (report, probe)
            },
        );
        let mut shards = Vec::with_capacity(results.len());
        let mut probes = Vec::with_capacity(results.len());
        for (report, probe) in results {
            shards.push(report);
            probes.push(probe);
        }
        let algorithm = shards
            .first()
            .map(|r| r.algorithm.clone())
            .unwrap_or_else(|| factory.name().to_string());
        let report = ClusterResilientReport {
            algorithm,
            router: self.config.router.name().to_string(),
            shards: self.config.shards,
            sessions_total: shards.iter().map(|r| r.sessions_total).sum(),
            sessions_served: shards.iter().map(|r| r.sessions_served).sum(),
            sessions_dropped: shards.iter().map(|r| r.sessions_dropped).sum(),
            sessions_lost: shards.iter().map(|r| r.sessions_lost).sum(),
            busy_ticks: shards.iter().map(|r| r.busy_ticks).sum(),
            billed_ticks: shards.iter().map(|r| r.billed_ticks).sum(),
            cost_cents: shards.iter().fold(Ratio::ZERO, |acc, r| acc + r.cost_cents),
        };
        Ok((
            ClusterResilientRun {
                report,
                shards,
                assignment,
            },
            probes,
        ))
    }

    fn check_capacity(&self, requests: &Instance) -> Result<(), DispatchError> {
        if requests.capacity().raw() != self.system.server.gpu_capacity {
            return Err(DispatchError::CapacityMismatch {
                workload: requests.capacity().raw(),
                server: self.system.server.gpu_capacity,
            });
        }
        Ok(())
    }

    /// Merge shard reports into the exact aggregate. The manifest capture
    /// (full-stream digest) dominates fan-in cost, so it gets its own span.
    fn aggregate<R: SpanRecorder>(
        &self,
        requests: &Instance,
        shards: &[ShardRun],
        wall: std::time::Duration,
        spans: &mut R,
    ) -> ClusterReport {
        let busy: u128 = shards.iter().map(|s| s.report.busy_ticks).sum();
        let algorithm = shards
            .first()
            .map(|s| s.report.algorithm.clone())
            .expect("a cluster has at least one shard");
        let utilization = if busy == 0 {
            Ratio::ZERO
        } else {
            Ratio::new(
                requests.total_demand(),
                requests.capacity().raw() as u128 * busy,
            )
        };
        spans.enter(stage::MANIFEST_MERGE);
        let manifest = RunManifest::capture(&algorithm, None, requests, wall).with_cost(busy);
        spans.exit();
        ClusterReport {
            algorithm: algorithm.clone(),
            router: self.config.router.name().to_string(),
            shards: self.config.shards,
            sessions_served: shards.iter().map(|s| s.report.sessions_served).sum(),
            servers_rented: shards.iter().map(|s| s.report.servers_rented).sum(),
            peak_servers: shards.iter().map(|s| s.report.peak_servers).sum(),
            busy_ticks: busy,
            billed_ticks: shards.iter().map(|s| s.report.billed_ticks).sum(),
            cost_cents: shards
                .iter()
                .fold(Ratio::ZERO, |acc, s| acc + s.report.cost_cents),
            utilization,
            manifest,
        }
    }
}

fn elapsed_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One shard's dispatch: the [`GamingSystem::run`] accounting, driven
/// through [`EngineRun`] in time-ordered bursts so ingestion can batch.
/// Validation and report construction mirror the plain system run exactly —
/// a 1-shard cluster must be byte-identical to it.
pub fn run_shard_probed<S, P>(
    system: &GamingSystem,
    requests: &Instance,
    dispatcher: &mut S,
    probe: &mut P,
    batch: BatchPolicy,
) -> (SystemReport, PackingTrace)
where
    S: dbp_core::packer::BinSelector + ?Sized,
    P: Probe,
{
    run_shard_traced(system, requests, dispatcher, probe, &mut NoSpans, batch)
}

/// [`run_shard_probed`] plus a [`SpanRecorder`]: the engine loop runs
/// through [`EngineRun::traced`] (per-event `arrival`/`decide`/`place`/
/// `departure` spans), and the shard's own validation and report
/// construction get `validate` / `report_build` spans. With [`NoSpans`]
/// this compiles down to exactly the probed path.
pub fn run_shard_traced<S, P, R>(
    system: &GamingSystem,
    requests: &Instance,
    dispatcher: &mut S,
    probe: &mut P,
    spans: &mut R,
    batch: BatchPolicy,
) -> (SystemReport, PackingTrace)
where
    S: dbp_core::packer::BinSelector + ?Sized,
    P: Probe,
    R: SpanRecorder,
{
    assert_eq!(
        requests.capacity().raw(),
        system.server.gpu_capacity,
        "capacity is checked at the cluster boundary"
    );
    let started = std::time::Instant::now();
    let burst = batch.burst();
    let mut run = EngineRun::traced(requests, &mut *dispatcher, &mut *probe, &mut *spans);
    while !run.is_done() {
        for _ in 0..burst {
            if !run.step() {
                break;
            }
        }
    }
    let trace = run.finish();
    if R::ENABLED {
        spans.enter(stage::VALIDATE);
    }
    let errs = trace.validate(requests);
    if R::ENABLED {
        spans.exit();
    }
    if P::ENABLED {
        for err in &errs {
            probe.record(ProbeEvent::Violation {
                at: Tick(0),
                message: err.clone(),
            });
        }
    }
    assert!(
        errs.is_empty(),
        "trace validation failed for {}:\n{}",
        trace.algorithm,
        errs.join("\n")
    );
    if R::ENABLED {
        spans.enter(stage::REPORT_BUILD);
    }
    let wall = started.elapsed();
    let busy = trace.total_cost_ticks();
    let utilization = if busy == 0 {
        Ratio::ZERO
    } else {
        Ratio::new(
            requests.total_demand(),
            requests.capacity().raw() as u128 * busy,
        )
    };
    let report = SystemReport {
        algorithm: trace.algorithm.clone(),
        sessions_served: requests.len(),
        servers_rented: trace.bins_used(),
        peak_servers: trace.max_open_bins(),
        busy_ticks: busy,
        billed_ticks: billed_ticks(&trace, system.granularity),
        cost_cents: rental_cost_cents(&trace, system.server, system.granularity),
        utilization,
        manifest: Some(RunManifest::capture(&trace.algorithm, None, requests, wall)),
    };
    if R::ENABLED {
        spans.exit();
    }
    (report, trace)
}

/// The bounded worker pool `run_all` uses, as a library primitive: `n`
/// work units claimed by index from `workers` scoped threads, results
/// returned in unit order regardless of scheduling.
fn run_pool<U, T, F>(units: Vec<U>, workers: usize, work: F) -> Vec<T>
where
    U: Send,
    T: Send,
    F: Fn(usize, U) -> T + Sync,
{
    let n = units.len();
    let slots: Vec<Mutex<Option<U>>> = units.into_iter().map(|u| Mutex::new(Some(u))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.clamp(1, n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let unit = slots[i]
                    .lock()
                    .expect("poisoned work slot")
                    .take()
                    .expect("work unit claimed twice");
                let out = work(i, unit);
                *results[i].lock().expect("poisoned result slot") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("poisoned result slot")
                .expect("worker pool lost a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::algorithms::FirstFit;
    use dbp_core::instance::InstanceBuilder;
    use dbp_workloads::{generate, CloudGamingConfig};

    fn workload(seed: u64) -> Instance {
        generate(&CloudGamingConfig {
            horizon: 1800,
            seed,
            ..CloudGamingConfig::default()
        })
    }

    fn ff_factory() -> SelectorFactory {
        SelectorFactory::new("FF", || Box::new(FirstFit::new()))
    }

    #[test]
    fn shard_reports_sum_to_the_aggregate_exactly() {
        let inst = workload(11);
        for router in Router::ALL {
            let engine =
                ClusterEngine::new(GamingSystem::paper_model(), ClusterConfig::new(4, router));
            let run = engine.run(&inst, &ff_factory()).unwrap();
            let busy: u128 = run.shards.iter().map(|s| s.report.busy_ticks).sum();
            assert_eq!(run.report.busy_ticks, busy, "{}", router.name());
            let cents = run
                .shards
                .iter()
                .fold(Ratio::ZERO, |acc, s| acc + s.report.cost_cents);
            assert_eq!(run.report.cost_cents, cents, "{}", router.name());
            assert_eq!(run.report.sessions_served, inst.len(), "{}", router.name());
        }
    }

    #[test]
    fn manifest_digest_is_router_and_shard_count_independent() {
        let inst = workload(12);
        let mut digests = Vec::new();
        for router in Router::ALL {
            for shards in [1, 2, 8] {
                let engine = ClusterEngine::new(
                    GamingSystem::paper_model(),
                    ClusterConfig::new(shards, router),
                );
                let run = engine.run(&inst, &ff_factory()).unwrap();
                digests.push(run.report.manifest.instance_digest.clone());
            }
        }
        digests.dedup();
        assert_eq!(digests.len(), 1, "combined digest must be the stream's");
        assert_eq!(digests[0], dbp_obs::manifest::instance_digest(&inst));
    }

    #[test]
    fn capacity_mismatch_is_rejected_at_the_boundary() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 3);
        let inst = b.build().unwrap();
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(2, Router::HashByItem),
        );
        assert!(matches!(
            engine.run(&inst, &ff_factory()),
            Err(DispatchError::CapacityMismatch { .. })
        ));
    }

    #[test]
    fn more_shards_than_items_leaves_empty_shards_sound() {
        let mut b = InstanceBuilder::new(1000);
        b.add(0, 10, 100);
        b.add(2, 8, 200);
        let inst = b.build().unwrap();
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(8, Router::HashByItem),
        );
        let run = engine.run(&inst, &ff_factory()).unwrap();
        assert_eq!(run.report.sessions_served, 2);
        let nonempty = run.shards.iter().filter(|s| !s.back.is_empty()).count();
        assert!(nonempty <= 2);
        assert!(run.report.busy_ticks > 0);
    }

    #[test]
    fn traced_run_matches_probed_run_and_accounts_the_wall() {
        let inst = workload(21);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(4, Router::HashByItem),
        );
        let (plain, _) = engine
            .run_probed(&inst, &ff_factory(), |_| NoProbe)
            .unwrap();
        let (traced, _, trace) = engine
            .run_traced(
                &inst,
                &ff_factory(),
                |_| NoProbe,
                |s, e| SpanCollector::with_epoch(e, s as u32),
            )
            .unwrap();

        // Spans never touch the ledger.
        assert_eq!(traced.report.busy_ticks, plain.report.busy_ticks);
        assert_eq!(traced.report.cost_cents, plain.report.cost_cents);
        assert_eq!(traced.report.sessions_served, plain.report.sessions_served);
        for (a, b) in traced.shards.iter().zip(plain.shards.iter()) {
            assert_eq!(a.trace, b.trace);
        }

        // Exact timing: the sequential driver stages fit inside the wall,
        // and every shard's queue-wait + busy fits inside dispatch.
        let t = &trace.timing;
        assert!(t.accounted_ns() <= t.wall_ns);
        assert!(t.dispatch_ns > 0);
        assert_eq!(t.queue_wait_ns.len(), 4);
        assert_eq!(t.busy_ns.len(), 4);
        for s in 0..4 {
            assert!(t.queue_wait_ns[s] + t.busy_ns[s] <= t.wall_ns);
        }

        // Every shard lane starts with queue_wait then shard_busy, with
        // the engine's spans nested under shard_busy.
        for lane in &trace.shards {
            let shape = lane.shape();
            assert_eq!(
                shape[0],
                (stage::QUEUE_WAIT, dbp_core::span::SpanEvent::ROOT)
            );
            assert_eq!(
                shape[1],
                (stage::SHARD_BUSY, dbp_core::span::SpanEvent::ROOT)
            );
        }
    }

    #[test]
    fn driver_lane_records_the_pipeline_stages_in_order() {
        let inst = workload(22);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(2, Router::LeastLoaded),
        );
        let (_, _, trace) = engine
            .run_traced(&inst, &ff_factory(), |_| NoProbe, |_, _| NoSpans)
            .unwrap();
        let shape = trace.driver.shape();
        use dbp_core::span::SpanEvent;
        const ROOT: u32 = SpanEvent::ROOT;
        assert_eq!(
            shape,
            vec![
                (stage::PARTITION, ROOT),
                (stage::ROUTE, 0),
                (stage::BATCH_ENQUEUE, ROOT),
                (stage::DISPATCH, ROOT),
                (stage::FAN_IN, ROOT),
                (stage::MANIFEST_MERGE, 4),
            ]
        );
    }

    #[test]
    fn shard_span_shapes_are_deterministic_for_a_fixed_seed() {
        let inst = workload(23);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(3, Router::HashByItem),
        );
        let run = |_: &()| {
            let (_, _, trace) = engine
                .run_traced(
                    &inst,
                    &ff_factory(),
                    |_| NoProbe,
                    |s, e| SpanCollector::with_epoch(e, s as u32),
                )
                .unwrap();
            trace
                .shards
                .iter()
                .map(|lane| lane.shape())
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(&()),
            run(&()),
            "span structure must not depend on timing"
        );
    }

    #[test]
    fn resilient_ledger_is_conserved_across_shards() {
        let inst = workload(13);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(3, Router::LeastLoaded),
        );
        let plans: Vec<FaultPlan> = (0..3)
            .map(|s| FaultPlan::from_seed(100 + s, 1800))
            .collect();
        let run = engine.run_resilient(&inst, &ff_factory(), &plans).unwrap();
        assert!(run.report.conserved());
        assert_eq!(run.report.sessions_total, inst.len() as u64);
        for shard in &run.shards {
            assert!(shard.conserved());
        }
    }

    #[test]
    fn zero_fault_plans_reproduce_the_plain_cluster_bill() {
        let inst = workload(14);
        let engine = ClusterEngine::new(
            GamingSystem::paper_model(),
            ClusterConfig::new(4, Router::HashByItem),
        );
        let plain = engine.run(&inst, &ff_factory()).unwrap();
        let plans = vec![FaultPlan::none(); 4];
        let faulted = engine.run_resilient(&inst, &ff_factory(), &plans).unwrap();
        assert_eq!(faulted.report.busy_ticks, plain.report.busy_ticks);
        assert_eq!(faulted.report.cost_cents, plain.report.cost_cents);
        assert_eq!(faulted.report.sessions_served, inst.len() as u64);
    }
}
