//! Cooperative cancellation for cluster runs.
//!
//! The CLI (or any embedder) registers a process-wide latch — typically
//! one raised from a SIGINT/SIGTERM handler — and the shard burst loop
//! polls it between bursts. A raised latch makes every shard stop stepping
//! promptly; the run surfaces as
//! [`ClusterError::Interrupted`](crate::engine::ClusterError::Interrupted)
//! and every probe (journals included) is dropped through its normal
//! flush-and-fsync path, so an interrupted journaled run is always
//! `dbp recover`-clean.
//!
//! With no latch registered (the default), the check is a null-pointer
//! load and cluster runs behave exactly as before.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

static FLAG: AtomicPtr<AtomicBool> = AtomicPtr::new(ptr::null_mut());

/// Register the latch the shard loops poll. The flag must be `'static`
/// (signal handlers demand that anyway). Registering replaces any
/// previous latch.
pub fn set_flag(flag: &'static AtomicBool) {
    FLAG.store(
        flag as *const AtomicBool as *mut AtomicBool,
        Ordering::SeqCst,
    );
}

/// Has the registered latch been raised? `false` when none is registered.
pub fn requested() -> bool {
    let p = FLAG.load(Ordering::SeqCst);
    // SAFETY: the pointer is either null or came from a `&'static
    // AtomicBool` in `set_flag`, so it is valid for the process lifetime.
    !p.is_null() && unsafe { &*p }.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_latch_reads_false() {
        // Other tests in this binary may register; this only checks the
        // read path does not crash and the default is quiet.
        let _ = requested();
    }

    #[test]
    fn registered_latch_round_trips() {
        static TEST_FLAG: AtomicBool = AtomicBool::new(false);
        set_flag(&TEST_FLAG);
        assert!(!requested());
        TEST_FLAG.store(true, Ordering::SeqCst);
        assert!(requested());
        TEST_FLAG.store(false, Ordering::SeqCst);
        assert!(!requested());
        FLAG.store(std::ptr::null_mut(), Ordering::SeqCst);
    }
}
