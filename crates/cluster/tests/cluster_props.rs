//! Property tests for the cluster layer: router determinism (same seed ⇒
//! identical shard assignment) and batching transparency (batched
//! ingestion is decision-for-decision identical to event-at-a-time
//! feeding for FF/BF/MFF/IFF/IBF across batch sizes 1, 7, 64 and
//! whole-stream).

use dbp_cloudsim::{GamingSystem, Granularity, ServerType};
use dbp_cluster::{run_shard_probed, BatchPolicy, ClusterConfig, ClusterEngine, Router};
use dbp_core::algorithms::{BestFit, FirstFit, IndexedBestFit, IndexedFirstFit, ModifiedFirstFit};
use dbp_core::bin::{BinId, BinTag, OpenBinView};
use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::item::{ArrivingItem, Size};
use dbp_core::packer::{BinSelector, Decision, SelectorFactory};
use dbp_obs::export::events_to_jsonl;
use dbp_obs::EventLog;
use dbp_workloads::{generate, CloudGamingConfig};
use proptest::prelude::*;

/// Forwards everything to the wrapped selector while recording the
/// decision sequence (same shape as `tests/indexed_equivalence.rs`).
struct Recording<S> {
    inner: S,
    decisions: Vec<Decision>,
}

impl<S: BinSelector> Recording<S> {
    fn new(inner: S) -> Recording<S> {
        Recording {
            inner,
            decisions: Vec::new(),
        }
    }
}

impl<S: BinSelector> BinSelector for Recording<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision {
        let d = self.inner.select(bins, item, capacity);
        self.decisions.push(d);
        d
    }
    fn needs_views(&self) -> bool {
        self.inner.needs_views()
    }
    fn on_bin_opened(&mut self, bin: BinId, tag: BinTag, level: Size) {
        self.inner.on_bin_opened(bin, tag, level);
    }
    fn on_item_placed(&mut self, bin: BinId, level: Size) {
        self.inner.on_item_placed(bin, level);
    }
    fn on_item_departed(&mut self, bin: BinId, level: Size) {
        self.inner.on_item_departed(bin, level);
    }
    fn on_bin_closed(&mut self, bin: BinId) {
        self.inner.on_bin_closed(bin);
    }
    fn is_any_fit(&self) -> bool {
        self.inner.is_any_fit()
    }
}

/// Arbitrary churn-heavy instances over `W = 100`.
fn instances(max_items: usize) -> impl Strategy<Value = Instance> {
    let item = (0u64..300, 1u64..150, 1u64..=100);
    proptest::collection::vec(item, 1..max_items).prop_map(|raw| {
        let mut b = InstanceBuilder::new(100);
        for (a, len, s) in raw {
            b.add(a, a + len, s);
        }
        b.build().expect("generated instance is valid")
    })
}

/// A per-shard system matching the test instances' capacity.
fn small_system() -> GamingSystem {
    GamingSystem {
        server: ServerType {
            gpu_capacity: 100,
            ..ServerType::default_gpu_vm()
        },
        granularity: Granularity::PerTick,
    }
}

/// The batching-transparency check for one selector constructor: every
/// batch policy must reproduce the per-event decision sequence, trace,
/// cost and JSONL event stream exactly.
fn assert_batching_transparent<S, M>(inst: &Instance, make: M) -> proptest::TestCaseResult
where
    S: BinSelector,
    M: Fn() -> S,
{
    let system = small_system();
    let mut baseline = Recording::new(make());
    let mut baseline_log = EventLog::new();
    let (base_report, base_trace) = run_shard_probed(
        &system,
        inst,
        &mut baseline,
        &mut baseline_log,
        BatchPolicy::PerEvent,
    );
    for policy in [
        BatchPolicy::Chunks(1),
        BatchPolicy::Chunks(7),
        BatchPolicy::Chunks(64),
        BatchPolicy::WholeStream,
    ] {
        let mut batched = Recording::new(make());
        let mut log = EventLog::new();
        let (report, trace) = run_shard_probed(&system, inst, &mut batched, &mut log, policy);
        prop_assert_eq!(&baseline.decisions, &batched.decisions, "{:?}", policy);
        prop_assert_eq!(&base_trace, &trace, "{:?}", policy);
        prop_assert_eq!(base_report.busy_ticks, report.busy_ticks, "{:?}", policy);
        prop_assert_eq!(&base_report.cost_cents, &report.cost_cents, "{:?}", policy);
        prop_assert_eq!(
            events_to_jsonl(baseline_log.events()),
            events_to_jsonl(log.events()),
            "{:?}",
            policy
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batching_is_transparent_for_ff(inst in instances(60)) {
        assert_batching_transparent(&inst, FirstFit::new)?;
    }

    #[test]
    fn batching_is_transparent_for_bf(inst in instances(60)) {
        assert_batching_transparent(&inst, BestFit::new)?;
    }

    #[test]
    fn batching_is_transparent_for_mff(inst in instances(60)) {
        assert_batching_transparent(&inst, || ModifiedFirstFit::new(8))?;
    }

    #[test]
    fn batching_is_transparent_for_indexed_ff(inst in instances(60)) {
        assert_batching_transparent(&inst, IndexedFirstFit::new)?;
    }

    #[test]
    fn batching_is_transparent_for_indexed_bf(inst in instances(60)) {
        assert_batching_transparent(&inst, IndexedBestFit::new)?;
    }

    /// Same seed ⇒ identical shard assignment, for every router and shard
    /// count: routing is a pure function of the (deterministic) workload.
    #[test]
    fn routers_are_deterministic(seed in 0u64..1000, shards in 1usize..=8) {
        let cfg = CloudGamingConfig { horizon: 900, seed, ..CloudGamingConfig::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(&a, &b);
        for router in Router::ALL {
            prop_assert_eq!(
                router.assign(&a, shards),
                router.assign(&b, shards),
                "{}", router.name()
            );
        }
    }

    /// The partition is a true partition: each original item appears in
    /// exactly one shard's back-map, and shard instances preserve sizes
    /// and intervals.
    #[test]
    fn partition_covers_every_item_exactly_once(
        inst in instances(60),
        shards in 1usize..=8,
    ) {
        for router in Router::ALL {
            let engine = ClusterEngine::new(
                small_system(),
                ClusterConfig::new(shards, router).unwrap(),
            );
            let (parts, assignment) = engine.partition(&inst);
            prop_assert_eq!(assignment.len(), inst.len());
            let mut seen = vec![0u32; inst.len()];
            for (s, (sub, back)) in parts.iter().enumerate() {
                prop_assert_eq!(sub.len(), back.len());
                for (local, &orig) in back.iter().enumerate() {
                    seen[orig.index()] += 1;
                    prop_assert_eq!(assignment[orig.index()], s);
                    let a = sub.item(dbp_core::item::ItemId(local as u32));
                    let b = inst.item(orig);
                    prop_assert_eq!(a.size, b.size);
                    prop_assert_eq!(a.arrival, b.arrival);
                    prop_assert_eq!(a.departure, b.departure);
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1), "{}", router.name());
        }
    }

    /// Cluster cost conservation on arbitrary instances: the aggregate is
    /// the exact shard sum and every item is served exactly once.
    #[test]
    fn cluster_conserves_cost_and_items(
        inst in instances(50),
        shards in 1usize..=4,
    ) {
        let factory = SelectorFactory::new("FF", || Box::new(FirstFit::new()));
        for router in Router::ALL {
            let engine = ClusterEngine::new(
                small_system(),
                ClusterConfig::new(shards, router).unwrap(),
            );
            let run = engine.run(&inst, &factory).unwrap();
            let busy: u128 = run.shards.iter().map(|s| s.trace.total_cost_ticks()).sum();
            prop_assert_eq!(run.report.busy_ticks, busy);
            let served: usize = run.shards.iter().map(|s| s.trace.assignment.len()).sum();
            prop_assert_eq!(served, inst.len());
        }
    }
}
