//! Cooperative-cancellation test, in its own binary on purpose: the
//! cancel latch is process-global, so raising it here must not be able
//! to poison unrelated cluster tests running in another test binary.
//!
//! Pins the satellite contract of the streaming-core PR: a raised latch
//! makes `run_probed` surface [`ClusterError::Interrupted`] instead of a
//! fabricated report, the journal probes still seal a readable prefix
//! (the `JournalWriter` drop-path fsync), and lowering the latch restores
//! normal runs byte-for-byte.

use dbp_cloudsim::{GamingSystem, Granularity, ServerType};
use dbp_cluster::{ClusterConfig, ClusterEngine, ClusterError, Router};
use dbp_core::algorithms::FirstFit;
use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::packer::SelectorFactory;
use dbp_obs::journal::{read_journal, FsyncPolicy, JournalProbe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

static LATCH: AtomicBool = AtomicBool::new(false);

fn system() -> GamingSystem {
    GamingSystem {
        server: ServerType {
            gpu_capacity: 100,
            ..ServerType::default_gpu_vm()
        },
        granularity: Granularity::PerTick,
    }
}

fn churny_instance(n: u64) -> Instance {
    let mut b = InstanceBuilder::new(100);
    for i in 0..n {
        b.add(i, i + 7 + (i % 13), 1 + (i * 37) % 60);
    }
    b.build().expect("valid instance")
}

fn temp_journal(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dbp-interrupt-{tag}-{}", std::process::id()));
    p
}

#[test]
fn raised_latch_interrupts_and_seals_journal_prefixes() {
    dbp_cluster::cancel::set_flag(&LATCH);
    let engine = ClusterEngine::new(system(), ClusterConfig::new(2, Router::HashByItem).unwrap());
    let factory = SelectorFactory::new("FF", || Box::new(FirstFit::new()));
    let inst = churny_instance(400);
    let paths: Vec<PathBuf> = (0..2).map(|s| temp_journal(&format!("s{s}"))).collect();

    // Latch already raised before the run starts: every shard stops at its
    // first poll and the run reports Interrupted — never a zeroed report.
    LATCH.store(true, Ordering::SeqCst);
    let journal_paths = paths.clone();
    let err = engine
        .run_probed(&inst, &factory, |s| {
            JournalProbe::create(&journal_paths[s], FsyncPolicy::Never).expect("journal opens")
        })
        .expect_err("a raised latch must interrupt the run");
    assert!(
        matches!(err, ClusterError::Interrupted),
        "unexpected error: {err}"
    );
    assert!(err.to_string().contains("interrupted"), "{err}");

    // The probes were dropped on the error path without `finish`; the
    // writer's drop-path fsync still leaves a readable (possibly empty)
    // journal prefix — exactly what `dbp recover` needs after ^C.
    for p in &paths {
        let contents = read_journal(p).expect("interrupted journal stays readable");
        assert!(contents.torn.is_none(), "drop-path seal must not tear");
        std::fs::remove_file(p).ok();
    }

    // Lowering the latch restores normal service, same engine, same input.
    LATCH.store(false, Ordering::SeqCst);
    let run = engine.run(&inst, &factory).expect("run completes");
    assert_eq!(run.report.sessions_served, inst.len());
}
