//! Chaos suite for the self-healing cluster: shards are killed mid-run at
//! every phase of their stream, and the engine must contain each death,
//! resurrect from the journal where the budget allows, reroute only future
//! arrivals where it does not, and keep the extended SLA ledger conserved
//! — all without ever aborting the process.

use dbp_cloudsim::{FaultPlan, GamingSystem, RetryPolicy};
use dbp_cluster::{
    ClusterConfig, ClusterEngine, KillPoint, RestartPolicy, Router, ShardFaultPlan, ShardHealth,
    ShardKill,
};
use dbp_core::algorithms::FirstFit;
use dbp_core::instance::Instance;
use dbp_core::packer::SelectorFactory;
use dbp_core::probe::ProbeEvent;
use dbp_obs::export::events_to_jsonl;
use dbp_obs::prelude::instance_digest;
use dbp_obs::EventLog;
use dbp_workloads::{generate, CloudGamingConfig};
use proptest::prelude::*;

fn workload(seed: u64) -> Instance {
    generate(&CloudGamingConfig {
        horizon: 900,
        seed,
        ..CloudGamingConfig::default()
    })
}

fn ff_factory() -> SelectorFactory {
    SelectorFactory::new("FF", || Box::new(FirstFit::new()))
}

fn temp_journal(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dbp-chaos-{tag}-{}", std::process::id()));
    p
}

fn engine(shards: usize, router: Router) -> ClusterEngine {
    ClusterEngine::new(
        GamingSystem::paper_model(),
        ClusterConfig::new(shards, router).unwrap(),
    )
}

/// Number of engine events the unkilled run of shard `s` emits, so kill
/// offsets can be aimed at exact phases of the stream.
fn shard_event_counts(eng: &ClusterEngine, inst: &Instance, factory: &SelectorFactory) -> Vec<u64> {
    let (run, probes) = eng.run_probed(inst, factory, |_| EventLog::new()).unwrap();
    let _ = run;
    probes.into_iter().map(|log| log.len() as u64).collect()
}

/// Tentpole acceptance: a 4-shard run with a kill landing early, mid, and
/// late in a shard's stream (one shard left untouched) completes without
/// aborting, heals every kill inside the default budget, and conserves
/// the extended ledger.
#[test]
fn shard_death_at_every_phase_is_healed_and_conserved() {
    let inst = workload(11);
    let eng = engine(4, Router::HashByItem);
    let factory = ff_factory();
    let counts = shard_event_counts(&eng, &inst, &factory);
    assert!(
        counts.iter().all(|&c| c > 4),
        "fixture too small: {counts:?}"
    );

    let plan = ShardFaultPlan {
        seed: 0,
        kills: vec![
            ShardKill {
                shard: 0,
                at: KillPoint::Event(1), // earliest possible: one event in
            },
            ShardKill {
                shard: 1,
                at: KillPoint::Event(counts[1] / 2), // mid-stream
            },
            ShardKill {
                shard: 2,
                at: KillPoint::Event(counts[2] - 1), // one event before done
            },
        ],
        restart: RestartPolicy::default(),
    };
    let healed = eng.run_self_healing(&inst, &factory, &plan).unwrap();
    let r = &healed.report;
    assert!(r.conserved(), "extended ledger must conserve: {r:?}");
    assert_eq!(r.sessions_total, inst.len() as u64);
    assert_eq!(r.sessions_served, inst.len() as u64);
    assert_eq!(
        (r.sessions_lost, r.sessions_dropped, r.sessions_rerouted),
        (0, 0, 0)
    );
    assert_eq!(r.shard_kills, 3);
    assert_eq!(r.shard_restarts, 3);
    assert!(r.shard_replayed_events > 0);
    assert_eq!(r.shards_lost, 0);
    for h in &healed.shards {
        assert!(h.conserved(), "shard {} ledger: {h:?}", h.shard);
        assert_eq!(h.health, ShardHealth::Up);
    }
    assert_eq!(healed.manifest.shard_restarts, Some(3));
    assert_eq!(healed.manifest.ledger_conserved, Some(true));
}

/// The resurrection invariant at cluster scope: when every kill heals,
/// the delivered event stream minus the fault markers is byte-identical
/// to the zero-fault run's stream, and the bills match exactly.
#[test]
fn healed_run_stream_is_byte_identical_to_the_unkilled_run() {
    let inst = workload(12);
    let eng = engine(4, Router::LeastLoaded);
    let factory = ff_factory();
    let counts = shard_event_counts(&eng, &inst, &factory);
    assert!(
        counts.iter().all(|&c| c > 2),
        "fixture too small: {counts:?}"
    );

    let mut clean_log = EventLog::new();
    let clean = eng
        .run_self_healing_probed(&inst, &factory, &ShardFaultPlan::none(), &mut clean_log)
        .unwrap();

    let plan = ShardFaultPlan {
        seed: 0,
        kills: (0..4)
            .map(|s| ShardKill {
                shard: s,
                at: KillPoint::Event((counts[s as usize] / 2).max(1)),
            })
            .collect(),
        restart: RestartPolicy::default(),
    };
    let mut killed_log = EventLog::new();
    let killed = eng
        .run_self_healing_probed(&inst, &factory, &plan, &mut killed_log)
        .unwrap();

    let survivors: Vec<&ProbeEvent> = killed_log
        .events()
        .iter()
        .filter(|e| !e.is_fault_event())
        .collect();
    let originals: Vec<&ProbeEvent> = clean_log.events().iter().collect();
    assert_eq!(
        survivors, originals,
        "resurrected stream must be byte-identical"
    );
    assert_eq!(killed.report.sessions_served, clean.report.sessions_served);
    assert_eq!(killed.report.busy_ticks, clean.report.busy_ticks);
    assert_eq!(killed.report.cost_cents, clean.report.cost_cents);
    assert_eq!(killed.report.shard_restarts, 4);
    assert!(killed
        .shards
        .iter()
        .all(|h| h.health == ShardHealth::Up && h.restarts == 1));
}

/// A shard whose kills exhaust the restart budget goes Down; sessions
/// that had not arrived yet are rerouted to the healthy shards, in-flight
/// ones are billed lost, and the ledger still conserves.
#[test]
fn budget_exhaustion_reroutes_future_arrivals_and_conserves() {
    let inst = workload(13);
    let eng = engine(4, Router::HashByItem);
    let factory = ff_factory();
    let plan = ShardFaultPlan {
        seed: 0,
        kills: (0..3)
            .map(|_| ShardKill {
                shard: 1,
                at: KillPoint::Event(2),
            })
            .collect(),
        restart: RestartPolicy {
            max_restarts: 2,
            backoff: RetryPolicy::default(),
        },
    };
    let mut log = EventLog::new();
    let healed = eng
        .run_self_healing_probed(&inst, &factory, &plan, &mut log)
        .unwrap();
    let r = &healed.report;
    assert!(r.conserved(), "{r:?}");
    assert_eq!(r.shards_lost, 1);
    assert_eq!(r.shard_kills, 3);
    assert_eq!(r.shard_restarts, 2);
    assert!(r.sessions_rerouted > 0, "future arrivals must move: {r:?}");
    let dead = &healed.shards[1];
    assert_eq!(dead.health, ShardHealth::Down);
    assert!(dead.down_reason.is_some());
    assert!(dead.conserved());
    let hosted: u64 = healed.shards.iter().map(|h| h.sessions_rerouted_in).sum();
    assert_eq!(hosted, r.sessions_rerouted);
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e, ProbeEvent::ShardAbandoned { shard: 1, .. })));
}

/// With no healthy peer left, displaced sessions cannot move: every shard
/// dies, the remainder is dropped, and the ledger still conserves.
#[test]
fn total_cluster_death_drops_the_remainder_conserved() {
    let inst = workload(14);
    let eng = engine(2, Router::HashByItem);
    let factory = ff_factory();
    let plan = ShardFaultPlan {
        seed: 0,
        kills: (0..2)
            .flat_map(|s| {
                std::iter::repeat_n(
                    ShardKill {
                        shard: s,
                        at: KillPoint::Event(2),
                    },
                    2,
                )
            })
            .collect(),
        restart: RestartPolicy {
            max_restarts: 1,
            backoff: RetryPolicy::default(),
        },
    };
    let healed = eng.run_self_healing(&inst, &factory, &plan).unwrap();
    let r = &healed.report;
    assert!(r.conserved(), "{r:?}");
    assert_eq!(r.shards_lost, 2);
    assert_eq!(r.sessions_rerouted, 0, "no healthy host remains");
    assert!(r.sessions_dropped > 0);
    assert!(healed
        .shards
        .iter()
        .all(|h| h.health == ShardHealth::Down && h.conserved()));
    assert_eq!(healed.manifest.ledger_conserved, Some(true));
}

/// Tick-scheduled kills land between events; the triggering event dies
/// with the shard and must be re-emitted by the resurrection.
#[test]
fn tick_kills_are_healed_too() {
    let inst = workload(15);
    let eng = engine(2, Router::HashByItem);
    let factory = ff_factory();
    let plan = ShardFaultPlan {
        seed: 0,
        kills: vec![
            ShardKill {
                shard: 0,
                at: KillPoint::Tick(40),
            },
            ShardKill {
                shard: 1,
                at: KillPoint::Tick(200),
            },
        ],
        restart: RestartPolicy::default(),
    };
    let clean = eng
        .run_self_healing(&inst, &factory, &ShardFaultPlan::none())
        .unwrap();
    let healed = eng.run_self_healing(&inst, &factory, &plan).unwrap();
    assert!(healed.report.conserved());
    assert_eq!(healed.report.shard_kills, 2);
    assert_eq!(healed.report.shard_restarts, 2);
    assert_eq!(healed.report.sessions_served, clean.report.sessions_served);
    assert_eq!(healed.report.busy_ticks, clean.report.busy_ticks);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: seeded shard-kill schedules conserve the extended
    /// ledger for every router and 2/4/8 shards, whatever the kills hit.
    #[test]
    fn seeded_shard_kills_conserve_the_extended_ledger(
        seed in 0u64..500,
        shards_ix in 0usize..3,
    ) {
        let shards = [2usize, 4, 8][shards_ix];
        let inst = workload(seed % 7);
        let factory = ff_factory();
        for router in Router::ALL {
            let eng = engine(shards, router);
            let plan = ShardFaultPlan::from_seed(seed, shards, 40);
            let healed = eng.run_self_healing(&inst, &factory, &plan).unwrap();
            prop_assert!(healed.report.conserved(), "{}: {:?}", router.name(), healed.report);
            prop_assert_eq!(healed.report.sessions_total, inst.len() as u64);
            for h in &healed.shards {
                prop_assert!(h.conserved(), "{} shard {}", router.name(), h.shard);
            }
            let rerouted_in: u64 = healed.shards.iter().map(|h| h.sessions_rerouted_in).sum();
            prop_assert_eq!(rerouted_in, healed.report.sessions_rerouted);
            prop_assert_eq!(
                healed.manifest.ledger_conserved, Some(true)
            );
        }
    }

    /// Satellite (vector demands): killing one shard of a 3-dimensional
    /// cluster mid-stream leaves a clean format-v2 journal whose events
    /// are a byte-identical prefix of the unkilled shard's stream, and a
    /// deterministic resurrection (re-run of the same sub-stream)
    /// converges to the identical final trace with the per-dimension
    /// ledger conserved — for every router.
    #[test]
    fn vector_shard_kill_heals_byte_identically(
        seed in 0u64..200,
        shards_ix in 0usize..2,
        kill_frac in 1u32..100,
    ) {
        use dbp_core::demand::{Demand, VSize};
        use dbp_core::StreamingEngine;
        use dbp_core::algorithms::selector_for;
        use dbp_cluster::vector::assign_vec;
        use dbp_obs::journal::{read_journal_dims, FsyncPolicy, JournalProbe};

        let shards = [2usize, 4][shards_ix];
        let vinst = dbp_workloads::widen(&workload(seed % 7));
        for router in Router::ALL {
            let assignment = assign_vec(router, &vinst, shards);
            let victim = (seed as usize) % shards;
            let (sub, _back) = vinst.restrict(|it| assignment[it.id.index()] == victim);
            if sub.len() < 2 {
                continue; // nothing to kill mid-stream
            }
            let mut order: Vec<_> = sub.items().to_vec();
            order.sort_by_key(|it| (it.arrival, it.id));

            let tag = format!("vchaos-{seed}-{shards}-{}", router.name());
            let full_path = temp_journal(&format!("{tag}-full"));
            let killed_path = temp_journal(&format!("{tag}-killed"));

            // The unkilled run, journaled.
            let probe = JournalProbe::create_dims(&full_path, FsyncPolicy::Never, 3)
                .expect("journal opens");
            let mut eng = StreamingEngine::new(
                sub.capacity(),
                selector_for::<VSize<3>>("FF").unwrap(),
                probe,
            );
            for it in &order {
                eng.push_arrival(*it, it.arrival).unwrap();
            }
            let full_trace = eng.finish().unwrap();

            // The killed run: stop after a prefix and drop the engine —
            // the shard dies with its journal mid-stream.
            let kill_after = ((order.len() as u32 * kill_frac / 100).max(1) as usize)
                .min(order.len() - 1);
            let probe = JournalProbe::create_dims(&killed_path, FsyncPolicy::Never, 3)
                .expect("journal opens");
            let mut eng = StreamingEngine::new(
                sub.capacity(),
                selector_for::<VSize<3>>("FF").unwrap(),
                probe,
            );
            for it in &order[..kill_after] {
                eng.push_arrival(*it, it.arrival).unwrap();
            }
            drop(eng); // kill: no finish(), no drain — drop-path seal only

            let full = read_journal_dims::<VSize<3>>(&full_path).expect("full journal readable");
            let killed =
                read_journal_dims::<VSize<3>>(&killed_path).expect("killed journal readable");
            prop_assert!(full.torn.is_none());
            prop_assert!(killed.torn.is_none(), "{}: drop-path seal tore", router.name());
            prop_assert!(!killed.events.is_empty());
            prop_assert_eq!(
                dbp_obs::export::events_to_jsonl_dims(&killed.events),
                dbp_obs::export::events_to_jsonl_dims(&full.events[..killed.events.len()]),
                "{}: killed journal is not a byte prefix of the clean stream", router.name()
            );

            // Resurrection: the engine is deterministic, so a replayed
            // shard converges to the identical final trace …
            let mut eng = StreamingEngine::new(
                sub.capacity(),
                selector_for::<VSize<3>>("FF").unwrap(),
                dbp_core::probe::NoProbe,
            );
            for it in &order {
                eng.push_arrival(*it, it.arrival).unwrap();
            }
            let healed_trace = eng.finish().unwrap();
            prop_assert_eq!(
                serde_json::to_string(&healed_trace).unwrap(),
                serde_json::to_string(&full_trace).unwrap(),
                "{}: resurrected trace diverged", router.name()
            );

            // … and the journal's per-dimension ledger balances exactly:
            // everything placed departs, with demand-ticks matching the
            // sub-instance dimension by dimension.
            let audit = dbp_obs::replay_events_dims(&full.events).expect("audit passes");
            prop_assert_eq!(audit.placements, sub.len() as u64);
            prop_assert_eq!(audit.departures, sub.len() as u64);
            let (dim_ticks, resident) = dbp_obs::per_dim_demand_ticks(&full.events);
            prop_assert_eq!(resident, 0);
            for (d, &got) in dim_ticks.iter().enumerate() {
                let expected: u128 = sub
                    .items()
                    .iter()
                    .map(|it| {
                        it.size.component(d) as u128
                            * (it.departure.raw() - it.arrival.raw()) as u128
                    })
                    .sum();
                prop_assert_eq!(
                    got, expected,
                    "{}: dim {} demand-ticks diverged", router.name(), d
                );
            }

            std::fs::remove_file(&full_path).ok();
            std::fs::remove_file(&killed_path).ok();
        }
    }

    /// Satellite: a zero-kill `ShardFaultPlan` is exactly transparent —
    /// byte-identical report, JSONL stream, and manifest digest against
    /// `run_resilient` with empty per-shard fault plans, for every router.
    #[test]
    fn zero_fault_plans_are_exactly_transparent(
        seed in 0u64..200,
        shards_ix in 0usize..2,
    ) {
        let shards = [2usize, 4][shards_ix];
        let inst = workload(seed % 5);
        let factory = ff_factory();
        for router in Router::ALL {
            let eng = engine(shards, router);

            let mut healed_log = EventLog::new();
            let healed = eng
                .run_self_healing_probed(&inst, &factory, &ShardFaultPlan::none(), &mut healed_log)
                .unwrap();

            let plans = vec![FaultPlan::none(); shards];
            let mut resilient_logs: Vec<EventLog> = Vec::new();
            let (resilient, probes) = eng
                .run_resilient_probed(&inst, &factory, &plans, |_| EventLog::new())
                .unwrap();
            resilient_logs.extend(probes);

            prop_assert_eq!(&healed.report, &resilient.report, "{}", router.name());
            prop_assert_eq!(&healed.assignment, &resilient.assignment);
            let merged: Vec<ProbeEvent> = resilient_logs
                .iter()
                .flat_map(|l| l.events().iter().cloned())
                .collect();
            prop_assert_eq!(
                events_to_jsonl(healed_log.events()),
                events_to_jsonl(&merged),
                "{}", router.name()
            );
            prop_assert_eq!(
                &healed.manifest.instance_digest,
                &instance_digest(&inst)
            );
            prop_assert_eq!(healed.manifest.shard_restarts, Some(0));
        }
    }
}
