//! The cloud-gaming trace generator: arrival process × game catalog ×
//! session model → a MinTotal DBP [`Instance`].
//!
//! Ticks are seconds in this module (session means are given in minutes).

use crate::arrivals::{ArrivalProcess, DiurnalPoisson, FlashCrowd, Poisson};
use crate::dists::{Sampler, Zipf};
use crate::games::GameCatalog;
use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::item::RegionId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which arrival process drives the workload.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalKind {
    /// Homogeneous Poisson with the given rate (requests per second).
    Poisson {
        /// Requests per tick (second).
        rate: f64,
    },
    /// Diurnal (sinusoidal) Poisson: day/night player cycle.
    Diurnal {
        /// Average requests per tick.
        base_rate: f64,
        /// Relative swing in `[0, 1]`.
        amplitude: f64,
        /// Cycle length in ticks (86_400 = one day of seconds).
        period: f64,
    },
    /// Flash crowd: baseline Poisson plus a burst window (game launch).
    Flash {
        /// Baseline requests per tick.
        base_rate: f64,
        /// Burst window start tick.
        burst_start: u64,
        /// Burst window end tick.
        burst_end: u64,
        /// Rate multiplier inside the window (≥ 1).
        multiplier: f64,
    },
}

/// Full workload configuration.
#[derive(Debug, Clone)]
pub struct CloudGamingConfig {
    /// Server GPU capacity `W`.
    pub capacity: u64,
    /// Trace horizon in ticks (arrivals stop here; sessions may run over).
    pub horizon: u64,
    /// Arrival process.
    pub arrivals: ArrivalKind,
    /// Game catalog (sizes + session models + popularity).
    pub catalog: GameCatalog,
    /// Sessions shorter than this are clamped up (ticks). Also the ∆ the
    /// instance's µ is measured against.
    pub min_session: u64,
    /// Sessions longer than this are clamped down (ticks) — the knob that
    /// bounds µ.
    pub max_session: u64,
    /// Number of regions for the constrained-DBP extension (1 = plain DBP).
    pub regions: u16,
    /// RNG seed; equal configs with equal seeds generate identical traces.
    pub seed: u64,
}

impl Default for CloudGamingConfig {
    fn default() -> Self {
        CloudGamingConfig {
            capacity: GameCatalog::DEFAULT_CAPACITY,
            horizon: 4 * 3600, // four hours of seconds
            arrivals: ArrivalKind::Poisson { rate: 0.05 },
            catalog: GameCatalog::default_catalog(),
            min_session: 5 * 60,
            max_session: 4 * 3600,
            regions: 1,
            seed: 0,
        }
    }
}

/// Generate the instance for a configuration.
///
/// # Panics
/// Panics on degenerate configurations (zero capacity, empty catalog,
/// `min_session = 0` or `min_session > max_session`, `regions = 0`), and if
/// the arrival process produces no items at all (shrink the horizon or rate
/// instead of special-casing empty instances downstream).
pub fn generate(cfg: &CloudGamingConfig) -> Instance {
    assert!(cfg.capacity > 0, "zero capacity");
    assert!(!cfg.catalog.is_empty(), "empty catalog");
    assert!(
        cfg.min_session > 0 && cfg.min_session <= cfg.max_session,
        "bad session clamp [{}, {}]",
        cfg.min_session,
        cfg.max_session
    );
    assert!(cfg.regions > 0, "need at least one region");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let arrivals = match cfg.arrivals {
        ArrivalKind::Poisson { rate } => Poisson::new(rate).arrivals(cfg.horizon, &mut rng),
        ArrivalKind::Diurnal {
            base_rate,
            amplitude,
            period,
        } => DiurnalPoisson::new(base_rate, amplitude, period).arrivals(cfg.horizon, &mut rng),
        ArrivalKind::Flash {
            base_rate,
            burst_start,
            burst_end,
            multiplier,
        } => FlashCrowd::new(base_rate, burst_start, burst_end, multiplier)
            .arrivals(cfg.horizon, &mut rng),
    };
    assert!(
        !arrivals.is_empty(),
        "arrival process produced no requests over horizon {}",
        cfg.horizon
    );

    let zipf = Zipf::new(cfg.catalog.len(), cfg.catalog.zipf_s);
    let samplers: Vec<Box<dyn Sampler>> = cfg
        .catalog
        .games
        .iter()
        .map(|g| g.sessions.sampler())
        .collect();

    let mut b = InstanceBuilder::new(cfg.capacity);
    for at in arrivals {
        let game_idx = zipf.sample_index(&mut rng);
        let game = &cfg.catalog.games[game_idx];
        let minutes = samplers[game_idx].sample(&mut rng);
        let len = ((minutes * 60.0) as u64).clamp(cfg.min_session, cfg.max_session);
        let region = if cfg.regions == 1 {
            RegionId::GLOBAL
        } else {
            RegionId(rng.random_range(0..cfg.regions))
        };
        b.add_in_region(at, at + len, game.gpu_units, region);
    }
    b.build().expect("generated workload must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_generates_sane_trace() {
        let cfg = CloudGamingConfig::default();
        let inst = generate(&cfg);
        assert!(inst.len() > 300, "expected ~720 items, got {}", inst.len());
        let stats = inst.stats();
        assert!(stats.min_interval_len.raw() >= cfg.min_session);
        assert!(stats.max_interval_len.raw() <= cfg.max_session);
        assert!(stats.max_size.raw() <= cfg.capacity / 2);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = CloudGamingConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = CloudGamingConfig {
            seed: 1,
            ..CloudGamingConfig::default()
        };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn mu_is_bounded_by_session_clamp() {
        let cfg = CloudGamingConfig {
            min_session: 600,
            max_session: 6000,
            ..CloudGamingConfig::default()
        };
        let inst = generate(&cfg);
        let mu = inst.mu().unwrap();
        assert!(mu <= dbp_core::ratio::Ratio::from_int(10));
    }

    #[test]
    fn regions_are_assigned_when_requested() {
        let cfg = CloudGamingConfig {
            regions: 4,
            ..CloudGamingConfig::default()
        };
        let inst = generate(&cfg);
        let regions = inst.regions();
        assert_eq!(regions.len(), 4);
    }

    #[test]
    fn flash_crowd_spikes_the_peak() {
        let calm = CloudGamingConfig {
            seed: 3,
            ..CloudGamingConfig::default()
        };
        let burst = CloudGamingConfig {
            arrivals: ArrivalKind::Flash {
                base_rate: 0.05,
                burst_start: 3600,
                burst_end: 2 * 3600,
                multiplier: 6.0,
            },
            seed: 3,
            ..CloudGamingConfig::default()
        };
        let calm_inst = generate(&calm);
        let burst_inst = generate(&burst);
        assert!(burst_inst.len() > calm_inst.len() + 100);
    }

    #[test]
    fn diurnal_arrivals_flow_through() {
        let cfg = CloudGamingConfig {
            arrivals: ArrivalKind::Diurnal {
                base_rate: 0.05,
                amplitude: 0.8,
                period: 86_400.0,
            },
            ..CloudGamingConfig::default()
        };
        let inst = generate(&cfg);
        assert!(inst.len() > 100);
    }
}
