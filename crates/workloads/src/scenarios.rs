//! Named, pre-calibrated workload scenarios — one-line access to the
//! standard traffic shapes used across experiments, the CLI and docs.

use crate::generator::{ArrivalKind, CloudGamingConfig};

/// The fault environment a scenario is expected to run in — plain rate
/// knobs that `dbp-cloudsim`'s fault-plan generator (or any other consumer)
/// can turn into a concrete schedule. Kept dependency-free on purpose:
/// workloads describe conditions, the simulator injects them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Expected server crashes per simulated hour.
    pub crash_rate_per_hour: f64,
    /// Probability each provisioning attempt fails.
    pub boot_fail_prob: f64,
    /// Maximum boot delay in ticks.
    pub boot_delay_max: u64,
    /// Probability each dispatch to an open server is transiently rejected.
    pub reject_prob: f64,
}

impl FaultProfile {
    /// A fault-free environment.
    pub fn calm() -> FaultProfile {
        FaultProfile {
            crash_rate_per_hour: 0.0,
            boot_fail_prob: 0.0,
            boot_delay_max: 0,
            reject_prob: 0.0,
        }
    }
}

/// The scenario catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Steady Poisson traffic, 4 h.
    Steady,
    /// A full day with the diurnal player cycle.
    DiurnalDay,
    /// A launch-day flash crowd: 8× burst for one hour.
    LaunchDay,
    /// Low-rate overnight traffic with long sessions dominating.
    NightOwls,
    /// Multi-region traffic for the constrained-DBP extension (4 regions).
    MultiRegion,
}

impl Scenario {
    /// All scenarios, for sweeps.
    pub const ALL: [Scenario; 5] = [
        Scenario::Steady,
        Scenario::DiurnalDay,
        Scenario::LaunchDay,
        Scenario::NightOwls,
        Scenario::MultiRegion,
    ];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Steady => "steady",
            Scenario::DiurnalDay => "diurnal-day",
            Scenario::LaunchDay => "launch-day",
            Scenario::NightOwls => "night-owls",
            Scenario::MultiRegion => "multi-region",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The calibrated configuration (seed 0; override after).
    pub fn config(self) -> CloudGamingConfig {
        let base = CloudGamingConfig::default();
        match self {
            Scenario::Steady => base,
            Scenario::DiurnalDay => CloudGamingConfig {
                horizon: 24 * 3600,
                arrivals: ArrivalKind::Diurnal {
                    base_rate: 0.05,
                    amplitude: 0.8,
                    period: 86_400.0,
                },
                ..base
            },
            Scenario::LaunchDay => CloudGamingConfig {
                horizon: 8 * 3600,
                arrivals: ArrivalKind::Flash {
                    base_rate: 0.03,
                    burst_start: 2 * 3600,
                    burst_end: 3 * 3600,
                    multiplier: 8.0,
                },
                ..base
            },
            Scenario::NightOwls => CloudGamingConfig {
                horizon: 8 * 3600,
                arrivals: ArrivalKind::Poisson { rate: 0.01 },
                min_session: 30 * 60,
                max_session: 8 * 3600,
                ..base
            },
            Scenario::MultiRegion => CloudGamingConfig {
                horizon: 6 * 3600,
                regions: 4,
                ..base
            },
        }
    }

    /// The fault environment this scenario's traffic typically meets:
    /// launch days strain provisioning (flash-crowd boot storms), overnight
    /// runs see maintenance-window crashes, steady traffic is mildly flaky.
    pub fn fault_profile(self) -> FaultProfile {
        match self {
            Scenario::Steady => FaultProfile {
                crash_rate_per_hour: 1.0,
                boot_fail_prob: 0.05,
                boot_delay_max: 15,
                reject_prob: 0.02,
            },
            Scenario::DiurnalDay => FaultProfile {
                crash_rate_per_hour: 0.5,
                boot_fail_prob: 0.05,
                boot_delay_max: 20,
                reject_prob: 0.02,
            },
            Scenario::LaunchDay => FaultProfile {
                // Flash crowds stress the control plane: boots get flaky
                // and slow exactly when the fleet must grow fastest.
                crash_rate_per_hour: 2.0,
                boot_fail_prob: 0.20,
                boot_delay_max: 45,
                reject_prob: 0.08,
            },
            Scenario::NightOwls => FaultProfile {
                // Maintenance windows: more crashes, boots are fine.
                crash_rate_per_hour: 3.0,
                boot_fail_prob: 0.02,
                boot_delay_max: 10,
                reject_prob: 0.01,
            },
            Scenario::MultiRegion => FaultProfile {
                crash_rate_per_hour: 1.5,
                boot_fail_prob: 0.08,
                boot_delay_max: 25,
                reject_prob: 0.04,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn every_scenario_has_a_fault_profile() {
        for s in Scenario::ALL {
            let p = s.fault_profile();
            assert!(p.crash_rate_per_hour >= 0.0);
            assert!((0.0..=1.0).contains(&p.boot_fail_prob), "{}", s.name());
            assert!((0.0..=1.0).contains(&p.reject_prob), "{}", s.name());
        }
        assert_eq!(FaultProfile::calm().crash_rate_per_hour, 0.0);
    }

    #[test]
    fn names_round_trip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::from_name(s.name()), Some(s));
        }
        assert_eq!(Scenario::from_name("bogus"), None);
    }

    #[test]
    fn every_scenario_generates() {
        for s in Scenario::ALL {
            let inst = generate(&s.config());
            assert!(!inst.is_empty(), "{} generated nothing", s.name());
        }
    }

    #[test]
    fn night_owls_sessions_are_long() {
        let inst = generate(&Scenario::NightOwls.config());
        assert!(inst.min_interval_len().unwrap().raw() >= 30 * 60);
    }

    #[test]
    fn multi_region_has_four_regions() {
        let inst = generate(&Scenario::MultiRegion.config());
        assert_eq!(inst.regions().len(), 4);
    }

    #[test]
    fn launch_day_is_burstier_than_steady() {
        let steady = generate(&Scenario::Steady.config());
        let launch = generate(&Scenario::LaunchDay.config());
        // Items per horizon hour: the launch burst packs more in.
        let steady_rate = steady.len() as f64 / 4.0;
        let launch_rate = launch.len() as f64 / 8.0;
        // Launch-day baseline is lower (0.03) but the burst compensates on
        // peak; compare peak concurrent demand instead.
        let peak = |inst: &dbp_core::instance::Instance| {
            dbp_core::events::event_ticks(inst)
                .iter()
                .map(|&t| inst.active_at(t).len())
                .max()
                .unwrap_or(0)
        };
        assert!(
            peak(&launch) as f64 > 1.2 * peak(&steady) as f64,
            "launch peak {} vs steady peak {} (rates {steady_rate:.1}/{launch_rate:.1})",
            peak(&launch),
            peak(&steady)
        );
    }
}
