//! # dbp-workloads — synthetic cloud-gaming traces for MinTotal DBP
//!
//! The paper's motivating application is request dispatching in cloud
//! gaming; no production traces are public, so this crate builds the
//! closest synthetic equivalent (DESIGN.md, substitutions table):
//!
//! * [`dists`] — session-length and inter-arrival distributions
//!   (exponential, lognormal, Pareto, Weibull, Zipf), implemented from
//!   scratch on `rand`'s uniform source;
//! * [`arrivals`] — homogeneous and diurnal Poisson arrival processes;
//! * [`games`] — a 12-title game catalog with per-title GPU demands and
//!   session models;
//! * [`generator`] — the full trace generator (arrivals × catalog →
//!   [`Instance`]);
//! * [`mu_control`] — traces whose µ is pinned exactly to a target, in the
//!   small/large/mixed size regimes of the paper's case analysis.
//!
//! Everything is deterministic per seed.
//!
//! [`Instance`]: dbp_core::instance::Instance

//! ```
//! use dbp_workloads::{generate_mu_controlled, MuControlledConfig};
//! use dbp_core::ratio::Ratio;
//!
//! let cfg = MuControlledConfig::new(12); // pin µ = 12 exactly
//! let instance = generate_mu_controlled(&cfg);
//! assert_eq!(instance.mu().unwrap(), Ratio::from_int(12));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod dists;
pub mod games;
pub mod generator;
pub mod mu_control;
pub mod scenarios;
pub mod vector;

pub use arrivals::{ArrivalProcess, DiurnalPoisson, FlashCrowd, Poisson};
pub use games::{GameCatalog, GameProfile, SessionKind};
pub use generator::{generate, ArrivalKind, CloudGamingConfig};
pub use mu_control::{churn, generate_mu_controlled, MuControlledConfig, SizeModel};
pub use scenarios::{FaultProfile, Scenario};
pub use vector::{launch_day_spike, lift_uniform, widen, HeteroCatalog, HeteroProfile};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mu_controlled_always_pins_mu(mu in 1u64..40, seed in 0u64..1000, n in 2usize..60) {
            let cfg = MuControlledConfig {
                n_items: n,
                seed,
                ..MuControlledConfig::new(mu)
            };
            let inst = generate_mu_controlled(&cfg);
            prop_assert_eq!(inst.mu().unwrap(), dbp_core::ratio::Ratio::from_int(mu as u128));
            prop_assert_eq!(inst.len(), n);
        }

        #[test]
        fn generated_traces_always_validate(seed in 0u64..200) {
            let cfg = CloudGamingConfig {
                horizon: 1800,
                seed,
                ..CloudGamingConfig::default()
            };
            // Instance::new inside generate() already validates; exercise µ
            // and span on top.
            let inst = generate(&cfg);
            prop_assert!(inst.mu().unwrap() >= dbp_core::ratio::Ratio::ONE);
            prop_assert!(inst.span().raw() > 0);
        }
    }
}
