//! The game catalog: per-title GPU demand and session-length models.
//!
//! The paper's motivation: "running each game instance demands a certain
//! amount of GPU resources and the resource requirement can be different
//! for running different games". We model a service with a catalog of
//! titles; each playing request picks a title (Zipf popularity) which fixes
//! the item's size and its session-length distribution.

use crate::dists::{Exponential, LogNormal, Pareto, Sampler};

/// How a game's session lengths are distributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionKind {
    /// Exponential with the given mean (minutes).
    Exponential {
        /// Mean session length in minutes.
        mean_min: f64,
    },
    /// LogNormal with the given mean (minutes) and shape σ.
    LogNormal {
        /// Mean session length in minutes.
        mean_min: f64,
        /// σ of the underlying normal.
        sigma: f64,
    },
    /// Pareto with scale x_m (minutes) and tail exponent α.
    Pareto {
        /// Minimum session length in minutes.
        xm_min: f64,
        /// Tail exponent (must exceed 1).
        alpha: f64,
    },
}

impl SessionKind {
    /// Instantiate a sampler producing lengths in minutes.
    pub fn sampler(&self) -> Box<dyn Sampler> {
        match *self {
            SessionKind::Exponential { mean_min } => Box::new(Exponential::with_mean(mean_min)),
            SessionKind::LogNormal { mean_min, sigma } => {
                Box::new(LogNormal::with_mean(mean_min, sigma))
            }
            SessionKind::Pareto { xm_min, alpha } => Box::new(Pareto::new(xm_min, alpha)),
        }
    }
}

/// One title in the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct GameProfile {
    /// Display name.
    pub name: &'static str,
    /// GPU demand in capacity units (the item size `s(r)`).
    pub gpu_units: u64,
    /// Session-length model.
    pub sessions: SessionKind,
}

/// A catalog of titles with Zipf-ranked popularity (index 0 most popular).
#[derive(Debug, Clone, PartialEq)]
pub struct GameCatalog {
    /// The titles, in popularity-rank order.
    pub games: Vec<GameProfile>,
    /// Zipf exponent for popularity.
    pub zipf_s: f64,
}

impl GameCatalog {
    /// A representative 12-title catalog against server capacity 1000 GPU
    /// units: light casual titles through heavyweight open-world renders.
    /// Demands range from `W/20` to `W/2`; session means from a quarter hour
    /// to several hours with a heavy-tailed MMO.
    pub fn default_catalog() -> GameCatalog {
        use SessionKind::*;
        GameCatalog {
            games: vec![
                GameProfile {
                    name: "moba-arena",
                    gpu_units: 125,
                    sessions: LogNormal {
                        mean_min: 38.0,
                        sigma: 0.4,
                    },
                },
                GameProfile {
                    name: "battle-royale",
                    gpu_units: 200,
                    sessions: LogNormal {
                        mean_min: 25.0,
                        sigma: 0.5,
                    },
                },
                GameProfile {
                    name: "casual-puzzle",
                    gpu_units: 50,
                    sessions: Exponential { mean_min: 15.0 },
                },
                GameProfile {
                    name: "open-world-rpg",
                    gpu_units: 500,
                    sessions: LogNormal {
                        mean_min: 90.0,
                        sigma: 0.6,
                    },
                },
                GameProfile {
                    name: "fps-shooter",
                    gpu_units: 250,
                    sessions: Exponential { mean_min: 45.0 },
                },
                GameProfile {
                    name: "mmo-raid",
                    gpu_units: 400,
                    sessions: Pareto {
                        xm_min: 40.0,
                        alpha: 1.8,
                    },
                },
                GameProfile {
                    name: "racing-sim",
                    gpu_units: 200,
                    sessions: Exponential { mean_min: 30.0 },
                },
                GameProfile {
                    name: "card-battler",
                    gpu_units: 80,
                    sessions: Exponential { mean_min: 20.0 },
                },
                GameProfile {
                    name: "fighting",
                    gpu_units: 160,
                    sessions: Exponential { mean_min: 25.0 },
                },
                GameProfile {
                    name: "flight-sim",
                    gpu_units: 500,
                    sessions: LogNormal {
                        mean_min: 120.0,
                        sigma: 0.5,
                    },
                },
                GameProfile {
                    name: "platformer",
                    gpu_units: 100,
                    sessions: Exponential { mean_min: 35.0 },
                },
                GameProfile {
                    name: "sandbox-builder",
                    gpu_units: 320,
                    sessions: Pareto {
                        xm_min: 30.0,
                        alpha: 2.2,
                    },
                },
            ],
            zipf_s: 0.9,
        }
    }

    /// The server capacity the default catalog is calibrated against.
    pub const DEFAULT_CAPACITY: u64 = 1000;

    /// Number of titles.
    pub fn len(&self) -> usize {
        self.games.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.games.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_fits_capacity() {
        let c = GameCatalog::default_catalog();
        assert_eq!(c.len(), 12);
        for g in &c.games {
            assert!(g.gpu_units > 0);
            assert!(g.gpu_units <= GameCatalog::DEFAULT_CAPACITY / 2);
        }
    }

    #[test]
    fn session_samplers_have_positive_means() {
        let c = GameCatalog::default_catalog();
        for g in &c.games {
            let s = g.sessions.sampler();
            assert!(s.mean() > 0.0, "{} has nonpositive mean", g.name);
        }
    }

    #[test]
    fn catalog_names_are_unique() {
        let c = GameCatalog::default_catalog();
        let mut names: Vec<&str> = c.games.iter().map(|g| g.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }
}
