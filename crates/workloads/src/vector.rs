//! Multi-resource (vector) workloads: the heterogeneous game catalog and
//! the memory-bound launch-day spike scenario.
//!
//! The scalar catalog models each title by its GPU footprint alone; real
//! cloud-gaming VMs are constrained by GPU *and* CPU *and* RAM
//! simultaneously (the DVBP setting of Murhekar et al., arXiv:2304.08648).
//! This module extends every title with a CPU and a memory footprint,
//! producing [`GInstance<VSize<3>>`] traces whose dimension order is
//! `[gpu, cpu, mem]` — see [`DIM_NAMES`].
//!
//! Two invariants tie the vector catalog back to the scalar world:
//!
//! * **dimension 0 is the scalar catalog**: every title's `demand[GPU]`
//!   equals its scalar `gpu_units`, so footprint-keyed logic (the cluster's
//!   game-affinity router, title recovery from a size) behaves identically;
//! * **lifting is exact**: [`lift_uniform`] maps a scalar instance to a
//!   `D`-vector instance by splatting every size, the degenerate embedding
//!   the D=1 equivalence suite inverts with
//!   [`scalar_of`](dbp_core::demand::scalar_of).

use crate::games::{GameCatalog, SessionKind};
use crate::generator::generate;
use crate::scenarios::Scenario;
use dbp_core::demand::{Demand, VSize};
use dbp_core::instance::{GInstance, Instance};

/// Number of resource dimensions in the heterogeneous catalog.
pub const HETERO_DIMS: usize = 3;

/// Names of the heterogeneous catalog's dimensions, in component order.
pub const DIM_NAMES: [&str; HETERO_DIMS] = ["gpu", "cpu", "mem"];

/// Index of the GPU dimension (equal to the scalar catalog's size).
pub const GPU: usize = 0;
/// Index of the CPU dimension.
pub const CPU: usize = 1;
/// Index of the memory dimension.
pub const MEM: usize = 2;

/// One title of the heterogeneous catalog: the scalar GPU footprint plus
/// CPU and memory demands, in server capacity units.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroProfile {
    /// Display name (same titles as the scalar catalog).
    pub name: &'static str,
    /// `[gpu, cpu, mem]` demand vector; `demand.0[GPU]` equals the scalar
    /// catalog's `gpu_units` for the same title.
    pub demand: VSize<HETERO_DIMS>,
    /// Session-length model, shared with the scalar catalog.
    pub sessions: SessionKind,
}

/// The heterogeneous catalog: the scalar 12-title catalog with CPU and
/// memory footprints attached per title.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroCatalog {
    /// The titles, in the scalar catalog's popularity-rank order.
    pub games: Vec<HeteroProfile>,
    /// Zipf exponent for popularity (same as the scalar catalog).
    pub zipf_s: f64,
}

impl HeteroCatalog {
    /// Per-dimension server capacity the default catalog is calibrated
    /// against: 1000 GPU units (matching
    /// [`GameCatalog::DEFAULT_CAPACITY`]), 800 CPU units, 1000 memory
    /// units. Memory footprints are deliberately heavy relative to their
    /// capacity share, so memory — not GPU — is the binding dimension in
    /// the launch-day spike scenario.
    pub const DEFAULT_CAPACITY: VSize<HETERO_DIMS> = VSize([1000, 800, 1000]);

    /// The default heterogeneous catalog. CPU/memory footprints are a
    /// fixed deterministic table keyed off each title's workload class:
    /// simulation-heavy titles (racing, flight, sandbox) lean on CPU,
    /// open-world and MMO titles lean on memory (streamed assets), casual
    /// titles are light everywhere.
    pub fn default_catalog() -> HeteroCatalog {
        let scalar = GameCatalog::default_catalog();
        // (cpu, mem) per title, aligned with the scalar catalog's order.
        // mem/1000 intentionally exceeds gpu/1000 for the popular titles:
        // the memory column saturates first under load.
        const CPU_MEM: [(u64, u64); 12] = [
            (90, 220),  // moba-arena
            (160, 340), // battle-royale
            (30, 70),   // casual-puzzle
            (280, 760), // open-world-rpg
            (170, 330), // fps-shooter
            (240, 680), // mmo-raid
            (260, 300), // racing-sim
            (50, 110),  // card-battler
            (110, 200), // fighting
            (380, 720), // flight-sim
            (70, 150),  // platformer
            (300, 520), // sandbox-builder
        ];
        let games = scalar
            .games
            .iter()
            .zip(CPU_MEM)
            .map(|(g, (cpu, mem))| HeteroProfile {
                name: g.name,
                demand: VSize([g.gpu_units, cpu, mem]),
                sessions: g.sessions,
            })
            .collect();
        HeteroCatalog {
            games,
            zipf_s: scalar.zipf_s,
        }
    }

    /// Look a title up by its GPU footprint — the inverse the affinity
    /// router uses. Titles sharing a footprint collapse onto the first,
    /// exactly like the scalar router's recovery.
    pub fn by_gpu_units(&self, gpu_units: u64) -> Option<&HeteroProfile> {
        self.games.iter().find(|g| g.demand.0[GPU] == gpu_units)
    }
}

/// Lift a scalar instance into `D`-vector space by splatting every size
/// across all dimensions (capacity included). The lift always validates:
/// splatting preserves every per-dimension fit.
pub fn lift_uniform<const D: usize>(inst: &Instance) -> GInstance<VSize<D>> {
    inst.map_demand(|s| VSize([s.raw(); D]))
        .expect("uniform lift preserves validity")
}

/// The memory-bound launch-day spike: the scalar launch-day flash crowd
/// (8× burst for one hour) with every request widened to its title's
/// `[gpu, cpu, mem]` footprint from the heterogeneous catalog. Sizes that
/// match no catalog title (none, with the default generator) fall back to
/// a uniform splat scaled into each dimension's capacity.
///
/// Deterministic per seed. The returned instance's capacity is
/// [`HeteroCatalog::DEFAULT_CAPACITY`]; because the catalog's memory
/// column is calibrated heavy, peak memory pressure exceeds peak GPU
/// pressure — the packing constraint that actually binds is `mem`.
pub fn launch_day_spike(seed: u64) -> GInstance<VSize<HETERO_DIMS>> {
    let mut cfg = Scenario::LaunchDay.config();
    cfg.seed = seed;
    let scalar = generate(&cfg);
    widen(&scalar)
}

/// Widen a scalar catalog-generated instance to the heterogeneous
/// catalog's `[gpu, cpu, mem]` footprints (capacity becomes
/// [`HeteroCatalog::DEFAULT_CAPACITY`]).
pub fn widen(scalar: &Instance) -> GInstance<VSize<HETERO_DIMS>> {
    let catalog = HeteroCatalog::default_catalog();
    let cap = HeteroCatalog::DEFAULT_CAPACITY;
    let scalar_cap = scalar.capacity().raw();
    scalar
        .map_demand(|s| {
            if s.raw() == scalar_cap {
                // The capacity itself maps to the vector capacity.
                return cap;
            }
            match catalog.by_gpu_units(s.raw()) {
                Some(p) => p.demand,
                None => {
                    // Unknown footprint: keep dimension 0 and scale the
                    // others proportionally into their capacities.
                    let gpu = s.raw();
                    let mut out = [0u64; HETERO_DIMS];
                    for (d, slot) in out.iter_mut().enumerate() {
                        *slot = (gpu.saturating_mul(cap.0[d]) / cap.0[GPU]).max(1);
                    }
                    out[GPU] = gpu;
                    VSize(out)
                }
            }
        })
        .expect("catalog footprints fit the calibrated capacity")
}

/// Peak concurrent demand per dimension, as `(used, capacity)` pairs —
/// the scenario-calibration check that memory binds first.
pub fn peak_pressure<const D: usize>(inst: &GInstance<VSize<D>>) -> Vec<(u64, u64)> {
    let cap = inst.capacity();
    let mut peak = [0u64; D];
    for &t in &dbp_core::events::event_ticks(inst) {
        let mut level = [0u64; D];
        for id in inst.active_at(t) {
            let it = inst.item(id);
            for (l, &s) in level.iter_mut().zip(&it.size.0) {
                *l += s;
            }
        }
        for (p, &l) in peak.iter_mut().zip(&level) {
            *p = (*p).max(l);
        }
    }
    (0..D).map(|d| (peak[d], cap.component(d))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_catalog_aligns_with_scalar_catalog() {
        let scalar = GameCatalog::default_catalog();
        let hetero = HeteroCatalog::default_catalog();
        assert_eq!(scalar.len(), hetero.games.len());
        for (s, h) in scalar.games.iter().zip(&hetero.games) {
            assert_eq!(s.name, h.name);
            assert_eq!(s.gpu_units, h.demand.0[GPU], "{}", s.name);
            assert_eq!(s.sessions, h.sessions);
            assert!(
                h.demand.fits_within(HeteroCatalog::DEFAULT_CAPACITY),
                "{} exceeds capacity",
                h.name
            );
            assert!(!h.demand.has_zero_component(), "{}", h.name);
        }
    }

    #[test]
    fn lift_uniform_round_trips_through_scalar() {
        let mut b = dbp_core::instance::InstanceBuilder::new(10);
        b.add(0, 40, 6);
        b.add(5, 25, 6);
        b.add(10, 35, 4);
        let inst = b.build().unwrap();
        let lifted: GInstance<VSize<2>> = lift_uniform(&inst);
        let back = lifted.map_demand(|v| dbp_core::item::Size(v.0[0])).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn launch_day_spike_is_deterministic_and_memory_bound() {
        let a = launch_day_spike(42);
        let b = launch_day_spike(42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_ne!(a, launch_day_spike(43));

        // Memory is the binding dimension: its peak pressure, as a
        // fraction of capacity, strictly exceeds GPU's and CPU's.
        let pressure = peak_pressure(&a);
        let frac = |d: usize| pressure[d].0 as f64 / pressure[d].1 as f64;
        assert!(
            frac(MEM) > frac(GPU) && frac(MEM) > frac(CPU),
            "memory must bind first: {pressure:?}"
        );
    }

    #[test]
    fn widen_keeps_gpu_dimension_identical() {
        let mut cfg = Scenario::Steady.config();
        cfg.seed = 7;
        let scalar = generate(&cfg);
        let wide = widen(&scalar);
        assert_eq!(scalar.len(), wide.len());
        for (s, w) in scalar.items().iter().zip(wide.items()) {
            assert_eq!(s.size.raw(), w.size.0[GPU], "item {}", s.id);
            assert_eq!(s.arrival, w.arrival);
            assert_eq!(s.departure, w.departure);
        }
    }
}
