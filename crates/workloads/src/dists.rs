//! Probability distributions for session lengths and inter-arrival times.
//!
//! Implemented from scratch over `rand`'s uniform source (inverse-CDF and
//! Box–Muller), to keep the dependency set minimal. These model the
//! *unknown-at-assignment* departure times of the cloud-gaming motivation:
//! exponential and lognormal for typical session lengths, Pareto for the
//! heavy tail of marathon sessions.

use rand::Rng;

/// A sampler of non-negative `f64` values.
pub trait Sampler {
    /// Draw one sample.
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64;
    /// The distribution's mean (used to size workloads).
    fn mean(&self) -> f64;
}

fn uniform01(rng: &mut dyn rand::Rng) -> f64 {
    // 53-bit uniform in [0, 1); add 2^-54 to keep ln() finite.
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0);
    u + f64::EPSILON / 4.0
}

/// Exponential(rate): mean `1/rate`.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// # Panics
    /// Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Exponential {
        assert!(rate > 0.0, "Exponential rate must be positive");
        Exponential { rate }
    }

    /// Exponential with the given mean.
    pub fn with_mean(mean: f64) -> Exponential {
        Exponential::new(1.0 / mean)
    }
}

impl Sampler for Exponential {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        -uniform01(rng).ln() / self.rate
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// LogNormal(µ, σ) of the underlying normal: mean `exp(µ + σ²/2)`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// # Panics
    /// Panics unless `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(sigma > 0.0, "LogNormal sigma must be positive");
        LogNormal { mu, sigma }
    }

    /// LogNormal with a target mean and σ of the underlying normal.
    pub fn with_mean(mean: f64, sigma: f64) -> LogNormal {
        assert!(mean > 0.0);
        LogNormal::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }
}

impl Sampler for LogNormal {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        // Box–Muller.
        let u1 = uniform01(rng);
        let u2 = uniform01(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Pareto(x_m, α): heavy-tailed; mean `α·x_m/(α−1)` for `α > 1`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// # Panics
    /// Panics unless `xm > 0` and `alpha > 1` (finite mean required).
    pub fn new(xm: f64, alpha: f64) -> Pareto {
        assert!(xm > 0.0, "Pareto scale must be positive");
        assert!(alpha > 1.0, "Pareto alpha must exceed 1 for a finite mean");
        Pareto { xm, alpha }
    }
}

impl Sampler for Pareto {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        self.xm / uniform01(rng).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        self.alpha * self.xm / (self.alpha - 1.0)
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// # Panics
    /// Panics unless `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Uniform {
        assert!(lo < hi, "Uniform needs lo < hi");
        Uniform { lo, hi }
    }
}

impl Sampler for Uniform {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        self.lo + (self.hi - self.lo) * uniform01(rng)
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Weibull(shape, scale).
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// # Panics
    /// Panics unless both parameters are positive.
    pub fn new(shape: f64, scale: f64) -> Weibull {
        assert!(shape > 0.0 && scale > 0.0);
        Weibull { shape, scale }
    }
}

impl Sampler for Weibull {
    fn sample(&self, rng: &mut dyn rand::Rng) -> f64 {
        self.scale * (-uniform01(rng).ln()).powf(1.0 / self.shape)
    }
    fn mean(&self) -> f64 {
        // Γ(1 + 1/shape) via Stirling-free Lanczos would be overkill; use
        // the ln-gamma free approximation only where shape is 1 (exact) and
        // otherwise a numeric gamma.
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

/// Degenerate distribution (always `v`).
#[derive(Debug, Clone, Copy)]
pub struct Deterministic(pub f64);

impl Sampler for Deterministic {
    fn sample(&self, _rng: &mut dyn rand::Rng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), accurate to
/// ~1e-13 on the positive axis — plenty for workload sizing.
#[allow(clippy::excessive_precision)] // Lanczos coefficients as published
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        let t = x + G + 0.5;
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Zipf distribution over `{0, 1, …, n−1}` with exponent `s` — models game
/// popularity (a few titles dominate requests).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// # Panics
    /// Panics unless `n ≥ 1` and `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one category");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    /// Draw a category index.
    pub fn sample_index(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = uniform01(rng);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("NaN in Zipf cdf"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(s: &dyn Sampler, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| s.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn empirical_means_match_analytic() {
        let n = 200_000;
        let cases: Vec<(Box<dyn Sampler>, f64)> = vec![
            (Box::new(Exponential::with_mean(40.0)), 0.03),
            (Box::new(LogNormal::with_mean(100.0, 0.5)), 0.03),
            (Box::new(Pareto::new(10.0, 2.5)), 0.08),
            (Box::new(Uniform::new(5.0, 15.0)), 0.02),
            (Box::new(Weibull::new(1.5, 30.0)), 0.03),
            (Box::new(Deterministic(7.0)), 1e-12),
        ];
        for (i, (s, tol)) in cases.iter().enumerate() {
            let emp = mean_of(s.as_ref(), n, 42 + i as u64);
            let ana = s.mean();
            let rel = (emp - ana).abs() / ana;
            assert!(
                rel < *tol,
                "case {i}: empirical {emp} vs analytic {ana} (rel {rel})"
            );
        }
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(7);
        let dists: Vec<Box<dyn Sampler>> = vec![
            Box::new(Exponential::new(0.1)),
            Box::new(LogNormal::new(2.0, 1.0)),
            Box::new(Pareto::new(1.0, 1.5)),
            Box::new(Weibull::new(0.8, 10.0)),
        ];
        for d in &dists {
            for _ in 0..1000 {
                assert!(d.sample(&mut rng) > 0.0);
            }
        }
    }

    #[test]
    fn exponential_is_memoryless_ish() {
        // P(X > 2m) should be about P(X > m)^2.
        let d = Exponential::with_mean(10.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let p1 = samples.iter().filter(|&&x| x > 10.0).count() as f64 / n as f64;
        let p2 = samples.iter().filter(|&&x| x > 20.0).count() as f64 / n as f64;
        assert!((p2 - p1 * p1).abs() < 0.01);
    }

    #[test]
    fn pareto_is_heavier_tailed_than_exponential() {
        let pareto = Pareto::new(4.0, 1.5); // mean 12
        let exp = Exponential::with_mean(12.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let tail_p: f64 =
            (0..n).filter(|_| pareto.sample(&mut rng) > 120.0).count() as f64 / n as f64;
        let mut rng = StdRng::seed_from_u64(4);
        let tail_e: f64 = (0..n).filter(|_| exp.sample(&mut rng) > 120.0).count() as f64 / n as f64;
        assert!(tail_p > 5.0 * tail_e.max(1e-9));
    }

    #[test]
    fn gamma_function_spot_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn zipf_is_monotone_and_normalized() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        // Category 0 most popular; ratio 0/4 close to 5.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
        let ratio = counts[0] as f64 / counts[4] as f64;
        assert!((ratio - 5.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0);
        }
    }
}
