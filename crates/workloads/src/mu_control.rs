//! µ-controlled workloads: traces whose max/min interval-length ratio is
//! pinned *exactly* to a target µ, with size regimes matching the paper's
//! case analysis (small `< W/k`, large `≥ W/k`, or mixed).
//!
//! Every theorem's bound is a function of µ, so the bound-verification
//! sweeps (`thm4_small_items`, `thm5_general_ff`, `mff_ratio`,
//! `mu_sensitivity`) need instances where µ is a controlled independent
//! variable rather than an emergent one. Interval lengths are drawn
//! log-uniformly in `[∆, µ∆]` and the two extremes are pinned onto the
//! first two items.

use crate::arrivals::{ArrivalProcess, Poisson};
use dbp_core::instance::{Instance, InstanceBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Size regime for the generated items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeModel {
    /// Uniform integer sizes in `[lo, hi]`.
    Uniform {
        /// Smallest size.
        lo: u64,
        /// Largest size.
        hi: u64,
    },
    /// All sizes strictly below `W/k` (the Theorem 4 regime).
    SmallOnly {
        /// The size-class parameter `k ≥ 2`.
        k: u64,
    },
    /// All sizes at least `W/k` (the Theorem 3 regime).
    LargeOnly {
        /// The size-class parameter `k ≥ 2`.
        k: u64,
    },
    /// Unit-fraction sizes `W/w` for integer `w ∈ [1, max_w]` — the item
    /// model of Chan–Lam–Wong's dynamic bin packing of unit fractions
    /// (related work \[8\] of the paper). Requires `w | W` feasibility via
    /// rounding down to `W/w`.
    UnitFraction {
        /// Largest denominator `w`.
        max_w: u64,
    },
}

/// Configuration of a µ-controlled workload.
#[derive(Debug, Clone, Copy)]
pub struct MuControlledConfig {
    /// Bin capacity `W`.
    pub capacity: u64,
    /// Number of items.
    pub n_items: usize,
    /// Target µ (integer ≥ 1) — the instance's measured µ equals this.
    pub mu: u64,
    /// Minimum interval length ∆ in ticks.
    pub delta: u64,
    /// Poisson arrival rate (items per tick).
    pub arrival_rate: f64,
    /// Size regime.
    pub sizes: SizeModel,
    /// RNG seed.
    pub seed: u64,
}

impl MuControlledConfig {
    /// A reasonable default: `W = 100`, 200 items, `∆ = 100` ticks, mixed
    /// sizes up to `W/2`.
    pub fn new(mu: u64) -> MuControlledConfig {
        MuControlledConfig {
            capacity: 100,
            n_items: 200,
            mu,
            delta: 100,
            arrival_rate: 0.05,
            sizes: SizeModel::Uniform { lo: 5, hi: 50 },
            seed: 0,
        }
    }
}

/// Size bounds `[lo, hi]` for a model against capacity `w`.
///
/// # Panics
/// Panics when the regime is infeasible (e.g. `SmallOnly` with `k ≥ W`).
pub fn size_bounds(model: SizeModel, w: u64) -> (u64, u64) {
    match model {
        SizeModel::Uniform { lo, hi } => {
            assert!(lo >= 1 && lo <= hi && hi <= w, "bad uniform size range");
            (lo, hi)
        }
        SizeModel::SmallOnly { k } => {
            assert!(k >= 2, "SmallOnly needs k >= 2");
            // Largest s with s·k < W.
            let hi = (w - 1) / k;
            assert!(hi >= 1, "no size is strictly below W/k = {w}/{k}");
            (1, hi)
        }
        SizeModel::LargeOnly { k } => {
            assert!(k >= 2, "LargeOnly needs k >= 2");
            // Smallest s with s·k ≥ W.
            let lo = w.div_ceil(k);
            (lo, w)
        }
        SizeModel::UnitFraction { max_w } => {
            assert!(max_w >= 1 && max_w <= w, "bad unit-fraction bound");
            (w / max_w, w)
        }
    }
}

/// Draw one size for the model (uniform over the model's support).
fn draw_size(model: SizeModel, w: u64, rng: &mut rand::rngs::StdRng) -> u64 {
    match model {
        SizeModel::UnitFraction { max_w } => {
            let denom = rng.random_range(1..=max_w);
            (w / denom).max(1)
        }
        other => {
            let (lo, hi) = size_bounds(other, w);
            rng.random_range(lo..=hi)
        }
    }
}

/// Generate a µ-controlled instance.
///
/// # Panics
/// Panics on degenerate configs (`n_items < 2` — the two extremes must be
/// pinned — zero ∆ or capacity, infeasible size regime).
pub fn generate_mu_controlled(cfg: &MuControlledConfig) -> Instance {
    assert!(
        cfg.n_items >= 2,
        "need at least 2 items to pin both extremes"
    );
    assert!(cfg.capacity > 0 && cfg.delta > 0 && cfg.mu >= 1);
    // Validate the regime up front (draw_size re-checks per draw).
    let _ = size_bounds(cfg.sizes, cfg.capacity);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Spread arrivals so the expected item count over the horizon matches.
    let horizon = ((cfg.n_items as f64 / cfg.arrival_rate) as u64).max(1);
    let mut arrivals = Poisson::new(cfg.arrival_rate).arrivals(horizon, &mut rng);
    // Poisson counts fluctuate; pad or trim to exactly n_items.
    while arrivals.len() < cfg.n_items {
        arrivals.push(rng.random_range(0..horizon));
    }
    arrivals.truncate(cfg.n_items);
    arrivals.sort_unstable();

    let mu_f = cfg.mu as f64;
    let mut b = InstanceBuilder::new(cfg.capacity);
    for (i, &at) in arrivals.iter().enumerate() {
        let len = match i {
            0 => cfg.delta,          // pin the minimum
            1 => cfg.mu * cfg.delta, // pin the maximum
            _ => {
                // Log-uniform in [∆, µ∆].
                let u: f64 = rng.random_range(0.0..1.0);
                let len = (cfg.delta as f64 * mu_f.powf(u)).round() as u64;
                len.clamp(cfg.delta, cfg.mu * cfg.delta)
            }
        };
        let size = draw_size(cfg.sizes, cfg.capacity, &mut rng);
        b.add(at, at + len, size);
    }
    b.build().expect("mu-controlled workload must be valid")
}

/// The churn-heavy profiling workload: high arrival rate and long,
/// widely-spread intervals keep thousands of bins open at once, so
/// per-arrival work that scales with the open-bin count dominates the run.
/// This is the shared fixture behind `engine_baseline`, `cluster_scaling`,
/// and `dbp profile` — one definition so their numbers are comparable.
pub fn churn(n_items: usize, seed: u64) -> Instance {
    generate_mu_controlled(&MuControlledConfig {
        n_items,
        mu: 10,
        delta: 2_000,
        arrival_rate: 0.5,
        sizes: SizeModel::Uniform { lo: 5, hi: 60 },
        seed,
        ..MuControlledConfig::new(10)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::ratio::Ratio;

    #[test]
    fn mu_is_pinned_exactly() {
        for mu in [1u64, 2, 7, 32] {
            let cfg = MuControlledConfig::new(mu);
            let inst = generate_mu_controlled(&cfg);
            assert_eq!(
                inst.mu().unwrap(),
                Ratio::from_int(mu as u128),
                "µ not pinned at target {mu}"
            );
            assert_eq!(inst.len(), cfg.n_items);
        }
    }

    #[test]
    fn small_only_respects_the_threshold() {
        let cfg = MuControlledConfig {
            sizes: SizeModel::SmallOnly { k: 8 },
            ..MuControlledConfig::new(5)
        };
        let inst = generate_mu_controlled(&cfg);
        for r in inst.items() {
            assert!(r.size.raw() * 8 < cfg.capacity, "size {} not < W/8", r.size);
        }
    }

    #[test]
    fn large_only_respects_the_threshold() {
        let cfg = MuControlledConfig {
            sizes: SizeModel::LargeOnly { k: 4 },
            ..MuControlledConfig::new(5)
        };
        let inst = generate_mu_controlled(&cfg);
        for r in inst.items() {
            assert!(r.size.raw() * 4 >= cfg.capacity);
            assert!(r.size.raw() <= cfg.capacity);
        }
    }

    #[test]
    fn size_bounds_edges() {
        assert_eq!(size_bounds(SizeModel::SmallOnly { k: 8 }, 100), (1, 12));
        assert_eq!(size_bounds(SizeModel::LargeOnly { k: 8 }, 100), (13, 100));
        // Threshold exactness: 12·8 = 96 < 100; 13·8 = 104 ≥ 100.
        assert_eq!(size_bounds(SizeModel::SmallOnly { k: 2 }, 10), (1, 4));
        assert_eq!(size_bounds(SizeModel::LargeOnly { k: 2 }, 10), (5, 10));
    }

    #[test]
    fn unit_fraction_sizes_divide_capacity() {
        let cfg = MuControlledConfig {
            capacity: 120,
            sizes: SizeModel::UnitFraction { max_w: 6 },
            ..MuControlledConfig::new(4)
        };
        let inst = generate_mu_controlled(&cfg);
        let allowed: Vec<u64> = (1..=6).map(|d| 120 / d).collect();
        for r in inst.items() {
            assert!(
                allowed.contains(&r.size.raw()),
                "size {} is not a unit fraction of 120",
                r.size
            );
        }
    }

    #[test]
    #[should_panic(expected = "no size is strictly below")]
    fn infeasible_small_only_panics() {
        let _ = size_bounds(SizeModel::SmallOnly { k: 200 }, 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = MuControlledConfig::new(10);
        assert_eq!(generate_mu_controlled(&cfg), generate_mu_controlled(&cfg));
    }
}
