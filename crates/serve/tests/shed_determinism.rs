//! Shed determinism (satellite of the streaming-core PR): the same seed
//! and the same overload produce the **same dropped set** and a conserved
//! ledger, every time.
//!
//! The daemon's shed decisions live in two places: the bounded ingress
//! queue (front door, `queue_full`) and the event-time admission check
//! inside [`ShardPipeline`] (`queue_timeout`). This harness replays both
//! through a single-threaded driver — a seeded interleaving of offers and
//! processing steps over a bounded queue — so the whole decision chain is
//! exercised without scheduler nondeterminism.

use dbp_cloudsim::faults::AdmissionPolicy;
use dbp_core::algorithms::FirstFit;
use dbp_core::item::Size;
use dbp_serve::protocol::Request;
use dbp_serve::shard::{Outcome, ShardPipeline};
use proptest::prelude::*;
use std::collections::VecDeque;

/// SplitMix-style deterministic generator.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// What one deterministic overload run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunResult {
    /// (external id, reason) of every shed arrival, in decision order.
    dropped: Vec<(u64, &'static str)>,
    offered: u64,
    queue_full: u64,
    placed: u64,
    dropped_timeout: u64,
    rejected: u64,
    departed: u64,
}

/// Drive `n` arrivals (plus interleaved departures) through a bounded
/// queue of `queue_cap` into one pipeline. `burst` controls overload: how
/// many offers the driver attempts per processing step.
fn run_overload(seed: u64, n: u64, queue_cap: usize, burst: u64, timeout: u64) -> RunResult {
    let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
    let mut pipe = ShardPipeline::new(
        Size(10),
        Box::new(FirstFit::new()),
        AdmissionPolicy {
            queue_capacity: queue_cap as u32,
            queue_timeout: timeout,
        },
    );
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut dropped: Vec<(u64, &'static str)> = Vec::new();
    let mut queue_full = 0u64;
    let mut offered = 0u64;
    let mut placed_ids: Vec<u64> = Vec::new();
    let mut at = 0u64;
    let mut next_id = 1u64;

    let offer = |q: &mut VecDeque<Request>,
                 req: Request,
                 dropped: &mut Vec<(u64, &'static str)>,
                 queue_full: &mut u64| {
        if q.len() >= queue_cap {
            // The front door sheds arrivals only; departures always land
            // (dropping a release would leak capacity).
            if matches!(req, Request::Arrive { .. }) {
                dropped.push((req.id(), "queue_full"));
                *queue_full += 1;
                return;
            }
        }
        q.push_back(req);
    };

    while next_id <= n || !queue.is_empty() {
        // Offer a burst (overload pressure), then process one message.
        for _ in 0..burst {
            if next_id > n {
                break;
            }
            at += rng.next() % 3;
            if !placed_ids.is_empty() && rng.next().is_multiple_of(4) {
                let idx = (rng.next() as usize) % placed_ids.len();
                let id = placed_ids.swap_remove(idx);
                offer(
                    &mut queue,
                    Request::Depart { id, at },
                    &mut dropped,
                    &mut queue_full,
                );
            } else {
                let size = 1 + rng.next() % 5;
                let mut demand = [0u64; dbp_serve::MAX_DIMS];
                demand[0] = size;
                offered += 1;
                offer(
                    &mut queue,
                    Request::Arrive {
                        id: next_id,
                        at,
                        demand,
                    },
                    &mut dropped,
                    &mut queue_full,
                );
                next_id += 1;
            }
        }
        if let Some(req) = queue.pop_front() {
            // The queue delays the request: it is processed later in event
            // time than it was stamped, which is what the event-time
            // timeout measures.
            let outcome = pipe.handle(&req);
            match outcome {
                Outcome::Placed { .. } => placed_ids.push(req.id()),
                Outcome::Dropped { .. } => dropped.push((req.id(), "queue_timeout")),
                _ => {}
            }
        }
    }

    let ledger = pipe.ledger;
    assert!(ledger.conserved(), "{ledger:?}");
    RunResult {
        dropped,
        offered,
        queue_full,
        placed: ledger.placed,
        dropped_timeout: ledger.dropped_timeout,
        rejected: ledger.rejected,
        departed: ledger.departed,
    }
}

proptest! {
    #[test]
    fn same_seed_same_overload_same_dropped_set(
        seed in 0u64..500,
        n in 20u64..120,
        queue_cap in 1usize..6,
        burst in 1u64..8,
        timeout in 1u64..20,
    ) {
        let a = run_overload(seed, n, queue_cap, burst, timeout);
        let b = run_overload(seed, n, queue_cap, burst, timeout);
        prop_assert_eq!(&a, &b, "shed decisions must be deterministic");

        // Full-chain conservation: every offered arrival is accounted
        // exactly once across the front door and the pipeline.
        prop_assert_eq!(
            a.placed + a.dropped_timeout + a.rejected + a.queue_full,
            a.offered
        );
        // The dropped set is exactly the queue_full + timeout decisions.
        prop_assert_eq!(
            a.dropped.len() as u64,
            a.queue_full + a.dropped_timeout
        );
        // Under real overload pressure something must actually shed
        // (otherwise the case is vacuous) — only assert when the driver
        // clamped hard.
        if burst >= 4 && queue_cap == 1 && timeout == 1 && n >= 40 {
            prop_assert!(!a.dropped.is_empty(), "hard overload must shed");
        }
    }
}
