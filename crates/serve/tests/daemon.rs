//! End-to-end daemon test: real sockets, real journals, graceful drain.
//!
//! Spins the full server up on ephemeral ports, drives the NDJSON protocol
//! over TCP, scrapes `/metrics`, drains, and then replays the sealed shard
//! journals through the instance-free auditor — the same path `dbp
//! recover` takes after a crash — asserting the journals agree with the
//! daemon's own conserved ledger.

use dbp_cloudsim::faults::AdmissionPolicy;
use dbp_cluster::router::Router;
use dbp_core::algorithms::FirstFit;
use dbp_core::packer::SelectorFactory;
use dbp_obs::journal::{read_journal, FsyncPolicy};
use dbp_obs::replay::replay_events;
use dbp_serve::{journal_shard_path, run_server, BackpressurePolicy, ServeConfig, ServeSummary};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::mpsc;

fn temp_base(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dbp-serve-test-{tag}-{}", std::process::id()));
    p
}

fn send(w: &mut TcpStream, r: &mut BufReader<TcpStream>, line: &str) -> serde_json::Value {
    w.write_all(line.as_bytes()).unwrap();
    w.write_all(b"\n").unwrap();
    let mut reply = String::new();
    r.read_line(&mut reply).unwrap();
    serde_json::from_str(reply.trim()).unwrap()
}

fn get(v: &serde_json::Value, key: &str) -> serde_json::Value {
    v.get(key).cloned().unwrap_or(serde_json::Value::Null)
}

#[test]
fn daemon_serves_drains_and_journals_replay_to_the_ledger() {
    let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let base = temp_base("e2e");
    let shards = 2usize;
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        shards,
        router: Router::HashByItem,
        capacity: 10,
        dims: 1,
        capacities: None,
        admission: AdmissionPolicy {
            queue_capacity: 8,
            queue_timeout: 1_000,
        },
        backpressure: BackpressurePolicy::Shed,
        max_sessions: 64,
        read_timeout_ms: 5,
        journal_base: Some(base.clone()),
        fsync: FsyncPolicy::Always,
    };
    let (addr_tx, addr_rx) = mpsc::channel::<(SocketAddr, SocketAddr)>();
    let server = std::thread::spawn(move || -> Result<ServeSummary, String> {
        let factory = SelectorFactory::new("FF", || Box::new(FirstFit::new()));
        run_server(cfg, &factory, stop, |h| {
            addr_tx
                .send((h.addr, h.metrics_addr.expect("metrics bound")))
                .unwrap();
        })
    });
    let (addr, maddr) = addr_rx.recv().unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    let mut r = BufReader::new(stream.try_clone().unwrap());
    let mut w = stream;

    let pong = send(&mut w, &mut r, r#"{"op":"ping","id":9}"#);
    assert_eq!(get(&pong, "ok"), serde_json::Value::Bool(true));

    // Two placements, on whichever shards the hash route picks.
    let a1 = send(&mut w, &mut r, r#"{"op":"arrive","id":1,"at":0,"size":6}"#);
    assert_eq!(get(&a1, "ok"), serde_json::Value::Bool(true), "{a1:?}");
    let a2 = send(&mut w, &mut r, r#"{"op":"arrive","id":2,"at":1,"size":6}"#);
    assert_eq!(get(&a2, "ok"), serde_json::Value::Bool(true), "{a2:?}");

    // Front-door refusal: duplicate live id.
    let dup = send(&mut w, &mut r, r#"{"op":"arrive","id":1,"at":2,"size":3}"#);
    assert_eq!(get(&dup, "ok"), serde_json::Value::Bool(false));

    // Pipeline refusal: oversized for capacity 10.
    let big = send(&mut w, &mut r, r#"{"op":"arrive","id":3,"at":2,"size":20}"#);
    assert_eq!(get(&big, "ok"), serde_json::Value::Bool(false));

    // A departure, an unknown departure, and a garbage line.
    let d1 = send(&mut w, &mut r, r#"{"op":"depart","id":1,"at":5}"#);
    assert_eq!(get(&d1, "ok"), serde_json::Value::Bool(true));
    let ghost = send(&mut w, &mut r, r#"{"op":"depart","id":42,"at":6}"#);
    assert_eq!(get(&ghost, "ok"), serde_json::Value::Bool(false));
    let junk = send(&mut w, &mut r, "definitely not json");
    assert_eq!(get(&junk, "ok"), serde_json::Value::Bool(false));

    // Scrape /metrics while live.
    let mut m = TcpStream::connect(maddr).unwrap();
    m.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut scrape = String::new();
    m.read_to_string(&mut scrape).unwrap();
    assert!(scrape.contains("200 OK"), "{scrape}");
    assert!(scrape.contains("serve_shard_placed_total"), "{scrape}");
    assert!(
        scrape.contains("serve_dropped_duplicate_total 1"),
        "{scrape}"
    );

    // Graceful drain.
    drop(w);
    drop(r);
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let summary = server.join().unwrap().expect("server ran");

    assert!(summary.conserved(), "{summary:?}");
    assert_eq!(summary.total, 4); // ids 1, 2, dup-1, 3
    assert_eq!(summary.served, 2);
    assert_eq!(summary.dropped, 2); // duplicate + oversized
    assert_eq!(summary.lost, 0);
    assert_eq!(summary.departed, 1);
    assert_eq!(summary.dropped_duplicate, 1);
    assert_eq!(summary.rejected, 1);
    assert_eq!(summary.bad_lines, 1);
    let in_flight: u64 = summary.shards.iter().map(|s| s.in_flight).sum();
    assert_eq!(in_flight, 1); // id 2 never departed

    // The sealed journals replay — instance-free — to the same aggregate,
    // exactly what `dbp recover` does after a SIGKILL.
    let mut placements = 0u64;
    let mut departures = 0u64;
    let mut open_at_end = 0u64;
    for k in 0..shards {
        let path = journal_shard_path(&base, k);
        let contents = read_journal(&path).expect("journal reads");
        assert!(contents.torn.is_none(), "graceful drain must seal cleanly");
        let s = replay_events(&contents.events).expect("journal replays");
        placements += s.placements;
        departures += s.departures;
        open_at_end += s.open_at_end;
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(placements, summary.served);
    assert_eq!(departures, summary.departed);
    assert_eq!(open_at_end, 1);

    // The summary serializes to one JSON line with the ledger fields.
    let json = summary.to_json();
    assert!(json.contains("\"total\":4"), "{json}");
}

#[test]
fn vector_daemon_places_arrays_and_types_arity_rejections() {
    let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let base = temp_base("vec");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        shards: 2,
        router: Router::LeastLoaded,
        capacity: 1000,
        dims: 3,
        capacities: Some(vec![1000, 800, 1000]),
        admission: AdmissionPolicy {
            queue_capacity: 8,
            queue_timeout: 1_000,
        },
        backpressure: BackpressurePolicy::Block,
        max_sessions: 64,
        read_timeout_ms: 5,
        journal_base: Some(base.clone()),
        fsync: FsyncPolicy::Always,
    };
    let (addr_tx, addr_rx) = mpsc::channel::<(SocketAddr, SocketAddr)>();
    let server = std::thread::spawn(move || -> Result<ServeSummary, String> {
        let factory = SelectorFactory::new("FF", || Box::new(FirstFit::new()));
        run_server(cfg, &factory, stop, |h| {
            addr_tx
                .send((h.addr, h.metrics_addr.expect("metrics bound")))
                .unwrap();
        })
    });
    let (addr, maddr) = addr_rx.recv().unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    let mut r = BufReader::new(stream.try_clone().unwrap());
    let mut w = stream;

    // Vector placements.
    let a1 = send(
        &mut w,
        &mut r,
        r#"{"op":"arrive","id":1,"at":0,"demand":[125,90,220]}"#,
    );
    assert_eq!(get(&a1, "ok"), serde_json::Value::Bool(true), "{a1:?}");
    let a2 = send(
        &mut w,
        &mut r,
        r#"{"op":"arrive","id":2,"at":1,"demand":[240,170,680]}"#,
    );
    assert_eq!(get(&a2, "ok"), serde_json::Value::Bool(true), "{a2:?}");

    // Arity mismatches — short, long, scalar spelling — are typed
    // rejections, never truncation and never a dead daemon.
    for bad in [
        r#"{"op":"arrive","id":3,"at":2,"demand":[125,90]}"#,
        r#"{"op":"arrive","id":3,"at":2,"demand":[125,90,220,1]}"#,
        r#"{"op":"arrive","id":3,"at":2,"size":125}"#,
    ] {
        let v = send(&mut w, &mut r, bad);
        assert_eq!(get(&v, "ok"), serde_json::Value::Bool(false), "{bad}");
        let reason = match get(&v, "reason") {
            serde_json::Value::Str(s) => s,
            other => panic!("no reason in reply to {bad}: {other:?}"),
        };
        assert!(reason.starts_with("demand_arity:"), "{bad} -> {reason}");
    }

    // An arrival too big in one dimension alone (cpu 801 > 800) is a
    // componentwise refusal even though every other dimension fits.
    let big = send(
        &mut w,
        &mut r,
        r#"{"op":"arrive","id":4,"at":3,"demand":[1,801,1]}"#,
    );
    assert_eq!(get(&big, "ok"), serde_json::Value::Bool(false), "{big:?}");

    // The live scrape carries per-dimension utilization/waste gauges.
    let mut m = TcpStream::connect(maddr).unwrap();
    m.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut scrape = String::new();
    m.read_to_string(&mut scrape).unwrap();
    for d in 0..3 {
        assert!(
            scrape.contains(&format!("serve_dim_demand{{dim=\"{d}\"}}")),
            "{scrape}"
        );
        assert!(
            scrape.contains(&format!("serve_dim_waste{{dim=\"{d}\"}}")),
            "{scrape}"
        );
        assert!(
            scrape.contains(&format!("serve_dim_utilization_ppm{{dim=\"{d}\"}}")),
            "{scrape}"
        );
    }
    // Dimension 0 demand is the routed gpu load: 125 + 240.
    assert!(
        scrape.contains("serve_dim_demand{dim=\"0\"} 365"),
        "{scrape}"
    );

    let d1 = send(&mut w, &mut r, r#"{"op":"depart","id":1,"at":9}"#);
    assert_eq!(get(&d1, "ok"), serde_json::Value::Bool(true));

    drop(w);
    drop(r);
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let summary = server.join().unwrap().expect("server ran");
    assert!(summary.conserved(), "{summary:?}");
    assert_eq!(summary.served, 2);
    assert_eq!(summary.rejected, 1); // the per-dimension oversize
    assert_eq!(summary.bad_lines, 3); // the three arity rejections
    assert_eq!(summary.departed, 1);

    // The sealed journals are v2 (3-dimensional) and replay to the ledger.
    let mut placements = 0u64;
    let mut departures = 0u64;
    for k in 0..2usize {
        let path = journal_shard_path(&base, k);
        assert_eq!(dbp_obs::journal::peek_journal_dims(&path).unwrap(), 3);
        let contents = dbp_obs::journal::read_journal_dims::<dbp_core::demand::VSize<3>>(&path)
            .expect("vector journal reads");
        assert!(contents.torn.is_none(), "graceful drain must seal cleanly");
        placements += contents
            .events
            .iter()
            .filter(|e| matches!(e, dbp_core::probe::GProbeEvent::ItemPlaced { .. }))
            .count() as u64;
        departures += contents
            .events
            .iter()
            .filter(|e| matches!(e, dbp_core::probe::GProbeEvent::ItemDeparted { .. }))
            .count() as u64;
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(placements, summary.served);
    assert_eq!(departures, summary.departed);
}

#[test]
fn shed_policy_refuses_queue_overflow_and_ledgers_it() {
    let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        metrics_addr: None,
        shards: 1,
        router: Router::HashByItem,
        capacity: 1_000_000,
        dims: 1,
        capacities: None,
        // Tiny event-time budget: arrivals stale by ≥ 2 ticks are shed.
        admission: AdmissionPolicy {
            queue_capacity: 4,
            queue_timeout: 2,
        },
        backpressure: BackpressurePolicy::Shed,
        max_sessions: 8,
        read_timeout_ms: 5,
        journal_base: None,
        fsync: FsyncPolicy::Never,
    };
    let (addr_tx, addr_rx) = mpsc::channel::<SocketAddr>();
    let server = std::thread::spawn(move || {
        let factory = SelectorFactory::new("FF", || Box::new(FirstFit::new()));
        run_server(cfg, &factory, stop, |h| addr_tx.send(h.addr).unwrap())
    });
    let addr = addr_rx.recv().unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let mut r = BufReader::new(stream.try_clone().unwrap());
    let mut w = stream;

    // Advance the shard horizon to 100, then offer a stale arrival: the
    // event-time timeout (satellite semantics: wait == timeout drops).
    let fresh = send(
        &mut w,
        &mut r,
        r#"{"op":"arrive","id":1,"at":100,"size":5}"#,
    );
    assert_eq!(get(&fresh, "ok"), serde_json::Value::Bool(true));
    let stale = send(&mut w, &mut r, r#"{"op":"arrive","id":2,"at":98,"size":5}"#);
    assert_eq!(get(&stale, "ok"), serde_json::Value::Bool(false));
    assert_eq!(
        get(&stale, "reason"),
        serde_json::Value::Str("queue_timeout".to_string())
    );

    // Session-table cap: 8 live sessions max.
    let mut table_full = 0;
    for i in 10..30u64 {
        let v = send(
            &mut w,
            &mut r,
            &format!(r#"{{"op":"arrive","id":{i},"at":100,"size":5}}"#),
        );
        if get(&v, "reason") == serde_json::Value::Str("session table full".to_string()) {
            table_full += 1;
        }
    }
    assert!(table_full > 0, "the session table must be bounded");

    drop(w);
    drop(r);
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let summary = server.join().unwrap().expect("server ran");
    assert!(summary.conserved(), "{summary:?}");
    assert_eq!(summary.dropped_timeout, 1);
    assert_eq!(summary.dropped_table_full, table_full);
    assert_eq!(
        summary.served as usize,
        summary.shards[0].in_flight as usize
    );
}
