//! Newline-delimited JSON wire protocol for the live dispatcher.
//!
//! Clients write one JSON object per line and read one JSON reply per
//! request, in order. The protocol is **online**: an arrival carries only
//! what the paper's dispatcher may see — an id, an event-time tick and a
//! size — never the departure time. Departures are separate messages.
//!
//! ```text
//! → {"op":"arrive","id":1,"at":0,"size":6}
//! ← {"ok":true,"id":1,"shard":0,"bin":0}
//! → {"op":"depart","id":1,"at":9}
//! ← {"ok":true,"id":1,"shard":0}
//! ```
//!
//! ## Vector demands
//!
//! A daemon compiled for `D`-dimensional demands (`dbp serve --dims D`)
//! accepts `"demand":[..]` arrays of exactly `D` components:
//!
//! ```text
//! → {"op":"arrive","id":1,"at":0,"demand":[125,90,220]}
//! ```
//!
//! At `D = 1` the scalar `"size"` spelling remains valid (back-compat) and
//! means `"demand":[size]`. A `demand` array whose length differs from the
//! daemon's `D` is refused with a typed `demand_arity: …` reason — never
//! truncated, never a panic — and the connection stays line-synchronized.
//!
//! Malformed lines get `{"ok":false,...,"reason":"..."}` and do not tear
//! the connection down; the stream stays line-synchronized.

use serde::{Deserialize, Serialize};

/// The largest demand dimensionality the daemon ships monomorphized
/// pipelines for ([`Request`] carries demands inline, so this is a wire
/// constant, not a config knob).
pub const MAX_DIMS: usize = 4;

/// One request line as it appears on the wire. `size`/`demand` are only
/// meaningful for `op == "arrive"` and are therefore optional at the serde
/// layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireMsg {
    /// `"arrive"`, `"depart"` or `"ping"`.
    pub op: String,
    /// Client-chosen session id, unique among live sessions.
    pub id: u64,
    /// Event-time tick of the request. Ticks behind a shard's event-time
    /// horizon are clamped forward (event time never rewinds).
    #[serde(default)]
    pub at: u64,
    /// Scalar session size in resource units (arrivals only; valid only
    /// when the daemon runs one-dimensional).
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub size: Option<u64>,
    /// Vector session demand (arrivals only); length must equal the
    /// daemon's dimensionality.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub demand: Option<Vec<u64>>,
}

/// A parsed, validated request. Demands are stored dimension-padded in a
/// fixed array (components at and beyond the daemon's dimensionality are
/// zero) so the type stays `Copy` across the shard queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// A session arrival: place `id` with `demand` at event time `at`.
    Arrive {
        /// Client session id.
        id: u64,
        /// Event-time tick.
        at: u64,
        /// Per-dimension demand, zero-padded past the daemon's `D`.
        demand: [u64; MAX_DIMS],
    },
    /// A session departure: release `id` at event time `at`.
    Depart {
        /// Client session id.
        id: u64,
        /// Event-time tick.
        at: u64,
    },
    /// Liveness probe; answered without touching any shard.
    Ping {
        /// Echoed id.
        id: u64,
    },
}

impl Request {
    /// The session id the request concerns.
    pub fn id(&self) -> u64 {
        match *self {
            Request::Arrive { id, .. } | Request::Depart { id, .. } | Request::Ping { id } => id,
        }
    }
}

/// Parse one wire line into a [`Request`] for a scalar (`D = 1`) daemon.
pub fn parse_line(line: &str) -> Result<Request, String> {
    parse_line_dims(line, 1)
}

/// Parse one wire line into a [`Request`] for a daemon running
/// `dims`-dimensional demands.
///
/// Arrivals must carry exactly one of `size` (scalar spelling, accepted
/// only at `dims == 1`) or `demand` (an array of exactly `dims` positive-sum
/// components). An arity mismatch is a **typed** rejection whose reason
/// starts with `demand_arity:` — the daemon never truncates or pads a
/// client's demand vector.
pub fn parse_line_dims(line: &str, dims: usize) -> Result<Request, String> {
    assert!(
        (1..=MAX_DIMS).contains(&dims),
        "daemon dims {dims} outside 1..={MAX_DIMS}"
    );
    let msg: WireMsg = serde_json::from_str(line).map_err(|e| format!("bad json: {e}"))?;
    match msg.op.as_str() {
        "arrive" => {
            let mut demand = [0u64; MAX_DIMS];
            match (msg.size, msg.demand) {
                (Some(_), Some(_)) => {
                    return Err("arrive takes size or demand, not both".to_string())
                }
                (Some(size), None) => {
                    if dims != 1 {
                        return Err(format!(
                            "demand_arity: scalar size is 1-dimensional, daemon expects {dims} \
                             components (send \"demand\":[..])"
                        ));
                    }
                    if size == 0 {
                        return Err("arrive needs a positive size".to_string());
                    }
                    demand[0] = size;
                }
                (None, Some(vec)) => {
                    if vec.len() != dims {
                        return Err(format!(
                            "demand_arity: demand has {} components, daemon expects {dims}",
                            vec.len()
                        ));
                    }
                    if vec.iter().all(|&c| c == 0) {
                        return Err("arrive needs a nonzero demand".to_string());
                    }
                    demand[..dims].copy_from_slice(&vec);
                }
                (None, None) => return Err("arrive needs a size or demand".to_string()),
            }
            Ok(Request::Arrive {
                id: msg.id,
                at: msg.at,
                demand,
            })
        }
        "depart" => Ok(Request::Depart {
            id: msg.id,
            at: msg.at,
        }),
        "ping" => Ok(Request::Ping { id: msg.id }),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// One reply line. `shard`/`bin` are present on successful placements,
/// `reason` on rejections and drops.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reply {
    /// Whether the request was served.
    pub ok: bool,
    /// The session id the reply concerns (0 for unparseable lines).
    pub id: u64,
    /// Shard that handled the request.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shard: Option<u64>,
    /// Bin the arrival was placed into.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub bin: Option<u64>,
    /// Why the request was not served.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub reason: Option<String>,
}

impl Reply {
    /// A successful placement reply.
    pub fn placed(id: u64, shard: usize, bin: u64) -> Reply {
        Reply {
            ok: true,
            id,
            shard: Some(shard as u64),
            bin: Some(bin),
            reason: None,
        }
    }

    /// A successful non-placement reply (departure, ping).
    pub fn ok(id: u64, shard: Option<usize>) -> Reply {
        Reply {
            ok: true,
            id,
            shard: shard.map(|s| s as u64),
            bin: None,
            reason: None,
        }
    }

    /// A rejection or drop reply.
    pub fn refused(id: u64, reason: impl Into<String>) -> Reply {
        Reply {
            ok: false,
            id,
            shard: None,
            bin: None,
            reason: Some(reason.into()),
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("reply serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d1(size: u64) -> [u64; MAX_DIMS] {
        let mut d = [0u64; MAX_DIMS];
        d[0] = size;
        d
    }

    #[test]
    fn arrive_depart_ping_parse() {
        assert_eq!(
            parse_line(r#"{"op":"arrive","id":7,"at":3,"size":5}"#),
            Ok(Request::Arrive {
                id: 7,
                at: 3,
                demand: d1(5)
            })
        );
        assert_eq!(
            parse_line(r#"{"op":"depart","id":7,"at":9}"#),
            Ok(Request::Depart { id: 7, at: 9 })
        );
        assert_eq!(
            parse_line(r#"{"op":"ping","id":1}"#),
            Ok(Request::Ping { id: 1 })
        );
    }

    #[test]
    fn missing_at_defaults_to_zero() {
        assert_eq!(
            parse_line(r#"{"op":"arrive","id":2,"size":4}"#),
            Ok(Request::Arrive {
                id: 2,
                at: 0,
                demand: d1(4)
            })
        );
    }

    #[test]
    fn bad_lines_are_rejected_not_fatal() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"op":"arrive","id":3,"at":1}"#).is_err());
        assert!(parse_line(r#"{"op":"arrive","id":3,"at":1,"size":0}"#).is_err());
        assert!(parse_line(r#"{"op":"levitate","id":3}"#).is_err());
    }

    #[test]
    fn scalar_spelling_means_one_dimensional_demand() {
        // size at dims==1 and demand:[..] of length 1 parse identically.
        assert_eq!(
            parse_line(r#"{"op":"arrive","id":7,"at":3,"size":5}"#),
            parse_line_dims(r#"{"op":"arrive","id":7,"at":3,"demand":[5]}"#, 1),
        );
        // Mixing the spellings on one line is ambiguous, hence rejected.
        assert!(
            parse_line(r#"{"op":"arrive","id":7,"at":3,"size":5,"demand":[5]}"#)
                .unwrap_err()
                .contains("not both")
        );
    }

    #[test]
    fn vector_demands_parse_at_matching_dims() {
        assert_eq!(
            parse_line_dims(r#"{"op":"arrive","id":4,"at":2,"demand":[125,90,220]}"#, 3),
            Ok(Request::Arrive {
                id: 4,
                at: 2,
                demand: [125, 90, 220, 0]
            })
        );
        // All-zero vectors occupy nothing and are refused like size:0.
        assert!(
            parse_line_dims(r#"{"op":"arrive","id":4,"demand":[0,0,0]}"#, 3)
                .unwrap_err()
                .contains("nonzero")
        );
        // A single zero component is fine: a CPU-only workload has no GPU
        // footprint.
        assert!(parse_line_dims(r#"{"op":"arrive","id":4,"demand":[0,90,220]}"#, 3).is_ok());
    }

    #[test]
    fn arity_mismatches_are_typed_rejections() {
        // Too short, too long, and scalar-at-vector-daemon all carry the
        // demand_arity marker so clients can distinguish them from parse
        // noise; none of them truncates or pads.
        for (line, dims) in [
            (r#"{"op":"arrive","id":4,"demand":[125,90]}"#, 3),
            (r#"{"op":"arrive","id":4,"demand":[125,90,220,7]}"#, 3),
            (r#"{"op":"arrive","id":4,"size":125}"#, 3),
            (r#"{"op":"arrive","id":4,"demand":[125,90]}"#, 1),
        ] {
            let err = parse_line_dims(line, dims).unwrap_err();
            assert!(err.starts_with("demand_arity:"), "{line} -> {err}");
        }
    }

    #[test]
    fn replies_round_trip_and_omit_absent_fields() {
        let r = Reply::placed(7, 2, 3);
        let line = r.to_line();
        assert!(!line.contains("reason"), "{line}");
        let back: Reply = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);

        let d = Reply::refused(9, "queue_full");
        let line = d.to_line();
        assert!(!line.contains("bin"), "{line}");
        let back: Reply = serde_json::from_str(&line).unwrap();
        assert_eq!(back, d);
    }
}
