//! Newline-delimited JSON wire protocol for the live dispatcher.
//!
//! Clients write one JSON object per line and read one JSON reply per
//! request, in order. The protocol is **online**: an arrival carries only
//! what the paper's dispatcher may see — an id, an event-time tick and a
//! size — never the departure time. Departures are separate messages.
//!
//! ```text
//! → {"op":"arrive","id":1,"at":0,"size":6}
//! ← {"ok":true,"id":1,"shard":0,"bin":0}
//! → {"op":"depart","id":1,"at":9}
//! ← {"ok":true,"id":1,"shard":0}
//! ```
//!
//! Malformed lines get `{"ok":false,...,"reason":"..."}` and do not tear
//! the connection down; the stream stays line-synchronized.

use serde::{Deserialize, Serialize};

/// One request line as it appears on the wire. `size` is only meaningful
/// for `op == "arrive"` and is therefore optional at the serde layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireMsg {
    /// `"arrive"`, `"depart"` or `"ping"`.
    pub op: String,
    /// Client-chosen session id, unique among live sessions.
    pub id: u64,
    /// Event-time tick of the request. Ticks behind a shard's event-time
    /// horizon are clamped forward (event time never rewinds).
    #[serde(default)]
    pub at: u64,
    /// Session size in resource units (arrivals only).
    #[serde(default)]
    pub size: Option<u64>,
}

/// A parsed, validated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// A session arrival: place `id` of `size` at event time `at`.
    Arrive {
        /// Client session id.
        id: u64,
        /// Event-time tick.
        at: u64,
        /// Session size.
        size: u64,
    },
    /// A session departure: release `id` at event time `at`.
    Depart {
        /// Client session id.
        id: u64,
        /// Event-time tick.
        at: u64,
    },
    /// Liveness probe; answered without touching any shard.
    Ping {
        /// Echoed id.
        id: u64,
    },
}

impl Request {
    /// The session id the request concerns.
    pub fn id(&self) -> u64 {
        match *self {
            Request::Arrive { id, .. } | Request::Depart { id, .. } | Request::Ping { id } => id,
        }
    }
}

/// Parse one wire line into a [`Request`].
pub fn parse_line(line: &str) -> Result<Request, String> {
    let msg: WireMsg = serde_json::from_str(line).map_err(|e| format!("bad json: {e}"))?;
    match msg.op.as_str() {
        "arrive" => match msg.size {
            Some(size) if size > 0 => Ok(Request::Arrive {
                id: msg.id,
                at: msg.at,
                size,
            }),
            Some(_) => Err("arrive needs a positive size".to_string()),
            None => Err("arrive needs a size".to_string()),
        },
        "depart" => Ok(Request::Depart {
            id: msg.id,
            at: msg.at,
        }),
        "ping" => Ok(Request::Ping { id: msg.id }),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// One reply line. `shard`/`bin` are present on successful placements,
/// `reason` on rejections and drops.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reply {
    /// Whether the request was served.
    pub ok: bool,
    /// The session id the reply concerns (0 for unparseable lines).
    pub id: u64,
    /// Shard that handled the request.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shard: Option<u64>,
    /// Bin the arrival was placed into.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub bin: Option<u64>,
    /// Why the request was not served.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub reason: Option<String>,
}

impl Reply {
    /// A successful placement reply.
    pub fn placed(id: u64, shard: usize, bin: u64) -> Reply {
        Reply {
            ok: true,
            id,
            shard: Some(shard as u64),
            bin: Some(bin),
            reason: None,
        }
    }

    /// A successful non-placement reply (departure, ping).
    pub fn ok(id: u64, shard: Option<usize>) -> Reply {
        Reply {
            ok: true,
            id,
            shard: shard.map(|s| s as u64),
            bin: None,
            reason: None,
        }
    }

    /// A rejection or drop reply.
    pub fn refused(id: u64, reason: impl Into<String>) -> Reply {
        Reply {
            ok: false,
            id,
            shard: None,
            bin: None,
            reason: Some(reason.into()),
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("reply serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrive_depart_ping_parse() {
        assert_eq!(
            parse_line(r#"{"op":"arrive","id":7,"at":3,"size":5}"#),
            Ok(Request::Arrive {
                id: 7,
                at: 3,
                size: 5
            })
        );
        assert_eq!(
            parse_line(r#"{"op":"depart","id":7,"at":9}"#),
            Ok(Request::Depart { id: 7, at: 9 })
        );
        assert_eq!(
            parse_line(r#"{"op":"ping","id":1}"#),
            Ok(Request::Ping { id: 1 })
        );
    }

    #[test]
    fn missing_at_defaults_to_zero() {
        assert_eq!(
            parse_line(r#"{"op":"arrive","id":2,"size":4}"#),
            Ok(Request::Arrive {
                id: 2,
                at: 0,
                size: 4
            })
        );
    }

    #[test]
    fn bad_lines_are_rejected_not_fatal() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"op":"arrive","id":3,"at":1}"#).is_err());
        assert!(parse_line(r#"{"op":"arrive","id":3,"at":1,"size":0}"#).is_err());
        assert!(parse_line(r#"{"op":"levitate","id":3}"#).is_err());
    }

    #[test]
    fn replies_round_trip_and_omit_absent_fields() {
        let r = Reply::placed(7, 2, 3);
        let line = r.to_line();
        assert!(!line.contains("reason"), "{line}");
        let back: Reply = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);

        let d = Reply::refused(9, "queue_full");
        let line = d.to_line();
        assert!(!line.contains("bin"), "{line}");
        let back: Reply = serde_json::from_str(&line).unwrap();
        assert_eq!(back, d);
    }
}
