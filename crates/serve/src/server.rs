//! The live dispatcher daemon: TCP accept loop, thread-per-connection
//! readers, per-shard worker threads over [`ShardPipeline`], a Prometheus
//! `/metrics` endpoint, and the graceful drain protocol.
//!
//! ## Threading model
//!
//! ```text
//! accept loop ──spawns──▶ connection threads (parse, route, enqueue, reply)
//!                              │ bounded sync_channel per shard
//!                              ▼
//!                         shard workers (own a ShardPipeline + journal)
//! metrics loop ──────────  serves GET /metrics from shared atomics
//! ```
//!
//! Every queue is bounded: the per-shard ingress channel holds at most
//! `admission.queue_capacity` messages, the session table at most
//! `max_sessions` live sessions, and each shard engine's memory is O(live
//! sessions + open bins) — nothing in the hot path grows with total stream
//! length except the append-only journal on disk.
//!
//! ## Backpressure
//!
//! With [`BackpressurePolicy::Block`], a full shard queue blocks the
//! connection that is pushing (TCP backpressure propagates to the client).
//! With [`BackpressurePolicy::Shed`], a full queue sheds the arrival with a
//! `queue_full` refusal, accounted in the ledger. Departures are **never**
//! shed — dropping a release would leak capacity — so they always use the
//! blocking path.
//!
//! ## Drain protocol
//!
//! On SIGINT/SIGTERM (or [`crate::shutdown::request_shutdown`]): stop
//! accepting connections → connection readers exit at their next timeout →
//! shard queues disconnect and drain → pipelines seal their journals
//! (flush + fsync + length frame) → the daemon emits one final
//! [`ServeSummary`] whose ledger conserves `served + dropped + lost ==
//! total`.

use dbp_cloudsim::faults::AdmissionPolicy;
use dbp_cluster::router::Router;
use dbp_cluster::vector::{
    apply_route_dims, route_one_dims, unapply_route_dims, zero_loads, DimLoads,
};
use dbp_core::algorithms::selector_for;
use dbp_core::demand::{Demand, VSize};
use dbp_core::item::Size;
use dbp_core::packer::SelectorFactory;
use dbp_core::probe::DropReason;
use dbp_obs::journal::{FsyncPolicy, JournalProbe};
use dbp_obs::metrics::MetricsRegistry;
use serde::Serialize;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use crate::protocol::{parse_line_dims, Reply, Request, MAX_DIMS};
use crate::shard::{GShardPipeline, Outcome, ServeProbe, ShardLedger, ShardPipeline};

/// What to do when a shard's bounded ingress queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the pushing connection until the queue has room.
    Block,
    /// Refuse the arrival with a ledgered `queue_full` drop.
    Shed,
}

impl BackpressurePolicy {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::Shed => "shed",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Result<BackpressurePolicy, String> {
        match s {
            "block" => Ok(BackpressurePolicy::Block),
            "shed" => Ok(BackpressurePolicy::Shed),
            other => Err(format!(
                "unknown backpressure policy {other:?} (block|shed)"
            )),
        }
    }
}

/// Daemon configuration. See module docs for the semantics of each knob.
pub struct ServeConfig {
    /// Ingest listener address, e.g. `127.0.0.1:7878` (`:0` for an
    /// ephemeral port, reported by [`ServeHandle::addr`]).
    pub addr: String,
    /// `/metrics` listener address, or `None` for no metrics endpoint.
    pub metrics_addr: Option<String>,
    /// Number of shard pipelines.
    pub shards: usize,
    /// Online routing policy.
    pub router: Router,
    /// Bin capacity of every shard (dimension 0; see `capacities`).
    pub capacity: u64,
    /// Demand dimensionality the daemon runs at (`1..=MAX_DIMS`). Scalar
    /// clients (`"size":n`) are only accepted at `dims == 1`.
    pub dims: usize,
    /// Per-dimension bin capacities (length must equal `dims`); `None`
    /// splats `capacity` across every dimension.
    pub capacities: Option<Vec<u64>>,
    /// Bounded-queue admission: `queue_capacity` sizes each shard's ingress
    /// channel, `queue_timeout` is the event-time shed threshold.
    pub admission: AdmissionPolicy,
    /// Full-queue behavior for arrivals.
    pub backpressure: BackpressurePolicy,
    /// Maximum live sessions across all shards (bounded session table).
    pub max_sessions: usize,
    /// Per-connection read timeout; also the shutdown poll cadence.
    pub read_timeout_ms: u64,
    /// Journal path base: shard `k` writes `{base}.shard{k}`.
    pub journal_base: Option<PathBuf>,
    /// Journal fsync policy.
    pub fsync: FsyncPolicy,
}

impl ServeConfig {
    /// A local test/default configuration on ephemeral ports.
    pub fn local(shards: usize, capacity: u64) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            metrics_addr: Some("127.0.0.1:0".to_string()),
            shards,
            router: Router::HashByItem,
            capacity,
            dims: 1,
            capacities: None,
            admission: AdmissionPolicy::default(),
            backpressure: BackpressurePolicy::Block,
            max_sessions: 65_536,
            read_timeout_ms: 25,
            journal_base: None,
            fsync: FsyncPolicy::Always,
        }
    }

    /// The effective per-dimension capacity vector (`capacities`, or
    /// `capacity` splatted across `dims`).
    pub fn capacity_vec(&self) -> Vec<u64> {
        match &self.capacities {
            Some(v) => v.clone(),
            None => vec![self.capacity; self.dims],
        }
    }

    /// Reject impossible dims/capacity combinations before any thread or
    /// socket exists.
    fn validate(&self) -> Result<(), String> {
        if !(1..=MAX_DIMS).contains(&self.dims) {
            return Err(format!("dims {} outside 1..={MAX_DIMS}", self.dims));
        }
        let caps = self.capacity_vec();
        if caps.len() != self.dims {
            return Err(format!(
                "demand_arity: {} capacities configured, daemon runs {} dimensions",
                caps.len(),
                self.dims
            ));
        }
        if caps.contains(&0) {
            return Err("bin capacity must be positive in every dimension".to_string());
        }
        Ok(())
    }
}

/// Final per-shard report, embedded in [`ServeSummary`].
#[derive(Debug, Clone, Serialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u64,
    /// Arrivals offered to the pipeline.
    pub offered: u64,
    /// Arrivals placed.
    pub placed: u64,
    /// Event-time queue-timeout sheds.
    pub dropped_timeout: u64,
    /// Invalid arrivals refused by the pipeline.
    pub rejected: u64,
    /// Departures applied.
    pub departed: u64,
    /// Arrivals enqueued but never processed (teardown leftovers).
    pub lost: u64,
    /// Sessions still in flight at drain (served, not lost).
    pub in_flight: u64,
    /// Bins open at drain.
    pub open_bins: u64,
    /// Bins opened over the shard's lifetime.
    pub bins_opened: u64,
    /// Journal seal error, if the shard's journal could not be flushed.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

/// The daemon's final conserved ledger, emitted at drain.
#[derive(Debug, Clone, Serialize)]
pub struct ServeSummary {
    /// Every arrival that reached the front door (parsed `arrive` lines).
    pub total: u64,
    /// Arrivals placed into a bin.
    pub served: u64,
    /// Arrivals refused anywhere: front door or pipeline.
    pub dropped: u64,
    /// Arrivals accepted into a queue but never processed.
    pub lost: u64,
    /// Departures applied.
    pub departed: u64,
    /// Front-door sheds: bounded ingress queue full ([`BackpressurePolicy::Shed`]).
    pub dropped_queue_full: u64,
    /// Front-door sheds: session table full.
    pub dropped_table_full: u64,
    /// Front-door refusals: duplicate live session id.
    pub dropped_duplicate: u64,
    /// Pipeline sheds: event-time queue timeout.
    pub dropped_timeout: u64,
    /// Pipeline refusals: invalid arrivals (oversized, …).
    pub rejected: u64,
    /// Wire lines that failed to parse.
    pub bad_lines: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
    /// Peak resident set size, if the platform exposes it.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub peak_rss_bytes: Option<u64>,
    /// Per-shard breakdown.
    pub shards: Vec<ShardReport>,
}

impl ServeSummary {
    /// The drain invariant: `served + dropped + lost == total`.
    pub fn conserved(&self) -> bool {
        self.served + self.dropped + self.lost == self.total
    }

    /// Serialize to one JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("summary serializes")
    }
}

/// Shared atomic counters backing `/metrics` and the final summary.
#[derive(Debug)]
struct ShardCounters {
    offered: AtomicU64,
    placed: AtomicU64,
    departed: AtomicU64,
    dropped_timeout: AtomicU64,
    rejected: AtomicU64,
    accepted: AtomicU64,
    open_bins: AtomicU64,
    in_flight: AtomicU64,
    bins_opened: AtomicU64,
}

impl ShardCounters {
    fn new() -> ShardCounters {
        ShardCounters {
            offered: AtomicU64::new(0),
            placed: AtomicU64::new(0),
            departed: AtomicU64::new(0),
            dropped_timeout: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            open_bins: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            bins_opened: AtomicU64::new(0),
        }
    }
}

/// All live-scrape state.
#[derive(Debug)]
struct ServeMetrics {
    shards: Vec<ShardCounters>,
    queue_full: AtomicU64,
    table_full: AtomicU64,
    duplicate: AtomicU64,
    bad_lines: AtomicU64,
    connections: AtomicU64,
    connections_open: AtomicU64,
    sessions_live: AtomicU64,
}

impl ServeMetrics {
    fn new(shards: usize) -> ServeMetrics {
        ServeMetrics {
            shards: (0..shards).map(|_| ShardCounters::new()).collect(),
            queue_full: AtomicU64::new(0),
            table_full: AtomicU64::new(0),
            duplicate: AtomicU64::new(0),
            bad_lines: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            sessions_live: AtomicU64::new(0),
        }
    }

    /// Render the Prometheus exposition text.
    fn to_prometheus(&self) -> String {
        let ld = Ordering::Relaxed;
        let mut reg = MetricsRegistry::new();
        reg.counter_add("serve_dropped_queue_full_total", self.queue_full.load(ld));
        reg.counter_add("serve_dropped_table_full_total", self.table_full.load(ld));
        reg.counter_add("serve_dropped_duplicate_total", self.duplicate.load(ld));
        reg.counter_add("serve_bad_lines_total", self.bad_lines.load(ld));
        reg.counter_add("serve_connections_total", self.connections.load(ld));
        reg.gauge_set(
            "serve_connections_open",
            self.connections_open.load(ld) as i64,
        );
        reg.gauge_set("serve_sessions_live", self.sessions_live.load(ld) as i64);
        for (k, c) in self.shards.iter().enumerate() {
            let mut sreg = MetricsRegistry::new();
            sreg.counter_add("serve_shard_offered_total", c.offered.load(ld));
            sreg.counter_add("serve_shard_placed_total", c.placed.load(ld));
            sreg.counter_add("serve_shard_departed_total", c.departed.load(ld));
            sreg.counter_add(
                "serve_shard_dropped_timeout_total",
                c.dropped_timeout.load(ld),
            );
            sreg.counter_add("serve_shard_rejected_total", c.rejected.load(ld));
            sreg.counter_add("serve_shard_bins_opened_total", c.bins_opened.load(ld));
            sreg.gauge_set("serve_shard_open_bins", c.open_bins.load(ld) as i64);
            sreg.gauge_set("serve_shard_in_flight", c.in_flight.load(ld) as i64);
            reg.absorb_labeled(&sreg, "shard", &k.to_string());
        }
        reg.to_prometheus()
    }
}

/// One message on a shard's bounded ingress queue.
struct ShardMsg {
    req: Request,
    reply: Sender<Reply>,
}

/// Front-door shared state: the bounded session table and the live
/// per-shard load view the least-loaded router consults.
struct FrontDoor {
    /// external id → (shard, demand) for every live session.
    sessions: HashMap<u64, (usize, [u64; MAX_DIMS])>,
    /// Active routed load per shard **per dimension**, maintained
    /// add-on-route / subtract-on-depart — the fold the batch router proves
    /// consistent. At `dims == 1` this is the scalar load view.
    loads: DimLoads,
    /// Ingress senders; `None` once drain has begun.
    txs: Option<Vec<SyncSender<ShardMsg>>>,
}

struct Shared {
    cfg: ServeConfig,
    front: Mutex<FrontDoor>,
    metrics: ServeMetrics,
    stop: &'static AtomicBool,
}

/// Addresses the daemon actually bound (resolves `:0` requests).
#[derive(Debug, Clone)]
pub struct ServeHandle {
    /// Ingest address.
    pub addr: std::net::SocketAddr,
    /// Metrics address, when a metrics listener is up.
    pub metrics_addr: Option<std::net::SocketAddr>,
}

/// Run the daemon until `stop` is raised, then drain and return the final
/// conserved summary. `on_ready` fires once with the bound addresses
/// (tests connect through it; the CLI prints them).
pub fn run_server(
    cfg: ServeConfig,
    factory: &SelectorFactory,
    stop: &'static AtomicBool,
    on_ready: impl FnOnce(&ServeHandle),
) -> Result<ServeSummary, String> {
    cfg.validate()?;
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let metrics_listener = match &cfg.metrics_addr {
        Some(addr) => {
            let l = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
            l.set_nonblocking(true)
                .map_err(|e| format!("set_nonblocking: {e}"))?;
            Some(l)
        }
        None => None,
    };
    let handle = ServeHandle {
        addr: listener.local_addr().map_err(|e| e.to_string())?,
        metrics_addr: match &metrics_listener {
            Some(l) => Some(l.local_addr().map_err(|e| e.to_string())?),
            None => None,
        },
    };

    assert!(cfg.shards > 0, "a daemon needs at least one shard");
    let queue_cap = (cfg.admission.queue_capacity as usize).max(1);
    let mut txs = Vec::with_capacity(cfg.shards);
    let mut rxs = Vec::with_capacity(cfg.shards);
    for _ in 0..cfg.shards {
        let (tx, rx) = mpsc::sync_channel::<ShardMsg>(queue_cap);
        txs.push(tx);
        rxs.push(rx);
    }
    let shards = cfg.shards;
    let shared = Shared {
        metrics: ServeMetrics::new(shards),
        front: Mutex::new(FrontDoor {
            sessions: HashMap::new(),
            loads: zero_loads(shards, cfg.dims),
            txs: Some(txs),
        }),
        cfg,
        stop,
    };

    on_ready(&handle);

    let mut reports: Vec<ShardReport> = Vec::new();
    std::thread::scope(|s| -> Result<(), String> {
        // Shard workers.
        let workers: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(k, rx)| {
                let shared = &shared;
                s.spawn(move || shard_worker(k, rx, shared, factory))
            })
            .collect();

        // Metrics endpoint.
        if let Some(l) = metrics_listener {
            let shared = &shared;
            s.spawn(move || metrics_loop(l, shared));
        }

        // Accept loop.
        let mut conns = Vec::new();
        while !shared.stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                    shared
                        .metrics
                        .connections_open
                        .fetch_add(1, Ordering::Relaxed);
                    let shared = &shared;
                    conns.push(s.spawn(move || {
                        handle_connection(stream, shared);
                        shared
                            .metrics
                            .connections_open
                            .fetch_sub(1, Ordering::Relaxed);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(format!("accept: {e}")),
            }
        }

        // Drain: connections exit at their next read-timeout poll.
        for c in conns {
            let _ = c.join();
        }
        // Disconnect the shard queues; workers drain what is left and seal.
        shared.front.lock().unwrap().txs = None;
        for w in workers {
            reports.push(w.join().map_err(|_| "shard worker panicked".to_string())?);
        }
        Ok(())
    })?;

    reports.sort_by_key(|r| r.shard);
    let m = &shared.metrics;
    let ld = Ordering::Relaxed;
    let front_drops = m.queue_full.load(ld) + m.table_full.load(ld) + m.duplicate.load(ld);
    let offered: u64 = reports.iter().map(|r| r.offered).sum();
    let lost: u64 = reports.iter().map(|r| r.lost).sum();
    let summary = ServeSummary {
        total: offered + lost + front_drops,
        served: reports.iter().map(|r| r.placed).sum(),
        dropped: front_drops
            + reports
                .iter()
                .map(|r| r.dropped_timeout + r.rejected)
                .sum::<u64>(),
        lost,
        departed: reports.iter().map(|r| r.departed).sum(),
        dropped_queue_full: m.queue_full.load(ld),
        dropped_table_full: m.table_full.load(ld),
        dropped_duplicate: m.duplicate.load(ld),
        dropped_timeout: reports.iter().map(|r| r.dropped_timeout).sum(),
        rejected: reports.iter().map(|r| r.rejected).sum(),
        bad_lines: m.bad_lines.load(ld),
        connections: m.connections.load(ld),
        peak_rss_bytes: dbp_obs::manifest::peak_rss_bytes(),
        shards: reports,
    };
    debug_assert!(summary.conserved(), "drain ledger must conserve");
    Ok(summary)
}

/// The dimension-erased face of [`GShardPipeline`]: exactly what the shard
/// worker's hot loop needs. One monomorphization per supported `D` exists
/// behind [`build_pipeline`]'s `match`, chosen once at daemon start — the
/// per-request path pays one vtable hop, never a dims branch.
trait DynPipeline {
    fn handle(&mut self, req: &Request) -> Outcome;
    fn open_bins(&self) -> usize;
    fn in_flight(&self) -> usize;
    fn bins_opened(&self) -> usize;
    fn seal(self: Box<Self>) -> Result<(ShardLedger, usize, usize), String>;
}

impl<Sz: dbp_core::demand::Demand> DynPipeline for GShardPipeline<Sz> {
    fn handle(&mut self, req: &Request) -> Outcome {
        GShardPipeline::handle(self, req)
    }
    fn open_bins(&self) -> usize {
        GShardPipeline::open_bins(self)
    }
    fn in_flight(&self) -> usize {
        GShardPipeline::in_flight(self)
    }
    fn bins_opened(&self) -> usize {
        GShardPipeline::bins_opened(self)
    }
    fn seal(self: Box<Self>) -> Result<(ShardLedger, usize, usize), String> {
        GShardPipeline::seal(*self)
    }
}

/// Build the shard pipeline for the configured dimensionality. At
/// `dims == 1` the factory's own builder runs, so the full scalar roster
/// (WF/NF/LF/MI/RF/HFF included) keeps working byte-identically; vector
/// daemons resolve the dimension-agnostic selectors by roster name.
fn build_pipeline(
    cfg: &ServeConfig,
    factory: &SelectorFactory,
    probe: ServeProbe,
) -> Result<Box<dyn DynPipeline>, String> {
    fn vec_pipe<const D: usize>(
        caps: &[u64],
        factory: &SelectorFactory,
        admission: AdmissionPolicy,
        probe: ServeProbe,
    ) -> Result<Box<dyn DynPipeline>, String> {
        let capacity = VSize::<D>::from_components(&caps[..D]).expect("validated capacities");
        let selector = selector_for::<VSize<D>>(factory.name()).ok_or_else(|| {
            format!(
                "selector {} is scalar-only; vector daemons take FF, BF, MFF(8) or DOM",
                factory.name()
            )
        })?;
        Ok(Box::new(GShardPipeline::<VSize<D>>::with_probe(
            capacity, selector, admission, probe,
        )))
    }
    let caps = cfg.capacity_vec();
    match cfg.dims {
        1 => Ok(Box::new(ShardPipeline::with_probe(
            Size(caps[0]),
            factory.build(),
            cfg.admission,
            probe,
        ))),
        2 => vec_pipe::<2>(&caps, factory, cfg.admission, probe),
        3 => vec_pipe::<3>(&caps, factory, cfg.admission, probe),
        4 => vec_pipe::<4>(&caps, factory, cfg.admission, probe),
        d => Err(format!("dims {d} outside 1..={MAX_DIMS}")),
    }
}

/// A shard report carrying only an error (journal open / seal failures).
fn error_report(k: usize, bins_opened: u64, error: String) -> ShardReport {
    ShardReport {
        shard: k as u64,
        offered: 0,
        placed: 0,
        dropped_timeout: 0,
        rejected: 0,
        departed: 0,
        lost: 0,
        in_flight: 0,
        open_bins: 0,
        bins_opened,
        error: Some(error),
    }
}

/// One shard worker: drains its ingress queue into a [`GShardPipeline`]
/// monomorphized for the configured dims, publishes counters, and seals
/// the journal on disconnect.
fn shard_worker(
    k: usize,
    rx: Receiver<ShardMsg>,
    shared: &Shared,
    factory: &SelectorFactory,
) -> ShardReport {
    let probe = match &shared.cfg.journal_base {
        Some(base) => {
            let path = journal_shard_path(base, k);
            match JournalProbe::create_dims(&path, shared.cfg.fsync, shared.cfg.dims) {
                Ok(j) => ServeProbe { journal: Some(j) },
                Err(e) => {
                    return error_report(k, 0, format!("open journal {}: {e}", path.display()))
                }
            }
        }
        None => ServeProbe::default(),
    };
    let mut pipe = match build_pipeline(&shared.cfg, factory, probe) {
        Ok(p) => p,
        Err(e) => return error_report(k, 0, e),
    };
    let counters = &shared.metrics.shards[k];
    while let Ok(msg) = rx.recv() {
        let outcome = pipe.handle(&msg.req);
        publish(counters, &*pipe, &msg.req, &outcome);
        let reply = reply_for(k, &msg.req, &outcome);
        let _ = msg.reply.send(reply);
    }
    let bins_opened = pipe.bins_opened() as u64;
    let accepted = counters.accepted.load(Ordering::Relaxed);
    match pipe.seal() {
        Ok((ledger, in_flight, open_bins)) => ShardReport {
            shard: k as u64,
            offered: ledger.offered,
            placed: ledger.placed,
            dropped_timeout: ledger.dropped_timeout,
            rejected: ledger.rejected,
            departed: ledger.departed,
            lost: accepted.saturating_sub(ledger.offered),
            in_flight: in_flight as u64,
            open_bins: open_bins as u64,
            bins_opened,
            error: None,
        },
        Err(e) => error_report(k, bins_opened, e),
    }
}

/// Per-shard journal path: `{base}.shard{k}` — the same layout `dbp
/// cluster --journal` uses, so `dbp recover` reads both.
pub fn journal_shard_path(base: &std::path::Path, shard: usize) -> PathBuf {
    let mut s = base.as_os_str().to_os_string();
    s.push(format!(".shard{shard}"));
    PathBuf::from(s)
}

fn publish(counters: &ShardCounters, pipe: &dyn DynPipeline, req: &Request, outcome: &Outcome) {
    let ld = Ordering::Relaxed;
    match req {
        Request::Arrive { .. } => {
            counters.offered.fetch_add(1, ld);
        }
        Request::Depart { .. } => {}
        Request::Ping { .. } => {}
    }
    match outcome {
        Outcome::Placed { .. } => {
            counters.placed.fetch_add(1, ld);
        }
        Outcome::Departed => {
            counters.departed.fetch_add(1, ld);
        }
        Outcome::Dropped { .. } => {
            counters.dropped_timeout.fetch_add(1, ld);
        }
        Outcome::Rejected { .. } => {
            counters.rejected.fetch_add(1, ld);
        }
        Outcome::Pong => {}
    }
    counters.open_bins.store(pipe.open_bins() as u64, ld);
    counters.in_flight.store(pipe.in_flight() as u64, ld);
    counters.bins_opened.store(pipe.bins_opened() as u64, ld);
}

fn reply_for(shard: usize, req: &Request, outcome: &Outcome) -> Reply {
    let id = req.id();
    match outcome {
        Outcome::Placed { bin } => Reply::placed(id, shard, bin.0 as u64),
        Outcome::Departed => Reply::ok(id, Some(shard)),
        Outcome::Pong => Reply::ok(id, Some(shard)),
        Outcome::Dropped { reason } => Reply::refused(id, reason.name()),
        Outcome::Rejected { reason } => Reply::refused(id, reason.clone()),
    }
}

/// One connection: read NDJSON lines, route, enqueue, reply in order.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    let _ = stream.set_nodelay(true);
    let mut reader = stream.try_clone().expect("clone stream");
    let mut writer = stream;
    // Per-connection sender clones; dropped when the connection exits.
    let txs: Option<Vec<SyncSender<ShardMsg>>> = shared.front.lock().unwrap().txs.clone();
    let Some(txs) = txs else { return }; // already draining
    let (rtx, rrx) = mpsc::channel::<Reply>();

    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Serve every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let reply = serve_line(line, shared, &txs, &rtx, &rrx);
            let mut out = reply.to_line();
            out.push('\n');
            if writer.write_all(out.as_bytes()).is_err() {
                break 'conn;
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => break,
        }
    }
}

/// Parse, route and serve one request line, returning the reply to write.
fn serve_line(
    line: &str,
    shared: &Shared,
    txs: &[SyncSender<ShardMsg>],
    rtx: &Sender<Reply>,
    rrx: &Receiver<Reply>,
) -> Reply {
    let req = match parse_line_dims(line, shared.cfg.dims) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.bad_lines.fetch_add(1, Ordering::Relaxed);
            return Reply::refused(0, e);
        }
    };
    match req {
        Request::Ping { id } => Reply::ok(id, None),
        Request::Arrive { id, demand, .. } => {
            let dims = shared.cfg.dims;
            // Front door: bounded session table + online routing.
            let shard = {
                let mut front = shared.front.lock().unwrap();
                if front.sessions.contains_key(&id) {
                    shared.metrics.duplicate.fetch_add(1, Ordering::Relaxed);
                    return Reply::refused(id, format!("duplicate session id {id}"));
                }
                if front.sessions.len() >= shared.cfg.max_sessions {
                    shared.metrics.table_full.fetch_add(1, Ordering::Relaxed);
                    return Reply::refused(id, "session table full");
                }
                let shard = route_one_dims(shared.cfg.router, id, &demand[..dims], &front.loads);
                apply_route_dims(&mut front.loads, shard, &demand[..dims]);
                front.sessions.insert(id, (shard, demand));
                shared
                    .metrics
                    .sessions_live
                    .store(front.sessions.len() as u64, Ordering::Relaxed);
                shard
            };
            let msg = ShardMsg {
                req,
                reply: rtx.clone(),
            };
            let enqueued = match shared.cfg.backpressure {
                BackpressurePolicy::Block => txs[shard].send(msg).is_ok(),
                BackpressurePolicy::Shed => match txs[shard].try_send(msg) {
                    Ok(()) => true,
                    Err(TrySendError::Full(_)) => {
                        shared.metrics.queue_full.fetch_add(1, Ordering::Relaxed);
                        undo_route(shared, id);
                        return Reply::refused(id, DropReason::QueueFull.name());
                    }
                    Err(TrySendError::Disconnected(_)) => false,
                },
            };
            if !enqueued {
                undo_route(shared, id);
                return Reply::refused(id, "draining");
            }
            shared.metrics.shards[shard]
                .accepted
                .fetch_add(1, Ordering::Relaxed);
            let reply = rrx
                .recv()
                .unwrap_or_else(|_| Reply::refused(id, "draining"));
            if !reply.ok {
                // The pipeline refused it (timeout shed, oversized, …);
                // release the session-table slot and the routed load.
                undo_route(shared, id);
            }
            reply
        }
        Request::Depart { id, .. } => {
            let shard = {
                let mut front = shared.front.lock().unwrap();
                let Some((shard, demand)) = front.sessions.remove(&id) else {
                    return Reply::refused(id, format!("unknown session id {id}"));
                };
                unapply_route_dims(&mut front.loads, shard, &demand[..shared.cfg.dims]);
                shared
                    .metrics
                    .sessions_live
                    .store(front.sessions.len() as u64, Ordering::Relaxed);
                shard
            };
            // Departures free capacity: never shed, always block.
            let msg = ShardMsg {
                req,
                reply: rtx.clone(),
            };
            if txs[shard].send(msg).is_err() {
                return Reply::refused(id, "draining");
            }
            rrx.recv()
                .unwrap_or_else(|_| Reply::refused(id, "draining"))
        }
    }
}

/// Roll a routed-but-refused arrival back out of the front door.
fn undo_route(shared: &Shared, id: u64) {
    let mut front = shared.front.lock().unwrap();
    if let Some((shard, demand)) = front.sessions.remove(&id) {
        unapply_route_dims(&mut front.loads, shard, &demand[..shared.cfg.dims]);
        shared
            .metrics
            .sessions_live
            .store(front.sessions.len() as u64, Ordering::Relaxed);
    }
}

/// The full `/metrics` exposition: the atomic counters plus the live
/// per-dimension view — routed demand, rented capacity (open bins ×
/// per-dimension capacity), absolute waste and utilization in
/// parts-per-million, one `dim="d"` label per dimension. At `dims == 1`
/// the block describes the scalar daemon's single resource.
fn render_metrics(shared: &Shared) -> String {
    let mut text = shared.metrics.to_prometheus();
    let ld = Ordering::Relaxed;
    let caps = shared.cfg.capacity_vec();
    let loads: DimLoads = shared.front.lock().unwrap().loads.clone();
    let open_bins: u128 = shared
        .metrics
        .shards
        .iter()
        .map(|c| c.open_bins.load(ld) as u128)
        .sum();
    let clamp = |v: u128| v.min(i64::MAX as u128) as i64;
    let mut reg = MetricsRegistry::new();
    for (d, &cap) in caps.iter().enumerate() {
        let demand: u128 = loads.iter().map(|per_shard| per_shard[d]).sum();
        let rented = open_bins * cap as u128;
        let mut dreg = MetricsRegistry::new();
        dreg.gauge_set("serve_dim_demand", clamp(demand));
        dreg.gauge_set("serve_dim_rented", clamp(rented));
        dreg.gauge_set("serve_dim_waste", clamp(rented.saturating_sub(demand)));
        dreg.gauge_set(
            "serve_dim_utilization_ppm",
            (demand * 1_000_000).checked_div(rented).map_or(0, clamp),
        );
        reg.absorb_labeled(&dreg, "dim", &d.to_string());
    }
    text.push_str(&reg.to_prometheus());
    text
}

/// Minimal HTTP/1.1 responder for `GET /metrics` (and a `/healthz` probe).
fn metrics_loop(listener: TcpListener, shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut req = [0u8; 1024];
                let n = stream.read(&mut req).unwrap_or(0);
                let head = String::from_utf8_lossy(&req[..n]);
                let (status, body) = if head.starts_with("GET /healthz") {
                    ("200 OK", "ok\n".to_string())
                } else if head.starts_with("GET /metrics") || head.starts_with("GET / ") {
                    ("200 OK", render_metrics(shared))
                } else {
                    ("404 Not Found", "not found\n".to_string())
                };
                let resp = format!(
                    "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(resp.as_bytes());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}
