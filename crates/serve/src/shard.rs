//! One shard of the live dispatcher: a deterministic, single-threaded
//! pipeline over the streaming core.
//!
//! The pipeline owns a [`StreamingEngine`] in *open mode* (arrivals carry no
//! departure — the online model), an external→internal session map, the
//! event-time admission check reused from
//! [`dbp_cloudsim::faults::AdmissionPolicy`], and an optional write-ahead
//! journal. Everything here is synchronous and deterministic: the daemon
//! wraps one pipeline per worker thread, tests and the shed-determinism
//! proptest drive it directly.
//!
//! ## Admission semantics
//!
//! Arrivals are admitted in **event time**, matching the fault layer: the
//! effective processing tick is `now = max(horizon, at)` (event time never
//! rewinds), the queueing delay is `wait = now − at`, and
//! `wait >= queue_timeout` is a [`DropReason::QueueTimeout`] drop — the
//! boundary `wait == timeout` drops, exactly as in the batch simulator.
//! Queue-*capacity* sheds happen at the daemon's front door (the bounded
//! ingress channel) before a message reaches the pipeline, so they are
//! ledgered by the server, not here.

use dbp_cloudsim::faults::AdmissionPolicy;
use dbp_core::bin::BinId;
use dbp_core::demand::Demand;
use dbp_core::item::{ItemId, RegionId, Size};
use dbp_core::packer::BinSelector;
use dbp_core::probe::{DropReason, GProbeEvent, Probe};
use dbp_core::streaming::StreamingEngine;
use dbp_core::time::Tick;
use dbp_obs::journal::JournalProbe;
use std::collections::HashMap;

use crate::protocol::Request;

/// The shard probe: forwards every engine event to the write-ahead journal
/// when one is attached. Always enabled — a live dispatcher's history *is*
/// its journal.
#[derive(Debug, Default)]
pub struct ServeProbe {
    /// The shard's journal, if journaling is on.
    pub journal: Option<JournalProbe>,
}

impl<Sz: Demand> Probe<Sz> for ServeProbe {
    fn record(&mut self, event: GProbeEvent<Sz>) {
        if let Some(j) = self.journal.as_mut() {
            Probe::<Sz>::record(j, event);
        }
    }
}

/// Exact per-shard accounting. Every arrival offered to the pipeline gets
/// exactly one of {placed, dropped_timeout, rejected}, so
/// [`ShardLedger::conserved`] holds at all times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLedger {
    /// Arrivals offered to this pipeline.
    pub offered: u64,
    /// Arrivals placed into a bin.
    pub placed: u64,
    /// Arrivals shed by the event-time queue timeout.
    pub dropped_timeout: u64,
    /// Arrivals refused as invalid (duplicate id, oversized, id space
    /// exhausted).
    pub rejected: u64,
    /// Departures applied.
    pub departed: u64,
    /// Departure requests for unknown sessions.
    pub bad_departs: u64,
}

impl ShardLedger {
    /// `placed + dropped + rejected == offered` — no arrival unaccounted.
    pub fn conserved(&self) -> bool {
        self.placed + self.dropped_timeout + self.rejected == self.offered
    }
}

/// What happened to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The arrival was placed into `bin`.
    Placed {
        /// The bin chosen by the selector.
        bin: BinId,
    },
    /// The departure was applied.
    Departed,
    /// The arrival was shed by admission control.
    Dropped {
        /// Which admission rule fired.
        reason: DropReason,
    },
    /// The request was invalid (duplicate / unknown id, oversized, …).
    Rejected {
        /// Human-readable refusal.
        reason: String,
    },
    /// A ping; no shard state touched.
    Pong,
}

/// One shard's deterministic dispatch pipeline over `Sz`-dimensional
/// demands. See the module docs. The scalar daemon uses the
/// [`ShardPipeline`] alias; vector daemons monomorphize per `--dims`.
pub struct GShardPipeline<Sz: Demand = Size> {
    engine: StreamingEngine<Box<dyn BinSelector<Sz>>, ServeProbe, Sz>,
    admission: AdmissionPolicy,
    /// Live external id → dense internal engine id.
    sessions: HashMap<u64, ItemId>,
    next_internal: u32,
    /// Running accounting, updated on every request.
    pub ledger: ShardLedger,
}

/// The scalar (`D = 1`) pipeline the original daemon shipped.
pub type ShardPipeline = GShardPipeline<Size>;

impl<Sz: Demand> GShardPipeline<Sz> {
    /// Build a pipeline with no journal.
    pub fn new(
        capacity: Sz,
        selector: Box<dyn BinSelector<Sz>>,
        admission: AdmissionPolicy,
    ) -> GShardPipeline<Sz> {
        GShardPipeline::with_probe(capacity, selector, admission, ServeProbe::default())
    }

    /// Build a pipeline writing every engine event to `probe.journal`.
    pub fn with_probe(
        capacity: Sz,
        selector: Box<dyn BinSelector<Sz>>,
        admission: AdmissionPolicy,
        probe: ServeProbe,
    ) -> GShardPipeline<Sz> {
        GShardPipeline {
            engine: StreamingEngine::new(capacity, selector, probe),
            admission,
            sessions: HashMap::new(),
            next_internal: 0,
            ledger: ShardLedger::default(),
        }
    }

    /// The shard's event-time horizon.
    pub fn horizon(&self) -> Tick {
        self.engine.horizon()
    }

    /// Currently open bins.
    pub fn open_bins(&self) -> usize {
        self.engine.open_bins()
    }

    /// Bins opened over the shard's lifetime.
    pub fn bins_opened(&self) -> usize {
        self.engine.bins_opened()
    }

    /// Live (placed, not yet departed) sessions.
    pub fn in_flight(&self) -> usize {
        self.engine.in_flight()
    }

    /// Handle one request; never panics on client input. Arrival demands
    /// are read from the first `Sz::DIMS` components of the wire array —
    /// the protocol layer has already arity-checked them against the
    /// daemon's dimensionality, so no truncation can happen here.
    pub fn handle(&mut self, req: &Request) -> Outcome {
        match *req {
            Request::Arrive { id, at, demand } => self.handle_arrive(id, at, &demand),
            Request::Depart { id, at } => self.handle_depart(id, at),
            Request::Ping { .. } => Outcome::Pong,
        }
    }

    fn handle_arrive(&mut self, external: u64, at: u64, demand: &[u64]) -> Outcome {
        self.ledger.offered += 1;
        if self.sessions.contains_key(&external) {
            self.ledger.rejected += 1;
            return Outcome::Rejected {
                reason: format!("duplicate session id {external}"),
            };
        }
        if self.next_internal == u32::MAX {
            self.ledger.rejected += 1;
            return Outcome::Rejected {
                reason: "shard id space exhausted".to_string(),
            };
        }
        let Some(size) = Sz::from_components(&demand[..Sz::DIMS]) else {
            self.ledger.rejected += 1;
            return Outcome::Rejected {
                reason: format!(
                    "demand_arity: demand has {} components, shard expects {}",
                    demand.len().min(Sz::DIMS),
                    Sz::DIMS
                ),
            };
        };
        // Event-time admission: the arrival is processed at the shard's
        // horizon if it queued behind earlier work; waiting `queue_timeout`
        // ticks or more (boundary inclusive) is a shed.
        let at = Tick(at);
        let now = self.engine.horizon().max(at);
        let wait = now.raw() - at.raw();
        let internal = ItemId(self.next_internal);
        if wait >= self.admission.queue_timeout {
            self.next_internal += 1;
            Probe::<Sz>::record(
                self.engine.probe_mut(),
                GProbeEvent::ItemDropped {
                    at: now,
                    item: internal,
                    reason: DropReason::QueueTimeout,
                },
            );
            self.ledger.dropped_timeout += 1;
            return Outcome::Dropped {
                reason: DropReason::QueueTimeout,
            };
        }
        match self
            .engine
            .push_open_arrival(internal, size, RegionId::GLOBAL, now)
        {
            Ok(bin) => {
                self.next_internal += 1;
                self.sessions.insert(external, internal);
                self.ledger.placed += 1;
                Outcome::Placed { bin }
            }
            Err(e) => {
                // ZeroSize / Oversized — the internal id was never used.
                self.ledger.rejected += 1;
                Outcome::Rejected {
                    reason: e.to_string(),
                }
            }
        }
    }

    fn handle_depart(&mut self, external: u64, at: u64) -> Outcome {
        let Some(&internal) = self.sessions.get(&external) else {
            self.ledger.bad_departs += 1;
            return Outcome::Rejected {
                reason: format!("unknown session id {external}"),
            };
        };
        let now = self.engine.horizon().max(Tick(at));
        match self.engine.push_departure(internal, now) {
            Ok(()) => {
                self.sessions.remove(&external);
                self.ledger.departed += 1;
                Outcome::Departed
            }
            Err(e) => {
                // Unreachable with a consistent session map; stay graceful.
                self.ledger.bad_departs += 1;
                Outcome::Rejected {
                    reason: e.to_string(),
                }
            }
        }
    }

    /// Tear the pipeline down: seal the journal (flush + fsync + length
    /// frame) and return the final ledger plus `(in_flight, open_bins)` at
    /// teardown. In-flight sessions were *served*; they are not losses.
    pub fn seal(self) -> Result<(ShardLedger, usize, usize), String> {
        let ledger = self.ledger;
        let (probe, _arrived, in_flight, open_bins) = self.engine.into_probe();
        if let Some(j) = probe.journal {
            j.finish()
                .map_err(|e| format!("journal seal failed: {e}"))?;
        }
        Ok((ledger, in_flight, open_bins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MAX_DIMS;
    use dbp_core::algorithms::FirstFit;
    use dbp_core::demand::VSize;

    fn pipeline(timeout: u64) -> ShardPipeline {
        ShardPipeline::new(
            Size(10),
            Box::new(FirstFit::new()),
            AdmissionPolicy {
                queue_capacity: 64,
                queue_timeout: timeout,
            },
        )
    }

    /// Wire-shaped arrival with a scalar demand in dimension 0.
    fn arrive(id: u64, at: u64, size: u64) -> Request {
        let mut demand = [0u64; MAX_DIMS];
        demand[0] = size;
        Request::Arrive { id, at, demand }
    }

    #[test]
    fn place_depart_lifecycle_conserves() {
        let mut p = pipeline(100);
        let a = p.handle(&arrive(7, 0, 6));
        assert!(matches!(a, Outcome::Placed { .. }), "{a:?}");
        let b = p.handle(&arrive(8, 1, 6));
        assert!(matches!(b, Outcome::Placed { .. }), "{b:?}");
        assert_eq!(p.open_bins(), 2);
        assert_eq!(p.in_flight(), 2);
        assert_eq!(
            p.handle(&Request::Depart { id: 7, at: 5 }),
            Outcome::Departed
        );
        assert_eq!(p.open_bins(), 1);
        // External id 7 is free again after departure.
        let c = p.handle(&arrive(7, 6, 2));
        assert!(matches!(c, Outcome::Placed { .. }), "{c:?}");
        assert!(p.ledger.conserved());
        assert_eq!(p.ledger.placed, 3);
        assert_eq!(p.ledger.departed, 1);
    }

    #[test]
    fn stale_arrival_at_the_timeout_boundary_is_shed() {
        let mut p = pipeline(8);
        // Push the horizon to 20.
        p.handle(&arrive(1, 20, 4));
        // Queued at 13 against horizon 20: wait 7 < 8 → admitted (clamped).
        let ok = p.handle(&arrive(2, 13, 4));
        assert!(matches!(ok, Outcome::Placed { .. }), "{ok:?}");
        // Queued at 12: wait 8 == timeout → boundary drop.
        let shed = p.handle(&arrive(3, 12, 4));
        assert_eq!(
            shed,
            Outcome::Dropped {
                reason: DropReason::QueueTimeout
            }
        );
        assert!(p.ledger.conserved());
        assert_eq!(p.ledger.dropped_timeout, 1);
    }

    #[test]
    fn invalid_requests_are_refused_not_fatal() {
        let mut p = pipeline(100);
        p.handle(&arrive(1, 0, 4));
        let dup = p.handle(&arrive(1, 1, 4));
        assert!(matches!(dup, Outcome::Rejected { .. }), "{dup:?}");
        let big = p.handle(&arrive(2, 1, 11));
        assert!(matches!(big, Outcome::Rejected { .. }), "{big:?}");
        let ghost = p.handle(&Request::Depart { id: 99, at: 2 });
        assert!(matches!(ghost, Outcome::Rejected { .. }), "{ghost:?}");
        assert!(p.ledger.conserved());
        assert_eq!(p.ledger.rejected, 2);
        assert_eq!(p.ledger.bad_departs, 1);
    }

    #[test]
    fn sealing_reports_in_flight_sessions() {
        let mut p = pipeline(100);
        p.handle(&arrive(1, 0, 4));
        p.handle(&arrive(2, 1, 4));
        p.handle(&Request::Depart { id: 1, at: 3 });
        let (ledger, in_flight, open_bins) = p.seal().unwrap();
        assert!(ledger.conserved());
        assert_eq!(in_flight, 1);
        assert_eq!(open_bins, 1);
    }

    #[test]
    fn vector_pipeline_packs_by_binding_dimension() {
        // Capacity [10, 4]: dimension 1 binds first, so every [4, 3] item
        // needs its own bin — a scalar engine at capacity 10 would have
        // paired them two per bin.
        let mut p: GShardPipeline<VSize<2>> = GShardPipeline::new(
            VSize([10, 4]),
            Box::new(FirstFit::new()),
            AdmissionPolicy {
                queue_capacity: 64,
                queue_timeout: 100,
            },
        );
        for id in 0..3u64 {
            let got = p.handle(&Request::Arrive {
                id,
                at: id,
                demand: [4, 3, 0, 0],
            });
            assert!(matches!(got, Outcome::Placed { .. }), "{got:?}");
        }
        assert_eq!(p.open_bins(), 3, "dim 1 (cap 4) admits one 3 per bin");
        // An item too big in dimension 1 alone is a typed refusal.
        let big = p.handle(&Request::Arrive {
            id: 9,
            at: 5,
            demand: [1, 5, 0, 0],
        });
        assert!(matches!(big, Outcome::Rejected { .. }), "{big:?}");
        assert!(p.ledger.conserved());
    }
}
