//! # dbp-serve — the live dispatcher daemon
//!
//! Everything below the socket is the same engine the batch simulator
//! runs: each shard worker owns a
//! [`StreamingEngine`](dbp_core::streaming::StreamingEngine) — the
//! bounded-memory, event-time core proven byte-identical to
//! `simulate_probed` — wrapped in a deterministic
//! [`ShardPipeline`](shard::ShardPipeline) that adds the external session
//! map, event-time admission control (reused from
//! [`dbp_cloudsim::faults::AdmissionPolicy`]) and a write-ahead journal.
//! The daemon layer ([`server`]) adds NDJSON-over-TCP ingest, online
//! routing through [`dbp_cluster::router::Router::route_one`], bounded
//! ingress queues with a [`server::BackpressurePolicy`], a Prometheus
//! `/metrics` endpoint, and the graceful drain protocol that seals every
//! journal and emits one conserved ledger.
//!
//! No external runtime: std-only TCP, thread-per-connection, one worker
//! thread per shard. Memory in the hot path is O(live sessions + open
//! bins), never O(stream length).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod protocol;
pub mod server;
pub mod shard;
pub mod shutdown;

pub use protocol::{parse_line, parse_line_dims, Reply, Request, WireMsg, MAX_DIMS};
pub use server::{
    journal_shard_path, run_server, BackpressurePolicy, ServeConfig, ServeHandle, ServeSummary,
    ShardReport,
};
pub use shard::{GShardPipeline, Outcome, ServeProbe, ShardLedger, ShardPipeline};
pub use shutdown::{
    global_flag, install_signal_handlers, request_shutdown, reset_shutdown, shutdown_requested,
};
