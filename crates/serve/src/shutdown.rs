//! Process-wide graceful-shutdown latch, shared by the daemon and the CLI's
//! journaled one-shot commands.
//!
//! One `AtomicBool`, raised from a SIGINT/SIGTERM handler (an atomic store
//! is async-signal-safe), polled by accept loops, connection readers and
//! simulation step loops. Raising it never aborts in-flight work: loops
//! finish the current unit, flush and fsync their journals, then exit — so
//! an interrupted run is always `dbp recover`-clean.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Install SIGINT/SIGTERM handlers that raise the latch. Idempotent; a
/// no-op on non-Unix targets.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// Install SIGINT/SIGTERM handlers that raise the latch. Idempotent; a
/// no-op on non-Unix targets.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// The process-wide latch itself, for callers (the daemon, step loops)
/// that poll a `&AtomicBool` rather than the free function.
pub fn global_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// Has a shutdown been requested (by signal or [`request_shutdown`])?
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Raise the latch programmatically — tests and embedders use this in
/// place of a signal.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Lower the latch. Tests only: a real daemon never un-requests shutdown.
pub fn reset_shutdown() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}
