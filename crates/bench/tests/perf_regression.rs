//! Wall-clock regression guards for the engine hot path, plus
//! deterministic equivalence sweeps for the indexed selector family.
//!
//! The wall-clock bounds are deliberately generous — they run in debug
//! builds on shared CI machines — but they are impossible to meet if the
//! per-arrival work regresses to scanning (or rebuilding views over) every
//! open bin: the pre-indexed engine spent minutes on these instances in
//! debug mode. The equivalence sweeps are this crate's (proptest-free)
//! counterpart to the root `indexed_equivalence` property suite: many
//! seeds × all indexed algorithms, byte-identical traces and JSONL
//! required.

use dbp_bench::churn_workload;
use dbp_cloudsim::{GamingSystem, Granularity, ServerType};
use dbp_cluster::{ClusterConfig, ClusterEngine, Router};
use dbp_core::algorithms::{
    BestFit, FirstFit, IndexedBestFit, IndexedFirstFit, IndexedMff, ModifiedFirstFit,
};
use dbp_core::engine::simulate;
use dbp_core::packer::{BinSelector, SelectorFactory};
use std::time::{Duration, Instant};

/// 10^5 churn-heavy items (thousands of simultaneously open bins) must pack
/// in seconds, even unoptimized.
#[test]
fn churn_100k_packs_quickly() {
    let inst = churn_workload(100_000, 42);
    let bound = Duration::from_secs(60);

    let started = Instant::now();
    let ff = simulate(&inst, &mut IndexedFirstFit::new());
    let bf = simulate(&inst, &mut IndexedBestFit::new());
    let mff = simulate(&inst, &mut IndexedMff::new(8));
    let elapsed = started.elapsed();

    assert!(ff.bins_used() > 0 && bf.bins_used() > 0 && mff.bins_used() > 0);
    assert!(
        elapsed < bound,
        "churn-heavy 100k-item packing took {elapsed:?} (bound {bound:?}); \
         the arrival path has likely regressed to O(open bins) work"
    );
}

/// The cluster path must stay within a small constant factor of the bare
/// engine on the same stream: dispatch is partition + shard loop +
/// conservation check + fan-in, all O(n log n)-ish. The bound is loose for
/// debug builds, but a return of per-batch quadratic validation (the old
/// 7-second `validate` stage) blows straight through it.
#[test]
fn cluster_dispatch_stays_near_the_engine() {
    let inst = churn_workload(50_000, 42);

    let started = Instant::now();
    let trace = simulate(&inst, &mut IndexedFirstFit::new());
    let plain = started.elapsed();

    let system = GamingSystem {
        server: ServerType {
            gpu_capacity: inst.capacity().raw(),
            ..ServerType::default_gpu_vm()
        },
        granularity: Granularity::PerTick,
    };
    let factory = SelectorFactory::new("FF", || Box::new(IndexedFirstFit::new()));
    let mut cluster_walls = Vec::new();
    for shards in [1usize, 4] {
        let engine = ClusterEngine::new(
            system,
            ClusterConfig::new(shards, Router::HashByItem).unwrap(),
        );
        let started = Instant::now();
        let run = engine
            .run(&inst, &factory)
            .expect("workload and system share one capacity");
        cluster_walls.push((shards, started.elapsed()));
        if shards == 1 {
            assert_eq!(
                run.report.busy_ticks,
                trace.total_cost_ticks(),
                "a 1-shard cluster must reproduce the plain bill exactly"
            );
        }
    }
    // Generous absolute cap (debug builds): the engine packs 50k in well
    // under a second; the pre-fix cluster path took >10s at this size.
    let bound = plain.max(Duration::from_millis(250)) * 40;
    for (shards, wall) in cluster_walls {
        assert!(
            wall < bound,
            "{shards}-shard cluster took {wall:?} vs plain {plain:?} (bound {bound:?}); \
             per-shard validation or dispatch overhead has regressed"
        );
    }
}

/// Bench report schema v4: run the real `engine_baseline` binary end to end
/// (tiny size) and validate the shape CI depends on — `schema_version` is 4,
/// every result row carries `dimensions` next to `selector_engine`, the D=3
/// vector row is present, and the overhead block is labeled the same way.
#[test]
fn engine_baseline_report_is_schema_v4_with_dimensions() {
    let out = std::env::temp_dir().join(format!("dbp-bench-schema-{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_engine_baseline"))
        .args(["--tiny", "--out"])
        .arg(&out)
        .status()
        .expect("engine_baseline should launch");
    assert!(status.success(), "engine_baseline --tiny failed");

    let body = std::fs::read_to_string(&out).unwrap();
    std::fs::remove_file(&out).ok();
    let report: serde_json::Value = serde_json::from_str(&body).unwrap();

    let field = |v: &serde_json::Value, key: &str| -> serde_json::Value {
        v.get(key)
            .unwrap_or_else(|| panic!("report is missing `{key}`"))
            .clone()
    };
    assert_eq!(field(&report, "schema_version").as_u64(), Some(4));
    let results = field(&report, "results");
    let rows = results.as_seq().expect("results array");
    assert!(!rows.is_empty());
    let mut saw_vector = false;
    for row in rows {
        let dims = field(row, "dimensions")
            .as_u64()
            .expect("every row carries `dimensions`");
        assert!(dims >= 1);
        assert!(
            field(row, "engine").as_str().is_some(),
            "every row carries `engine`"
        );
        if dims == 3 {
            saw_vector = true;
        }
    }
    assert!(saw_vector, "the D=3 vector row is missing from the report");
    let overhead = field(&report, "overhead_vs_plain_engine");
    assert_eq!(field(&overhead, "dimensions").as_u64(), Some(1));
    assert!(field(&overhead, "selector_engine").as_str().is_some());
}

/// Byte-identical equivalence of the indexed family against the naive
/// selectors, across many seeds on the bench workload itself: same trace
/// struct, same serialized JSONL bytes.
#[test]
fn indexed_family_is_byte_identical_across_seeds() {
    type Pair = (
        &'static str,
        fn() -> Box<dyn BinSelector>,
        fn() -> Box<dyn BinSelector>,
    );
    let pairs: &[Pair] = &[
        (
            "FF",
            || Box::new(FirstFit::new()),
            || Box::new(IndexedFirstFit::new()),
        ),
        (
            "BF",
            || Box::new(BestFit::new()),
            || Box::new(IndexedBestFit::new()),
        ),
        (
            "MFF",
            || Box::new(ModifiedFirstFit::new(8)),
            || Box::new(IndexedMff::new(8)),
        ),
    ];
    for seed in [0u64, 1, 7, 42, 1337, 0xDEAD_BEEF] {
        let inst = churn_workload(3_000, seed);
        for &(name, naive, indexed) in pairs {
            let a = simulate(&inst, &mut *naive());
            let b = simulate(&inst, &mut *indexed());
            assert_eq!(a, b, "{name} diverged on seed {seed}");
            let ja = serde_json::to_string(&a).unwrap();
            let jb = serde_json::to_string(&b).unwrap();
            assert_eq!(ja, jb, "{name} JSONL diverged on seed {seed}");
        }
    }
}
