//! Wall-clock regression guards for the engine hot path.
//!
//! These bounds are deliberately generous — they run in debug builds on
//! shared CI machines — but they are impossible to meet if the per-arrival
//! work regresses to scanning (or rebuilding views over) every open bin:
//! the pre-indexed engine spent minutes on this instance in debug mode.

use dbp_bench::churn_workload;
use dbp_core::algorithms::{IndexedBestFit, IndexedFirstFit};
use dbp_core::engine::simulate;
use std::time::{Duration, Instant};

/// 10^5 churn-heavy items (thousands of simultaneously open bins) must pack
/// in seconds, even unoptimized.
#[test]
fn churn_100k_packs_quickly() {
    let inst = churn_workload(100_000, 42);
    let bound = Duration::from_secs(60);

    let started = Instant::now();
    let ff = simulate(&inst, &mut IndexedFirstFit::new());
    let bf = simulate(&inst, &mut IndexedBestFit::new());
    let elapsed = started.elapsed();

    assert!(ff.bins_used() > 0 && bf.bins_used() > 0);
    assert!(
        elapsed < bound,
        "churn-heavy 100k-item packing took {elapsed:?} (bound {bound:?}); \
         the arrival path has likely regressed to O(open bins) work"
    );
}
