//! Cluster ingestion throughput: how dispatch scales with shard count.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dbp-bench --bin cluster_scaling [--quick] [--out PATH]
//! ```
//!
//! Packs `churn_workload` (10^6 items; `--quick`: 10^5) through
//! [`ClusterEngine`] at 1, 2, 4 and 8 shards under the hash router with the
//! **indexed** First Fit — the O(log m) engine the repo ships — and writes
//! `BENCH_CLUSTER.json`. (Earlier schema versions silently benchmarked the
//! naive scanning selector here, which made the 1-shard row incomparable to
//! BENCH_ENGINE and overstated the sharding speedup: with an O(open bins)
//! scan, splitting the fleet K ways shrinks the scan itself.) Shards run
//! concurrently when the host has cores to offer; the report records the
//! host's `available_parallelism` so a plateau can be attributed to
//! hardware rather than to the dispatch layer. The exact aggregate
//! `busy_ticks` per row makes the cost of any speedup visible in the same
//! report.

use dbp_bench::churn_workload;
use dbp_cloudsim::{GamingSystem, Granularity, ServerType};
use dbp_cluster::{ClusterConfig, ClusterEngine, Router};
use dbp_core::algorithms::IndexedFirstFit;
use dbp_core::engine::simulate;
use dbp_core::instance::Instance;
use dbp_core::packer::SelectorFactory;
use dbp_core::probe::NoProbe;
use dbp_obs::span::{StageAggregator, StageRow};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const SEED: u64 = 42;

/// Report schema; bump when fields change (CI validates this).
/// v3: the bench runs the indexed selector engine (and records which), the
/// report carries the host's `available_parallelism`, and wall fields are
/// nanosecond-rounded instead of truncated.
/// v4: `dimensions` alongside `selector_engine` (this bench drives the
/// scalar cluster, so the value is 1).
const SCHEMA_VERSION: u64 = 4;

/// Round nanoseconds to milliseconds (half-up) — never the truncation that
/// turned sub-millisecond quick-mode runs into `wall_ms: 0`.
fn ns_to_ms_rounded(ns: u128) -> u64 {
    ((ns + 500_000) / 1_000_000) as u64
}

/// One measured shard count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ScalingResult {
    /// Shard count.
    shards: u64,
    /// Wall time of the cluster run, milliseconds.
    wall_ms: u64,
    /// Ingestion throughput over the whole run.
    items_per_sec: u64,
    /// Exact aggregate cost, bin-ticks.
    busy_ticks: u128,
    /// Servers rented across all shards.
    servers_rented: u64,
    /// Sum of per-shard peak fleets.
    peak_servers: u64,
    /// Throughput relative to the 1-shard row, thousandths (2000 = 2×).
    speedup_millis: u64,
    /// This row's wall time relative to the plain single-engine `simulate`
    /// run on the same stream, thousandths (1000 = parity, 2500 = the
    /// cluster path takes 2.5× as long). The 1-shard row quantifies the
    /// dispatch layer's bookkeeping tax — the gap between BENCH_ENGINE's
    /// items/sec and this report's.
    overhead_vs_plain_engine: u64,
    /// Per shard: ns the work unit waited for a pool worker (from the
    /// traced pass).
    queue_wait_ns: Vec<u64>,
    /// Per shard: ns from worker claim to shard completion (traced pass).
    busy_ns: Vec<u64>,
    /// Ranked per-stage self-time table from the traced pass, driver and
    /// shard lanes merged.
    stage_breakdown: Vec<StageRow>,
}

/// The whole report, written as `BENCH_CLUSTER.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClusterBenchReport {
    schema_version: u64,
    quick: bool,
    seed: u64,
    n_items: u64,
    capacity: u64,
    router: String,
    algorithm: String,
    /// Which selector engine produced every row: "indexed" (the shipped
    /// O(log m) engine) — recorded so a report can never again silently
    /// describe the naive scanning selector.
    selector_engine: String,
    /// Demand dimensionality the rows ran at (1 = scalar `Size`).
    dimensions: u64,
    /// The host's `std::thread::available_parallelism()` at run time. Rows
    /// cannot speed up past this however many shards they split into;
    /// compare it against the plateau before blaming the dispatch layer.
    available_parallelism: u64,
    peak_rss_bytes: Option<u64>,
    results: Vec<ScalingResult>,
}

/// Wall time of the plain single-engine run (indexed FF through
/// `simulate`, no cluster layer at all) — the denominator of every row's
/// `overhead_vs_plain_engine`. Must run the same selector engine as the
/// cluster rows or the ratio mixes selector cost into dispatch cost.
fn measure_plain_engine(inst: &Instance) -> u128 {
    let started = Instant::now();
    let trace = simulate(inst, &mut IndexedFirstFit::new());
    let ns = started.elapsed().as_nanos().max(1);
    assert!(trace.bins_used() > 0);
    ns
}

fn measure(inst: &Instance, shards: usize, plain_ns: u128) -> (u64, ScalingResult) {
    let system = GamingSystem {
        server: ServerType {
            gpu_capacity: inst.capacity().raw(),
            ..ServerType::default_gpu_vm()
        },
        granularity: Granularity::PerTick,
    };
    let engine = ClusterEngine::new(
        system,
        ClusterConfig::new(shards, Router::HashByItem).unwrap(),
    );
    let factory = SelectorFactory::new("FF", || Box::new(IndexedFirstFit::new()));
    let started = Instant::now();
    let run = engine
        .run(inst, &factory)
        .expect("workload and system share one capacity");
    let wall = started.elapsed();
    assert_eq!(run.report.sessions_served, inst.len(), "items lost");
    let wall_ns = wall.as_nanos().max(1);
    let items_per_sec = (inst.len() as u128 * 1_000_000_000 / wall_ns) as u64;

    // Second, traced pass for the stage attribution: streaming per-shard
    // aggregators (constant memory even at 10^6 items) plus the driver
    // lane. The throughput numbers above come from the untraced pass, so
    // the report's headline is never polluted by instrumentation cost.
    let (traced_run, _probes, trace) = engine
        .run_traced(
            inst,
            &factory,
            |_| NoProbe,
            |s, epoch| StageAggregator::with_epoch(epoch, s as u32),
        )
        .expect("capacity already validated by the untraced pass");
    assert_eq!(
        traced_run.report.busy_ticks, run.report.busy_ticks,
        "spans must not change the bill"
    );
    let mut breakdown = trace.driver.stage_breakdown();
    for lane in trace.shards {
        breakdown.merge(&lane.finish());
    }
    (
        items_per_sec,
        ScalingResult {
            shards: shards as u64,
            wall_ms: ns_to_ms_rounded(wall_ns),
            items_per_sec,
            busy_ticks: run.report.busy_ticks,
            servers_rented: run.report.servers_rented as u64,
            peak_servers: run.report.peak_servers as u64,
            speedup_millis: 0, // filled in once the 1-shard row exists
            // Ratio from raw nanoseconds (both clamped ≥ 1 at the source),
            // never from the rounded millisecond fields.
            overhead_vs_plain_engine: ((wall_ns * 1000 + plain_ns / 2) / plain_ns) as u64,
            queue_wait_ns: trace.timing.queue_wait_ns,
            busy_ns: trace.timing.busy_ns,
            stage_breakdown: breakdown.rows(),
        },
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut out = PathBuf::from("BENCH_CLUSTER.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            out = PathBuf::from(p);
        }
    }

    let n = if quick { 100_000 } else { 1_000_000 };
    eprintln!("[gen] churn_workload n={n}");
    let inst = churn_workload(n, SEED);

    eprintln!("[bench] plain engine baseline (indexed FF, no cluster layer)");
    let plain_ns = measure_plain_engine(&inst);

    let mut results = Vec::new();
    let mut base_throughput = 0u64;
    for shards in [1usize, 2, 4, 8] {
        let (throughput, mut r) = measure(&inst, shards, plain_ns);
        if shards == 1 {
            base_throughput = throughput;
        }
        let base = base_throughput.max(1) as u128;
        r.speedup_millis = ((throughput as u128 * 1000 + base / 2) / base) as u64;
        eprintln!(
            "[bench] shards={shards} {:>9} items/s  {:>7} ms  {:.2}x  busy {}  {:.2}x plain",
            r.items_per_sec,
            r.wall_ms,
            r.speedup_millis as f64 / 1000.0,
            r.busy_ticks,
            r.overhead_vs_plain_engine as f64 / 1000.0,
        );
        results.push(r);
    }

    let report = ClusterBenchReport {
        schema_version: SCHEMA_VERSION,
        quick,
        seed: SEED,
        n_items: n as u64,
        capacity: inst.capacity().raw(),
        router: Router::HashByItem.name().to_string(),
        algorithm: "FF".to_string(),
        selector_engine: "indexed".to_string(),
        dimensions: 1,
        available_parallelism: std::thread::available_parallelism()
            .map(|p| p.get() as u64)
            .unwrap_or(1),
        peak_rss_bytes: dbp_obs::manifest::peak_rss_bytes(),
        results,
    };
    match dbp_obs::export::write_json(&out, &report) {
        Ok(()) => {
            println!("[report] {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[error] cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_and_shard_counts_agree_on_cost_order() {
        let inst = churn_workload(3_000, 7);
        let plain_ns = measure_plain_engine(&inst);
        let (_, one) = measure(&inst, 1, plain_ns);
        let (_, four) = measure(&inst, 4, plain_ns);
        assert!(one.overhead_vs_plain_engine > 0);
        assert_eq!(one.queue_wait_ns.len(), 1);
        assert_eq!(four.busy_ns.len(), 4);
        // The traced pass must attribute the engine's hot stages.
        for row in [&one, &four] {
            let stages: Vec<&str> = row
                .stage_breakdown
                .iter()
                .map(|s| s.stage.as_str())
                .collect();
            for need in ["arrival", "decide", "place", "shard_busy", "dispatch"] {
                assert!(stages.contains(&need), "missing stage {need}: {stages:?}");
            }
        }
        // No ordering assertion between the two bills: First Fit is a
        // heuristic and partitioning occasionally beats the global scan.
        assert!(one.busy_ticks > 0 && four.busy_ticks > 0);
        let report = ClusterBenchReport {
            schema_version: SCHEMA_VERSION,
            quick: true,
            seed: 7,
            n_items: 3_000,
            capacity: inst.capacity().raw(),
            router: "hash".to_string(),
            algorithm: "FF".to_string(),
            selector_engine: "indexed".to_string(),
            dimensions: 1,
            available_parallelism: 1,
            peak_rss_bytes: None,
            results: vec![one, four],
        };
        let body = serde_json::to_string(&report).unwrap();
        let back: ClusterBenchReport = serde_json::from_str(&body).unwrap();
        assert_eq!(report, back);
    }
}
