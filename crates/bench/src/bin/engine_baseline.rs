//! Engine throughput baseline: packs churn-heavy synthetic instances
//! through the event engine and writes a machine-readable report to
//! `BENCH_ENGINE.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dbp-bench --bin engine_baseline [--quick] [--out PATH]
//! ```
//!
//! The grid is {10^5, 10^6} items (`--quick`: {10^4, 10^5}) for the indexed
//! FF/BF/MFF(8) selectors; the naive scanning implementations run only at
//! the smaller size as comparison rows (their per-arrival scan is O(open
//! bins), which is exactly what this baseline exists to show moving away
//! from).
//!
//! Each cell is measured twice: an uninstrumented `simulate` run for wall
//! time and items/sec, then a probed run for mean per-arrival decision
//! nanoseconds and the peak open-bin count. All JSON fields are integers
//! (or strings/bool), so the report diffs cleanly across runs.

use dbp_bench::churn_workload;
use dbp_cloudsim::{GamingSystem, Granularity, ServerType};
use dbp_cluster::{ClusterConfig, ClusterEngine, Router};
use dbp_core::algorithms::{
    BestFit, FirstFit, IndexedBestFit, IndexedFirstFit, IndexedMff, ModifiedFirstFit,
};
use dbp_core::engine::{simulate, simulate_probed};
use dbp_core::instance::Instance;
use dbp_core::packer::{BinSelector, SelectorFactory};
use dbp_core::probe::{GProbeEvent, Probe};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const SEED: u64 = 42;

/// Report schema; bump when fields change (CI validates this).
/// v3: indexed MFF row, nanosecond-rounded wall fields, and the cluster
/// overhead comparison runs the indexed selector (the shipped engine).
/// v4: `dimensions` on every row and on the overhead block (1 = scalar),
/// plus a D=3 vector row measuring the const-generic engine on the
/// heterogeneous widening of the same churn stream.
const SCHEMA_VERSION: u64 = 4;

/// Round nanoseconds to milliseconds (half-up) — never the truncation that
/// turned sub-millisecond quick-mode runs into `wall_ms: 0`.
fn ns_to_ms_rounded(ns: u128) -> u64 {
    ((ns + 500_000) / 1_000_000) as u64
}

/// One measured (algorithm, engine, n) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BenchResult {
    /// Algorithm name as it appears in traces ("FF", "BF", "MFF").
    algorithm: String,
    /// "indexed" (hook-maintained index) or "naive" (view scan).
    engine: String,
    /// Demand dimensionality the row ran at (1 = scalar `Size`).
    dimensions: u64,
    /// Items packed.
    n_items: u64,
    /// Wall time of the uninstrumented run, milliseconds.
    wall_ms: u64,
    /// Throughput of the uninstrumented run.
    items_per_sec: u64,
    /// Mean full-arrival decision time from the probed run, nanoseconds.
    mean_decision_ns: u64,
    /// Bins the trace opened.
    bins_used: u64,
    /// Peak simultaneous open bins.
    max_open_bins: u64,
}

/// Plain `simulate` vs a 1-shard cluster on the same stream and selector
/// (indexed FF — the engine the repo ships — at the smaller grid size).
/// This is the exact answer to "why does BENCH_CLUSTER's 1-shard row sit
/// below BENCH_ENGINE's items/sec": the cluster path pays partition +
/// conservation checking + report/manifest construction that the bare
/// engine loop never runs. The two bills are asserted identical, so the
/// ratio is pure bookkeeping tax.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClusterOverhead {
    /// Selector engine both sides ran ("indexed").
    selector_engine: String,
    /// Demand dimensionality of the comparison stream (1 = scalar).
    dimensions: u64,
    /// Items in the comparison stream.
    n_items: u64,
    /// Plain engine wall, milliseconds.
    plain_wall_ms: u64,
    /// Plain engine throughput.
    plain_items_per_sec: u64,
    /// 1-shard cluster wall, milliseconds.
    cluster_wall_ms: u64,
    /// 1-shard cluster throughput.
    cluster_items_per_sec: u64,
    /// Cluster wall over plain wall, thousandths (1000 = parity).
    overhead_millis: u64,
}

/// The whole report, written as `BENCH_ENGINE.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BenchReport {
    schema_version: u64,
    quick: bool,
    seed: u64,
    capacity: u64,
    peak_rss_bytes: Option<u64>,
    /// The dispatch-layer tax: plain engine vs 1-shard cluster.
    overhead_vs_plain_engine: ClusterOverhead,
    results: Vec<BenchResult>,
}

/// Counts arrivals/decision time and tracks the open-bin peak; everything
/// else in the event stream is dropped on the floor.
#[derive(Debug, Default)]
struct EngineStats {
    decisions: u64,
    decision_ns_total: u64,
    open_bins: u64,
    max_open_bins: u64,
}

impl<Sz: dbp_core::demand::Demand> Probe<Sz> for EngineStats {
    fn record(&mut self, event: GProbeEvent<Sz>) {
        match event {
            GProbeEvent::BinOpened { .. } => {
                self.open_bins += 1;
                self.max_open_bins = self.max_open_bins.max(self.open_bins);
            }
            GProbeEvent::BinClosed { .. } | GProbeEvent::BinCrashed { .. } => {
                self.open_bins -= 1;
            }
            _ => {}
        }
    }

    fn on_decision_ns(&mut self, ns: u64) {
        self.decisions += 1;
        self.decision_ns_total += ns;
    }
}

fn measure(
    inst: &Instance,
    algorithm: &str,
    engine: &str,
    build: &dyn Fn() -> Box<dyn BinSelector>,
) -> BenchResult {
    let n = inst.len() as u64;

    let mut sel = build();
    let started = Instant::now();
    let trace = simulate(inst, &mut *sel);
    let wall = started.elapsed();
    assert_eq!(trace.algorithm, algorithm, "selector mislabeled");

    let mut sel = build();
    let mut stats = EngineStats::default();
    let probed = simulate_probed(inst, &mut *sel, &mut stats);
    assert_eq!(probed, trace, "probed run diverged from plain run");
    assert_eq!(stats.decisions, n, "missing decision timings");

    let wall_ns = wall.as_nanos().max(1);
    BenchResult {
        algorithm: algorithm.to_string(),
        engine: engine.to_string(),
        dimensions: 1,
        n_items: n,
        wall_ms: ns_to_ms_rounded(wall_ns),
        items_per_sec: (n as u128 * 1_000_000_000 / wall_ns) as u64,
        mean_decision_ns: stats.decision_ns_total / n.max(1),
        bins_used: trace.bins_used() as u64,
        max_open_bins: stats.max_open_bins,
    }
}

/// The same double measurement for the const-generic engine at D=3: the
/// heterogeneous `[gpu, cpu, mem]` widening of the scalar stream through
/// the indexed selector. This is the vector engine's cost-of-generality
/// row — compare it against the scalar indexed row at the same `n`.
fn measure_vector(inst: &Instance, algorithm: &str) -> BenchResult {
    use dbp_core::demand::VSize;
    let vinst = dbp_workloads::widen(inst);
    let n = vinst.len() as u64;
    let name = format!("{algorithm}-idx");
    let build = || dbp_core::algorithms::selector_for::<VSize<3>>(&name).expect("vector roster");

    let mut sel = build();
    let started = Instant::now();
    let trace = dbp_core::engine::simulate(&vinst, &mut *sel);
    let wall = started.elapsed();

    let mut sel = build();
    let mut stats = EngineStats::default();
    let probed = simulate_probed(&vinst, &mut *sel, &mut stats);
    assert_eq!(probed, trace, "probed vector run diverged from plain run");
    assert_eq!(stats.decisions, n, "missing decision timings");

    let wall_ns = wall.as_nanos().max(1);
    BenchResult {
        algorithm: algorithm.to_string(),
        engine: "indexed".to_string(),
        dimensions: 3,
        n_items: n,
        wall_ms: ns_to_ms_rounded(wall_ns),
        items_per_sec: (n as u128 * 1_000_000_000 / wall_ns) as u64,
        mean_decision_ns: stats.decision_ns_total / n.max(1),
        bins_used: trace.bins_used() as u64,
        max_open_bins: stats.max_open_bins,
    }
}

/// Measure the dispatch-layer tax: the same stream through bare `simulate`
/// and through a 1-shard cluster, both on indexed First Fit — comparing
/// naive-vs-naive here would understate the tax by hiding it behind the
/// selector's own O(open bins) scan.
fn measure_cluster_overhead(inst: &Instance) -> ClusterOverhead {
    let n = inst.len() as u64;

    let started = Instant::now();
    let trace = simulate(inst, &mut IndexedFirstFit::new());
    let plain_ns = started.elapsed().as_nanos().max(1);

    let system = GamingSystem {
        server: ServerType {
            gpu_capacity: inst.capacity().raw(),
            ..ServerType::default_gpu_vm()
        },
        granularity: Granularity::PerTick,
    };
    let engine = ClusterEngine::new(system, ClusterConfig::new(1, Router::HashByItem).unwrap());
    let factory = SelectorFactory::new("FF", || Box::new(IndexedFirstFit::new()));
    let started = Instant::now();
    let run = engine
        .run(inst, &factory)
        .expect("workload and system share one capacity");
    let cluster_ns = started.elapsed().as_nanos().max(1);
    assert_eq!(
        run.report.busy_ticks,
        trace.total_cost_ticks(),
        "a 1-shard cluster must reproduce the plain bill exactly"
    );

    ClusterOverhead {
        selector_engine: "indexed".to_string(),
        dimensions: 1,
        n_items: n,
        plain_wall_ms: ns_to_ms_rounded(plain_ns),
        plain_items_per_sec: (n as u128 * 1_000_000_000 / plain_ns) as u64,
        cluster_wall_ms: ns_to_ms_rounded(cluster_ns),
        cluster_items_per_sec: (n as u128 * 1_000_000_000 / cluster_ns) as u64,
        // Ratio from the raw nanosecond readings (already clamped ≥ 1),
        // never from the rounded millisecond fields.
        overhead_millis: ((cluster_ns * 1000 + plain_ns / 2) / plain_ns) as u64,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Undocumented: a 1k-item grid so the schema-validation test can run
    // the real binary end-to-end in seconds, debug build included.
    let tiny = args.iter().any(|a| a == "--tiny");
    let mut out = PathBuf::from("BENCH_ENGINE.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            out = PathBuf::from(p);
        }
    }

    let sizes: &[usize] = if tiny {
        &[1_000]
    } else if quick {
        &[10_000, 100_000]
    } else {
        &[100_000, 1_000_000]
    };

    type Row = (&'static str, &'static str, fn() -> Box<dyn BinSelector>);
    let rows: &[Row] = &[
        ("FF", "indexed", || Box::new(IndexedFirstFit::new())),
        ("BF", "indexed", || Box::new(IndexedBestFit::new())),
        ("MFF", "indexed", || Box::new(IndexedMff::new(8))),
        ("FF", "naive", || Box::new(FirstFit::new())),
        ("BF", "naive", || Box::new(BestFit::new())),
        ("MFF", "naive", || Box::new(ModifiedFirstFit::new(8))),
    ];

    let mut results = Vec::new();
    let mut capacity = 0;
    let mut overhead = None;
    for &n in sizes {
        eprintln!("[gen] churn_workload n={n}");
        let inst = churn_workload(n, SEED);
        capacity = inst.capacity().raw();
        for &(algorithm, engine, build) in rows {
            // Naive selectors scan every open bin per arrival; keep them to
            // the smaller size so the full grid finishes in minutes.
            if engine == "naive" && n != sizes[0] {
                continue;
            }
            let r = measure(&inst, algorithm, engine, &build);
            eprintln!(
                "[bench] {algorithm:>6} {engine:>7} n={n:>7} {:>9} items/s mean {:>6} ns/decision",
                r.items_per_sec, r.mean_decision_ns
            );
            results.push(r);
        }
        if n == sizes[0] {
            // The D=3 vector row at the smaller size: the same stream,
            // widened, through the const-generic indexed engine.
            let r = measure_vector(&inst, "FF");
            eprintln!(
                "[bench] {:>6} {:>7} n={:>7} {:>9} items/s mean {:>6} ns/decision (D=3)",
                r.algorithm, r.engine, r.n_items, r.items_per_sec, r.mean_decision_ns
            );
            results.push(r);
            let o = measure_cluster_overhead(&inst);
            eprintln!(
                "[bench] dispatch-layer tax: plain {} items/s vs 1-shard cluster {} items/s \
                 ({:.2}x wall)",
                o.plain_items_per_sec,
                o.cluster_items_per_sec,
                o.overhead_millis as f64 / 1000.0,
            );
            overhead = Some(o);
        }
    }

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        quick,
        seed: SEED,
        capacity,
        peak_rss_bytes: dbp_obs::manifest::peak_rss_bytes(),
        overhead_vs_plain_engine: overhead.expect("the first grid size always runs"),
        results,
    };
    match dbp_obs::export::write_json(&out, &report) {
        Ok(()) => {
            println!("[report] {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[error] cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_and_engines_agree() {
        let inst = churn_workload(2_000, 7);
        let indexed = measure(&inst, "FF", "indexed", &|| Box::new(IndexedFirstFit::new()));
        let naive = measure(&inst, "FF", "naive", &|| Box::new(FirstFit::new()));
        assert_eq!(indexed.bins_used, naive.bins_used);
        assert_eq!(indexed.max_open_bins, naive.max_open_bins);
        assert_eq!((indexed.dimensions, naive.dimensions), (1, 1));
        let vector = measure_vector(&inst, "FF");
        assert_eq!(vector.dimensions, 3);
        assert_eq!(vector.n_items, indexed.n_items);
        assert!(vector.bins_used > 0);
        let overhead = measure_cluster_overhead(&inst);
        assert!(overhead.overhead_millis > 0);
        assert_eq!(overhead.dimensions, 1);
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            quick: true,
            seed: 7,
            capacity: inst.capacity().raw(),
            peak_rss_bytes: None,
            overhead_vs_plain_engine: overhead,
            results: vec![indexed, naive, vector],
        };
        assert_eq!(report.schema_version, 4, "v4 adds the dimensions fields");
        let text = serde_json::to_string_pretty(&report).unwrap();
        assert!(text.contains("\"dimensions\""));
        let back: BenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }
}
