//! Live-dispatcher throughput under overload: how fast one shard pipeline
//! sustains ingest, and what fraction it sheds when offered more than it
//! can hold.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dbp-bench --bin serve_throughput [--quick] [--out PATH]
//! ```
//!
//! Drives a seeded arrival/departure stream (10^6 arrivals; `--quick`:
//! 10^5) through one [`ShardPipeline`] — the exact admission + streaming
//! engine a `dbp serve` shard runs — behind a bounded front-door queue, at
//! 1×, 4× and 16× overload. "Overload F" means the driver offers F
//! requests per processing step, so F = 1 is a keep-up consumer and
//! F = 16 starves the queue sixteen-to-one. The run is single-threaded
//! and fully deterministic (no sockets, no scheduler), so rows are
//! comparable across hosts and runs: the same seed always sheds the same
//! requests (`tests/shed_determinism.rs` pins that). Writes
//! `BENCH_SERVE.json`; every row's ledger must conserve
//! `placed + shed + rejected == offered` or the bench fails.

use dbp_cloudsim::faults::AdmissionPolicy;
use dbp_core::algorithms::IndexedFirstFit;
use dbp_core::item::Size;
use dbp_serve::protocol::Request;
use dbp_serve::shard::{Outcome, ShardPipeline};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const SEED: u64 = 42;
const CAPACITY: u64 = 100;
const QUEUE_CAPACITY: u32 = 256;
const QUEUE_TIMEOUT: u64 = 50;

/// Report schema; bump when fields change (CI validates this). Starts at
/// v3 to match the other bench reports' conventions (rounded walls,
/// `selector_engine`, `available_parallelism`).
/// v4: `dimensions` alongside `selector_engine` (the drive is scalar, 1;
/// vector daemons report their D here when benched).
const SCHEMA_VERSION: u64 = 4;

/// Round nanoseconds to milliseconds (half-up).
fn ns_to_ms_rounded(ns: u128) -> u64 {
    ((ns + 500_000) / 1_000_000) as u64
}

/// One measured overload factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct OverloadResult {
    /// Offers per processing step (1 = keep-up, 16 = hard overload).
    overload: u64,
    /// Arrivals offered at the front door.
    offered: u64,
    /// Arrivals placed by the engine.
    placed: u64,
    /// Front-door sheds (bounded ingress queue full).
    shed_queue_full: u64,
    /// Event-time admission sheds (`wait >= queue_timeout`).
    shed_timeout: u64,
    /// Departures applied.
    departed: u64,
    /// Wall time of the whole drive, milliseconds.
    wall_ms: u64,
    /// Requests (arrivals + departures) processed per second.
    requests_per_sec: u64,
    /// Sheds per thousand offered arrivals.
    shed_rate_millis: u64,
    /// Peak simultaneously-open bins across the drive.
    peak_open_bins: u64,
}

/// The whole report, written as `BENCH_SERVE.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ServeBenchReport {
    schema_version: u64,
    quick: bool,
    seed: u64,
    n_arrivals: u64,
    capacity: u64,
    queue_capacity: u32,
    queue_timeout: u64,
    algorithm: String,
    /// Which selector engine produced every row: "indexed", matching
    /// BENCH_ENGINE / BENCH_CLUSTER so the rows are comparable.
    selector_engine: String,
    /// Demand dimensionality of the driven daemon (1 = scalar).
    dimensions: u64,
    /// The host's `available_parallelism` at run time. The drive itself is
    /// single-threaded by design; recorded for cross-report context only.
    available_parallelism: u64,
    peak_rss_bytes: Option<u64>,
    results: Vec<OverloadResult>,
}

/// SplitMix-style deterministic generator (same constants as the shed
/// determinism proptest, so the bench stream is the tested stream writ
/// large).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn measure(n: u64, overload: u64) -> OverloadResult {
    let mut rng = Lcg(SEED.wrapping_mul(2654435761).wrapping_add(overload));
    let mut pipe = ShardPipeline::new(
        Size(CAPACITY),
        Box::new(IndexedFirstFit::new()),
        AdmissionPolicy {
            queue_capacity: QUEUE_CAPACITY,
            queue_timeout: QUEUE_TIMEOUT,
        },
    );
    let queue_cap = QUEUE_CAPACITY as usize;
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut live: Vec<u64> = Vec::new();
    let mut offered = 0u64;
    let mut shed_queue_full = 0u64;
    let mut processed = 0u64;
    let mut peak_open = 0u64;
    let mut at = 0u64;
    let mut next_id = 1u64;

    let started = Instant::now();
    while next_id <= n || !queue.is_empty() {
        for _ in 0..overload {
            if next_id > n {
                break;
            }
            at += rng.next() % 3;
            if !live.is_empty() && rng.next().is_multiple_of(4) {
                let idx = (rng.next() as usize) % live.len();
                let id = live.swap_remove(idx);
                // Departures always land: dropping a release would leak
                // capacity forever (same rule the daemon enforces).
                queue.push_back(Request::Depart { id, at });
            } else {
                offered += 1;
                // One arrival in eight carries a late (out-of-order) stamp,
                // lagging the stream by up to 120 ticks: a perfectly
                // ordered stream never trips the event-time timeout (the
                // engine horizon trails the newest stamp), so without late
                // events the admission column measures nothing.
                let stamp = if rng.next().is_multiple_of(8) {
                    at.saturating_sub(rng.next() % 120)
                } else {
                    at
                };
                let mut demand = [0u64; dbp_serve::MAX_DIMS];
                demand[0] = 1 + rng.next() % 50;
                let req = Request::Arrive {
                    id: next_id,
                    at: stamp,
                    demand,
                };
                next_id += 1;
                if queue.len() >= queue_cap {
                    shed_queue_full += 1;
                } else {
                    queue.push_back(req);
                }
            }
        }
        if let Some(req) = queue.pop_front() {
            if let Outcome::Placed { .. } = pipe.handle(&req) {
                live.push(req.id());
            }
            processed += 1;
            peak_open = peak_open.max(pipe.open_bins() as u64);
        }
    }
    let wall_ns = started.elapsed().as_nanos().max(1);

    let ledger = &pipe.ledger;
    assert!(ledger.conserved(), "shard ledger must conserve: {ledger:?}");
    assert_eq!(
        ledger.placed + ledger.dropped_timeout + ledger.rejected + shed_queue_full,
        offered,
        "every offered arrival is accounted exactly once"
    );
    OverloadResult {
        overload,
        offered,
        placed: ledger.placed,
        shed_queue_full,
        shed_timeout: ledger.dropped_timeout,
        departed: ledger.departed,
        wall_ms: ns_to_ms_rounded(wall_ns),
        requests_per_sec: (processed as u128 * 1_000_000_000 / wall_ns) as u64,
        shed_rate_millis: ((shed_queue_full + ledger.dropped_timeout) as u128 * 1000
            / offered.max(1) as u128) as u64,
        peak_open_bins: peak_open,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut out = PathBuf::from("BENCH_SERVE.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            out = PathBuf::from(p);
        }
    }

    let n: u64 = if quick { 100_000 } else { 1_000_000 };
    let mut results = Vec::new();
    for overload in [1u64, 4, 16] {
        let r = measure(n, overload);
        eprintln!(
            "[bench] overload={overload:>2}x {:>9} req/s  {:>6} ms  shed {:>5.1}%  \
             ({} queue-full, {} timeout of {} offered)",
            r.requests_per_sec,
            r.wall_ms,
            r.shed_rate_millis as f64 / 10.0,
            r.shed_queue_full,
            r.shed_timeout,
            r.offered,
        );
        results.push(r);
    }

    let report = ServeBenchReport {
        schema_version: SCHEMA_VERSION,
        quick,
        seed: SEED,
        n_arrivals: n,
        capacity: CAPACITY,
        queue_capacity: QUEUE_CAPACITY,
        queue_timeout: QUEUE_TIMEOUT,
        algorithm: "FF".to_string(),
        selector_engine: "indexed".to_string(),
        dimensions: 1,
        available_parallelism: std::thread::available_parallelism()
            .map(|p| p.get() as u64)
            .unwrap_or(1),
        peak_rss_bytes: dbp_obs::manifest::peak_rss_bytes(),
        results,
    };
    match dbp_obs::export::write_json(&out, &report) {
        Ok(()) => {
            println!("[report] {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[error] cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_rows_conserve_and_report_round_trips() {
        let one = measure(5_000, 1);
        let hard = measure(5_000, 16);
        // Same offered-arrival budget, more pressure ⇒ at least as many
        // sheds (the 1× row may legitimately shed zero).
        assert!(hard.shed_queue_full + hard.shed_timeout >= one.shed_queue_full + one.shed_timeout);
        assert!(
            hard.shed_queue_full + hard.shed_timeout > 0,
            "16x overload over a 256-slot queue must shed: {hard:?}"
        );
        assert!(one.placed > 0 && hard.placed > 0);
        let report = ServeBenchReport {
            schema_version: SCHEMA_VERSION,
            quick: true,
            seed: SEED,
            n_arrivals: 5_000,
            capacity: CAPACITY,
            queue_capacity: QUEUE_CAPACITY,
            queue_timeout: QUEUE_TIMEOUT,
            algorithm: "FF".to_string(),
            selector_engine: "indexed".to_string(),
            dimensions: 1,
            available_parallelism: 1,
            peak_rss_bytes: None,
            results: vec![one, hard],
        };
        let body = serde_json::to_string(&report).unwrap();
        let back: ServeBenchReport = serde_json::from_str(&body).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn same_overload_same_numbers() {
        let a = measure(3_000, 4);
        let b = measure(3_000, 4);
        // Wall-clock fields differ run to run; the packing outcome must not.
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.shed_queue_full, b.shed_queue_full);
        assert_eq!(a.shed_timeout, b.shed_timeout);
        assert_eq!(a.departed, b.departed);
        assert_eq!(a.peak_open_bins, b.peak_open_bins);
    }
}
