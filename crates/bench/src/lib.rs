//! Shared fixtures for the Criterion benchmarks.

use dbp_core::instance::Instance;
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};

/// A standard mixed workload of `n` items for throughput benches.
pub fn standard_workload(n: usize, seed: u64) -> Instance {
    generate_mu_controlled(&MuControlledConfig {
        n_items: n,
        mu: 10,
        arrival_rate: 0.05,
        sizes: SizeModel::Uniform { lo: 5, hi: 60 },
        seed,
        ..MuControlledConfig::new(10)
    })
}

/// A churn-heavy workload of `n` items for engine-scaling benches — the
/// shared [`dbp_workloads::churn`] fixture, re-exported under the bench
/// crate's historical name so `engine_baseline`, the perf regression test
/// and `dbp profile` all measure the same stream.
pub fn churn_workload(n: usize, seed: u64) -> Instance {
    dbp_workloads::churn(n, seed)
}

/// Random static multiset of `n` sizes for the exact-solver benches.
pub fn random_sizes(n: usize, seed: u64) -> Vec<u64> {
    // Simple SplitMix64 so the fixture does not depend on rand's API.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..n).map(|_| 1 + next() % 60).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(standard_workload(50, 1), standard_workload(50, 1));
        assert_eq!(churn_workload(50, 1), churn_workload(50, 1));
        assert_eq!(random_sizes(10, 2), random_sizes(10, 2));
        assert!(random_sizes(10, 2).iter().all(|&s| (1..=60).contains(&s)));
    }
}
