//! The §4.3 proof machinery: full analysis cost on First Fit traces of
//! growing size (quadratic pair census dominates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbp_bench::standard_workload;
use dbp_core::algorithms::FirstFit;
use dbp_core::analysis::analyze_first_fit;
use dbp_core::engine::simulate;
use std::hint::black_box;

fn analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("ff_analysis");
    group.sample_size(20);
    for &n in &[200usize, 1_000, 4_000] {
        let inst = standard_workload(n, 3);
        let trace = simulate(&inst, &mut FirstFit::new());
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&inst, &trace),
            |b, (inst, trace)| {
                b.iter(|| {
                    let a = analyze_first_fit(inst, trace);
                    assert!(a.is_clean());
                    black_box(a.key_count())
                })
            },
        );
    }
    group.finish();
}

fn mff_analysis(c: &mut Criterion) {
    use dbp_core::algorithms::ModifiedFirstFit;
    use dbp_core::analysis::analyze_mff;
    let mut group = c.benchmark_group("mff_analysis");
    group.sample_size(20);
    for &n in &[500usize, 2_000] {
        let inst = standard_workload(n, 9);
        let mff = ModifiedFirstFit::new(8);
        let trace = simulate(&inst, &mut mff.clone());
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&inst, &trace),
            |b, (inst, trace)| {
                b.iter(|| {
                    let a = analyze_mff(inst, trace, mff);
                    assert!(a.is_clean());
                    black_box(a.small_cost + a.large_cost)
                })
            },
        );
    }
    group.finish();
}

fn clairvoyant_packing(c: &mut Criterion) {
    use dbp_core::clairvoyant::{simulate_clairvoyant, AlignedFit, ExtendFit};
    let mut group = c.benchmark_group("clairvoyant_throughput");
    let inst = standard_workload(10_000, 21);
    group.bench_function("extend_fit_10k", |b| {
        b.iter(|| black_box(simulate_clairvoyant(&inst, ExtendFit::new()).total_cost_ticks()))
    });
    group.bench_function("aligned_fit_10k", |b| {
        b.iter(|| black_box(simulate_clairvoyant(&inst, AlignedFit::new()).total_cost_ticks()))
    });
    group.finish();
}

criterion_group!(benches, analysis, mff_analysis, clairvoyant_packing);
criterion_main!(benches);
