//! Online packing throughput: items/second through the event engine for
//! each algorithm, at several instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_bench::standard_workload;
use dbp_core::algorithms::standard_factories;
use dbp_core::engine::{simulate, simulate_probed, simulate_traced};
use dbp_core::probe::NoProbe;
use dbp_core::span::NoSpans;
use std::hint::black_box;

fn packing_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing_throughput");
    for &n in &[1_000usize, 10_000] {
        let inst = standard_workload(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        for factory in standard_factories(7) {
            group.bench_with_input(BenchmarkId::new(factory.name(), n), &inst, |b, inst| {
                b.iter(|| {
                    let mut sel = factory.build();
                    black_box(simulate(inst, &mut *sel).total_cost_ticks())
                })
            });
        }
    }
    group.finish();
}

/// The zero-cost contract of the probe seam: `simulate` (implicit
/// `NoProbe`), an explicit `NoProbe` through `simulate_probed`, and a live
/// recording probe, on the same workload. The first two must be within
/// noise of each other — `ENABLED = false` compiles instrumentation out.
fn probe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_overhead");
    let n = 10_000usize;
    let inst = standard_workload(n, 42);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::new("uninstrumented", n), &inst, |b, inst| {
        b.iter(|| {
            let mut ff = dbp_core::algorithms::FirstFit::new();
            black_box(simulate(inst, &mut ff).total_cost_ticks())
        })
    });
    group.bench_with_input(BenchmarkId::new("noop_probe", n), &inst, |b, inst| {
        b.iter(|| {
            let mut ff = dbp_core::algorithms::FirstFit::new();
            black_box(simulate_probed(inst, &mut ff, &mut NoProbe).total_cost_ticks())
        })
    });
    group.bench_with_input(BenchmarkId::new("counting_probe", n), &inst, |b, inst| {
        b.iter(|| {
            let mut ff = dbp_core::algorithms::FirstFit::new();
            let mut probe = dbp_obs::CountingProbe::new();
            black_box(simulate_probed(inst, &mut ff, &mut probe).total_cost_ticks())
        })
    });
    group.bench_with_input(BenchmarkId::new("event_log", n), &inst, |b, inst| {
        b.iter(|| {
            let mut ff = dbp_core::algorithms::FirstFit::new();
            let mut probe = dbp_obs::EventLog::new();
            let trace = simulate_probed(inst, &mut ff, &mut probe);
            // The decision-timing span covers the FULL arrival handling
            // (selection + placement bookkeeping): exactly one nonzero
            // sample per arrival. Run as assertions under
            // `cargo bench -- --test` so CI smoke-checks the span.
            assert_eq!(probe.decision_ns().len(), inst.len());
            assert!(probe.decision_ns().iter().all(|&ns| ns > 0));
            black_box(trace.total_cost_ticks())
        })
    });
    group.finish();
}

/// The zero-cost contract of the span seam, mirroring `probe_overhead`:
/// `simulate` (implicit `NoSpans`), an explicit `NoSpans` through
/// `simulate_traced`, and a live `SpanCollector`/`StageAggregator`. The
/// first two must be within noise — `ENABLED = false` compiles every
/// emission site out.
fn span_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_overhead");
    let n = 10_000usize;
    let inst = standard_workload(n, 42);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::new("uninstrumented", n), &inst, |b, inst| {
        b.iter(|| {
            let mut ff = dbp_core::algorithms::FirstFit::new();
            black_box(simulate(inst, &mut ff).total_cost_ticks())
        })
    });
    group.bench_with_input(BenchmarkId::new("noop_spans", n), &inst, |b, inst| {
        b.iter(|| {
            let mut ff = dbp_core::algorithms::FirstFit::new();
            black_box(simulate_traced(inst, &mut ff, &mut NoProbe, NoSpans).total_cost_ticks())
        })
    });
    group.bench_with_input(BenchmarkId::new("span_collector", n), &inst, |b, inst| {
        b.iter(|| {
            let mut ff = dbp_core::algorithms::FirstFit::new();
            let mut spans = dbp_obs::SpanCollector::new(0);
            let trace = simulate_traced(inst, &mut ff, &mut NoProbe, &mut spans);
            // One arrival span per item, nothing left open. Assertions run
            // under `cargo bench -- --test` so CI smoke-checks the seam.
            assert_eq!(
                spans
                    .spans()
                    .iter()
                    .filter(|s| s.name == dbp_core::span::stage::ARRIVAL)
                    .count(),
                inst.len()
            );
            black_box(trace.total_cost_ticks())
        })
    });
    group.bench_with_input(BenchmarkId::new("stage_aggregator", n), &inst, |b, inst| {
        b.iter(|| {
            let mut ff = dbp_core::algorithms::FirstFit::new();
            let mut spans = dbp_obs::StageAggregator::new(0);
            let trace = simulate_traced(inst, &mut ff, &mut NoProbe, &mut spans);
            assert!(!spans.breakdown().is_empty());
            black_box(trace.total_cost_ticks())
        })
    });
    group.finish();
}

fn adversarial_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversarial_build_and_pack");
    group.sample_size(20);
    group.bench_function("theorem1_k32_mu10", |b| {
        b.iter(|| {
            let t1 = dbp_adversary::Theorem1::new(32, 10);
            let inst = t1.instance();
            let mut ff = dbp_core::algorithms::FirstFit::new();
            black_box(simulate(&inst, &mut ff).total_cost_ticks())
        })
    });
    group.bench_function("theorem2_k6_mu2_n12", |b| {
        b.iter(|| {
            let t2 = dbp_adversary::Theorem2::new(6, 2, 12);
            let inst = t2.instance();
            let mut bf = dbp_core::algorithms::BestFit::new();
            black_box(simulate(&inst, &mut bf).total_cost_ticks())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    packing_throughput,
    probe_overhead,
    span_overhead,
    adversarial_instances
);
criterion_main!(benches);
