//! Offline optimum substrate: exact branch-and-bound scaling, heuristics,
//! bounds, and the full OPT_total integral on a realistic trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbp_bench::{random_sizes, standard_workload};
use dbp_opt::{ffd, l2_bound, opt_total, ExactSolver, SolveMode};
use std::hint::black_box;

fn static_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_bin_packing");
    for &n in &[16usize, 32, 64] {
        let sizes = random_sizes(n, 5);
        group.bench_with_input(BenchmarkId::new("ffd", n), &sizes, |b, s| {
            b.iter(|| black_box(ffd(s, 100)))
        });
        group.bench_with_input(BenchmarkId::new("l2_bound", n), &sizes, |b, s| {
            b.iter(|| black_box(l2_bound(s, 100)))
        });
        group.bench_with_input(BenchmarkId::new("exact_bnb", n), &sizes, |b, s| {
            b.iter(|| black_box(ExactSolver::default().solve(s, 100)))
        });
    }
    group.finish();
}

fn opt_total_integral(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_total");
    group.sample_size(10);
    for &n in &[200usize, 500] {
        let inst = standard_workload(n, 11);
        group.bench_with_input(BenchmarkId::new("exact", n), &inst, |b, inst| {
            b.iter(|| {
                black_box(opt_total(
                    inst,
                    SolveMode::Exact {
                        node_budget: 100_000,
                    },
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("bounds", n), &inst, |b, inst| {
            b.iter(|| black_box(opt_total(inst, SolveMode::Bounds)))
        });
    }
    group.finish();
}

fn fixed_assignment_optimum(c: &mut Criterion) {
    use dbp_opt::fixed_optimum;
    let mut group = c.benchmark_group("fixed_optimum");
    group.sample_size(10);
    for &n in &[8usize, 10] {
        let inst = dbp_bench::standard_workload(n, 33);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(fixed_optimum(inst, 2_000_000).cost_ticks))
        });
    }
    group.finish();
}

fn opt_total_parallel_vs_sequential(c: &mut Criterion) {
    use dbp_opt::opt_total_parallel;
    let inst = standard_workload(500, 11);
    let mut group = c.benchmark_group("opt_total_parallel");
    group.sample_size(10);
    group.bench_function("parallel_500", |b| {
        b.iter(|| {
            black_box(opt_total_parallel(
                &inst,
                SolveMode::Exact {
                    node_budget: 100_000,
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    static_solvers,
    opt_total_integral,
    fixed_assignment_optimum,
    opt_total_parallel_vs_sequential
);
criterion_main!(benches);
