//! One bench target per paper table/figure: each runs the corresponding
//! experiment's quick grid end to end (generation, packing, OPT, checks),
//! so `cargo bench` regenerates every artifact and times it.

use criterion::{criterion_group, criterion_main, Criterion};
use dbp_experiments as exp;
use std::hint::black_box;

macro_rules! experiment_bench {
    ($fn_name:ident, $module:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let mut group = c.benchmark_group("paper");
            group.sample_size(10);
            group.bench_function(stringify!($module), |b| {
                b.iter(|| black_box(exp::$module::run(true).0.rows.len()))
            });
            group.finish();
        }
    };
}

experiment_bench!(bench_fig1, fig1_span);
experiment_bench!(bench_fig2, fig2_anyfit_lb);
experiment_bench!(bench_fig3, fig3_bestfit_unbounded);
experiment_bench!(bench_thm3, thm3_large_items);
experiment_bench!(bench_thm4, thm4_small_items);
experiment_bench!(bench_thm5, thm5_general_ff);
experiment_bench!(bench_tab2, tab2_case_classification);
experiment_bench!(bench_mff, mff_ratio);
experiment_bench!(bench_ablation, mff_k_ablation);
experiment_bench!(bench_costs, cloud_gaming_costs);
experiment_bench!(bench_mu, mu_sensitivity);
experiment_bench!(bench_billing, billing_granularity);
experiment_bench!(bench_constrained, constrained_dbp);
experiment_bench!(bench_footnote1, footnote1_adaptive);
experiment_bench!(bench_flash, flash_crowd);
experiment_bench!(bench_decomposition, mff_decomposition);
experiment_bench!(bench_unit_fractions, unit_fractions);
experiment_bench!(bench_clairvoyance, value_of_clairvoyance);
experiment_bench!(bench_migration, migration_gap);
experiment_bench!(bench_churn, server_churn);
experiment_bench!(bench_gap_search, ff_gap_search);
experiment_bench!(bench_hff, hff_class_ablation);

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_thm3,
    bench_thm4,
    bench_thm5,
    bench_tab2,
    bench_mff,
    bench_ablation,
    bench_costs,
    bench_mu,
    bench_billing,
    bench_constrained,
    bench_footnote1,
    bench_flash,
    bench_decomposition,
    bench_unit_fractions,
    bench_clairvoyance,
    bench_migration,
    bench_churn,
    bench_gap_search,
    bench_hff
);
criterion_main!(benches);
