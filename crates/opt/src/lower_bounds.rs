//! Lower bounds on the optimal number of bins for a static item multiset:
//! the area bound `L1` and the Martello–Toth bound `L2`.
//!
//! These bound `OPT(R, t)` from below at every instant, and integrate into a
//! lower bound on `OPT_total(R)`.

/// `L1 = ⌈Σ s / W⌉` — the area (fractional-relaxation) bound.
pub fn l1_bound(sizes: &[u64], capacity: u64) -> usize {
    assert!(capacity > 0, "l1: zero capacity");
    let total: u128 = sizes.iter().map(|&s| s as u128).sum();
    total.div_ceil(capacity as u128) as usize
}

/// The Martello–Toth `L2` bound: for each threshold α, items larger than
/// `W − α` need dedicated bins, items in `(W/2, W − α]` need their own bins
/// too (at most one each, possibly sharing with the `[α, W/2]` mass), and
/// the leftover `[α, W/2]` mass is area-bounded. `L2 ≥ L1` always.
pub fn l2_bound(sizes: &[u64], capacity: u64) -> usize {
    assert!(capacity > 0, "l2: zero capacity");
    let w = capacity as u128;
    let mut best = l1_bound(sizes, capacity);
    // Candidate thresholds where the bound can change: α = 1 (all small
    // items in J3), each distinct size ≤ W/2 (J3 membership changes), and
    // `W − s + 1` for each size s > W/2 (J1 membership changes).
    let mut alphas: Vec<u64> = vec![1];
    for &s in sizes {
        let s128 = s as u128;
        if 2 * s128 <= w {
            alphas.push(s);
        } else {
            let flip = (w - s128 + 1) as u64;
            if 2 * (flip as u128) <= w {
                alphas.push(flip);
            }
        }
    }
    alphas.sort_unstable();
    alphas.dedup();
    for &alpha in &alphas {
        let a = alpha as u128;
        let mut n1 = 0u128; // s > W − α
        let mut n2 = 0u128; // W/2 < s ≤ W − α
        let mut s2 = 0u128;
        let mut s3 = 0u128; // α ≤ s ≤ W/2
        for &s in sizes {
            let s = s as u128;
            if s > w - a {
                n1 += 1;
            } else if 2 * s > w {
                n2 += 1;
                s2 += s;
            } else if s >= a {
                s3 += s;
            }
        }
        let free_in_j2 = n2 * w - s2;
        let overflow = if s3 > free_in_j2 {
            (s3 - free_in_j2).div_ceil(w)
        } else {
            0
        };
        let lb = (n1 + n2 + overflow) as usize;
        best = best.max(lb);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::ffd;

    #[test]
    fn l1_is_area_bound() {
        assert_eq!(l1_bound(&[5, 5, 5], 10), 2);
        assert_eq!(l1_bound(&[], 10), 0);
        assert_eq!(l1_bound(&[1], 10), 1);
        assert_eq!(l1_bound(&[10, 10], 10), 2);
    }

    #[test]
    fn l2_beats_l1_on_just_over_half_items() {
        // Three items of 6 on capacity 10: area bound says 2, but no two fit
        // together, so L2 must say 3.
        assert_eq!(l1_bound(&[6, 6, 6], 10), 2);
        assert_eq!(l2_bound(&[6, 6, 6], 10), 3);
    }

    #[test]
    fn l2_counts_huge_items_separately() {
        // 9,9,2,2 on 10: L1 = 3; pairs (9,?) can't take a 2 (9+2>10)...
        // actually 9+2 = 11 > 10 so each 9 alone, 2+2 together: 3 bins.
        assert_eq!(l2_bound(&[9, 9, 2, 2], 10), 3);
    }

    #[test]
    fn l2_never_exceeds_ffd() {
        let cases: &[(&[u64], u64)] = &[
            (&[7, 6, 5, 4, 3, 2, 1], 10),
            (&[6, 6, 6, 4, 4, 4], 10),
            (&[3, 3, 3, 3, 3], 9),
            (&[10, 1, 1, 1], 10),
            (&[5], 10),
            (&[], 7),
        ];
        for (sizes, cap) in cases {
            assert!(
                l2_bound(sizes, *cap) <= ffd(sizes, *cap),
                "L2 > FFD on {sizes:?} cap {cap}"
            );
            assert!(l1_bound(sizes, *cap) <= l2_bound(sizes, *cap));
        }
    }
}
