//! Brute-force reference solver: exhaustive set-partition enumeration for
//! tiny multisets. Exponential and only used in tests — it exists so the
//! branch-and-bound solver (which everything divides by) has an independent
//! ground truth to be diffed against.

/// Minimum bins by trying every assignment of items to at most `n` bins
/// (with canonical-order symmetry breaking). Only call with `sizes.len()`
/// up to ~10.
pub fn brute_force_min_bins(sizes: &[u64], capacity: u64) -> usize {
    assert!(capacity > 0);
    assert!(
        sizes.len() <= 12,
        "brute force is exponential; got {} items",
        sizes.len()
    );
    if sizes.is_empty() {
        return 0;
    }
    fn rec(sizes: &[u64], capacity: u64, idx: usize, loads: &mut Vec<u64>, best: &mut usize) {
        if loads.len() >= *best {
            return;
        }
        if idx == sizes.len() {
            *best = loads.len();
            return;
        }
        let s = sizes[idx];
        for b in 0..loads.len() {
            if loads[b] + s <= capacity {
                loads[b] += s;
                rec(sizes, capacity, idx + 1, loads, best);
                loads[b] -= s;
            }
        }
        loads.push(s);
        rec(sizes, capacity, idx + 1, loads, best);
        loads.pop();
    }
    let mut best = sizes.len(); // one bin per item always feasible
    let mut loads = Vec::new();
    rec(sizes, capacity, 0, &mut loads, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use proptest::prelude::*;

    #[test]
    fn brute_force_known_values() {
        assert_eq!(brute_force_min_bins(&[], 10), 0);
        assert_eq!(brute_force_min_bins(&[10], 10), 1);
        assert_eq!(brute_force_min_bins(&[6, 6, 6], 10), 3);
        assert_eq!(brute_force_min_bins(&[5, 5, 4, 4, 3, 3, 3, 3], 10), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The branch-and-bound solver agrees with exhaustive enumeration on
        /// every tiny multiset — the ground-truth anchor for OPT_total.
        #[test]
        fn bnb_matches_brute_force(
            sizes in proptest::collection::vec(1u64..=20, 0..9),
            cap in 20u64..40
        ) {
            let brute = brute_force_min_bins(&sizes, cap);
            let bnb = ExactSolver::default().solve(&sizes, cap);
            prop_assert!(bnb.is_exact());
            prop_assert_eq!(bnb.lb(), brute, "sizes {:?} cap {}", sizes, cap);
        }
    }
}
