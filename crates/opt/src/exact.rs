//! Exact bin packing by branch-and-bound.
//!
//! Depth-first search placing items in decreasing size order, with:
//!
//! * an FFD incumbent as the initial upper bound;
//! * the admissible prune `bins_used + ⌈(remaining − free)/W⌉` plus the
//!   global Martello–Toth root bound;
//! * symmetry breaking: equal residuals are tried once, equal-size items
//!   follow a fixed bin order, and opening a new bin is a single branch;
//! * a node budget, after which the result degrades gracefully to an
//!   `(L2, FFD)` bracket.

use crate::heuristics::ffd;
use crate::lower_bounds::l2_bound;

/// Result of an exact solve attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The optimal bin count, proved.
    Exact(usize),
    /// Node budget exhausted: the optimum lies in `[lb, ub]`.
    Bounded {
        /// Best proved lower bound.
        lb: usize,
        /// Best found feasible packing.
        ub: usize,
    },
}

impl SolveOutcome {
    /// The proved lower bound.
    pub fn lb(self) -> usize {
        match self {
            SolveOutcome::Exact(n) => n,
            SolveOutcome::Bounded { lb, .. } => lb,
        }
    }

    /// The best known upper bound (a feasible packing's bin count).
    pub fn ub(self) -> usize {
        match self {
            SolveOutcome::Exact(n) => n,
            SolveOutcome::Bounded { ub, .. } => ub,
        }
    }

    /// Whether the optimum was proved.
    pub fn is_exact(self) -> bool {
        matches!(self, SolveOutcome::Exact(_))
    }
}

/// Exact bin packing solver.
#[derive(Debug, Clone, Copy)]
pub struct ExactSolver {
    node_budget: u64,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            node_budget: 2_000_000,
        }
    }
}

struct Search {
    capacity: u64,
    sizes: Vec<u64>, // descending
    suffix_sum: Vec<u128>,
    best: usize,
    nodes_left: u64,
    exhausted: bool,
}

impl Search {
    /// DFS over item `idx` placements. `residuals` holds open-bin residual
    /// capacities. Returns early when the incumbent matches the global lb.
    fn dfs(&mut self, idx: usize, residuals: &mut Vec<u64>, global_lb: usize) {
        if self.nodes_left == 0 {
            self.exhausted = true;
            return;
        }
        self.nodes_left -= 1;

        if idx == self.sizes.len() {
            self.best = self.best.min(residuals.len());
            return;
        }
        // Admissible prune: remaining volume minus free space in open bins.
        let free: u128 = residuals.iter().map(|&r| r as u128).sum();
        let remaining = self.suffix_sum[idx];
        let extra = if remaining > free {
            (remaining - free).div_ceil(self.capacity as u128) as usize
        } else {
            0
        };
        if residuals.len() + extra >= self.best {
            return;
        }

        let s = self.sizes[idx];
        // Try distinct residuals only (symmetry breaking), tightest first so
        // good packings are found early.
        let mut tried: Vec<u64> = Vec::with_capacity(residuals.len());
        let mut order: Vec<usize> = (0..residuals.len()).collect();
        order.sort_unstable_by_key(|&i| residuals[i]);
        for i in order {
            let r = residuals[i];
            if r < s || tried.contains(&r) {
                continue;
            }
            tried.push(r);
            residuals[i] = r - s;
            self.dfs(idx + 1, residuals, global_lb);
            residuals[i] = r;
            if self.best == global_lb || self.exhausted {
                return;
            }
        }
        // Open a new bin (single symmetric branch).
        residuals.push(self.capacity - s);
        self.dfs(idx + 1, residuals, global_lb);
        residuals.pop();
    }
}

impl ExactSolver {
    /// Solver with a custom node budget.
    pub fn with_node_budget(node_budget: u64) -> ExactSolver {
        ExactSolver { node_budget }
    }

    /// Minimum number of bins to pack `sizes` into bins of `capacity`.
    ///
    /// # Panics
    /// Panics if a size exceeds `capacity` or `capacity == 0`.
    pub fn solve(&self, sizes: &[u64], capacity: u64) -> SolveOutcome {
        assert!(capacity > 0, "exact solver: zero capacity");
        if sizes.is_empty() {
            return SolveOutcome::Exact(0);
        }
        for &s in sizes {
            assert!(
                s <= capacity,
                "exact solver: item {s} exceeds capacity {capacity}"
            );
        }
        let lb = l2_bound(sizes, capacity);
        let ub = ffd(sizes, capacity);
        if lb == ub {
            return SolveOutcome::Exact(ub);
        }

        let mut sorted = sizes.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut suffix_sum = vec![0u128; sorted.len() + 1];
        for i in (0..sorted.len()).rev() {
            suffix_sum[i] = suffix_sum[i + 1] + sorted[i] as u128;
        }
        let mut search = Search {
            capacity,
            sizes: sorted,
            suffix_sum,
            best: ub,
            nodes_left: self.node_budget,
            exhausted: false,
        };
        let mut residuals = Vec::new();
        search.dfs(0, &mut residuals, lb);

        if search.exhausted && search.best > lb {
            SolveOutcome::Bounded {
                lb,
                ub: search.best,
            }
        } else {
            // Search completed: best is optimal (or matched the lb, which
            // proves optimality even if the budget ran out afterwards).
            SolveOutcome::Exact(search.best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(sizes: &[u64], cap: u64) -> usize {
        match ExactSolver::default().solve(sizes, cap) {
            SolveOutcome::Exact(n) => n,
            other => panic!("expected exact, got {other:?}"),
        }
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(exact(&[], 10), 0);
        assert_eq!(exact(&[10], 10), 1);
        assert_eq!(exact(&[5, 5], 10), 1);
        assert_eq!(exact(&[6, 6], 10), 2);
    }

    #[test]
    fn beats_ffd_where_ffd_is_suboptimal() {
        // Classic FFD-suboptimal instance: FFD gives 3 bins, OPT is... let's
        // verify a known one. Sizes on capacity 12: FFD packs
        // 6,5|4,3,3|2 -> 3 bins? FFD order 6,5,4,3,3,2:
        // 6->b0(6); 5->b0? 11<=12 yes (6+5=11); 4->b1; 3->b1(7); 3->b1(10);
        // 2->b1? 12 yes. So 2 bins. Pick the canonical FFD-failure instance:
        // capacity 10, sizes {5,5,4,4,3,3,3,3}: FFD: 5,5|4,4|3,3,3|3 = 4?
        // 5->b0;5->b0(10);4->b1;4->b1(8);3->b2;3->b2(6);3->b2(9);3->b3.
        // OPT: 5+3+... total = 30 -> 3 bins: (5,5),(4,3,3),(4,3,3).
        let sizes = [5, 5, 4, 4, 3, 3, 3, 3];
        assert_eq!(crate::heuristics::ffd(&sizes, 10), 4);
        assert_eq!(exact(&sizes, 10), 3);
    }

    #[test]
    fn exact_between_l2_and_ffd() {
        let cases: &[(&[u64], u64)] = &[
            (&[7, 6, 5, 4, 3, 2, 1], 10),
            (&[9, 9, 2, 2], 10),
            (&[6, 6, 6], 10),
            (&[3, 3, 3, 3, 3, 3, 3], 9),
        ];
        for (sizes, cap) in cases {
            let n = exact(sizes, *cap);
            assert!(n >= crate::lower_bounds::l2_bound(sizes, *cap));
            assert!(n <= crate::heuristics::ffd(sizes, *cap));
        }
    }

    #[test]
    fn tiny_budget_degrades_to_bracket() {
        let solver = ExactSolver::with_node_budget(1);
        // An instance where lb < ub so the search actually runs.
        let sizes = [5, 5, 4, 4, 3, 3, 3, 3];
        match solver.solve(&sizes, 10) {
            SolveOutcome::Bounded { lb, ub } => {
                assert!(lb <= 3 && ub >= 3 && lb < ub);
            }
            SolveOutcome::Exact(n) => {
                // Acceptable if the first DFS path already matched the lb.
                assert_eq!(n, 3);
            }
        }
    }

    #[test]
    fn many_equal_items_solved_fast_via_symmetry() {
        let sizes = vec![3u64; 60];
        // 3 items of size 3 per bin of 9: 20 bins.
        assert_eq!(exact(&sizes, 9), 20);
    }
}
