//! `OPT(R, t)` and `OPT_total(R) = ∫ OPT(R, t) dt` — the paper's baseline.
//!
//! `OPT(R, t)` is the minimum number of bins into which the items active at
//! time `t` can be repacked (§3.2); the integral is piecewise constant
//! between event ticks, so it is computed exactly by solving one static bin
//! packing problem per event segment. Consecutive segments differ by a few
//! items, so solve results are memoized on the active size multiset.

use crate::exact::{ExactSolver, SolveOutcome};
use crate::heuristics::ffd;
use crate::lower_bounds::l2_bound;
use dbp_core::events::{schedule, EventKind};
use dbp_core::instance::Instance;
use dbp_core::ratio::Ratio;
use dbp_core::time::Tick;
use std::collections::HashMap;

/// How hard to work per event segment.
#[derive(Debug, Clone, Copy)]
pub enum SolveMode {
    /// Branch-and-bound with the given node budget per segment; falls back
    /// to an `[L2, FFD]` bracket when the budget runs out.
    Exact {
        /// Node budget per distinct active set.
        node_budget: u64,
    },
    /// `[L2, FFD]` brackets only — fast enough for very large traces.
    Bounds,
}

impl Default for SolveMode {
    fn default() -> Self {
        SolveMode::Exact {
            node_budget: 200_000,
        }
    }
}

/// The integral of `OPT(R, t)` over the packing period, possibly as a
/// bracket when some segment could not be solved exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptTotal {
    /// Lower bound on `OPT_total` in bin-ticks.
    pub lb_ticks: u128,
    /// Upper bound on `OPT_total` in bin-ticks.
    pub ub_ticks: u128,
    /// Number of constant segments integrated.
    pub segments: usize,
    /// Number of distinct active multisets solved.
    pub distinct_sets: usize,
}

impl OptTotal {
    /// Whether the integral is exact (`lb == ub`).
    pub fn is_exact(&self) -> bool {
        self.lb_ticks == self.ub_ticks
    }

    /// The exact value.
    ///
    /// # Panics
    /// Panics if only a bracket is known.
    pub fn exact_ticks(&self) -> u128 {
        assert!(
            self.is_exact(),
            "OPT_total is a bracket [{}, {}], not exact",
            self.lb_ticks,
            self.ub_ticks
        );
        self.lb_ticks
    }

    /// Exact ratio `cost / OPT_total`, available only when the integral is
    /// exact.
    pub fn ratio_of(&self, cost_ticks: u128) -> Ratio {
        Ratio::new(cost_ticks, self.exact_ticks())
    }
}

/// `OPT(R, t)`: bins needed for the items active at `t`, as an `(lb, ub)`
/// pair (equal when solved exactly).
pub fn opt_at(instance: &Instance, t: Tick, mode: SolveMode) -> (usize, usize) {
    let sizes: Vec<u64> = instance
        .items()
        .iter()
        .filter(|r| r.is_active_at(t))
        .map(|r| r.size.raw())
        .collect();
    solve_multiset(&sizes, instance.capacity().raw(), mode)
}

fn solve_multiset(sizes: &[u64], capacity: u64, mode: SolveMode) -> (usize, usize) {
    match mode {
        SolveMode::Bounds => (l2_bound(sizes, capacity), ffd(sizes, capacity)),
        SolveMode::Exact { node_budget } => {
            match ExactSolver::with_node_budget(node_budget).solve(sizes, capacity) {
                SolveOutcome::Exact(n) => (n, n),
                SolveOutcome::Bounded { lb, ub } => (lb, ub),
            }
        }
    }
}

/// Compute `OPT_total(R)` by exact piecewise-constant integration.
pub fn opt_total(instance: &Instance, mode: SolveMode) -> OptTotal {
    let events = schedule(instance);
    if events.is_empty() {
        return OptTotal {
            lb_ticks: 0,
            ub_ticks: 0,
            segments: 0,
            distinct_sets: 0,
        };
    }

    // Active multiset as size -> count, kept sorted in the cache key.
    let mut active: HashMap<u64, u32> = HashMap::new();
    let mut cache: HashMap<Vec<(u64, u32)>, (usize, usize)> = HashMap::new();
    let mut lb_ticks: u128 = 0;
    let mut ub_ticks: u128 = 0;
    let mut segments = 0usize;
    let capacity = instance.capacity().raw();

    let mut i = 0;
    let mut prev_tick: Option<Tick> = None;
    while i < events.len() {
        let tick = events[i].at;
        // Integrate the segment [prev_tick, tick) with the current set.
        if let Some(prev) = prev_tick {
            let dur = (tick - prev).raw() as u128;
            if dur > 0 && !active.is_empty() {
                let mut key: Vec<(u64, u32)> = active.iter().map(|(&s, &c)| (s, c)).collect();
                key.sort_unstable();
                let (lb, ub) = *cache.entry(key).or_insert_with_key(|key| {
                    // Single distinct size: ⌈count / ⌊W/s⌋⌉ bins, exactly —
                    // this keeps the unit-size adversarial instances
                    // (Theorem 2, ~10⁵ items) integrable in linear time.
                    if let [(s, c)] = key[..] {
                        let per_bin = capacity / s;
                        let bins = (c as u64).div_ceil(per_bin) as usize;
                        return (bins, bins);
                    }
                    let sizes: Vec<u64> = key
                        .iter()
                        .flat_map(|&(s, c)| std::iter::repeat_n(s, c as usize))
                        .collect();
                    solve_multiset(&sizes, capacity, mode)
                });
                lb_ticks += lb as u128 * dur;
                ub_ticks += ub as u128 * dur;
                segments += 1;
            }
        }
        // Apply all events at this tick.
        while i < events.len() && events[i].at == tick {
            let ev = events[i];
            i += 1;
            let size = instance.item(ev.item).size.raw();
            match ev.kind {
                EventKind::Arrival => *active.entry(size).or_insert(0) += 1,
                EventKind::Departure => {
                    let c = active.get_mut(&size).expect("departure without arrival");
                    *c -= 1;
                    if *c == 0 {
                        active.remove(&size);
                    }
                }
            }
        }
        prev_tick = Some(tick);
    }
    debug_assert!(active.is_empty(), "items alive past the last departure");

    OptTotal {
        lb_ticks,
        ub_ticks,
        segments,
        distinct_sets: cache.len(),
    }
}

/// The step function of `OPT(R, t)` over the packing period: entries
/// `(tick, lb, ub)` mean the optimum lies in `[lb, ub]` from `tick` until
/// the next entry. Useful for plotting the paper's `A(R,t)` vs `OPT(R,t)`
/// comparison directly.
pub fn opt_timeline(instance: &Instance, mode: SolveMode) -> Vec<(Tick, usize, usize)> {
    let ticks = dbp_core::events::event_ticks(instance);
    let mut out = Vec::with_capacity(ticks.len());
    let mut cache: HashMap<Vec<(u64, u32)>, (usize, usize)> = HashMap::new();
    let capacity = instance.capacity().raw();
    for &t in &ticks {
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for r in instance.items().iter().filter(|r| r.is_active_at(t)) {
            *counts.entry(r.size.raw()).or_insert(0) += 1;
        }
        let mut key: Vec<(u64, u32)> = counts.into_iter().collect();
        key.sort_unstable();
        let (lb, ub) = *cache.entry(key).or_insert_with_key(|key| {
            if let [(s, c)] = key[..] {
                let per_bin = capacity / s;
                let bins = (c as u64).div_ceil(per_bin) as usize;
                return (bins, bins);
            }
            let sizes: Vec<u64> = key
                .iter()
                .flat_map(|&(s, c)| std::iter::repeat_n(s, c as usize))
                .collect();
            solve_multiset(&sizes, capacity, mode)
        });
        out.push((t, lb, ub));
    }
    out
}

/// Parallel `OPT_total`: one sequential sweep collects the distinct active
/// multisets and their total durations, then the (independent, often
/// expensive) static solves fan out over rayon. Bit-identical to
/// [`opt_total`].
pub fn opt_total_parallel(instance: &Instance, mode: SolveMode) -> OptTotal {
    use rayon::prelude::*;

    let events = schedule(instance);
    if events.is_empty() {
        return OptTotal {
            lb_ticks: 0,
            ub_ticks: 0,
            segments: 0,
            distinct_sets: 0,
        };
    }
    let capacity = instance.capacity().raw();

    // Pass 1: total duration per distinct multiset + segment count.
    let mut active: HashMap<u64, u32> = HashMap::new();
    let mut durations: HashMap<Vec<(u64, u32)>, u128> = HashMap::new();
    let mut segments = 0usize;
    let mut i = 0;
    let mut prev_tick: Option<Tick> = None;
    while i < events.len() {
        let tick = events[i].at;
        if let Some(prev) = prev_tick {
            let dur = (tick - prev).raw() as u128;
            if dur > 0 && !active.is_empty() {
                let mut key: Vec<(u64, u32)> = active.iter().map(|(&s, &c)| (s, c)).collect();
                key.sort_unstable();
                *durations.entry(key).or_insert(0) += dur;
                segments += 1;
            }
        }
        while i < events.len() && events[i].at == tick {
            let ev = events[i];
            i += 1;
            let size = instance.item(ev.item).size.raw();
            match ev.kind {
                EventKind::Arrival => *active.entry(size).or_insert(0) += 1,
                EventKind::Departure => {
                    let c = active.get_mut(&size).expect("departure without arrival");
                    *c -= 1;
                    if *c == 0 {
                        active.remove(&size);
                    }
                }
            }
        }
        prev_tick = Some(tick);
    }

    // Pass 2: independent solves in parallel.
    let entries: Vec<(Vec<(u64, u32)>, u128)> = durations.into_iter().collect();
    let distinct_sets = entries.len();
    let (lb_ticks, ub_ticks) = entries
        .par_iter()
        .map(|(key, dur)| {
            let (lb, ub) = if let [(s, c)] = key[..] {
                let per_bin = capacity / s;
                let bins = (c as u64).div_ceil(per_bin) as usize;
                (bins, bins)
            } else {
                let sizes: Vec<u64> = key
                    .iter()
                    .flat_map(|&(s, c)| std::iter::repeat_n(s, c as usize))
                    .collect();
                solve_multiset(&sizes, capacity, mode)
            };
            (lb as u128 * dur, ub as u128 * dur)
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));

    OptTotal {
        lb_ticks,
        ub_ticks,
        segments,
        distinct_sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::bounds::combined_lower_bound;
    use dbp_core::instance::InstanceBuilder;
    use dbp_core::ratio::Ratio;

    fn demo() -> Instance {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6);
        b.add(0, 4, 6); // forces 2 bins while alive
        b.add(2, 8, 4);
        b.build().unwrap()
    }

    #[test]
    fn opt_total_exact_integration() {
        let inst = demo();
        let opt = opt_total(&inst, SolveMode::default());
        assert!(opt.is_exact());
        // Active sets: [0,2): {6,6} -> 2; [2,4): {6,6,4} -> 2; [4,8): {6,4}
        // -> 1; [8,10): {6} -> 1. Integral = 2*2 + 2*2 + 1*4 + 1*2 = 14.
        assert_eq!(opt.exact_ticks(), 14);
    }

    #[test]
    fn opt_at_matches_segment_values() {
        let inst = demo();
        let mode = SolveMode::default();
        assert_eq!(opt_at(&inst, Tick(0), mode), (2, 2));
        assert_eq!(opt_at(&inst, Tick(3), mode), (2, 2));
        assert_eq!(opt_at(&inst, Tick(5), mode), (1, 1));
        assert_eq!(opt_at(&inst, Tick(9), mode), (1, 1));
        assert_eq!(opt_at(&inst, Tick(10), mode), (0, 0));
    }

    #[test]
    fn opt_total_dominates_combined_lower_bound() {
        let inst = demo();
        let opt = opt_total(&inst, SolveMode::default());
        let lb = combined_lower_bound(&inst);
        assert!(Ratio::from_int(opt.exact_ticks()) >= lb);
    }

    #[test]
    fn bounds_mode_brackets_exact() {
        let inst = demo();
        let exact = opt_total(&inst, SolveMode::default());
        let bounds = opt_total(&inst, SolveMode::Bounds);
        assert!(bounds.lb_ticks <= exact.lb_ticks);
        assert!(bounds.ub_ticks >= exact.ub_ticks);
    }

    #[test]
    fn empty_instance_is_zero() {
        let inst = Instance::new(dbp_core::item::Size(5), vec![]).unwrap();
        let opt = opt_total(&inst, SolveMode::default());
        assert_eq!(opt.exact_ticks(), 0);
        assert_eq!(opt.segments, 0);
    }

    #[test]
    fn gap_segments_cost_nothing() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 3);
        b.add(20, 30, 3); // gap [5, 20) has no active items
        let inst = b.build().unwrap();
        let opt = opt_total(&inst, SolveMode::default());
        assert_eq!(opt.exact_ticks(), 15);
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use dbp_core::instance::InstanceBuilder;

    #[test]
    fn timeline_integrates_to_opt_total() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6);
        b.add(0, 4, 6);
        b.add(2, 8, 4);
        let inst = b.build().unwrap();
        let timeline = opt_timeline(&inst, SolveMode::default());
        // Integrate the step function manually.
        let mut total: u128 = 0;
        for w in timeline.windows(2) {
            total += (w[1].0 - w[0].0).raw() as u128 * w[0].1 as u128;
        }
        assert_eq!(total, opt_total(&inst, SolveMode::default()).exact_ticks());
        // Final tick has zero active items.
        let last = timeline.last().unwrap();
        assert_eq!((last.1, last.2), (0, 0));
    }

    #[test]
    fn timeline_matches_opt_at_pointwise() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 9, 7);
        b.add(3, 12, 7);
        b.add(5, 15, 7);
        let inst = b.build().unwrap();
        for (t, lb, ub) in opt_timeline(&inst, SolveMode::default()) {
            assert_eq!((lb, ub), opt_at(&inst, t, SolveMode::default()));
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use dbp_core::instance::InstanceBuilder;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn parallel_matches_sequential_exactly() {
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = InstanceBuilder::new(50);
            let mut t = 0;
            for _ in 0..80 {
                t += rng.random_range(0..6);
                b.add(t, t + rng.random_range(5..40), rng.random_range(1..=30));
            }
            let inst = b.build().unwrap();
            for mode in [SolveMode::default(), SolveMode::Bounds] {
                let seq = opt_total(&inst, mode);
                let par = opt_total_parallel(&inst, mode);
                assert_eq!(seq.lb_ticks, par.lb_ticks, "seed {seed}");
                assert_eq!(seq.ub_ticks, par.ub_ticks, "seed {seed}");
                assert_eq!(seq.segments, par.segments);
                assert_eq!(seq.distinct_sets, par.distinct_sets);
            }
        }
    }

    #[test]
    fn parallel_handles_empty_instance() {
        let inst = Instance::new(dbp_core::item::Size(5), vec![]).unwrap();
        let par = opt_total_parallel(&inst, SolveMode::default());
        assert_eq!(par.lb_ticks, 0);
        assert_eq!(par.distinct_sets, 0);
    }
}
