//! # dbp-opt — offline optimum substrate for MinTotal DBP
//!
//! The paper measures every online algorithm against
//! `OPT_total(R) = ∫ OPT(R, t) dt`, where `OPT(R, t)` is the *clairvoyant
//! repacking optimum*: the minimum number of bins that can hold the items
//! active at instant `t`. This crate provides:
//!
//! * [`heuristics`] — FFD and BFD (upper bounds per instant);
//! * [`lower_bounds`] — the area bound `L1` and Martello–Toth `L2`;
//! * [`exact`] — a branch-and-bound exact solver with graceful degradation;
//! * [`opt_total`](opt_total::opt_total) — the exact piecewise-constant integration of
//!   `OPT(R, t)` over the packing period, with multiset memoization.
//!
//! The adversarial experiments use [`opt_total::opt_total`] in exact mode so
//! measured competitive ratios compare `==` against the paper's closed
//! forms; the large workload sweeps use bracket mode and report ratio
//! ranges.
//!
//! ```
//! use dbp_opt::{ExactSolver, SolveOutcome, ffd, l2_bound};
//! // FFD is suboptimal here (4 bins); the exact solver proves 3.
//! let sizes = [5, 5, 4, 4, 3, 3, 3, 3];
//! assert_eq!(ffd(&sizes, 10), 4);
//! assert_eq!(ExactSolver::default().solve(&sizes, 10), SolveOutcome::Exact(3));
//! assert!(l2_bound(&sizes, 10) <= 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod brute;
pub mod exact;
pub mod fixed;
pub mod heuristics;
pub mod lower_bounds;
pub mod opt_total;

pub use brute::brute_force_min_bins;
pub use exact::{ExactSolver, SolveOutcome};
pub use fixed::{fixed_optimum, FixedOpt};
pub use heuristics::{bfd, ffd, ffd_packing, verify_packing, Packing};
pub use lower_bounds::{l1_bound, l2_bound};
pub use opt_total::{opt_at, opt_timeline, opt_total, opt_total_parallel, OptTotal, SolveMode};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn bounds_sandwich_exact(sizes in proptest::collection::vec(1u64..=20, 0..14)) {
            let cap = 20u64;
            let lb = l2_bound(&sizes, cap);
            let ub = ffd(&sizes, cap);
            let n = ExactSolver::default().solve(&sizes, cap);
            prop_assert!(n.is_exact());
            let n = n.lb();
            prop_assert!(lb <= n, "L2 {lb} > OPT {n} on {sizes:?}");
            prop_assert!(n <= ub, "OPT {n} > FFD {ub} on {sizes:?}");
            prop_assert!(bfd(&sizes, cap) >= n);
        }

        #[test]
        fn exact_is_permutation_invariant(mut sizes in proptest::collection::vec(1u64..=15, 1..10)) {
            let cap = 15u64;
            let a = ExactSolver::default().solve(&sizes, cap);
            sizes.reverse();
            let b = ExactSolver::default().solve(&sizes, cap);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn singleton_multiset_needs_one_bin(size in 1u64..=30) {
            prop_assert_eq!(ExactSolver::default().solve(&[size], 30), SolveOutcome::Exact(1));
        }
    }
}
