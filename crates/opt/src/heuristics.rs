//! Offline bin packing heuristics: First Fit Decreasing and Best Fit
//! Decreasing. They upper-bound `OPT(R, t)` per time instant and provide the
//! initial incumbent for the exact solver. Assignment-returning variants
//! produce checkable packings (see [`verify_packing`]).

/// Number of bins used by First Fit Decreasing.
///
/// # Panics
/// Panics if any size exceeds `capacity` or `capacity == 0`.
pub fn ffd(sizes: &[u64], capacity: u64) -> usize {
    assert!(capacity > 0, "ffd: zero capacity");
    let mut sorted: Vec<u64> = sizes.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut residuals: Vec<u64> = Vec::new();
    for s in sorted {
        assert!(s <= capacity, "ffd: item {s} exceeds capacity {capacity}");
        match residuals.iter_mut().find(|r| **r >= s) {
            Some(r) => *r -= s,
            None => residuals.push(capacity - s),
        }
    }
    residuals.len()
}

/// Number of bins used by Best Fit Decreasing.
///
/// # Panics
/// Panics if any size exceeds `capacity` or `capacity == 0`.
pub fn bfd(sizes: &[u64], capacity: u64) -> usize {
    assert!(capacity > 0, "bfd: zero capacity");
    let mut sorted: Vec<u64> = sizes.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut residuals: Vec<u64> = Vec::new();
    for s in sorted {
        assert!(s <= capacity, "bfd: item {s} exceeds capacity {capacity}");
        // Tightest residual that still fits.
        let best = residuals
            .iter_mut()
            .filter(|r| **r >= s)
            .min_by_key(|r| **r);
        match best {
            Some(r) => *r -= s,
            None => residuals.push(capacity - s),
        }
    }
    residuals.len()
}

/// A concrete static packing: `bins[b]` lists the indices into the input
/// size slice assigned to bin `b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packing {
    /// Item indices per bin.
    pub bins: Vec<Vec<usize>>,
}

impl Packing {
    /// Number of bins used.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }
}

/// First Fit Decreasing, returning the actual packing.
///
/// # Panics
/// Panics if any size exceeds `capacity` or `capacity == 0`.
pub fn ffd_packing(sizes: &[u64], capacity: u64) -> Packing {
    assert!(capacity > 0, "ffd_packing: zero capacity");
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_unstable_by(|&a, &b| sizes[b].cmp(&sizes[a]));
    let mut residuals: Vec<u64> = Vec::new();
    let mut bins: Vec<Vec<usize>> = Vec::new();
    for idx in order {
        let s = sizes[idx];
        assert!(s <= capacity, "ffd_packing: item {s} exceeds capacity");
        match residuals.iter().position(|&r| r >= s) {
            Some(b) => {
                residuals[b] -= s;
                bins[b].push(idx);
            }
            None => {
                residuals.push(capacity - s);
                bins.push(vec![idx]);
            }
        }
    }
    Packing { bins }
}

/// Validate a static packing: every item placed exactly once and no bin
/// over capacity. Returns human-readable violations (empty = feasible).
pub fn verify_packing(sizes: &[u64], capacity: u64, packing: &Packing) -> Vec<String> {
    let mut errs = Vec::new();
    let mut seen = vec![0u32; sizes.len()];
    for (b, bin) in packing.bins.iter().enumerate() {
        let mut load: u128 = 0;
        for &idx in bin {
            match sizes.get(idx) {
                None => errs.push(format!("bin {b} references unknown item {idx}")),
                Some(&s) => {
                    seen[idx] += 1;
                    load += s as u128;
                }
            }
        }
        if load > capacity as u128 {
            errs.push(format!("bin {b} over capacity: {load} > {capacity}"));
        }
        if bin.is_empty() {
            errs.push(format!("bin {b} is empty"));
        }
    }
    for (idx, &count) in seen.iter().enumerate() {
        if count != 1 {
            errs.push(format!("item {idx} placed {count} times"));
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_needs_no_bins() {
        assert_eq!(ffd(&[], 10), 0);
        assert_eq!(bfd(&[], 10), 0);
    }

    #[test]
    fn perfect_fill() {
        assert_eq!(ffd(&[5, 5, 5, 5], 10), 2);
        assert_eq!(bfd(&[5, 5, 5, 5], 10), 2);
    }

    #[test]
    fn ffd_classic_example() {
        // Sizes where FFD uses the known packing: descending placement.
        let sizes = [7, 6, 5, 4, 3, 2, 1];
        // Total 28, capacity 10 -> at least 3 bins. FFD: 7+3, 6+4, 5+2+1...
        // bins: [7,3],[6,4],[5,2,1] -> wait placement order 7,6,5,4,3,2,1:
        // 7->b0; 6->b1; 5->b2; 4->b1(res4); 3->b0(res3); 2->b2(res5->3);
        // 1->b0? b0 res0 -> b1 res0 -> b2 res3-1. 3 bins.
        assert_eq!(ffd(&sizes, 10), 3);
        assert_eq!(bfd(&sizes, 10), 3);
    }

    #[test]
    fn bfd_can_beat_ffd_orderings() {
        // Both are ≥ optimal; sanity that they never differ wildly here.
        let sizes = [6, 6, 4, 4, 4, 4];
        assert_eq!(ffd(&sizes, 10), 3);
        assert_eq!(bfd(&sizes, 10), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_item_panics() {
        let _ = ffd(&[11], 10);
    }

    #[test]
    fn ffd_packing_matches_ffd_count_and_is_feasible() {
        let cases: &[(&[u64], u64)] = &[
            (&[7, 6, 5, 4, 3, 2, 1], 10),
            (&[5, 5, 4, 4, 3, 3, 3, 3], 10),
            (&[10], 10),
            (&[], 10),
        ];
        for (sizes, cap) in cases {
            let p = ffd_packing(sizes, *cap);
            assert_eq!(p.n_bins(), ffd(sizes, *cap), "count mismatch on {sizes:?}");
            assert!(verify_packing(sizes, *cap, &p).is_empty());
        }
    }

    #[test]
    fn verify_packing_catches_violations() {
        let sizes = [6u64, 6];
        // Over capacity.
        let bad = Packing {
            bins: vec![vec![0, 1]],
        };
        assert!(verify_packing(&sizes, 10, &bad)
            .iter()
            .any(|e| e.contains("over capacity")));
        // Missing item.
        let bad = Packing {
            bins: vec![vec![0]],
        };
        assert!(verify_packing(&sizes, 10, &bad)
            .iter()
            .any(|e| e.contains("placed 0 times")));
        // Duplicated item.
        let bad = Packing {
            bins: vec![vec![0], vec![0], vec![1]],
        };
        assert!(verify_packing(&sizes, 10, &bad)
            .iter()
            .any(|e| e.contains("placed 2 times")));
        // Unknown index.
        let bad = Packing {
            bins: vec![vec![0], vec![1], vec![7]],
        };
        assert!(verify_packing(&sizes, 10, &bad)
            .iter()
            .any(|e| e.contains("unknown item")));
    }
}
