//! The offline **no-migration** optimum: the cheapest *fixed* assignment of
//! items to bins (each item stays in one bin for its whole life, bins must
//! respect capacity at every instant).
//!
//! The paper's baseline `OPT_total = ∫ OPT(R,t) dt` lets the adversary
//! repack at every instant, which can be strictly cheaper than any fixed
//! assignment — so the paper's competitive ratios are against a *stronger*
//! optimum. This module computes the fixed optimum exactly (branch and
//! bound over assignments; exponential, for small instances) so the
//! `migration_gap` experiment can measure how much of the measured ratio is
//! attributable to that modelling choice:
//!
//! `OPT_total ≤ OPT_fixed ≤ A_total(R)` for every online algorithm `A`.

use dbp_core::instance::Instance;
use dbp_core::time::{union_length, Interval};

/// Result of the fixed-assignment search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedOpt {
    /// Minimum total cost over fixed assignments, in bin-ticks.
    pub cost_ticks: u128,
    /// Whether the search completed (false = node budget hit; `cost_ticks`
    /// is then the best found feasible assignment, an upper bound).
    pub exact: bool,
    /// Search nodes expanded.
    pub nodes: u64,
}

struct Search<'a> {
    instance: &'a Instance,
    capacity: u64,
    // Per open bin: member item indices.
    bins: Vec<Vec<usize>>,
    best: u128,
    nodes: u64,
    node_budget: u64,
    exhausted: bool,
}

impl Search<'_> {
    /// Max load of `bin ∪ {item}` over the item's interval.
    fn fits(&self, bin: &[usize], item: usize) -> bool {
        let it = &self.instance.items()[item];
        // Peak overlap at interval endpoints of members within the item's
        // window (the load function is piecewise constant with breakpoints
        // at arrivals).
        let mut points: Vec<u64> = vec![it.arrival.raw()];
        for &m in bin {
            let a = self.instance.items()[m].arrival.raw();
            if it.interval().contains(dbp_core::time::Tick(a)) {
                points.push(a);
            }
        }
        for &t in &points {
            let t = dbp_core::time::Tick(t);
            let load: u64 = bin
                .iter()
                .map(|&m| &self.instance.items()[m])
                .filter(|r| r.is_active_at(t))
                .map(|r| r.size.raw())
                .sum();
            if load + it.size.raw() > self.capacity {
                return false;
            }
        }
        true
    }

    /// Total current cost: sum over bins of the union of member intervals.
    fn current_cost(&self) -> u128 {
        self.bins
            .iter()
            .map(|bin| {
                let ivs: Vec<Interval> = bin
                    .iter()
                    .map(|&m| self.instance.items()[m].interval())
                    .collect();
                union_length(&ivs).raw() as u128
            })
            .sum()
    }

    fn dfs(&mut self, item: usize) {
        if self.nodes >= self.node_budget {
            self.exhausted = true;
            return;
        }
        self.nodes += 1;
        // Monotone lower bound: unions only grow as items are added.
        let cost = self.current_cost();
        if cost >= self.best {
            return;
        }
        if item == self.instance.len() {
            self.best = cost;
            return;
        }
        for b in 0..self.bins.len() {
            if self.fits(&self.bins[b], item) {
                self.bins[b].push(item);
                self.dfs(item + 1);
                self.bins[b].pop();
                if self.exhausted {
                    return;
                }
            }
        }
        // One symmetric branch for a fresh bin.
        self.bins.push(vec![item]);
        self.dfs(item + 1);
        self.bins.pop();
    }
}

/// Compute the fixed-assignment optimum by branch and bound.
///
/// Exponential in the worst case — intended for instances of ~a dozen
/// items. The `node_budget` caps the search; on exhaustion the best found
/// feasible cost is returned with `exact = false`.
pub fn fixed_optimum(instance: &Instance, node_budget: u64) -> FixedOpt {
    if instance.is_empty() {
        return FixedOpt {
            cost_ticks: 0,
            exact: true,
            nodes: 0,
        };
    }
    // Initial incumbent: First Fit online (always a feasible fixed
    // assignment).
    let ff = dbp_core::engine::simulate(instance, &mut dbp_core::algorithms::FirstFit::new());
    let mut search = Search {
        instance,
        capacity: instance.capacity().raw(),
        bins: Vec::new(),
        best: ff.total_cost_ticks(),
        nodes: 0,
        node_budget,
        exhausted: false,
    };
    search.dfs(0);
    FixedOpt {
        cost_ticks: search.best,
        exact: !search.exhausted,
        nodes: search.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt_total::{opt_total, SolveMode};
    use dbp_core::instance::InstanceBuilder;

    fn sandwich(inst: &Instance) -> (u128, u128, u128) {
        let repack = opt_total(inst, SolveMode::default()).exact_ticks();
        let fixed = fixed_optimum(inst, 5_000_000);
        assert!(fixed.exact);
        let ff = dbp_core::engine::simulate(inst, &mut dbp_core::algorithms::FirstFit::new())
            .total_cost_ticks();
        (repack, fixed.cost_ticks, ff)
    }

    #[test]
    fn fixed_sits_between_repack_opt_and_ff() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 30, 6);
        b.add(5, 40, 6);
        b.add(10, 20, 4);
        b.add(25, 60, 8);
        b.add(35, 55, 5);
        let inst = b.build().unwrap();
        let (repack, fixed, ff) = sandwich(&inst);
        assert!(repack <= fixed, "{repack} > {fixed}");
        assert!(fixed <= ff, "{fixed} > {ff}");
    }

    #[test]
    fn no_gap_on_the_theorem1_witness() {
        // A fixed assignment that groups the k survivors in one bin matches
        // the repacking optimum exactly.
        let inst = dbp_adversary_free_theorem1(3, 4);
        let (repack, fixed, _) = sandwich(&inst);
        assert_eq!(repack, fixed);
    }

    /// Local copy of the Theorem 1 witness (dbp-opt must not depend on
    /// dbp-adversary): k² unit items on capacity k; item i survives to µ∆
    /// iff i ≡ 0 (mod k).
    fn dbp_adversary_free_theorem1(k: u64, mu: u64) -> Instance {
        let delta = 10;
        let mut b = InstanceBuilder::new(k);
        for i in 0..k * k {
            let departure = if i % k == 0 { mu * delta } else { delta };
            b.add(0, departure, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn repacking_can_strictly_beat_fixed() {
        // x = [0,2)·6, y = [1,3)·6, z = [0,3)·4 on W = 10.
        // Repack: [0,1) one bin {x,z}; [1,2) two bins ({x,z},{y} or any);
        // [2,3) one bin {y,z} -> ∫ = 1+2+1 = 4.
        // Fixed: z can share with x or y but not both (x,y clash at [1,2)),
        // so the best fixed assignment costs 5 — a strict migration gap.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 2, 6); // x
        b.add(1, 3, 6); // y
        b.add(0, 3, 4); // z
        let inst = b.build().unwrap();
        let (repack, fixed, _) = sandwich(&inst);
        assert_eq!(repack, 4);
        assert_eq!(fixed, 5);
        assert!(repack < fixed);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(dbp_core::item::Size(5), vec![]).unwrap();
        let f = fixed_optimum(&inst, 1000);
        assert_eq!(f.cost_ticks, 0);
        assert!(f.exact);
    }

    #[test]
    fn budget_exhaustion_returns_feasible_upper_bound() {
        let mut b = InstanceBuilder::new(10);
        for i in 0..10 {
            b.add(i, i + 20, 3);
        }
        let inst = b.build().unwrap();
        let tiny = fixed_optimum(&inst, 5);
        assert!(!tiny.exact);
        let full = fixed_optimum(&inst, 10_000_000);
        assert!(full.exact);
        assert!(tiny.cost_ticks >= full.cost_ticks);
    }
}
