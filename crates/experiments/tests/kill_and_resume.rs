//! Chaos test for the `run_all` checkpoint/resume machinery: SIGKILL a
//! child sweep at an arbitrary point, resume it, and demand the final
//! results directory — every CSV and the manifest — byte-identical to an
//! uninterrupted run's. Also exercises the graceful SIGTERM path.

#![cfg(unix)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::Instant;

fn results_dir(stem: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("dbp-kill-resume-{}", std::process::id()))
        .join(stem);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_all(results: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_run_all"))
        .env("DBP_RESULTS", results)
        .args(["--quick", "--stable-manifest", "--jobs", "2"])
        .args(extra)
        .output()
        .expect("failed to spawn run_all")
}

/// Every file under `dir`, relative path → contents.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let p = entry.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
                out.insert(rel, std::fs::read(&p).unwrap());
            }
        }
    }
    out
}

fn assert_identical(clean: &Path, recovered: &Path) {
    let want = dir_contents(clean);
    let got = dir_contents(recovered);
    assert_eq!(
        want.keys().collect::<Vec<_>>(),
        got.keys().collect::<Vec<_>>(),
        "file sets differ"
    );
    for (name, bytes) in &want {
        assert_eq!(&got[name], bytes, "{name} differs from the clean run's");
    }
}

#[test]
fn sigkill_then_resume_reproduces_a_clean_run_byte_for_byte() {
    let clean = results_dir("clean");
    let started = Instant::now();
    let out = run_all(&clean, &[]);
    assert!(out.status.success(), "clean run failed: {out:?}");
    let clean_wall = started.elapsed();
    assert!(
        !clean.join("run_all.checkpoint.json").exists(),
        "a successful sweep must remove its checkpoint"
    );

    // Kill at several points across the sweep's lifetime: early (likely
    // before any experiment finishes), mid, and late (possibly after the
    // child already exited — resume must cope with every case).
    for (tag, num, den) in [("early", 1u32, 20u32), ("mid", 1, 3), ("late", 9, 10)] {
        let dir = results_dir(&format!("kill-{tag}"));
        let mut child = Command::new(env!("CARGO_BIN_EXE_run_all"))
            .env("DBP_RESULTS", &dir)
            .args(["--quick", "--stable-manifest", "--jobs", "2"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("failed to spawn run_all");
        std::thread::sleep(clean_wall * num / den);
        // SIGKILL: no handler runs, no flush, the worst possible crash.
        let _ = child.kill();
        let _ = child.wait();

        let out = run_all(&dir, &["--resume"]);
        assert!(
            out.status.success(),
            "resume ({tag}) failed:\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !dir.join("run_all.checkpoint.json").exists(),
            "resume ({tag}) left its checkpoint behind"
        );
        assert_identical(&clean, &dir);
    }
}

#[test]
fn sigkill_mid_cluster_experiment_resumes_byte_for_byte() {
    // The sharding_overhead experiment runs multi-threaded cluster
    // dispatches inside the sweep's own worker pool; a SIGKILL landing
    // while shard threads are mid-flight must leave nothing that a
    // resume can't reproduce exactly.
    let clean = results_dir("cluster-clean");
    let started = Instant::now();
    let out = run_all(&clean, &["--only", "sharding_overhead"]);
    assert!(out.status.success(), "clean run failed: {out:?}");
    let clean_wall = started.elapsed();

    let dir = results_dir("cluster-kill");
    let mut child = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .env("DBP_RESULTS", &dir)
        .args(["--quick", "--stable-manifest", "--jobs", "2"])
        .args(["--only", "sharding_overhead"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("failed to spawn run_all");
    std::thread::sleep(clean_wall / 2);
    let _ = child.kill();
    let _ = child.wait();

    let out = run_all(&dir, &["--resume", "--only", "sharding_overhead"]);
    assert!(
        out.status.success(),
        "resume failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_identical(&clean, &dir);
}

#[test]
fn sigterm_checkpoints_and_resume_finishes_the_sweep() {
    let clean = results_dir("term-clean");
    let started = Instant::now();
    assert!(run_all(&clean, &[]).status.success());
    let clean_wall = started.elapsed();

    let dir = results_dir("term-kill");
    let mut child = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .env("DBP_RESULTS", &dir)
        .args(["--quick", "--stable-manifest", "--jobs", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("failed to spawn run_all");
    std::thread::sleep(clean_wall / 3);
    let terminated = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("failed to run kill")
        .success();
    let status = child.wait().unwrap();
    if terminated && !status.success() {
        // The shutdown landed mid-sweep: a checkpoint and a manifest
        // stamping the never-run experiments must both be on disk.
        assert!(
            dir.join("run_all.checkpoint.json").exists(),
            "graceful shutdown left no checkpoint"
        );
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest.contains("Skipped"), "{manifest}");
    }
    // Whether the signal landed mid-sweep or raced past its end, resuming
    // converges to the clean artifacts.
    let out = run_all(&dir, &["--resume"]);
    assert!(out.status.success(), "resume failed: {out:?}");
    assert_identical(&clean, &dir);
}
