//! **fault_tolerance** — which Any Fit policy degrades most gracefully
//! when bins die under it?
//!
//! The paper (and the related renting-servers / DVBP lines) evaluates only
//! fault-free traces. This experiment reruns the scenario catalog through
//! `dbp-cloudsim`'s deterministic fault layer: seeded server crashes at
//! three rates crossed with calm vs. flaky provisioning, dispatched by
//! FirstFit / BestFit / ModifiedFirstFit / NextFit with retry, orphan
//! re-dispatch, and bounded admission. Each cell reports the SLA ledger
//! (served / dropped / lost / re-dispatched) and the **cost overhead**:
//! the faulted bill divided by the same algorithm's fault-free bill on the
//! same trace. Rows are ranked by overhead within each (scenario, crash
//! rate, flakiness) block, so the CSV reads as a resilience leaderboard.

use crate::harness::{cell, f3, Table};
use dbp_cloudsim::{FaultConfig, FaultPlan, GamingSystem, ResilientSystem};
use dbp_core::algorithms::{BestFit, FirstFit, ModifiedFirstFit, NextFit};
use dbp_core::packer::SelectorFactory;
use dbp_workloads::{generate, Scenario};
use rayon::prelude::*;

/// One (scenario, crash rate, flakiness, algorithm) outcome.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Injected crash rate per hour.
    pub crash_rate: f64,
    /// Whether provisioning was flaky (boot failures/delays, rejections).
    pub boot_flaky: bool,
    /// Algorithm name.
    pub algorithm: String,
    /// Total sessions in the workload.
    pub sessions: u64,
    /// Sessions served to completion.
    pub served: u64,
    /// Sessions dropped before any service.
    pub dropped: u64,
    /// Sessions interrupted by crashes and lost.
    pub lost: u64,
    /// Orphans successfully re-placed.
    pub redispatches: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// Crashes that hit an open server.
    pub crashes: u64,
    /// Faulted bill / fault-free bill for the same algorithm (≥ 0).
    pub cost_overhead: f64,
    /// Peak simultaneously-open servers under faults.
    pub peak_servers: u64,
}

/// The fixed plan seed: the fault schedule is part of the experiment's
/// identity, not ambient randomness.
const PLAN_SEED: u64 = 4242;

fn roster() -> Vec<SelectorFactory> {
    vec![
        SelectorFactory::new("FF", || Box::new(FirstFit::new())),
        SelectorFactory::new("BF", || Box::new(BestFit::new())),
        SelectorFactory::new("MFF(8)", || Box::new(ModifiedFirstFit::new(8))),
        SelectorFactory::new("NF", || Box::new(NextFit::new())),
    ]
}

/// Run the sweep. Quick mode shrinks the horizon but keeps the full
/// 2-scenario × 3-crash-rate × 2-flakiness grid, so CI smoke runs validate
/// the same artifact shape as full runs.
pub fn run(quick: bool) -> (Table, Vec<FaultRow>) {
    let scenarios = [Scenario::Steady, Scenario::LaunchDay];
    let crash_rates = [0.0, 2.0, 6.0];
    let flakiness = [false, true];

    let mut cells: Vec<(Scenario, f64, bool)> = Vec::new();
    for &s in &scenarios {
        for &r in &crash_rates {
            for &f in &flakiness {
                cells.push((s, r, f));
            }
        }
    }

    let mut rows: Vec<FaultRow> = cells
        .par_iter()
        .flat_map(|&(scenario, crash_rate, boot_flaky)| {
            let mut cfg = scenario.config();
            if quick {
                cfg.horizon = cfg.horizon.min(4 * 3600);
            }
            let inst = generate(&cfg);
            let profile = scenario.fault_profile();
            let fault_cfg = FaultConfig {
                crash_rate_per_hour: crash_rate,
                boot_fail_prob: if boot_flaky {
                    profile.boot_fail_prob.max(0.2)
                } else {
                    0.0
                },
                boot_delay_max: if boot_flaky {
                    profile.boot_delay_max.max(30)
                } else {
                    0
                },
                reject_prob: if boot_flaky {
                    profile.reject_prob.max(0.05)
                } else {
                    0.0
                },
            };
            let plan = FaultPlan::generate(PLAN_SEED, cfg.horizon, 16, &fault_cfg);
            let sys = GamingSystem::paper_model();
            roster()
                .iter()
                .map(|f| {
                    let (baseline, _) = sys.run_or_panic(&inst, &mut *f.build());
                    let report = ResilientSystem::new(sys, plan.clone())
                        .run(&inst, &mut *f.build())
                        .expect("capacity-matched workload");
                    assert!(report.conserved(), "SLA ledger must conserve");
                    let base_cost = baseline.cost_cents.to_f64();
                    let cost_overhead = if base_cost == 0.0 {
                        1.0
                    } else {
                        report.cost_cents.to_f64() / base_cost
                    };
                    FaultRow {
                        scenario: scenario.name(),
                        crash_rate,
                        boot_flaky,
                        algorithm: f.name().to_string(),
                        sessions: report.sessions_total,
                        served: report.sessions_served,
                        dropped: report.sessions_dropped,
                        lost: report.sessions_lost,
                        redispatches: report.redispatches,
                        retries: report.retries_scheduled,
                        crashes: report.crashes,
                        cost_overhead,
                        peak_servers: report.peak_servers,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();

    // Rank: within each (scenario, rate, flakiness) block, cheapest
    // resilience overhead first; sessions lost breaks ties.
    rows.sort_by(|a, b| {
        (a.scenario, a.boot_flaky)
            .cmp(&(b.scenario, b.boot_flaky))
            .then(a.crash_rate.total_cmp(&b.crash_rate))
            .then(a.cost_overhead.total_cmp(&b.cost_overhead))
            .then((a.dropped + a.lost).cmp(&(b.dropped + b.lost)))
    });

    let mut table = Table::new(
        "Fault tolerance: SLA ledger and cost overhead vs the fault-free bill",
        &[
            "scenario",
            "crash/h",
            "flaky",
            "algo",
            "sessions",
            "served",
            "dropped",
            "lost",
            "redisp",
            "retries",
            "crashes",
            "cost_overhead",
            "peak",
        ],
    );
    for r in &rows {
        table.push(vec![
            r.scenario.to_string(),
            f3(r.crash_rate),
            cell(r.boot_flaky),
            r.algorithm.clone(),
            cell(r.sessions),
            cell(r.served),
            cell(r.dropped),
            cell(r.lost),
            cell(r.redispatches),
            cell(r.retries),
            cell(r.crashes),
            f3(r.cost_overhead),
            cell(r.peak_servers),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_three_rates_and_two_scenarios() {
        let (table, rows) = run(true);
        let mut rates: Vec<String> = rows.iter().map(|r| f3(r.crash_rate)).collect();
        rates.sort();
        rates.dedup();
        assert!(rates.len() >= 3, "need ≥3 crash rates, got {rates:?}");
        let mut scenarios: Vec<&str> = rows.iter().map(|r| r.scenario).collect();
        scenarios.sort();
        scenarios.dedup();
        assert_eq!(scenarios.len(), 2);
        // 2 scenarios × 3 rates × 2 flakiness × 4 algos.
        assert_eq!(rows.len(), 48);
        assert_eq!(table.rows.len(), 48);
    }

    #[test]
    fn ledger_conserves_in_every_cell() {
        let (_, rows) = run(true);
        for r in &rows {
            assert_eq!(
                r.served + r.dropped + r.lost,
                r.sessions,
                "{} {} {}",
                r.scenario,
                r.crash_rate,
                r.algorithm
            );
        }
    }

    #[test]
    fn fault_free_cells_have_unit_overhead_and_full_service() {
        let (_, rows) = run(true);
        for r in rows.iter().filter(|r| r.crash_rate == 0.0 && !r.boot_flaky) {
            assert_eq!(r.cost_overhead, 1.0, "{} {}", r.scenario, r.algorithm);
            assert_eq!(r.served, r.sessions);
            assert_eq!(r.crashes + r.redispatches + r.retries, 0);
        }
    }

    #[test]
    fn crashes_actually_bite_at_high_rates() {
        let (_, rows) = run(true);
        let hit: u64 = rows
            .iter()
            .filter(|r| r.crash_rate >= 6.0)
            .map(|r| r.crashes)
            .sum();
        assert!(hit > 0, "6/h crash sweep never hit a server");
    }
}
