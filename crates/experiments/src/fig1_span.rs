//! **fig1_span** — Figure 1: the span of an item list.
//!
//! Reproduces the paper's span example (overlapping items, then a gap) and
//! cross-checks `span(R)` against a brute-force tick scan on randomized
//! lists — pinning down the one definition everything else integrates over.

use crate::harness::{cell, Table};
use dbp_core::prelude::*;

/// Run the demonstration.
pub fn run(_quick: bool) -> (Table, Dur) {
    // The Figure 1 shape: r1 and r2 overlap, r3 overlaps r2, then a gap
    // before r4. Span counts covered time once and skips the gap.
    let mut b = InstanceBuilder::new(10);
    b.add(0, 30, 2); // r1
    b.add(10, 45, 3); // r2
    b.add(40, 60, 2); // r3
    b.add(80, 100, 4); // r4 after a gap
    let inst = b.build().unwrap();
    let span = inst.span();

    let mut table = Table::new(
        "Figure 1: span of an item list (union of active intervals)",
        &["item", "interval", "len"],
    );
    for r in inst.items() {
        table.push(vec![
            cell(r.id),
            format!("[{}, {})", r.arrival.raw(), r.departure.raw()),
            cell(r.interval_len().raw()),
        ]);
    }
    table.push(vec![
        "span(R)".into(),
        "[0,60) u [80,100)".into(),
        cell(span.raw()),
    ]);
    (table, span)
}

/// Brute-force span: count ticks with ≥ 1 active item.
pub fn brute_force_span(inst: &Instance) -> u64 {
    let end = inst.last_departure().map(|t| t.raw()).unwrap_or(0);
    (0..end)
        .filter(|&t| !inst.active_at(Tick(t)).is_empty())
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn figure1_span_value() {
        let (_, span) = run(true);
        // [0,60) ∪ [80,100) = 60 + 20.
        assert_eq!(span, Dur(80));
    }

    #[test]
    fn span_matches_brute_force_on_random_lists() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let mut b = InstanceBuilder::new(10);
            let n = rng.random_range(1..20);
            for _ in 0..n {
                let a = rng.random_range(0..200u64);
                let len = rng.random_range(1..50u64);
                b.add(a, a + len, 1);
            }
            let inst = b.build().unwrap();
            assert_eq!(inst.span().raw(), brute_force_span(&inst));
        }
    }
}
