//! **flash_crowd** — the on-demand scenario that motivates renting: a game
//! launch multiplies the arrival rate for an hour. Measures how each
//! dispatch algorithm's fleet and bill respond to the spike, and how close
//! each stays to the lower bound when the crowd drains away (the paper's
//! departure-driven waste is most visible right after a burst).

use crate::harness::{cell, f3, Table};
use dbp_core::algorithms::standard_factories;
use dbp_core::bounds::combined_lower_bound;
use dbp_core::prelude::*;
use dbp_workloads::{generate, ArrivalKind, CloudGamingConfig};
use rayon::prelude::*;

/// One algorithm's behaviour through the spike.
#[derive(Debug, Clone)]
pub struct FlashRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Cost normalized to the lower bound.
    pub cost_over_lb: f64,
    /// Peak simultaneous servers.
    pub peak_servers: u32,
    /// Servers still open one hour after the burst ends (waste indicator).
    pub post_burst_servers: u32,
    /// Total servers rented.
    pub servers: usize,
}

/// Run the scenario.
pub fn run(quick: bool) -> (Table, Vec<FlashRow>) {
    let burst_start = 3600u64;
    let burst_end = 2 * 3600u64;
    let cfg = CloudGamingConfig {
        horizon: if quick { 4 * 3600 } else { 8 * 3600 },
        arrivals: ArrivalKind::Flash {
            base_rate: 0.03,
            burst_start,
            burst_end,
            multiplier: 8.0,
        },
        seed: 77,
        ..CloudGamingConfig::default()
    };
    let inst = generate(&cfg);
    let lb = combined_lower_bound(&inst);
    let probe = Tick(burst_end + 3600);

    let rows: Vec<FlashRow> = standard_factories(5)
        .par_iter()
        .map(|f| {
            let mut sel = f.build();
            let trace = simulate(&inst, &mut *sel);
            FlashRow {
                algorithm: f.name().to_string(),
                cost_over_lb: (Ratio::from_int(trace.total_cost_ticks()) / lb).to_f64(),
                peak_servers: trace.max_open_bins(),
                post_burst_servers: trace.open_bins_at(probe),
                servers: trace.bins_used(),
            }
        })
        .collect();

    let mut table = Table::new(
        format!(
            "Flash crowd ({}x burst in [{burst_start}, {burst_end})): fleet response per algorithm",
            8
        ),
        &["algo", "cost/LB", "peak", "open 1h after burst", "servers"],
    );
    for r in &rows {
        table.push(vec![
            r.algorithm.clone(),
            f3(r.cost_over_lb),
            cell(r.peak_servers),
            cell(r.post_burst_servers),
            cell(r.servers),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_scales_up_and_back_down() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.cost_over_lb >= 1.0 - 1e-9);
            assert!(
                r.post_burst_servers < r.peak_servers,
                "{} never drained after the burst",
                r.algorithm
            );
        }
    }

    #[test]
    fn first_fit_drains_at_least_as_well_as_worst_fit() {
        // WF spreads items across bins, so departures leave more bins
        // partially occupied; FF concentrates and should hold fewer (or at
        // most as many) servers after the crowd leaves.
        let (_, rows) = run(true);
        let ff = rows.iter().find(|r| r.algorithm == "FF").unwrap();
        let wf = rows.iter().find(|r| r.algorithm == "WF").unwrap();
        assert!(ff.post_burst_servers <= wf.post_burst_servers);
    }
}
