//! **thm3_large_items** — Theorem 3: with every size ≥ W/k, *any* packing
//! (First Fit included) costs at most `k · OPT_total(R)`.
//!
//! Sweeps the size-class parameter k over randomized large-item workloads
//! and reports the worst measured FF ratio per k — it must stay below k.

use crate::harness::{cell, f3, Table};
use crate::sweep::ratio_vs_opt;
use dbp_core::prelude::*;
use dbp_opt::SolveMode;
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};
use rayon::prelude::*;

/// Per-k outcome over all seeds.
#[derive(Debug, Clone)]
pub struct Thm3Row {
    /// Size-class parameter (all sizes ≥ W/k).
    pub k: u64,
    /// Target µ of the workloads.
    pub mu: u64,
    /// Seeds swept.
    pub seeds: usize,
    /// Worst measured FF ratio (upper bracket).
    pub worst_ratio: Ratio,
    /// The Theorem 3 bound (= k).
    pub bound: Ratio,
    /// Whether every seed respected the bound.
    pub holds: bool,
}

/// Run the sweep.
pub fn run(quick: bool) -> (Table, Vec<Thm3Row>) {
    let ks: &[u64] = if quick { &[2, 4] } else { &[2, 3, 4, 6, 8] };
    let seeds: u64 = if quick { 5 } else { 25 };
    let mu = 10u64;

    let rows: Vec<Thm3Row> = ks
        .par_iter()
        .map(|&k| {
            let mut worst = Ratio::ZERO;
            let bound = dbp_core::bounds::ff_large_items_bound(k);
            let mut holds = true;
            for seed in 0..seeds {
                let cfg = MuControlledConfig {
                    n_items: if quick { 60 } else { 150 },
                    sizes: SizeModel::LargeOnly { k },
                    seed,
                    ..MuControlledConfig::new(mu)
                };
                let inst = generate_mu_controlled(&cfg);
                let trace = simulate(&inst, &mut FirstFit::new());
                let bracket = ratio_vs_opt(
                    &inst,
                    trace.total_cost_ticks(),
                    SolveMode::Exact {
                        node_budget: 500_000,
                    },
                );
                worst = worst.max(bracket.hi);
                if bracket.hi > bound {
                    holds = false;
                }
            }
            Thm3Row {
                k,
                mu,
                seeds: seeds as usize,
                worst_ratio: worst,
                bound,
                holds,
            }
        })
        .collect();

    let mut table = Table::new(
        "Theorem 3: large items (s >= W/k) => FF_total <= k * OPT_total",
        &["k", "mu", "seeds", "worst FF ratio", "bound k", "holds"],
    );
    for r in &rows {
        table.push(vec![
            cell(r.k),
            cell(r.mu),
            cell(r.seeds),
            f3(r.worst_ratio.to_f64()),
            f3(r.bound.to_f64()),
            cell(r.holds),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_for_all_k() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.holds, "Theorem 3 bound violated at k={}", r.k);
            assert!(r.worst_ratio <= r.bound);
            assert!(r.worst_ratio > Ratio::ZERO);
        }
    }
}
