//! **cloud_gaming_costs** — the §1 motivation, quantified.
//!
//! A simulated cloud-gaming day: Poisson and diurnal request arrivals over
//! the default game catalog, dispatched with every algorithm in the roster.
//! Reports rental cost normalized to the combined lower bound, peak fleet
//! size and utilization — on non-adversarial traffic all Any Fit variants
//! should sit within a small constant of the lower bound, with Next Fit
//! visibly worse.

use crate::harness::{cell, f3, Table};
use dbp_core::algorithms::standard_factories;
use dbp_core::bounds::combined_lower_bound;
use dbp_core::prelude::*;
use dbp_workloads::{generate, ArrivalKind, CloudGamingConfig};
use rayon::prelude::*;

/// One (workload, algorithm) outcome.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Arrival model name.
    pub workload: &'static str,
    /// Algorithm name.
    pub algorithm: String,
    /// Sessions served.
    pub sessions: usize,
    /// Busy server-hours.
    pub server_hours: f64,
    /// Cost normalized to `max{u/W, span}` (≥ 1).
    pub normalized_cost: Ratio,
    /// Peak simultaneous servers.
    pub peak_servers: u32,
    /// Mean GPU utilization.
    pub utilization: f64,
}

fn workload(kind: &'static str, seed: u64, quick: bool) -> (CloudGamingConfig, &'static str) {
    let horizon = if quick { 2 * 3600 } else { 12 * 3600 };
    let arrivals = match kind {
        "poisson" => ArrivalKind::Poisson { rate: 0.05 },
        "diurnal" => ArrivalKind::Diurnal {
            base_rate: 0.05,
            amplitude: 0.8,
            period: 86_400.0,
        },
        other => panic!("unknown workload kind {other}"),
    };
    (
        CloudGamingConfig {
            horizon,
            arrivals,
            seed,
            ..CloudGamingConfig::default()
        },
        kind,
    )
}

/// Run the comparison.
pub fn run(quick: bool) -> (Table, Vec<CostRow>) {
    let seeds: u64 = if quick { 1 } else { 3 };
    let kinds = ["poisson", "diurnal"];

    let jobs: Vec<(&'static str, u64)> = kinds
        .iter()
        .flat_map(|&k| (0..seeds).map(move |s| (k, s)))
        .collect();

    let all: Vec<Vec<CostRow>> = jobs
        .par_iter()
        .map(|&(kind, seed)| {
            let (cfg, name) = workload(kind, seed, quick);
            let inst = generate(&cfg);
            let lb = combined_lower_bound(&inst);
            standard_factories(seed)
                .iter()
                .map(|f| {
                    let mut sel = f.build();
                    let trace = simulate(&inst, &mut *sel);
                    let cost = trace.total_cost_ticks();
                    CostRow {
                        workload: name,
                        algorithm: f.name().to_string(),
                        sessions: inst.len(),
                        server_hours: cost as f64 / 3600.0,
                        normalized_cost: Ratio::from_int(cost) / lb,
                        peak_servers: trace.max_open_bins(),
                        utilization: (inst.total_demand() as f64)
                            / (inst.capacity().raw() as f64 * cost as f64),
                    }
                })
                .collect()
        })
        .collect();

    // Average normalized cost per (workload, algorithm) across seeds.
    let mut rows: Vec<CostRow> = Vec::new();
    for kind in kinds {
        for f in standard_factories(0) {
            let group: Vec<&CostRow> = all
                .iter()
                .flatten()
                .filter(|r| r.workload == kind && r.algorithm == f.name())
                .collect();
            let n = group.len() as f64;
            rows.push(CostRow {
                workload: kind,
                algorithm: f.name().to_string(),
                sessions: group.iter().map(|r| r.sessions).sum::<usize>() / group.len(),
                server_hours: group.iter().map(|r| r.server_hours).sum::<f64>() / n,
                // Representative exact ratio from the first seed; the f64
                // average is what the table shows.
                normalized_cost: group[0].normalized_cost,
                peak_servers: group.iter().map(|r| r.peak_servers).max().unwrap(),
                utilization: group.iter().map(|r| r.utilization).sum::<f64>() / n,
            });
        }
    }

    let mut table = Table::new(
        "Cloud gaming day: rental cost by dispatch algorithm (normalized to lower bound)",
        &[
            "workload",
            "algo",
            "sessions",
            "server-hours",
            "cost/LB",
            "peak servers",
            "utilization",
        ],
    );
    for r in &rows {
        table.push(vec![
            r.workload.to_string(),
            r.algorithm.clone(),
            cell(r.sessions),
            f3(r.server_hours),
            f3(r.normalized_cost.to_f64()),
            cell(r.peak_servers),
            f3(r.utilization),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_fit_variants_stay_near_the_lower_bound() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.normalized_cost >= Ratio::ONE);
            if r.algorithm != "NF" {
                assert!(
                    r.normalized_cost.to_f64() < 2.5,
                    "{} at {} is {}x LB",
                    r.algorithm,
                    r.workload,
                    r.normalized_cost.to_f64()
                );
            }
        }
    }

    #[test]
    fn next_fit_is_never_the_best() {
        let (_, rows) = run(true);
        for kind in ["poisson", "diurnal"] {
            let group: Vec<&CostRow> = rows.iter().filter(|r| r.workload == kind).collect();
            let nf = group.iter().find(|r| r.algorithm == "NF").unwrap();
            let ff = group.iter().find(|r| r.algorithm == "FF").unwrap();
            assert!(nf.normalized_cost >= ff.normalized_cost);
        }
    }
}
