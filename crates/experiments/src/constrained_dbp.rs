//! **constrained_dbp** — the §5 future-work problem, measured.
//!
//! Items carry region constraints (distributed clouds; a request may only
//! be dispatched within its region for latency). Constrained First Fit runs
//! an independent FF per region. This experiment measures the cost
//! inflation of region isolation versus global FF as the region count
//! grows, against the same traffic.

use crate::harness::{cell, f3, Table};
use dbp_core::bounds::combined_lower_bound;
use dbp_core::prelude::*;
use dbp_workloads::{generate, CloudGamingConfig};
use rayon::prelude::*;

/// One region-count row.
#[derive(Debug, Clone)]
pub struct ConstrainedRow {
    /// Number of regions.
    pub regions: u16,
    /// Constrained FF cost in server-hours.
    pub cff_hours: f64,
    /// Global (unconstrained) FF cost in server-hours.
    pub ff_hours: f64,
    /// Cost inflation `C-FF / FF`.
    pub inflation: Ratio,
    /// C-FF cost normalized to the lower bound.
    pub cff_over_lb: f64,
}

/// Run the sweep.
pub fn run(quick: bool) -> (Table, Vec<ConstrainedRow>) {
    let region_counts: &[u16] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };

    let mut rows: Vec<ConstrainedRow> = region_counts
        .par_iter()
        .map(|&regions| {
            let cfg = CloudGamingConfig {
                horizon: if quick { 2 * 3600 } else { 8 * 3600 },
                regions,
                seed: 21,
                ..CloudGamingConfig::default()
            };
            let inst = generate(&cfg);
            let cff = simulate(&inst, &mut ConstrainedFirstFit::new());
            let ff = simulate(&inst, &mut FirstFit::new());
            let lb = combined_lower_bound(&inst);
            ConstrainedRow {
                regions,
                cff_hours: cff.total_cost_ticks() as f64 / 3600.0,
                ff_hours: ff.total_cost_ticks() as f64 / 3600.0,
                inflation: Ratio::new(cff.total_cost_ticks(), ff.total_cost_ticks()),
                cff_over_lb: (Ratio::from_int(cff.total_cost_ticks()) / lb).to_f64(),
            }
        })
        .collect();
    rows.sort_by_key(|r| r.regions);

    let mut table = Table::new(
        "Constrained DBP (S5 future work): region-isolated FF vs global FF",
        &["regions", "C-FF hours", "FF hours", "inflation", "C-FF/LB"],
    );
    for r in &rows {
        table.push(vec![
            cell(r.regions),
            f3(r.cff_hours),
            f3(r.ff_hours),
            f3(r.inflation.to_f64()),
            f3(r.cff_over_lb),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_region_is_exactly_global_ff() {
        let (_, rows) = run(true);
        let one = rows.iter().find(|r| r.regions == 1).unwrap();
        assert_eq!(one.inflation, Ratio::ONE);
    }

    #[test]
    fn isolation_costs_grow_with_region_count() {
        let (_, rows) = run(true);
        let one = rows.iter().find(|r| r.regions == 1).unwrap();
        let many = rows.iter().max_by_key(|r| r.regions).unwrap();
        assert!(many.inflation >= one.inflation);
        assert!(many.inflation >= Ratio::ONE);
    }
}
