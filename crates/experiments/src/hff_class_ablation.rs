//! **hff_class_ablation** — how many Harmonic classes are worth having?
//!
//! MFF splits at one threshold; [`HarmonicFit`] generalizes to `M` classes.
//! Finer classes pack more homogeneously (good for the worst case) but
//! refuse more cross-class placements (bad on benign traffic). This sweep
//! measures both regimes per `M` — the practical summary is that `M = 2..4`
//! captures what class separation has to offer, and large `M` only adds
//! fragmentation.
//!
//! [`HarmonicFit`]: dbp_core::algorithms::HarmonicFit

use crate::harness::{cell, f3, Table};
use dbp_core::algorithms::HarmonicFit;
use dbp_core::bounds::combined_lower_bound;
use dbp_core::prelude::*;
use dbp_workloads::{generate, generate_mu_controlled, CloudGamingConfig, MuControlledConfig};
use rayon::prelude::*;

/// One class-count row.
#[derive(Debug, Clone)]
pub struct HffRow {
    /// Harmonic class count M.
    pub classes: u32,
    /// Mean cost/LB on gaming traffic.
    pub gaming: f64,
    /// Mean cost/LB on µ-pinned mixed traffic (µ = 8).
    pub mixed: f64,
    /// Mean bins used on gaming traffic (fragmentation indicator).
    pub bins: f64,
}

/// Run the ablation.
pub fn run(quick: bool) -> (Table, Vec<HffRow>) {
    let ms: &[u32] = if quick { &[2, 6] } else { &[2, 3, 4, 6, 8, 12] };
    let seeds: u64 = if quick { 2 } else { 6 };

    let gaming: Vec<Instance> = (0..seeds)
        .map(|seed| {
            generate(&CloudGamingConfig {
                horizon: if quick { 2 * 3600 } else { 4 * 3600 },
                seed,
                ..CloudGamingConfig::default()
            })
        })
        .collect();
    let mixed: Vec<Instance> = (0..seeds)
        .map(|seed| {
            generate_mu_controlled(&MuControlledConfig {
                n_items: if quick { 80 } else { 160 },
                seed: seed + 5,
                ..MuControlledConfig::new(8)
            })
        })
        .collect();

    let mut rows: Vec<HffRow> = ms
        .par_iter()
        .map(|&m| {
            let mean_over = |insts: &[Instance]| -> (f64, f64) {
                let mut ratio_acc = 0.0;
                let mut bins_acc = 0.0;
                for inst in insts {
                    let trace = simulate(inst, &mut HarmonicFit::new(m));
                    let lb = combined_lower_bound(inst);
                    ratio_acc += (Ratio::from_int(trace.total_cost_ticks()) / lb).to_f64();
                    bins_acc += trace.bins_used() as f64;
                }
                (
                    ratio_acc / insts.len() as f64,
                    bins_acc / insts.len() as f64,
                )
            };
            let (gaming_ratio, gaming_bins) = mean_over(&gaming);
            let (mixed_ratio, _) = mean_over(&mixed);
            HffRow {
                classes: m,
                gaming: gaming_ratio,
                mixed: mixed_ratio,
                bins: gaming_bins,
            }
        })
        .collect();
    rows.sort_by_key(|r| r.classes);

    let mut table = Table::new(
        "HFF class-count ablation: cost/LB and fragmentation vs M",
        &["classes", "gaming cost/LB", "mixed cost/LB", "servers"],
    );
    for r in &rows {
        table.push(vec![cell(r.classes), f3(r.gaming), f3(r.mixed), f3(r.bins)]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_classes_never_reduce_fragmentation() {
        let (_, rows) = run(true);
        assert!(rows.len() >= 2);
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(
            last.bins >= first.bins,
            "finer classes should rent >= servers"
        );
        for r in &rows {
            assert!(r.gaming >= 1.0 - 1e-9);
            assert!(r.gaming < 3.0, "M={} blew up on gaming traffic", r.classes);
        }
    }
}
