//! **thm5_general_ff** — Theorem 5: First Fit's general competitive ratio
//! is at most `2µ + 13`.
//!
//! Two workload families per µ: (a) µ-pinned mixed-size random traces, and
//! (b) the Theorem 1 adversarial witness (the worst known instance family,
//! where FF's ratio actually approaches µ). Both must stay below `2µ + 13`,
//! and the adversarial family shows the bound's µ-dependence is real.

use crate::harness::{cell, f3, Table};
use crate::sweep::{mu_grid, ratio_vs_opt};
use dbp_adversary::Theorem1;
use dbp_core::prelude::*;
use dbp_opt::{opt_total, SolveMode};
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};
use rayon::prelude::*;

/// One µ row.
#[derive(Debug, Clone)]
pub struct Thm5Row {
    /// Pinned µ.
    pub mu: u64,
    /// Worst FF ratio over random mixed workloads (upper bracket).
    pub random_worst: Ratio,
    /// FF ratio on the Theorem 1 witness (k = 32).
    pub adversarial: Ratio,
    /// The bound `2µ + 13`.
    pub bound: Ratio,
    /// Whether both stayed below the bound.
    pub holds: bool,
}

/// Run the sweep.
pub fn run(quick: bool) -> (Table, Vec<Thm5Row>) {
    let mus = if quick { vec![1, 8] } else { mu_grid(64) };
    let seeds: u64 = if quick { 4 } else { 10 };

    let mut rows: Vec<Thm5Row> = mus
        .par_iter()
        .map(|&mu| {
            let bound = dbp_core::bounds::ff_general_bound(Ratio::from_int(mu as u128));
            let mut random_worst = Ratio::ZERO;
            let mut holds = true;
            for seed in 0..seeds {
                let cfg = MuControlledConfig {
                    n_items: if quick { 80 } else { 200 },
                    sizes: SizeModel::Uniform { lo: 5, hi: 60 },
                    seed: seed * 77 + mu,
                    ..MuControlledConfig::new(mu)
                };
                let inst = generate_mu_controlled(&cfg);
                let trace = simulate(&inst, &mut FirstFit::new());
                let bracket = ratio_vs_opt(
                    &inst,
                    trace.total_cost_ticks(),
                    SolveMode::Exact {
                        node_budget: 100_000,
                    },
                );
                random_worst = random_worst.max(bracket.hi);
                if bracket.hi > bound {
                    holds = false;
                }
            }

            // Adversarial witness: FF's ratio here is kµ/(k+µ−1) ≈ µ.
            let t1 = Theorem1::new(32, mu);
            let inst = t1.instance();
            let trace = simulate(&inst, &mut FirstFit::new());
            let opt = opt_total(&inst, SolveMode::default());
            let adversarial = Ratio::new(trace.total_cost_ticks(), opt.exact_ticks());
            if adversarial > bound {
                holds = false;
            }

            Thm5Row {
                mu,
                random_worst,
                adversarial,
                bound,
                holds,
            }
        })
        .collect();
    rows.sort_by_key(|r| r.mu);

    let mut table = Table::new(
        "Theorem 5: FF general bound 2mu+13 (random worst-case vs adversarial witness)",
        &["mu", "random worst", "adversarial", "2mu+13", "holds"],
    );
    for r in &rows {
        table.push(vec![
            cell(r.mu),
            f3(r.random_worst.to_f64()),
            f3(r.adversarial.to_f64()),
            f3(r.bound.to_f64()),
            cell(r.holds),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_on_both_families() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.holds, "Theorem 5 violated at µ={}", r.mu);
            assert!(r.random_worst <= r.bound);
            assert!(r.adversarial <= r.bound);
        }
    }

    #[test]
    fn adversarial_family_tracks_mu() {
        let (_, rows) = run(true);
        // At µ = 8 with k = 32 the witness ratio is 256/39 ≈ 6.56 — far
        // above anything random workloads produce.
        let hi = rows.iter().find(|r| r.mu == 8).unwrap();
        assert!(hi.adversarial.to_f64() > 6.0);
        assert!(hi.adversarial > hi.random_worst);
    }
}
