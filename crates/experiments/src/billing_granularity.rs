//! **billing_granularity** — §1's EC2 hourly billing, tested.
//!
//! The paper's cost model bills per tick; the providers it cites billed per
//! hour. This experiment reruns the cloud-gaming comparison under per-tick,
//! per-minute and per-hour billing and checks whether the algorithm ranking
//! is stable under rounding (it should be: rounding adds at most one unit
//! per server, and better packers rent fewer servers).

use crate::harness::{cell, f3, Table};
use dbp_cloudsim::{GamingSystem, Granularity, ServerType};
use dbp_core::algorithms::standard_factories;
use dbp_workloads::{generate, ArrivalKind, CloudGamingConfig};

/// One (algorithm, granularity) outcome.
#[derive(Debug, Clone)]
pub struct BillingRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Bill under per-tick billing, in dollars.
    pub per_tick: f64,
    /// Bill under per-minute billing, in dollars.
    pub per_minute: f64,
    /// Bill under per-hour billing, in dollars.
    pub per_hour: f64,
    /// Servers rented.
    pub servers: usize,
}

/// Run the comparison.
pub fn run(quick: bool) -> (Table, Vec<BillingRow>) {
    let cfg = CloudGamingConfig {
        horizon: if quick { 2 * 3600 } else { 24 * 3600 },
        arrivals: ArrivalKind::Diurnal {
            base_rate: 0.05,
            amplitude: 0.8,
            period: 86_400.0,
        },
        seed: 11,
        ..CloudGamingConfig::default()
    };
    let inst = generate(&cfg);

    let mut rows = Vec::new();
    for f in standard_factories(3) {
        let mut bills = [0.0f64; 3];
        let mut servers = 0usize;
        for (i, g) in [
            Granularity::PerTick,
            Granularity::PerMinute,
            Granularity::PerHour,
        ]
        .into_iter()
        .enumerate()
        {
            let sys = GamingSystem {
                server: ServerType::default_gpu_vm(),
                granularity: g,
            };
            let mut sel = f.build();
            let (report, _) = sys.run_or_panic(&inst, &mut *sel);
            bills[i] = report.cost_dollars();
            servers = report.servers_rented;
        }
        rows.push(BillingRow {
            algorithm: f.name().to_string(),
            per_tick: bills[0],
            per_minute: bills[1],
            per_hour: bills[2],
            servers,
        });
    }

    let mut table = Table::new(
        "Billing granularity: rental bill (USD) per dispatch algorithm",
        &["algo", "per-tick", "per-minute", "per-hour", "servers"],
    );
    for r in &rows {
        table.push(vec![
            r.algorithm.clone(),
            f3(r.per_tick),
            f3(r.per_minute),
            f3(r.per_hour),
            cell(r.servers),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarser_billing_never_cheaper() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.per_minute >= r.per_tick - 1e-9, "{}", r.algorithm);
            assert!(r.per_hour >= r.per_minute - 1e-9, "{}", r.algorithm);
        }
    }

    #[test]
    fn ranking_roughly_stable_under_rounding() {
        let (_, rows) = run(true);
        // The per-tick cheapest Any Fit algorithm should remain within the
        // two cheapest under hourly billing.
        let mut by_tick = rows.clone();
        by_tick.sort_by(|a, b| a.per_tick.partial_cmp(&b.per_tick).unwrap());
        let best = &by_tick[0].algorithm;
        let mut by_hour = rows.clone();
        by_hour.sort_by(|a, b| a.per_hour.partial_cmp(&b.per_hour).unwrap());
        let top2: Vec<&str> = by_hour
            .iter()
            .take(3)
            .map(|r| r.algorithm.as_str())
            .collect();
        assert!(
            top2.contains(&best.as_str()),
            "per-tick best {best} fell out of hourly top-3 {top2:?}"
        );
    }
}
