//! **mff_k_ablation** — §4.4's choice `k = µ + 7`, ablated.
//!
//! The paper proves `max{k, (µ+6)/(1−1/k)}` (plus 1 for the span term) is
//! the MFF guarantee and is minimized at `k = µ+7`. This sweep plots both
//! the bound objective and MFF(k)'s *measured* worst ratio as k varies, for
//! several µ — the bound's minimum must sit at `k = µ+7`, and measured
//! curves must stay below the bound everywhere.

use crate::harness::{cell, f3, Table};
use crate::sweep::ratio_vs_opt;
use dbp_adversary::Theorem1;
use dbp_core::prelude::*;
use dbp_opt::{opt_total, SolveMode};
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};
use rayon::prelude::*;

/// One (µ, k) cell.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// µ value.
    pub mu: u64,
    /// MFF threshold parameter.
    pub k: u64,
    /// Bound objective `max{k, (µ+6)k/(k−1)} + 1`.
    pub objective: Ratio,
    /// Measured worst MFF(k) ratio.
    pub measured: Ratio,
    /// Whether `k = µ+7` (the proved optimum).
    pub is_opt_k: bool,
}

/// Run the sweep.
pub fn run(quick: bool) -> (Table, Vec<AblationRow>) {
    let mus: &[u64] = if quick { &[5] } else { &[1, 5, 10, 20] };
    let ks: Vec<u64> = if quick {
        vec![2, 8, 12, 16, 32]
    } else {
        vec![2, 3, 4, 6, 8, 10, 12, 15, 17, 20, 24, 27, 32, 40]
    };
    let seeds = if quick { 2 } else { 6 };

    let grid: Vec<(u64, u64)> = mus
        .iter()
        .flat_map(|&mu| ks.iter().map(move |&k| (mu, k)))
        .collect();

    let mut rows: Vec<AblationRow> = grid
        .par_iter()
        .map(|&(mu, k)| {
            let mu_r = Ratio::from_int(mu as u128);
            let objective = dbp_core::bounds::mff_k_objective(k, mu_r) + Ratio::ONE;
            let mut measured = Ratio::ZERO;
            // Adversarial witness (single size class under any k).
            let t1 = Theorem1::new(16, mu);
            let inst = t1.instance();
            let trace = simulate(&inst, &mut ModifiedFirstFit::new(k));
            let opt = opt_total(&inst, SolveMode::default());
            measured = measured.max(Ratio::new(trace.total_cost_ticks(), opt.exact_ticks()));
            // Random mixed workloads.
            for seed in 0..seeds {
                let cfg = MuControlledConfig {
                    n_items: if quick { 70 } else { 150 },
                    sizes: SizeModel::Uniform { lo: 5, hi: 60 },
                    seed: seed * 13 + mu + k,
                    ..MuControlledConfig::new(mu)
                };
                let wl = generate_mu_controlled(&cfg);
                let trace = simulate(&wl, &mut ModifiedFirstFit::new(k));
                let bracket = ratio_vs_opt(
                    &wl,
                    trace.total_cost_ticks(),
                    SolveMode::Exact {
                        node_budget: 60_000,
                    },
                );
                measured = measured.max(bracket.hi);
            }
            AblationRow {
                mu,
                k,
                objective,
                measured,
                is_opt_k: k == mu + 7,
            }
        })
        .collect();
    rows.sort_by_key(|r| (r.mu, r.k));

    let mut table = Table::new(
        "S4.4 ablation: MFF(k) bound objective and measured ratio vs k (optimum at k = mu+7)",
        &["mu", "k", "bound objective", "measured", "k = mu+7"],
    );
    for r in &rows {
        table.push(vec![
            cell(r.mu),
            cell(r.k),
            f3(r.objective.to_f64()),
            f3(r.measured.to_f64()),
            cell(r.is_opt_k),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_minimized_at_mu_plus_7_and_measured_below_it() {
        let (_, rows) = run(true);
        for mu in rows
            .iter()
            .map(|r| r.mu)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let series: Vec<&AblationRow> = rows.iter().filter(|r| r.mu == mu).collect();
            let min = series.iter().map(|r| r.objective).min().unwrap();
            // Every k's objective is at least the µ+7 value (µ+8).
            assert!(min >= Ratio::from_int(mu as u128 + 8));
            for r in &series {
                assert!(
                    r.measured <= r.objective,
                    "measured above bound at µ={}, k={}",
                    r.mu,
                    r.k
                );
            }
        }
    }
}
