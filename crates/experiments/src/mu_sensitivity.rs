//! **mu_sensitivity** — how every algorithm's measured ratio scales with µ.
//!
//! The paper's central parameter is µ; this sweep pins µ on a log grid and
//! measures each roster algorithm's cost over the combined lower bound on
//! (a) random traces and (b) the Theorem 1 witness, exposing which
//! algorithms actually degrade with µ (all Any Fit ones do, on the witness)
//! and which stay flat on benign traffic.

use crate::harness::{cell, f3, Table};
use crate::sweep::mu_grid;
use dbp_adversary::Theorem1;
use dbp_core::algorithms::standard_factories;
use dbp_core::bounds::combined_lower_bound;
use dbp_core::prelude::*;
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};
use rayon::prelude::*;

/// One (µ, algorithm) cell.
#[derive(Debug, Clone)]
pub struct MuRow {
    /// µ value.
    pub mu: u64,
    /// Algorithm name.
    pub algorithm: String,
    /// Mean cost/LB over random seeds.
    pub random_mean: f64,
    /// Cost/OPT-LB on the Theorem 1 witness.
    pub adversarial: f64,
}

/// Run the sweep.
pub fn run(quick: bool) -> (Table, Vec<MuRow>) {
    let mus = if quick { vec![1, 16] } else { mu_grid(100) };
    let seeds: u64 = if quick { 2 } else { 6 };

    let mut rows: Vec<MuRow> = mus
        .par_iter()
        .flat_map_iter(|&mu| {
            let factories = standard_factories(7);
            let mut instances = Vec::new();
            for seed in 0..seeds {
                let cfg = MuControlledConfig {
                    n_items: if quick { 80 } else { 160 },
                    sizes: SizeModel::Uniform { lo: 5, hi: 60 },
                    seed: seed * 97 + mu,
                    ..MuControlledConfig::new(mu)
                };
                instances.push(generate_mu_controlled(&cfg));
            }
            let witness = Theorem1::new(16, mu).instance();
            let witness_lb = combined_lower_bound(&witness);
            factories
                .into_iter()
                .map(|f| {
                    let mut acc = 0.0;
                    for inst in &instances {
                        let mut sel = f.build();
                        let trace = simulate(inst, &mut *sel);
                        let lb = combined_lower_bound(inst);
                        acc += (Ratio::from_int(trace.total_cost_ticks()) / lb).to_f64();
                    }
                    let mut sel = f.build();
                    let wt = simulate(&witness, &mut *sel);
                    let adversarial =
                        (Ratio::from_int(wt.total_cost_ticks()) / witness_lb).to_f64();
                    MuRow {
                        mu,
                        algorithm: f.name().to_string(),
                        random_mean: acc / instances.len() as f64,
                        adversarial,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();
    rows.sort_by(|a, b| (a.mu, &a.algorithm).cmp(&(b.mu, &b.algorithm)));

    let mut table = Table::new(
        "mu sensitivity: cost/LB per algorithm (random mean | Theorem-1 witness)",
        &["mu", "algo", "random", "adversarial"],
    );
    for r in &rows {
        table.push(vec![
            cell(r.mu),
            r.algorithm.clone(),
            f3(r.random_mean),
            f3(r.adversarial),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_ratio_grows_with_mu_for_ff() {
        let (_, rows) = run(true);
        let ff: Vec<&MuRow> = rows.iter().filter(|r| r.algorithm == "FF").collect();
        assert!(ff.len() >= 2);
        let lo = ff.iter().find(|r| r.mu == 1).unwrap();
        let hi = ff.iter().find(|r| r.mu == 16).unwrap();
        assert!(
            hi.adversarial > 2.0 * lo.adversarial.max(0.5),
            "FF witness ratio flat in µ: {} -> {}",
            lo.adversarial,
            hi.adversarial
        );
    }

    #[test]
    fn random_traffic_stays_tame() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.random_mean >= 1.0 - 1e-9);
            assert!(
                r.random_mean < 4.0,
                "{} blew up on random traffic at µ={}",
                r.algorithm,
                r.mu
            );
        }
    }
}
