//! **thm4_small_items** — Theorem 4: with every size < W/k, First Fit's
//! ratio is at most `k/(k−1)·µ + 6k/(k−1) + 1`.
//!
//! Sweeps (k, µ) over µ-pinned small-item workloads; the measured ratio
//! (conservative upper bracket) must stay below the bound curve, and the
//! §4.3 analysis machinery must certify cleanly on every trace.

use crate::harness::{cell, f3, Table};
use crate::sweep::{mu_grid, ratio_vs_opt};
use dbp_core::analysis::analyze_first_fit;
use dbp_core::prelude::*;
use dbp_opt::SolveMode;
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};
use rayon::prelude::*;

/// One (k, µ) cell.
#[derive(Debug, Clone)]
pub struct Thm4Row {
    /// Size-class parameter (all sizes < W/k).
    pub k: u64,
    /// Pinned µ.
    pub mu: u64,
    /// Worst measured FF ratio (upper bracket) over seeds.
    pub worst_ratio: Ratio,
    /// The Theorem 4 bound.
    pub bound: Ratio,
    /// Whether the bound held on every seed.
    pub holds: bool,
    /// Whether the §4.3 analysis was violation-free on every seed.
    pub analysis_clean: bool,
}

/// Run the sweep.
pub fn run(quick: bool) -> (Table, Vec<Thm4Row>) {
    let ks: &[u64] = if quick { &[4] } else { &[2, 4, 8] };
    let mus = if quick { vec![1, 8] } else { mu_grid(32) };
    let seeds: u64 = if quick { 4 } else { 12 };

    let grid: Vec<(u64, u64)> = ks
        .iter()
        .flat_map(|&k| mus.iter().map(move |&mu| (k, mu)))
        .collect();

    let mut rows: Vec<Thm4Row> = grid
        .par_iter()
        .map(|&(k, mu)| {
            let bound = dbp_core::bounds::ff_small_items_bound(k, Ratio::from_int(mu as u128));
            let mut worst = Ratio::ZERO;
            let mut holds = true;
            let mut analysis_clean = true;
            for seed in 0..seeds {
                let cfg = MuControlledConfig {
                    n_items: if quick { 80 } else { 200 },
                    sizes: SizeModel::SmallOnly { k },
                    seed: seed * 1000 + k * 7 + mu,
                    ..MuControlledConfig::new(mu)
                };
                let inst = generate_mu_controlled(&cfg);
                let trace = simulate(&inst, &mut FirstFit::new());
                let analysis = analyze_first_fit(&inst, &trace);
                if !analysis.is_clean() {
                    analysis_clean = false;
                }
                let bracket = ratio_vs_opt(
                    &inst,
                    trace.total_cost_ticks(),
                    SolveMode::Exact {
                        node_budget: 100_000,
                    },
                );
                worst = worst.max(bracket.hi);
                if bracket.hi > bound {
                    holds = false;
                }
            }
            Thm4Row {
                k,
                mu,
                worst_ratio: worst,
                bound,
                holds,
                analysis_clean,
            }
        })
        .collect();
    rows.sort_by_key(|r| (r.k, r.mu));

    let mut table = Table::new(
        "Theorem 4: small items (s < W/k) => FF ratio <= k/(k-1)*mu + 6k/(k-1) + 1",
        &[
            "k",
            "mu",
            "worst FF ratio",
            "bound",
            "holds",
            "analysis clean",
        ],
    );
    for r in &rows {
        table.push(vec![
            cell(r.k),
            cell(r.mu),
            f3(r.worst_ratio.to_f64()),
            f3(r.bound.to_f64()),
            cell(r.holds),
            cell(r.analysis_clean),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_and_analysis_hold_everywhere() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.holds, "Theorem 4 violated at k={}, µ={}", r.k, r.mu);
            assert!(r.analysis_clean, "analysis dirty at k={}, µ={}", r.k, r.mu);
        }
    }

    #[test]
    fn bound_grows_linearly_in_mu() {
        let (_, rows) = run(true);
        let by_mu: Vec<&Thm4Row> = rows.iter().filter(|r| r.k == 4).collect();
        for w in by_mu.windows(2) {
            assert!(w[1].bound > w[0].bound);
        }
    }
}
