//! **value_of_clairvoyance** — how much is knowing departure times worth?
//!
//! The paper's hardness all flows from *unknown* departures; the interval
//! scheduling related work (\[14\], \[21\]) assumes they are known. This sweep
//! runs the departure-aware baselines (Extend Fit, Aligned Fit) against the
//! blind roster on the same traces:
//!
//! * on random cloud-gaming traffic, clairvoyance buys a measurable but
//!   modest saving (bins drain cleaner);
//! * on the Theorem 1 witness it buys **nothing** — both clairvoyant
//!   selectors are still Any Fit, so the µ lower bound binds them equally.

use crate::harness::{cell, f3, Table};
use dbp_adversary::Theorem1;
use dbp_core::bounds::combined_lower_bound;
use dbp_core::clairvoyant::{simulate_clairvoyant, AlignedFit, ExtendFit};
use dbp_core::prelude::*;
use dbp_workloads::{generate, CloudGamingConfig};
use rayon::prelude::*;

/// One algorithm's outcomes.
#[derive(Debug, Clone)]
pub struct ClairRow {
    /// Algorithm name (blind roster + XF/AL).
    pub algorithm: String,
    /// Whether the algorithm sees departures.
    pub clairvoyant: bool,
    /// Mean cost/LB on random gaming traffic.
    pub random: f64,
    /// Ratio on the Theorem 1 witness.
    pub adversarial: f64,
}

/// Run the comparison.
pub fn run(quick: bool) -> (Table, Vec<ClairRow>) {
    let seeds: u64 = if quick { 2 } else { 6 };
    let instances: Vec<Instance> = (0..seeds)
        .map(|seed| {
            generate(&CloudGamingConfig {
                horizon: if quick { 2 * 3600 } else { 6 * 3600 },
                seed,
                ..CloudGamingConfig::default()
            })
        })
        .collect();
    let witness = Theorem1::new(16, 10).instance();
    let witness_lb = combined_lower_bound(&witness);

    enum Runner {
        Blind(&'static str, fn() -> Box<dyn BinSelector>),
        Seeing(&'static str, u8),
    }
    let runners = vec![
        Runner::Blind("FF", || Box::new(FirstFit::new())),
        Runner::Blind("BF", || Box::new(BestFit::new())),
        Runner::Blind("MFF(8)", || Box::new(ModifiedFirstFit::new(8))),
        Runner::Seeing("XF", 0),
        Runner::Seeing("AL", 1),
    ];

    let rows: Vec<ClairRow> = runners
        .par_iter()
        .map(|r| {
            let run_on = |inst: &Instance| -> u128 {
                match r {
                    Runner::Blind(_, make) => {
                        let mut sel = make();
                        simulate(inst, &mut *sel).total_cost_ticks()
                    }
                    Runner::Seeing(_, 0) => {
                        simulate_clairvoyant(inst, ExtendFit::new()).total_cost_ticks()
                    }
                    Runner::Seeing(..) => {
                        simulate_clairvoyant(inst, AlignedFit::new()).total_cost_ticks()
                    }
                }
            };
            let mut acc = 0.0;
            for inst in &instances {
                let lb = combined_lower_bound(inst);
                acc += (Ratio::from_int(run_on(inst)) / lb).to_f64();
            }
            let adversarial = (Ratio::from_int(run_on(&witness)) / witness_lb).to_f64();
            let (name, clair) = match r {
                Runner::Blind(n, _) => (*n, false),
                Runner::Seeing(n, _) => (*n, true),
            };
            ClairRow {
                algorithm: name.to_string(),
                clairvoyant: clair,
                random: acc / instances.len() as f64,
                adversarial,
            }
        })
        .collect();

    let mut table = Table::new(
        "Value of clairvoyance: departure-aware (XF, AL) vs blind roster",
        &["algo", "knows d(r)", "random cost/LB", "adversarial"],
    );
    for r in &rows {
        table.push(vec![
            r.algorithm.clone(),
            cell(r.clairvoyant),
            f3(r.random),
            f3(r.adversarial),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clairvoyance_never_helps_on_the_witness() {
        let (_, rows) = run(true);
        let adversarial: Vec<f64> = rows.iter().map(|r| r.adversarial).collect();
        // The burst construction forces identical behaviour on every Any Fit
        // algorithm — clairvoyant or not.
        for w in adversarial.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn clairvoyant_baselines_are_competitive_on_random_traffic() {
        let (_, rows) = run(true);
        let ff = rows.iter().find(|r| r.algorithm == "FF").unwrap().random;
        for r in rows.iter().filter(|r| r.clairvoyant) {
            // Within 10% of FF at worst (usually better).
            assert!(
                r.random <= ff * 1.10,
                "{} is {} vs FF {}",
                r.algorithm,
                r.random,
                ff
            );
        }
    }
}
