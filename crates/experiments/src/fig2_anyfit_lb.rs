//! **fig2_anyfit_lb** — Figure 2 / Theorem 1.
//!
//! Instantiates the Any Fit lower-bound construction over a `(k, µ)` grid,
//! runs representative Any Fit algorithms, computes `OPT_total` exactly, and
//! compares the measured ratio with the closed form `kµ/(k+µ−1)` — the match
//! must be **exact**, and the ratio must approach µ as k grows.

use crate::harness::{cell, f3, Table};
use dbp_adversary::Theorem1;
use dbp_core::prelude::*;
use dbp_opt::{opt_total, SolveMode};
use rayon::prelude::*;

/// One grid point's outcome.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Construction parameter k.
    pub k: u64,
    /// Target µ.
    pub mu: u64,
    /// Measured Any Fit cost (identical across the family) in bin-ticks.
    pub af_cost: u128,
    /// Exact `OPT_total` in bin-ticks.
    pub opt_cost: u128,
    /// Measured ratio.
    pub measured: Ratio,
    /// Closed form `kµ/(k+µ−1)`.
    pub formula: Ratio,
    /// Whether measured == formula (must always be true).
    pub exact_match: bool,
}

/// Run the sweep. `quick` shrinks the grid for benches.
pub fn run(quick: bool) -> (Table, Vec<Fig2Row>) {
    let ks: &[u64] = if quick {
        &[2, 8]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    let mus: &[u64] = if quick {
        &[1, 10]
    } else {
        &[1, 2, 5, 10, 20, 50]
    };

    let grid: Vec<(u64, u64)> = ks
        .iter()
        .flat_map(|&k| mus.iter().map(move |&mu| (k, mu)))
        .collect();

    let mut rows: Vec<Fig2Row> = grid
        .par_iter()
        .map(|&(k, mu)| {
            let t1 = Theorem1::new(k, mu);
            let inst = t1.instance();
            // Run the whole deterministic Any Fit family; the construction
            // forces identical costs, which we assert.
            let ff = simulate_validated(&inst, &mut FirstFit::new());
            let bf = simulate_validated(&inst, &mut BestFit::new());
            let wf = simulate_validated(&inst, &mut WorstFit::new());
            let af_cost = ff.total_cost_ticks();
            assert_eq!(af_cost, bf.total_cost_ticks(), "BF differs at k={k},µ={mu}");
            assert_eq!(af_cost, wf.total_cost_ticks(), "WF differs at k={k},µ={mu}");
            assert_eq!(af_cost, t1.expected_anyfit_cost_ticks());

            let opt = opt_total(&inst, SolveMode::default());
            let opt_cost = opt.exact_ticks();
            let measured = Ratio::new(af_cost, opt_cost);
            let formula = t1.expected_ratio();
            Fig2Row {
                k,
                mu,
                af_cost,
                opt_cost,
                measured,
                formula,
                exact_match: measured == formula,
            }
        })
        .collect();
    rows.sort_by_key(|r| (r.mu, r.k));

    let mut table = Table::new(
        "Figure 2 / Theorem 1: Any Fit lower bound, ratio = kµ/(k+µ−1) → µ",
        &[
            "mu",
            "k",
            "AF_total",
            "OPT_total",
            "ratio",
            "formula",
            "mu-gap",
            "exact",
        ],
    );
    for r in &rows {
        let gap = r.mu as f64 - r.measured.to_f64();
        table.push(vec![
            cell(r.mu),
            cell(r.k),
            cell(r.af_cost),
            cell(r.opt_cost),
            f3(r.measured.to_f64()),
            cell(r.formula),
            f3(gap),
            cell(r.exact_match),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_grid_point_matches_the_formula_exactly() {
        let (_, rows) = run(true);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.exact_match, "mismatch at k={}, µ={}", r.k, r.mu);
        }
    }

    #[test]
    fn ratio_increases_toward_mu_in_k() {
        let (_, rows) = run(false);
        for mu in [10u64, 50] {
            let series: Vec<&Fig2Row> = rows.iter().filter(|r| r.mu == mu).collect();
            for w in series.windows(2) {
                assert!(w[0].k < w[1].k);
                assert!(w[0].measured < w[1].measured, "not increasing at µ={mu}");
            }
            let last = series.last().unwrap();
            assert!(last.measured < Ratio::from_int(mu as u128));
            // k = 64 gets within 45% of µ even at µ = 50 (64·50/113 ≈ 28).
            assert!(last.measured.to_f64() > mu as f64 * 0.55);
        }
    }
}
