//! **shard_resilience** — what shard failures cost a self-healing cluster.
//!
//! The sharding_overhead sweep prices partitioning; this one prices
//! *dying*. For each scenario × router × shard count, a seeded
//! [`ShardFaultPlan`](dbp_cluster::ShardFaultPlan) kills shards mid-run
//! and the self-healing engine contains each death, resurrects shards
//! from their journals inside the restart budget, and reroutes future
//! arrivals off shards that stay down. Reported per cell: the extended
//! SLA ledger (served / lost / rerouted), restart activity, and the cost
//! overhead versus the same cluster with no faults — exact integer ticks
//! until the final display division. Every row asserts the conservation
//! law `served + dropped + lost + rerouted == total`.

use crate::harness::{cell, f3, Table};
use dbp_cloudsim::GamingSystem;
use dbp_cluster::{ClusterConfig, ClusterEngine, Router, ShardFaultPlan};
use dbp_core::algorithms::standard_factories;
use dbp_workloads::{generate, CloudGamingConfig, Scenario};

/// One (scenario, router, shards) outcome under seeded shard kills.
#[derive(Debug, Clone)]
pub struct ResilienceRow {
    /// Scenario name.
    pub scenario: String,
    /// Router name.
    pub router: String,
    /// Shard count.
    pub shards: usize,
    /// Kills that landed.
    pub kills: u64,
    /// Journal-backed resurrections.
    pub restarts: u64,
    /// Shards that stayed down.
    pub shards_lost: u64,
    /// Sessions served to completion.
    pub served: u64,
    /// Sessions lost in-flight with their shard.
    pub lost: u64,
    /// Future arrivals rerouted off dead shards.
    pub rerouted: u64,
    /// The faulted run's exact busy time, in bin-ticks.
    pub busy_ticks: u128,
    /// The same cluster's zero-fault busy time, in bin-ticks.
    pub baseline_ticks: u128,
    /// `busy_ticks / baseline_ticks` (display only; 1 exactly when every
    /// kill healed, since resurrection re-derives the identical packing).
    pub overhead: f64,
    /// Whether the extended ledger conserved (asserted true).
    pub conserved: bool,
}

/// Run the sweep: scenarios × routers × shard counts under seeded kills.
pub fn run(quick: bool) -> (Table, Vec<ResilienceRow>) {
    let scenarios: &[Scenario] = if quick {
        &[Scenario::Steady, Scenario::LaunchDay]
    } else {
        &Scenario::ALL
    };
    let shard_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };

    let factory = standard_factories(17)
        .into_iter()
        .find(|f| f.name() == "FF")
        .expect("FF is in the standard roster");

    let mut rows = Vec::new();
    for scenario in scenarios {
        let cfg = CloudGamingConfig {
            seed: 17,
            ..scenario.config()
        };
        let inst = generate(&cfg);
        for router in Router::ALL {
            for &shards in shard_counts {
                let engine = ClusterEngine::new(
                    GamingSystem::paper_model(),
                    ClusterConfig::new(shards, router).unwrap(),
                );
                let baseline = engine
                    .run_self_healing(&inst, &factory, &ShardFaultPlan::none())
                    .expect("scenario workloads match the paper system capacity");
                // ~2 events per item spread over the shards keeps kill
                // offsets inside the live part of each stream.
                let events_hint = (2 * inst.len() as u64 / shards as u64).max(4);
                let plan = ShardFaultPlan::from_seed(17, shards, events_hint);
                let healed = engine
                    .run_self_healing(&inst, &factory, &plan)
                    .expect("fault plans target in-range shards");
                let r = &healed.report;
                assert!(
                    r.conserved(),
                    "{}/{}: {r:?}",
                    scenario.name(),
                    router.name()
                );
                rows.push(ResilienceRow {
                    scenario: scenario.name().to_string(),
                    router: router.name().to_string(),
                    shards,
                    kills: r.shard_kills,
                    restarts: r.shard_restarts,
                    shards_lost: r.shards_lost,
                    served: r.sessions_served,
                    lost: r.sessions_lost,
                    rerouted: r.sessions_rerouted,
                    busy_ticks: r.busy_ticks,
                    baseline_ticks: baseline.report.busy_ticks,
                    overhead: r.busy_ticks as f64 / baseline.report.busy_ticks as f64,
                    conserved: r.conserved(),
                });
            }
        }
    }

    let mut table = Table::new(
        "Shard resilience: self-healing cluster under seeded shard kills",
        &[
            "scenario",
            "router",
            "shards",
            "kills",
            "restarts",
            "down",
            "served",
            "lost",
            "rerouted",
            "busy ticks",
            "baseline",
            "overhead",
        ],
    );
    for r in &rows {
        table.push(vec![
            r.scenario.clone(),
            r.router.clone(),
            cell(r.shards),
            cell(r.kills),
            cell(r.restarts),
            cell(r.shards_lost),
            cell(r.served),
            cell(r.lost),
            cell(r.rerouted),
            cell(r.busy_ticks),
            cell(r.baseline_ticks),
            f3(r.overhead),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_has_the_expected_shape() {
        let (table, rows) = run(true);
        // 2 scenarios × 3 routers × 2 shard counts.
        assert_eq!(rows.len(), 2 * 3 * 2);
        assert_eq!(table.rows.len(), rows.len());
    }

    #[test]
    fn rows_are_internally_consistent() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.conserved, "{}/{}/{}", r.scenario, r.router, r.shards);
            assert!(r.busy_ticks > 0 && r.baseline_ticks > 0);
            assert!(r.kills >= r.restarts);
            // A fully-healed run re-derives the identical packing, so its
            // bill is exactly the baseline; only dead shards change cost.
            if r.shards_lost == 0 {
                assert_eq!(
                    r.busy_ticks, r.baseline_ticks,
                    "healed run must cost the baseline: {}/{}",
                    r.scenario, r.router
                );
            }
        }
    }
}
