//! **migration_gap** — how strong is the paper's baseline?
//!
//! `OPT_total = ∫ OPT(R,t) dt` lets the optimum repack at every instant;
//! a real dispatcher (like the online algorithms) cannot migrate. This
//! experiment computes, on small random instances, the exact chain
//!
//! `OPT_repack ≤ OPT_fixed ≤ FF`
//!
//! and reports the two gaps. A small repack→fixed gap means the paper's
//! ratios are measured against an only-slightly-unfair baseline; the
//! measured FF→fixed gap is the "real" online penalty.

use crate::harness::{cell, f3, Table};
use dbp_core::prelude::*;
use dbp_opt::{fixed_optimum, opt_total, SolveMode};
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};
use rayon::prelude::*;

/// Aggregates over seeds for one instance size.
#[derive(Debug, Clone)]
pub struct GapRow {
    /// Items per instance.
    pub n_items: usize,
    /// Seeds measured (only exact fixed-optimum runs are kept).
    pub seeds: usize,
    /// Mean `OPT_fixed / OPT_repack`.
    pub mean_migration_gap: f64,
    /// Max `OPT_fixed / OPT_repack`.
    pub max_migration_gap: f64,
    /// Mean `FF / OPT_fixed` (the no-migration competitive ratio).
    pub mean_ff_vs_fixed: f64,
    /// Ordering `repack ≤ fixed ≤ FF` held on every seed.
    pub ordered: bool,
}

/// Run the sweep.
pub fn run(quick: bool) -> (Table, Vec<GapRow>) {
    let ns: &[usize] = if quick { &[6, 9] } else { &[6, 8, 10, 12] };
    let seeds: u64 = if quick { 6 } else { 20 };

    let rows: Vec<GapRow> = ns
        .par_iter()
        .map(|&n| {
            let mut gaps = Vec::new();
            let mut ff_gaps = Vec::new();
            let mut ordered = true;
            for seed in 0..seeds {
                let cfg = MuControlledConfig {
                    n_items: n,
                    mu: 6,
                    arrival_rate: 0.1,
                    sizes: SizeModel::Uniform { lo: 20, hi: 60 },
                    seed: seed * 101 + n as u64,
                    ..MuControlledConfig::new(6)
                };
                let inst = generate_mu_controlled(&cfg);
                let repack = opt_total(&inst, SolveMode::default());
                let fixed = fixed_optimum(&inst, 3_000_000);
                if !repack.is_exact() || !fixed.exact {
                    continue;
                }
                let ff = simulate(&inst, &mut FirstFit::new()).total_cost_ticks();
                if !(repack.exact_ticks() <= fixed.cost_ticks && fixed.cost_ticks <= ff) {
                    ordered = false;
                }
                gaps.push(fixed.cost_ticks as f64 / repack.exact_ticks() as f64);
                ff_gaps.push(ff as f64 / fixed.cost_ticks as f64);
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            GapRow {
                n_items: n,
                seeds: gaps.len(),
                mean_migration_gap: mean(&gaps),
                max_migration_gap: gaps.iter().copied().fold(0.0, f64::max),
                mean_ff_vs_fixed: mean(&ff_gaps),
                ordered,
            }
        })
        .collect();

    let mut table = Table::new(
        "Migration gap: OPT_repack <= OPT_fixed <= FF on small instances",
        &[
            "items",
            "seeds",
            "mean fixed/repack",
            "max fixed/repack",
            "mean FF/fixed",
            "ordered",
        ],
    );
    for r in &rows {
        table.push(vec![
            cell(r.n_items),
            cell(r.seeds),
            f3(r.mean_migration_gap),
            f3(r.max_migration_gap),
            f3(r.mean_ff_vs_fixed),
            cell(r.ordered),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_holds_and_gaps_are_modest() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.ordered, "ordering broke at n={}", r.n_items);
            assert!(r.seeds > 0, "no exact solves at n={}", r.n_items);
            assert!(r.mean_migration_gap >= 1.0 - 1e-12);
            // Random instances: the repack advantage is small.
            assert!(
                r.max_migration_gap < 1.5,
                "surprisingly large migration gap at n={}",
                r.n_items
            );
            assert!(r.mean_ff_vs_fixed >= 1.0 - 1e-12);
        }
    }
}
