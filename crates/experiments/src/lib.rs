//! # dbp-experiments — one experiment per table/figure of the paper
//!
//! Each module reproduces one artifact of the SPAA'14 MinTotal DBP paper
//! (see DESIGN.md's per-experiment index) and is exposed both as a library
//! function `run(quick) -> (Table, rows)` — used by tests and the bench
//! harness — and as a binary (`cargo run -p dbp-experiments --bin <id>`,
//! `--quick` for a reduced grid). CSV artifacts land in `results/`.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig1_span`] | Figure 1 (span definition) |
//! | [`fig2_anyfit_lb`] | Figure 2 / Theorem 1 (Any Fit ≥ µ) |
//! | [`fig3_bestfit_unbounded`] | Figure 3 / Theorem 2 (BF unbounded) |
//! | [`thm3_large_items`] | Theorem 3 (large items ⇒ k·OPT) |
//! | [`thm4_small_items`] | Theorem 4 (small-item FF bound) |
//! | [`thm5_general_ff`] | Theorem 5 (2µ+13) |
//! | [`tab2_case_classification`] | Table 2 + Lemmas 1–5 census |
//! | [`mff_ratio`] | §4.4 MFF bounds |
//! | [`mff_k_ablation`] | §4.4 k = µ+7 optimality |
//! | [`cloud_gaming_costs`] | §1 motivation (rental costs) |
//! | [`mu_sensitivity`] | µ-dependence across algorithms |
//! | [`billing_granularity`] | §1 EC2 hourly billing |
//! | [`constrained_dbp`] | §5 future work (regions) |
//! | [`footnote1_adaptive`] | footnote 1 (adaptive adversary vs any online algorithm) |
//! | [`flash_crowd`] | §1 workload fluctuation (burst scenario) |
//! | [`mff_decomposition`] | §4.4 proof structure (per-class certificates) |
//! | [`unit_fractions`] | related work \[8\] (unit-fraction items, MaxBins vs MinTotal) |
//! | [`value_of_clairvoyance`] | related work \[14\]/\[21\] (known departure times) |
//! | [`migration_gap`] | strength of the `OPT_total` repacking baseline |
//! | [`server_churn`] | provisioning fees vs bin churn |
//! | [`sharding_overhead`] | §5 scale-out: K-shard cluster cost vs one dispatcher |
//! | [`shard_resilience`] | self-healing: shard kills, journal resurrection, degraded routing |
//! | [`fault_tolerance`] | resilience: crashes & flaky provisioning vs the fault-free bill |
//! | [`ff_gap_search`] | the open `[µ, 2µ+13]` gap, probed by adversarial search |
//! | [`hff_class_ablation`] | Harmonic-class generalization of MFF's split |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod billing_granularity;
pub mod cloud_gaming_costs;
pub mod constrained_dbp;
pub mod fault_tolerance;
pub mod ff_gap_search;
pub mod fig1_span;
pub mod fig2_anyfit_lb;
pub mod fig3_bestfit_unbounded;
pub mod flash_crowd;
pub mod footnote1_adaptive;
pub mod harness;
pub mod hff_class_ablation;
pub mod mff_decomposition;
pub mod mff_k_ablation;
pub mod mff_ratio;
pub mod migration_gap;
pub mod mu_sensitivity;
pub mod server_churn;
pub mod shard_resilience;
pub mod sharding_overhead;
pub mod sweep;
pub mod tab2_case_classification;
pub mod thm3_large_items;
pub mod thm4_small_items;
pub mod thm5_general_ff;
pub mod unit_fractions;
pub mod value_of_clairvoyance;

/// Whether `--quick` was passed to an experiment binary.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}
