//! **ff_gap_search** — empirically probing the paper's open question.
//!
//! First Fit's true competitive ratio lies somewhere in `[µ, 2µ+13]`
//! (Theorems 1 and 5); the paper does not close the gap. Per µ, this
//! experiment runs a budgeted randomized hill-climb over small instances
//! (exact `OPT_total` as the denominator) and reports the worst ratio it
//! can find next to the Theorem 1 witness value at matched scale — across
//! every budget we have tried, the witness family remains the worst known,
//! supporting the conjecture that the truth is near the µ end of the gap.

use crate::harness::{cell, f3, Table};
use dbp_adversary::{best_of_restarts, SearchConfig};
use dbp_core::bounds::{ff_general_bound, theorem1_ratio};
use dbp_core::ratio::Ratio;
use rayon::prelude::*;

/// One µ row.
#[derive(Debug, Clone)]
pub struct GapSearchRow {
    /// µ cap of the search space.
    pub mu: u64,
    /// Best ratio found by the search.
    pub found: Ratio,
    /// Actual µ of the instance achieving it.
    pub found_mu: Ratio,
    /// The Theorem 1 witness value at matched k (capacity 12).
    pub witness: Ratio,
    /// Theorem 5 ceiling `2µ + 13`.
    pub ceiling: Ratio,
    /// Whether the search beat the witness (a counterexample candidate!).
    pub beat_witness: bool,
}

/// Run the search per µ.
pub fn run(quick: bool) -> (Table, Vec<GapSearchRow>) {
    let mus: &[u64] = if quick { &[2, 4] } else { &[2, 4, 8, 12, 16] };
    let restarts: u64 = if quick { 2 } else { 8 };
    let steps: u32 = if quick { 120 } else { 600 };

    let mut rows: Vec<GapSearchRow> = mus
        .par_iter()
        .map(|&mu| {
            let cfg = SearchConfig {
                steps,
                ..SearchConfig::new(mu, 1234 + mu)
            };
            let result = best_of_restarts(&cfg, restarts);
            let witness = theorem1_ratio(cfg.capacity, mu);
            GapSearchRow {
                mu,
                found: result.ratio,
                found_mu: result.instance.mu().unwrap_or(Ratio::ONE),
                witness,
                ceiling: ff_general_bound(Ratio::from_int(mu as u128)),
                beat_witness: result.ratio > witness,
            }
        })
        .collect();
    rows.sort_by_key(|r| r.mu);

    let mut table = Table::new(
        "FF gap search: worst instance a budgeted hill-climb finds vs the Theorem-1 witness",
        &[
            "mu cap",
            "search best",
            "at mu",
            "witness k=12",
            "2mu+13",
            "beat witness",
        ],
    );
    for r in &rows {
        table.push(vec![
            cell(r.mu),
            f3(r.found.to_f64()),
            f3(r.found_mu.to_f64()),
            f3(r.witness.to_f64()),
            f3(r.ceiling.to_f64()),
            cell(r.beat_witness),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_stays_within_the_theoretical_window() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.found > Ratio::ONE);
            assert!(r.found <= r.ceiling, "Theorem 5 broken at µ={}", r.mu);
            // If this ever fires, the found instance is a candidate
            // counterexample to "the witness is worst" — investigate, do
            // not suppress.
            assert!(
                !r.beat_witness,
                "search beat the Theorem-1 witness at µ={}: {} > {}",
                r.mu, r.found, r.witness
            );
        }
    }
}
