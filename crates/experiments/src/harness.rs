//! Experiment harness: aligned-column tables on stdout and CSV artifacts
//! under `results/`.

use std::fmt::Display;
use std::path::PathBuf;

/// A rectangular result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of displayable cells.
    ///
    /// # Panics
    /// Panics if the arity does not match the headers.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Render as a GitHub-flavoured markdown table (title as a heading).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }

    /// Render as CSV text (RFC-4180 style quoting).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write as CSV into the results directory; returns the path. The write
    /// is atomic (temp file + rename), so a crash mid-write never leaves a
    /// truncated artifact where a previous good one stood.
    pub fn try_write_csv(&self, stem: &str) -> std::io::Result<PathBuf> {
        let path = results_dir().join(format!("{stem}.csv"));
        dbp_obs::export::atomic_write(&path, self.to_csv().as_bytes())?;
        Ok(path)
    }

    /// Write as CSV into the results directory; returns the path.
    ///
    /// # Panics
    /// Panics on I/O errors — experiments must not silently lose artifacts.
    /// Fallible callers (`run_all`) use [`try_write_csv`](Self::try_write_csv).
    pub fn write_csv(&self, stem: &str) -> PathBuf {
        self.try_write_csv(stem).expect("cannot write CSV")
    }
}

/// Where CSV artifacts go: `$DBP_RESULTS` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("DBP_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Format helper: fixed 3-decimal float.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format helper: any displayable value.
pub fn cell(x: impl Display) -> String {
    x.to_string()
}

/// Run an experiment's standard epilogue: print and persist.
pub fn finish(table: &Table, stem: &str) {
    table.print();
    let path = table.write_csv(stem);
    println!("[csv] {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["k", "ratio"]);
        t.push(vec!["2".into(), "1.5".into()]);
        t.push(vec!["16".into(), "10.25".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains(" k"));
        // Right-aligned: the 2 under the 16's column.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("demo", &["k", "ratio"]);
        t.push(vec!["2".into(), "1.5".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| k | ratio |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 2 | 1.5 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("demo", &["x"]);
        t.push(vec!["a,b\"c".into()]);
        let dir = std::env::temp_dir().join("dbp-exp-test");
        std::env::set_var("DBP_RESULTS", &dir);
        let p = t.write_csv("escape_test");
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.contains("\"a,b\"\"c\""));
        // Atomic write: no temp sibling left behind.
        assert!(!p.with_extension("csv.tmp").exists());
        std::env::remove_var("DBP_RESULTS");
    }

    #[test]
    fn csv_write_creates_missing_results_dir() {
        let dir = std::env::temp_dir().join("dbp-exp-test-nested/deeper");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("demo", &["x"]);
        t.push(vec!["1".into()]);
        std::env::set_var("DBP_RESULTS", &dir);
        let p = t.try_write_csv("fresh").unwrap();
        std::env::remove_var("DBP_RESULTS");
        assert!(p.exists());
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }
}
