//! **fig3_bestfit_unbounded** — Figure 3 / Theorem 2.
//!
//! Instantiates the Best Fit construction for growing `k` and shows:
//! BF's measured ratio exceeds `k/2` and grows without bound, while First
//! Fit — on the *same instances* — stays within its `2µ + 13` guarantee.

use crate::harness::{cell, f3, Table};
use dbp_adversary::Theorem2;
use dbp_core::prelude::*;
use dbp_opt::{opt_total, SolveMode};
use rayon::prelude::*;

/// One construction's outcome.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Bins BF is forced to hold open.
    pub k: u64,
    /// Iterations run.
    pub n: u64,
    /// Items in the instance.
    pub items: usize,
    /// BF ratio vs exact OPT_total.
    pub bf_ratio: Ratio,
    /// The paper's floor `k/2`.
    pub floor: Ratio,
    /// FF ratio on the same instance.
    pub ff_ratio: Ratio,
    /// FF's general bound `2µ + 13` for this instance's µ.
    pub ff_bound: Ratio,
}

/// Run the sweep. `quick` shrinks the grid.
pub fn run(quick: bool) -> (Table, Vec<Fig3Row>) {
    let ks: &[u64] = if quick {
        &[2, 4]
    } else {
        &[2, 4, 6, 8, 10, 12]
    };
    let mu = 2u64;

    let mut rows: Vec<Fig3Row> = ks
        .par_iter()
        .map(|&k| {
            // n = 2k iterations puts us well past the paper's n threshold.
            let n = 2 * k;
            let t2 = Theorem2::new(k, mu, n);
            let inst = t2.instance();
            let bf = simulate(&inst, &mut BestFit::new());
            assert_eq!(bf.total_cost_ticks(), t2.expected_bf_cost_ticks());
            let ff = simulate(&inst, &mut FirstFit::new());
            let opt = opt_total(&inst, SolveMode::default());
            let opt_cost = opt.exact_ticks();
            Fig3Row {
                k,
                n,
                items: inst.len(),
                bf_ratio: Ratio::new(bf.total_cost_ticks(), opt_cost),
                floor: t2.ratio_floor(),
                ff_ratio: Ratio::new(ff.total_cost_ticks(), opt_cost),
                ff_bound: dbp_core::bounds::ff_general_bound(inst.mu().unwrap()),
            }
        })
        .collect();
    rows.sort_by_key(|r| r.k);

    let mut table = Table::new(
        "Figure 3 / Theorem 2: Best Fit unbounded (µ = 2); FF bounded on the same instances",
        &[
            "k", "n", "items", "BF ratio", "k/2", "BF>=k/2", "FF ratio", "2mu+13",
        ],
    );
    for r in &rows {
        table.push(vec![
            cell(r.k),
            cell(r.n),
            cell(r.items),
            f3(r.bf_ratio.to_f64()),
            f3(r.floor.to_f64()),
            cell(r.bf_ratio >= r.floor),
            f3(r.ff_ratio.to_f64()),
            f3(r.ff_bound.to_f64()),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf_exceeds_k_over_2_and_grows() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.bf_ratio >= r.floor, "BF below k/2 at k={}", r.k);
        }
        for w in rows.windows(2) {
            assert!(
                w[1].bf_ratio > w[0].bf_ratio,
                "BF ratio not growing: k={} -> k={}",
                w[0].k,
                w[1].k
            );
        }
    }

    #[test]
    fn ff_stays_within_its_bound_on_the_bf_killer() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.ff_ratio <= r.ff_bound, "FF bound violated at k={}", r.k);
            // And FF is dramatically better than BF here.
            assert!(r.ff_ratio < r.bf_ratio);
        }
    }
}
