//! **mff_ratio** — §4.4: Modified First Fit's two bounds.
//!
//! Sweeps µ and compares, per µ:
//!
//! * FF, MFF(k = 8) (µ-oblivious) and MFF(k = µ+7) (µ known) on the
//!   Theorem 1 witness — the known worst family, where every Any Fit ratio
//!   approaches µ — and on µ-pinned random workloads;
//! * against the bound curves `2µ+13` (FF), `8µ/7 + 55/7` (MFF, µ unknown)
//!   and `µ+8` (MFF, µ known).

use crate::harness::{cell, f3, Table};
use crate::sweep::{mu_grid, ratio_vs_opt};
use dbp_adversary::Theorem1;
use dbp_core::prelude::*;
use dbp_opt::{opt_total, SolveMode};
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};
use rayon::prelude::*;

/// One µ row.
#[derive(Debug, Clone)]
pub struct MffRow {
    /// µ value.
    pub mu: u64,
    /// FF worst measured ratio (adversarial + random).
    pub ff: Ratio,
    /// MFF(8) worst measured ratio.
    pub mff8: Ratio,
    /// MFF(µ+7) worst measured ratio.
    pub mff_known: Ratio,
    /// FF bound `2µ+13`.
    pub ff_bound: Ratio,
    /// MFF unknown-µ bound `8µ/7 + 55/7`.
    pub mff8_bound: Ratio,
    /// MFF known-µ bound `µ+8`.
    pub mff_known_bound: Ratio,
    /// All three bounds held.
    pub holds: bool,
}

fn worst_ratio_for<S: BinSelector>(
    make: impl Fn() -> S,
    mu: u64,
    seeds: u64,
    quick: bool,
) -> Ratio {
    let mut worst = Ratio::ZERO;
    // Adversarial witness.
    let t1 = Theorem1::new(16, mu);
    let inst = t1.instance();
    let trace = simulate(&inst, &mut make());
    let opt = opt_total(&inst, SolveMode::default());
    worst = worst.max(Ratio::new(trace.total_cost_ticks(), opt.exact_ticks()));
    // Random µ-pinned workloads.
    for seed in 0..seeds {
        let cfg = MuControlledConfig {
            n_items: if quick { 80 } else { 180 },
            sizes: SizeModel::Uniform { lo: 5, hi: 60 },
            seed: seed * 31 + mu,
            ..MuControlledConfig::new(mu)
        };
        let wl = generate_mu_controlled(&cfg);
        let trace = simulate(&wl, &mut make());
        let bracket = ratio_vs_opt(
            &wl,
            trace.total_cost_ticks(),
            SolveMode::Exact {
                node_budget: 100_000,
            },
        );
        worst = worst.max(bracket.hi);
    }
    worst
}

/// Run the sweep.
pub fn run(quick: bool) -> (Table, Vec<MffRow>) {
    let mus = if quick { vec![1, 8] } else { mu_grid(50) };
    let seeds = if quick { 3 } else { 8 };

    let mut rows: Vec<MffRow> = mus
        .par_iter()
        .map(|&mu| {
            let mu_r = Ratio::from_int(mu as u128);
            let ff = worst_ratio_for(FirstFit::new, mu, seeds, quick);
            let mff8 = worst_ratio_for(|| ModifiedFirstFit::new(8), mu, seeds, quick);
            let mff_known =
                worst_ratio_for(|| ModifiedFirstFit::for_known_mu(mu), mu, seeds, quick);
            let ff_bound = dbp_core::bounds::ff_general_bound(mu_r);
            let mff8_bound = dbp_core::bounds::mff_unknown_mu_bound(mu_r);
            let mff_known_bound = dbp_core::bounds::mff_known_mu_bound(mu_r);
            let holds = ff <= ff_bound && mff8 <= mff8_bound && mff_known <= mff_known_bound;
            MffRow {
                mu,
                ff,
                mff8,
                mff_known,
                ff_bound,
                mff8_bound,
                mff_known_bound,
                holds,
            }
        })
        .collect();
    rows.sort_by_key(|r| r.mu);

    let mut table = Table::new(
        "S4.4: MFF bounds vs FF (worst over adversarial witness + random workloads)",
        &[
            "mu",
            "FF",
            "MFF(8)",
            "MFF(mu+7)",
            "2mu+13",
            "8mu/7+55/7",
            "mu+8",
            "holds",
        ],
    );
    for r in &rows {
        table.push(vec![
            cell(r.mu),
            f3(r.ff.to_f64()),
            f3(r.mff8.to_f64()),
            f3(r.mff_known.to_f64()),
            f3(r.ff_bound.to_f64()),
            f3(r.mff8_bound.to_f64()),
            f3(r.mff_known_bound.to_f64()),
            cell(r.holds),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_bounds_hold() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.holds, "a bound failed at µ={}", r.mu);
        }
    }

    #[test]
    fn bound_curves_order_as_proved() {
        // For µ > 1: µ+8 < 8µ/7+55/7 < 2µ+13.
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.mff8_bound < r.ff_bound);
            assert!(r.mff_known_bound <= r.mff8_bound);
        }
    }
}
