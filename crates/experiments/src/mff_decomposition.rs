//! **mff_decomposition** — the §4.4 proof structure, measured.
//!
//! For each µ, runs MFF on mixed workloads and decomposes the trace per the
//! §4.4 argument: large-class cost against inequality (3), small-class cost
//! against inequality (12) (with the full §4.3 machinery on the small
//! sub-instance), and the composite bound. All certificates must hold and
//! the per-class costs must equal independent FF runs on the class
//! sub-instances — demonstrating computationally that MFF *is* two
//! independent First Fits.

use crate::harness::{cell, f3, Table};
use dbp_core::algorithms::ModifiedFirstFit;
use dbp_core::analysis::analyze_mff;
use dbp_core::prelude::*;
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};
use rayon::prelude::*;

/// Aggregated decomposition results for one µ.
#[derive(Debug, Clone)]
pub struct DecompRow {
    /// µ value.
    pub mu: u64,
    /// Seeds aggregated.
    pub seeds: usize,
    /// Mean fraction of items classified large.
    pub large_frac: f64,
    /// Mean fraction of cost attributable to the large class.
    pub large_cost_frac: f64,
    /// All inequality-(3) checks passed.
    pub ineq3: bool,
    /// All inequality-(12) checks passed.
    pub ineq12: bool,
    /// All composite §4.4 bound checks passed.
    pub composite: bool,
    /// All small-class §4.3 analyses were clean.
    pub machinery_clean: bool,
}

/// Run the decomposition sweep.
pub fn run(quick: bool) -> (Table, Vec<DecompRow>) {
    let mus: &[u64] = if quick {
        &[2, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let seeds: u64 = if quick { 4 } else { 15 };

    let mut rows: Vec<DecompRow> = mus
        .par_iter()
        .map(|&mu| {
            let mut large_frac = 0.0;
            let mut large_cost_frac = 0.0;
            let (mut ineq3, mut ineq12, mut composite, mut clean) = (true, true, true, true);
            for seed in 0..seeds {
                let cfg = MuControlledConfig {
                    n_items: if quick { 80 } else { 180 },
                    sizes: SizeModel::Uniform { lo: 3, hi: 45 },
                    seed: seed * 71 + mu,
                    ..MuControlledConfig::new(mu)
                };
                let inst = generate_mu_controlled(&cfg);
                let mff = ModifiedFirstFit::new(8);
                let trace = simulate(&inst, &mut mff.clone());
                let a = analyze_mff(&inst, &trace, mff);
                large_frac += a.n_large as f64 / inst.len() as f64;
                let total = (a.large_cost + a.small_cost).max(1);
                large_cost_frac += a.large_cost as f64 / total as f64;
                ineq3 &= a.ineq3_holds;
                ineq12 &= a.ineq12_holds;
                composite &= a.section44_holds;
                clean &= a.is_clean();
            }
            DecompRow {
                mu,
                seeds: seeds as usize,
                large_frac: large_frac / seeds as f64,
                large_cost_frac: large_cost_frac / seeds as f64,
                ineq3,
                ineq12,
                composite,
                machinery_clean: clean,
            }
        })
        .collect();
    rows.sort_by_key(|r| r.mu);

    let mut table = Table::new(
        "S4.4 decomposition: MFF as two independent FFs, inequalities (3)/(12)/composite",
        &[
            "mu",
            "seeds",
            "large items",
            "large cost share",
            "ineq (3)",
            "ineq (12)",
            "composite",
            "machinery clean",
        ],
    );
    for r in &rows {
        table.push(vec![
            cell(r.mu),
            cell(r.seeds),
            f3(r.large_frac),
            f3(r.large_cost_frac),
            cell(r.ineq3),
            cell(r.ineq12),
            cell(r.composite),
            cell(r.machinery_clean),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_certificate_holds() {
        let (_, rows) = run(true);
        for r in &rows {
            assert!(
                r.ineq3 && r.ineq12 && r.composite && r.machinery_clean,
                "µ={}",
                r.mu
            );
            assert!(r.large_frac > 0.0 && r.large_frac < 1.0);
        }
    }
}
