//! **footnote1_adaptive** — the paper's footnote 1: "this example and the
//! lower bound µ are applicable to any online packing algorithm."
//!
//! Plays the *adaptive* µ-adversary against the entire roster — including
//! the randomized and non-Any-Fit algorithms a static witness cannot pin
//! down — and reports the forced ratio. Any Fit algorithms land exactly on
//! `kµ/(k+µ−1)`; algorithms that open extra bins do strictly worse.

use crate::harness::{cell, f3, Table};
use dbp_adversary::AdaptiveMuAdversary;
use dbp_core::algorithms::standard_factories;
use dbp_core::prelude::*;
use dbp_opt::{opt_total, SolveMode};

/// One roster algorithm's outcome against the adaptive adversary.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Bins it opened during the burst (k for Any Fit).
    pub bins_opened: usize,
    /// Forced cost in bin-ticks.
    pub forced_cost: u128,
    /// Exact OPT_total of the committed instance.
    pub opt_cost: u128,
    /// Forced ratio.
    pub ratio: Ratio,
    /// The Theorem 1 value `kµ/(k+µ−1)` for reference.
    pub theorem1: Ratio,
}

/// Run the game for every roster algorithm.
pub fn run(quick: bool) -> (Table, Vec<AdaptiveRow>) {
    let (k, mu) = if quick { (4u64, 6u64) } else { (12u64, 10u64) };
    let adv = AdaptiveMuAdversary::new(k, mu);
    let theorem1 = dbp_core::bounds::theorem1_ratio(k, mu);

    let mut rows = Vec::new();
    for f in standard_factories(99) {
        let mut sel = f.build();
        let outcome = adv.play(&mut *sel);
        let opt = opt_total(&outcome.instance, SolveMode::default());
        let ratio = adv.forced_ratio(&outcome, opt.exact_ticks());
        rows.push(AdaptiveRow {
            algorithm: f.name().to_string(),
            bins_opened: outcome.bins_opened,
            forced_cost: outcome.forced_cost_ticks,
            opt_cost: opt.exact_ticks(),
            ratio,
            theorem1,
        });
    }

    let mut table = Table::new(
        format!("Footnote 1: adaptive µ-adversary vs every online algorithm (k={k}, µ={mu})"),
        &[
            "algo",
            "bins",
            "forced cost",
            "OPT",
            "ratio",
            "kmu/(k+mu-1)",
        ],
    );
    for r in &rows {
        table.push(vec![
            r.algorithm.clone(),
            cell(r.bins_opened),
            cell(r.forced_cost),
            cell(r.opt_cost),
            f3(r.ratio.to_f64()),
            f3(r.theorem1.to_f64()),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_fit_roster_lands_exactly_on_theorem1() {
        let (_, rows) = run(true);
        for r in &rows {
            // During an all-at-once burst of equal sizes, every roster
            // algorithm that never opens while a bin fits uses exactly k
            // bins; the single-class algorithms (MFF, HFF) and even NF
            // behave identically here because bins fill sequentially.
            assert!(r.ratio >= r.theorem1, "{} beat the adversary", r.algorithm);
            if r.bins_opened == 4 {
                assert_eq!(r.ratio, r.theorem1, "{}", r.algorithm);
            }
        }
        assert!(!rows.is_empty());
    }
}
