//! **tab2_case_classification** — Table 2 and Lemmas 1–5, measured.
//!
//! Runs First Fit over many random workloads, feeds every trace through the
//! §4.3 machinery, and aggregates the Table 2 pair census: how many
//! sub-period pairs fall into Cases I–V, and how many of each intersect.
//! Lemma 1 demands zero intersections outside Case V; Lemmas 2–5 and
//! features (f.1)–(f.5) are checked per trace (violations must be zero).

use crate::harness::{cell, Table};
use dbp_core::analysis::{analyze_first_fit, PairCase};
use dbp_core::prelude::*;
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};
use rayon::prelude::*;

/// Aggregated census.
#[derive(Debug, Clone, Default)]
pub struct Tab2Census {
    /// Traces analyzed.
    pub traces: usize,
    /// Total pairs per case I..V.
    pub totals: [u64; 5],
    /// Intersecting pairs per case I..V.
    pub intersecting: [u64; 5],
    /// Total violations across all traces (must be 0).
    pub violations: usize,
    /// Total joint pairs / singles / non-intersecting across traces.
    pub joint: usize,
    /// Single periods.
    pub single: usize,
    /// Non-intersecting periods.
    pub non_intersecting: usize,
}

/// Run the census.
pub fn run(quick: bool) -> (Table, Tab2Census) {
    let seeds: u64 = if quick { 10 } else { 120 };
    let configs: Vec<MuControlledConfig> = (0..seeds)
        .map(|seed| MuControlledConfig {
            n_items: if quick { 100 } else { 250 },
            mu: 1 + seed % 12,
            sizes: SizeModel::Uniform { lo: 5, hi: 60 },
            arrival_rate: 0.03 + (seed % 5) as f64 * 0.02,
            seed,
            ..MuControlledConfig::new(1 + seed % 12)
        })
        .collect();

    let census = configs
        .par_iter()
        .map(|cfg| {
            let inst = generate_mu_controlled(cfg);
            let trace = simulate(&inst, &mut FirstFit::new());
            let a = analyze_first_fit(&inst, &trace);
            let mut c = Tab2Census {
                traces: 1,
                totals: a.refs.case_counts.total,
                intersecting: a.refs.case_counts.intersecting,
                violations: a.violations.len(),
                joint: a.refs.pairing.joint_pairs,
                single: a.refs.pairing.single_periods,
                non_intersecting: a.refs.pairing.non_intersecting,
            };
            if !a.is_clean() {
                eprintln!("violations at seed {}: {:?}", cfg.seed, a.violations);
                c.violations = a.violations.len();
            }
            c
        })
        .reduce(Tab2Census::default, |mut acc, c| {
            acc.traces += c.traces;
            for i in 0..5 {
                acc.totals[i] += c.totals[i];
                acc.intersecting[i] += c.intersecting[i];
            }
            acc.violations += c.violations;
            acc.joint += c.joint;
            acc.single += c.single;
            acc.non_intersecting += c.non_intersecting;
            acc
        });

    let mut table = Table::new(
        format!(
            "Table 2 census over {} FF traces (violations: {}; J={}, S={}, U={})",
            census.traces, census.violations, census.joint, census.single, census.non_intersecting
        ),
        &["case", "description", "pairs", "intersecting", "lemma 1 OK"],
    );
    let desc = [
        (PairCase::I, "same bin, j1>=2, j2>=2"),
        (PairCase::II, "same bin, one j=1"),
        (PairCase::III, "diff bins, j1>=2, j2>=2"),
        (PairCase::IV, "diff bins, one j=1"),
        (PairCase::V, "diff bins, j1=j2=1"),
    ];
    for (i, (case, d)) in desc.iter().enumerate() {
        let ok = match case {
            PairCase::V => "n/a (allowed)".to_string(),
            _ => cell(census.intersecting[i] == 0),
        };
        table.push(vec![
            format!("{case:?}"),
            d.to_string(),
            cell(census.totals[i]),
            cell(census.intersecting[i]),
            ok,
        ]);
    }
    (table, census)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_holds_in_aggregate_and_no_violations() {
        let (_, census) = run(true);
        assert!(census.traces >= 10);
        assert_eq!(census.violations, 0);
        // Cases I-IV never intersect.
        for i in 0..4 {
            assert_eq!(census.intersecting[i], 0, "case {} intersected", i + 1);
        }
        // The census actually exercised the machinery.
        let total: u64 = census.totals.iter().sum();
        assert!(total > 0, "no sub-period pairs generated at all");
    }
}
