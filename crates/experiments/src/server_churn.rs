//! **server_churn** — provisioning fees punish bin churn.
//!
//! The paper's cost model charges duration only; real VM rentals also pay a
//! provisioning cost per server (boot + game-image pull). This experiment
//! reruns the cloud-gaming day under per-server setup fees and shows the
//! ranking consequence: algorithms that open many short-lived servers
//! (Next Fit most of all) fall off a cliff as the fee grows, while the
//! Any Fit family's ordering barely moves.

use crate::harness::{cell, f3, Table};
use dbp_cloudsim::{GamingSystem, Granularity, ServerType};
use dbp_core::algorithms::standard_factories;
use dbp_workloads::{generate, CloudGamingConfig};

/// One (algorithm, fee) outcome.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Servers rented (churn).
    pub servers: usize,
    /// Bill with no setup fee, dollars.
    pub fee0: f64,
    /// Bill at $0.50 per server, dollars.
    pub fee50: f64,
    /// Bill at $2.00 per server, dollars.
    pub fee200: f64,
}

/// Run the comparison.
pub fn run(quick: bool) -> (Table, Vec<ChurnRow>) {
    let cfg = CloudGamingConfig {
        horizon: if quick { 2 * 3600 } else { 12 * 3600 },
        seed: 31,
        ..CloudGamingConfig::default()
    };
    let inst = generate(&cfg);

    let mut rows = Vec::new();
    for f in standard_factories(9) {
        let mut bills = [0.0f64; 3];
        let mut servers = 0;
        for (i, fee) in [0u64, 50, 200].into_iter().enumerate() {
            let sys = GamingSystem {
                server: ServerType::with_setup_fee(fee),
                granularity: Granularity::PerTick,
            };
            let mut sel = f.build();
            let (report, _) = sys.run_or_panic(&inst, &mut *sel);
            bills[i] = report.cost_dollars();
            servers = report.servers_rented;
        }
        rows.push(ChurnRow {
            algorithm: f.name().to_string(),
            servers,
            fee0: bills[0],
            fee50: bills[1],
            fee200: bills[2],
        });
    }

    let mut table = Table::new(
        "Server churn: bills (USD) under per-server provisioning fees",
        &["algo", "servers", "fee $0", "fee $0.50", "fee $2.00"],
    );
    for r in &rows {
        table.push(vec![
            r.algorithm.clone(),
            cell(r.servers),
            f3(r.fee0),
            f3(r.fee50),
            f3(r.fee200),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fees_scale_with_server_count() {
        let (_, rows) = run(true);
        for r in &rows {
            // Bill grows by exactly servers · fee.
            let d50 = r.fee50 - r.fee0;
            assert!(
                (d50 - r.servers as f64 * 0.50).abs() < 1e-6,
                "{}",
                r.algorithm
            );
            let d200 = r.fee200 - r.fee0;
            assert!((d200 - r.servers as f64 * 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn churny_next_fit_falls_behind_as_fees_grow() {
        let (_, rows) = run(true);
        let nf = rows.iter().find(|r| r.algorithm == "NF").unwrap();
        let ff = rows.iter().find(|r| r.algorithm == "FF").unwrap();
        assert!(nf.servers > ff.servers, "NF should churn more servers");
        let gap0 = nf.fee0 / ff.fee0;
        let gap200 = nf.fee200 / ff.fee200;
        assert!(
            gap200 > gap0,
            "setup fees should widen NF's deficit: {gap0} -> {gap200}"
        );
    }
}
