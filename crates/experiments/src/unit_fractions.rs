//! **unit_fractions** — the related-work item model of Chan–Lam–Wong
//! (reference \[8\] of the paper): every size is a unit fraction `W/w`.
//!
//! For the classical *MaxBins* DBP objective they prove Any Fit is exactly
//! 3-competitive on unit fractions. Here we measure both objectives side by
//! side on unit-fraction instances: the classical max-open-bins ratio (vs
//! the per-instant optimum's peak) stays under 3 for the Any Fit roster,
//! while the MinTotal ratio behaves per this paper's theory (µ-dependent on
//! the witness, near 1 on random traffic).

use crate::harness::{f3, Table};
use dbp_core::algorithms::standard_factories;
use dbp_core::bounds::combined_lower_bound;
use dbp_core::prelude::*;
use dbp_opt::{opt_at, SolveMode};
use dbp_workloads::{generate_mu_controlled, MuControlledConfig, SizeModel};
use rayon::prelude::*;

/// One algorithm's measured ratios on unit-fraction traffic.
#[derive(Debug, Clone)]
pub struct UnitFracRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Worst `max_open_bins / peak OPT(R,t)` over seeds (classical DBP).
    pub maxbins_ratio: f64,
    /// Worst `cost / LB` over seeds (MinTotal DBP).
    pub mintotal_ratio: f64,
}

/// Run the comparison.
pub fn run(quick: bool) -> (Table, Vec<UnitFracRow>) {
    let seeds: u64 = if quick { 3 } else { 12 };
    let instances: Vec<Instance> = (0..seeds)
        .map(|seed| {
            generate_mu_controlled(&MuControlledConfig {
                capacity: 120,
                n_items: if quick { 80 } else { 200 },
                sizes: SizeModel::UnitFraction { max_w: 6 },
                seed,
                ..MuControlledConfig::new(6)
            })
        })
        .collect();
    // Peak per-instant optimum per instance (exact: unit fractions solve
    // instantly via the single-size fast path or tiny B&B).
    let peaks: Vec<u32> = instances
        .par_iter()
        .map(|inst| {
            dbp_core::events::event_ticks(inst)
                .iter()
                .map(|&t| opt_at(inst, t, SolveMode::default()).1 as u32)
                .max()
                .unwrap_or(0)
        })
        .collect();

    let rows: Vec<UnitFracRow> = standard_factories(23)
        .par_iter()
        .map(|f| {
            let mut maxbins: f64 = 0.0;
            let mut mintotal: f64 = 0.0;
            for (inst, &peak) in instances.iter().zip(&peaks) {
                let mut sel = f.build();
                let trace = simulate(inst, &mut *sel);
                maxbins = maxbins.max(trace.max_open_bins() as f64 / peak.max(1) as f64);
                let lb = combined_lower_bound(inst);
                mintotal = mintotal.max((Ratio::from_int(trace.total_cost_ticks()) / lb).to_f64());
            }
            UnitFracRow {
                algorithm: f.name().to_string(),
                maxbins_ratio: maxbins,
                mintotal_ratio: mintotal,
            }
        })
        .collect();

    let mut table = Table::new(
        "Unit-fraction items (related work [8]): MaxBins vs MinTotal ratios per algorithm",
        &["algo", "maxbins/peakOPT", "mintotal/LB"],
    );
    for r in &rows {
        table.push(vec![
            r.algorithm.clone(),
            f3(r.maxbins_ratio),
            f3(r.mintotal_ratio),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_fit_stays_under_the_chan_lam_wong_bound() {
        let (_, rows) = run(true);
        for r in &rows {
            // The tight 3-competitive MaxBins bound for Any Fit on unit
            // fractions; NF is not Any Fit, give it headroom but sanity-cap.
            if r.algorithm != "NF" {
                assert!(
                    r.maxbins_ratio <= 3.0 + 1e-9,
                    "{} exceeded 3x on MaxBins: {}",
                    r.algorithm,
                    r.maxbins_ratio
                );
            }
            assert!(r.mintotal_ratio >= 1.0 - 1e-9);
            assert!(r.mintotal_ratio < 4.0);
        }
    }
}
