//! Binary for the `thm5_general_ff` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::thm5_general_ff::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "thm5_general_ff");
}
