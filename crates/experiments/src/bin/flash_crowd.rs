//! Binary for the `flash_crowd` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::flash_crowd::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "flash_crowd");
}
