//! Binary for the `mff_ratio` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::mff_ratio::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "mff_ratio");
}
