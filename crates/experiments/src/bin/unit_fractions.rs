//! Binary for the `unit_fractions` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::unit_fractions::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "unit_fractions");
}
