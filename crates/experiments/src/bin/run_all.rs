//! Run every experiment — regenerates every table/figure artifact of the
//! paper. Pass `--quick` for reduced grids and `--jobs N` to bound the
//! worker pool (default: available parallelism, capped at the experiment
//! count).
//!
//! Experiments run concurrently on a bounded worker pool, but all output is
//! buffered per experiment and printed in registration order, and the
//! manifest records experiments in that same order — so two runs of the
//! same build produce identical stdout and an identical
//! `results/manifest.json` (modulo timings) regardless of scheduling.
//!
//! Each experiment runs under `catch_unwind`, so one panicking experiment
//! does not take the sweep down; the process exits nonzero if *any*
//! experiment panicked or failed to write its table. Panic messages are
//! captured into the manifest's `detail` field and echoed in the final
//! timing table.
//!
//! ## Crash safety and resume
//!
//! After every experiment completes, a [`SweepCheckpoint`] is written
//! atomically to `results/run_all.checkpoint.json`; it is deleted when the
//! whole sweep succeeds. A sweep killed mid-flight (SIGKILL, power loss)
//! can be restarted with `--resume`: completed experiments are skipped and
//! their recorded results reused, the interrupted one simply reruns (each
//! experiment is deterministic), and the final CSVs and manifest come out
//! identical to an uninterrupted run (use `--stable-manifest` to zero the
//! timing fields when byte-comparing).
//!
//! SIGINT/SIGTERM trigger a *graceful* shutdown: in-flight experiments
//! finish, no new ones start, never-started ones are stamped `Skipped` in
//! the manifest, the checkpoint is flushed, and the exit code is nonzero.
//!
//! Further flags: `--only a,b` restricts the sweep to a named subset;
//! `--jobs 0` is rejected with a clear error.

use dbp_experiments as exp;

use dbp_obs::{ExperimentManifest, ExperimentRecord, ExperimentStatus, SweepCheckpoint};
use exp::harness::Table;
use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// One experiment: its CSV stem and a quick-flag-taking runner.
type Experiment = (&'static str, fn(bool) -> Table);
/// An [`Experiment`] joined with its registration index, the unit of
/// scheduling and of checkpoint bookkeeping.
type IndexedExperiment = (usize, &'static str, fn(bool) -> Table);

/// Every experiment, in registration order (the order output and manifest
/// records appear in, independent of scheduling).
const EXPERIMENTS: &[Experiment] = &[
    ("fig1_span", |q| exp::fig1_span::run(q).0),
    ("fig2_anyfit_lb", |q| exp::fig2_anyfit_lb::run(q).0),
    ("fig3_bestfit_unbounded", |q| {
        exp::fig3_bestfit_unbounded::run(q).0
    }),
    ("thm3_large_items", |q| exp::thm3_large_items::run(q).0),
    ("thm4_small_items", |q| exp::thm4_small_items::run(q).0),
    ("thm5_general_ff", |q| exp::thm5_general_ff::run(q).0),
    ("tab2_case_classification", |q| {
        exp::tab2_case_classification::run(q).0
    }),
    ("mff_ratio", |q| exp::mff_ratio::run(q).0),
    ("mff_k_ablation", |q| exp::mff_k_ablation::run(q).0),
    ("cloud_gaming_costs", |q| exp::cloud_gaming_costs::run(q).0),
    ("mu_sensitivity", |q| exp::mu_sensitivity::run(q).0),
    ("billing_granularity", |q| {
        exp::billing_granularity::run(q).0
    }),
    ("constrained_dbp", |q| exp::constrained_dbp::run(q).0),
    ("footnote1_adaptive", |q| exp::footnote1_adaptive::run(q).0),
    ("flash_crowd", |q| exp::flash_crowd::run(q).0),
    ("mff_decomposition", |q| exp::mff_decomposition::run(q).0),
    ("unit_fractions", |q| exp::unit_fractions::run(q).0),
    ("value_of_clairvoyance", |q| {
        exp::value_of_clairvoyance::run(q).0
    }),
    ("migration_gap", |q| exp::migration_gap::run(q).0),
    ("server_churn", |q| exp::server_churn::run(q).0),
    ("fault_tolerance", |q| exp::fault_tolerance::run(q).0),
    ("ff_gap_search", |q| exp::ff_gap_search::run(q).0),
    ("hff_class_ablation", |q| exp::hff_class_ablation::run(q).0),
    ("sharding_overhead", |q| exp::sharding_overhead::run(q).0),
    ("shard_resilience", |q| exp::shard_resilience::run(q).0),
];

/// Parsed command line.
struct Options {
    quick: bool,
    jobs: Option<usize>,
    resume: bool,
    only: Option<Vec<String>>,
    stable_manifest: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        quick: false,
        jobs: None,
        resume: false,
        only: None,
        stable_manifest: false,
    };
    let parse_jobs = |v: &str| -> Result<usize, String> {
        let n: usize = v
            .parse()
            .map_err(|_| format!("--jobs expects a positive integer, got {v:?}"))?;
        if n == 0 {
            return Err(
                "--jobs 0 would build an empty worker pool and run nothing; \
                 pass a positive worker count (or omit --jobs for the default)"
                    .to_string(),
            );
        }
        Ok(n)
    };
    let parse_only = |v: &str| -> Result<Vec<String>, String> {
        let names: Vec<String> = v
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if names.is_empty() {
            return Err("--only expects a comma-separated experiment list".to_string());
        }
        for n in &names {
            if !EXPERIMENTS.iter().any(|&(name, _)| name == n) {
                return Err(format!(
                    "--only: unknown experiment {n:?}; valid names: {}",
                    EXPERIMENTS
                        .iter()
                        .map(|&(name, _)| name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(names)
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => o.quick = true,
            "--resume" => o.resume = true,
            "--stable-manifest" => o.stable_manifest = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs expects a value")?;
                o.jobs = Some(parse_jobs(&v)?);
            }
            "--only" => {
                let v = args.next().ok_or("--only expects a value")?;
                o.only = Some(parse_only(&v)?);
            }
            other => {
                if let Some(v) = other.strip_prefix("--jobs=") {
                    o.jobs = Some(parse_jobs(v)?);
                } else if let Some(v) = other.strip_prefix("--only=") {
                    o.only = Some(parse_only(v)?);
                } else {
                    return Err(format!(
                        "unknown argument {other:?}; flags: --quick --jobs N \
                         --only a,b --resume --stable-manifest"
                    ));
                }
            }
        }
    }
    Ok(o)
}

/// Worker count: `--jobs N` if given (already validated nonzero), else
/// available parallelism; always in `1..=n_selected`.
fn jobs(requested: Option<usize>, n_selected: usize) -> usize {
    let n = requested.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    n.clamp(1, n_selected.max(1))
}

/// Graceful-shutdown latch, set from the SIGINT/SIGTERM handler. Workers
/// stop claiming new experiments once it is raised; in-flight ones finish.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // An atomic store is async-signal-safe.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Render a panic payload the way the default hook would: the `&str` or
/// `String` message when there is one.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Run one experiment, buffering its output. Returns the printable block
/// and the manifest record (without timing — the caller owns the clock).
fn run_one(
    name: &'static str,
    run: fn(bool) -> Table,
    quick: bool,
) -> (String, ExperimentStatus, Option<String>) {
    let mut out = String::new();
    match catch_unwind(AssertUnwindSafe(|| run(quick))) {
        Ok(table) => {
            out.push_str(&table.render());
            out.push('\n');
            match table.try_write_csv(name) {
                Ok(path) => {
                    out.push_str(&format!("[csv] {}\n", path.display()));
                    (out, ExperimentStatus::Ok, None)
                }
                Err(e) => {
                    let detail = format!("cannot write table: {e}");
                    out.push_str(&format!("[error] {name}: {detail}\n"));
                    (out, ExperimentStatus::WriteFailed, Some(detail))
                }
            }
        }
        Err(payload) => {
            let detail = panic_message(payload);
            out.push_str(&format!("[error] {name}: panicked: {detail}\n"));
            (out, ExperimentStatus::Panicked, Some(detail))
        }
    }
}

fn checkpoint_path() -> PathBuf {
    exp::harness::results_dir().join("run_all.checkpoint.json")
}

/// Load and validate the checkpoint for a `--resume` run. `Ok(None)` when
/// there is nothing to resume (a fresh start).
fn load_checkpoint(o: &Options) -> Result<Option<SweepCheckpoint>, String> {
    let path = checkpoint_path();
    if !path.exists() {
        return Ok(None);
    }
    let cp: SweepCheckpoint = dbp_obs::export::read_json(&path)?;
    if cp.quick != o.quick {
        return Err(format!(
            "checkpoint at {} was written by a {} sweep but this run is {}; \
             results are not interchangeable — rerun without --resume to start over",
            path.display(),
            if cp.quick { "--quick" } else { "full" },
            if o.quick { "--quick" } else { "full" },
        ));
    }
    if cp.only != o.only {
        return Err(format!(
            "checkpoint at {} covers subset {:?} but this run selects {:?}; \
             rerun without --resume to start over",
            path.display(),
            cp.only,
            o.only
        ));
    }
    Ok(Some(cp))
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("[error] {e}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_handlers();

    // The experiments this sweep covers, in registration order.
    let selected: Vec<IndexedExperiment> = EXPERIMENTS
        .iter()
        .enumerate()
        .filter(|(_, &(name, _))| {
            o.only
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| n == name))
        })
        .map(|(i, &(name, run))| (i, name, run))
        .collect();

    // Resume: reuse every Ok record from the checkpoint; everything else
    // (failed, interrupted, never started) reruns.
    let resumed: BTreeMap<usize, ExperimentRecord> = match o.resume {
        false => BTreeMap::new(),
        true => match load_checkpoint(&o) {
            Ok(None) => {
                println!("[resume] no checkpoint found; running everything");
                BTreeMap::new()
            }
            Ok(Some(cp)) => selected
                .iter()
                .filter_map(|&(i, name, _)| {
                    cp.record(name)
                        .filter(|r| r.status == ExperimentStatus::Ok)
                        .map(|r| (i, r.clone()))
                })
                .collect(),
            Err(e) => {
                eprintln!("[error] {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if !resumed.is_empty() {
        println!(
            "[resume] skipping {} completed experiment(s), rerunning {}",
            resumed.len(),
            selected.len() - resumed.len()
        );
    }
    let todo: Vec<IndexedExperiment> = selected
        .iter()
        .filter(|(i, ..)| !resumed.contains_key(i))
        .copied()
        .collect();

    let workers = jobs(o.jobs, todo.len());
    let t0 = Instant::now();

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, String, ExperimentRecord)>();

    // Registration-index → (buffered output, record). Pre-filled with the
    // resumed records (empty output: their tables were already printed by
    // the original run and their CSVs are on disk).
    let mut by_index: BTreeMap<usize, (String, ExperimentRecord)> = resumed
        .into_iter()
        .map(|(i, r)| (i, (String::new(), r)))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let todo = &todo;
            let quick = o.quick;
            scope.spawn(move || loop {
                if SHUTDOWN.load(Ordering::SeqCst) {
                    return;
                }
                let claimed = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(i, name, run)) = todo.get(claimed) else {
                    return;
                };
                let started = Instant::now();
                let (out, status, detail) = run_one(name, run, quick);
                let record = ExperimentRecord {
                    name: name.to_string(),
                    status,
                    wall_time_ms: started.elapsed().as_millis() as u64,
                    detail,
                };
                if tx.send((i, out, record)).is_err() {
                    return;
                }
            });
        }
        drop(tx);

        // Print completed experiments in registration order, holding back
        // any that finish ahead of a still-running predecessor — and flush
        // the checkpoint after every completion so a kill at any point
        // loses at most the in-flight experiments.
        let mut next_to_print = 0;
        for (i, out, record) in rx {
            by_index.insert(i, (out, record));
            let cp = SweepCheckpoint {
                quick: o.quick,
                only: o.only.clone(),
                completed: by_index.values().map(|(_, r)| r.clone()).collect(),
            };
            if let Err(e) = dbp_obs::export::write_json(&checkpoint_path(), &cp) {
                eprintln!("[warn] cannot write checkpoint: {e}");
            }
            while let Some((out, _)) = selected
                .get(next_to_print)
                .and_then(|&(i, ..)| by_index.get(&i))
            {
                print!("{out}");
                next_to_print += 1;
            }
        }
    });

    let interrupted = SHUTDOWN.load(Ordering::SeqCst);

    // Stamp experiments the shutdown prevented from ever starting.
    let records: Vec<ExperimentRecord> = selected
        .iter()
        .map(|&(i, name, _)| {
            by_index
                .get(&i)
                .map(|(_, r)| r.clone())
                .unwrap_or_else(|| ExperimentRecord {
                    name: name.to_string(),
                    status: ExperimentStatus::Skipped,
                    wall_time_ms: 0,
                    detail: Some("graceful shutdown before this experiment started".to_string()),
                })
        })
        .collect();
    assert_eq!(records.len(), selected.len(), "lost experiment results");

    let mut manifest = ExperimentManifest {
        experiments: records,
        total_wall_time_ms: t0.elapsed().as_millis() as u64,
        peak_rss_bytes: dbp_obs::manifest::peak_rss_bytes(),
    };
    if o.stable_manifest {
        // Byte-stable output for clean-vs-resumed comparisons: zero every
        // timing-dependent field.
        manifest.total_wall_time_ms = 0;
        manifest.peak_rss_bytes = None;
        for r in &mut manifest.experiments {
            r.wall_time_ms = 0;
        }
    }

    let mut summary = Table::new(
        "run_all timing",
        &["experiment", "status", "wall ms", "detail"],
    );
    for r in &manifest.experiments {
        summary.push(vec![
            r.name.clone(),
            format!("{:?}", r.status),
            r.wall_time_ms.to_string(),
            r.detail.clone().unwrap_or_default(),
        ]);
    }
    summary.print();

    let manifest_path = exp::harness::results_dir().join("manifest.json");
    let mut failed = manifest.failures();
    match dbp_obs::export::write_json(&manifest_path, &manifest) {
        Ok(()) => println!("[manifest] {}", manifest_path.display()),
        Err(e) => {
            eprintln!("[error] cannot write {}: {e}", manifest_path.display());
            failed += 1;
        }
    }

    if interrupted {
        // The checkpoint stays behind for `--resume`.
        println!(
            "\ninterrupted after {:.1}s; {} of {} experiment(s) completed — \
             rerun with --resume to continue",
            t0.elapsed().as_secs_f64(),
            manifest
                .experiments
                .iter()
                .filter(|r| r.status == ExperimentStatus::Ok)
                .count(),
            manifest.experiments.len()
        );
        return ExitCode::FAILURE;
    }

    println!(
        "\nall experiments done in {:.1}s on {} worker(s) ({} ok, {} failed)",
        t0.elapsed().as_secs_f64(),
        workers,
        manifest.experiments.len() - manifest.failures(),
        manifest.failures()
    );
    if failed == 0 {
        // A fully successful sweep needs no resume state; removing it also
        // makes clean and resumed result directories identical.
        let _ = std::fs::remove_file(checkpoint_path());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        panic_message(catch_unwind(f).unwrap_err())
    }

    #[test]
    fn panic_message_downcasts_str_and_string() {
        // Silence the default hook's stderr spew for the two induced panics.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let from_str = capture(|| panic!("plain str payload"));
        let from_string = capture(|| panic!("formatted {} payload", 42));
        std::panic::set_hook(hook);
        assert_eq!(from_str, "plain str payload");
        assert_eq!(from_string, "formatted 42 payload");
    }

    #[test]
    fn jobs_clamps_to_selection() {
        assert_eq!(jobs(Some(99), 5), 5);
        assert_eq!(jobs(Some(2), 5), 2);
        assert_eq!(jobs(Some(3), 0), 1);
        assert!(jobs(None, EXPERIMENTS.len()) >= 1);
    }
}
